package parconn

import (
	"bytes"
	"strings"
	"testing"

	"parconn/internal/graph"
)

// FuzzReadGraph: arbitrary bytes through the text parser must never panic,
// and anything accepted must be a structurally valid graph that round-trips.
func FuzzReadGraph(f *testing.F) {
	f.Add("AdjacencyGraph\n2\n2\n0\n1\n1\n0\n")
	f.Add("AdjacencyGraph\n0\n0\n")
	f.Add("AdjacencyGraph\n3\n2\n0\n1\n2\n1\n0\n")
	f.Add("garbage")
	f.Add("AdjacencyGraph\n-1\n-1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzReadBinary: arbitrary bytes through the binary parser must never
// panic or allocate proportionally to a corrupt header's claimed sizes, and
// anything accepted must be structurally valid and round-trip.
func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	if err := graph.Line(5, 1).WriteBinary(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Corrupt header: correct magic, implausibly huge n and m, no payload.
	corrupt := append([]byte("PCONNGR1"),
		0xFE, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, // n = 2^31-2
		0, 0, 0, 0, 0, 0, 1, 0) // m = 2^48
	f.Add(corrupt)
	f.Add([]byte("XCONNGR1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := graph.ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted binary produced invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := graph.ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N != g.N || g2.NumDirected() != g.NumDirected() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzReadEdgeList: arbitrary bytes through the SNAP parser.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("x y\n")
	f.Add("9999999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.g.Validate(); err != nil {
			t.Fatalf("accepted edge list produced invalid graph: %v", err)
		}
	})
}

// FuzzIncremental: arbitrary bytes decoded into edge batches (including
// out-of-range vertices, self-loops, duplicates, and empty batches) driven
// through Incremental. Invariants: Insert never panics, rejects any batch
// with an out-of-range endpoint without applying it, keeps the component
// count monotonically non-increasing, keeps the union-find acyclic, is
// idempotent under re-insertion, and always matches the from-scratch oracle
// on the accepted edges.
func FuzzIncremental(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 2}, uint8(8))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{5, 5, 5, 5}, uint8(6))           // self-loops
	f.Add([]byte{200, 1}, uint8(4))               // out-of-range endpoint
	f.Add([]byte{0, 1, 0xFF, 0, 1, 2}, uint8(16)) // batch separator
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint8) {
		n := int(nRaw%64) + 1
		inc := NewIncremental(n)

		// Decode: pairs of bytes are edges (unreduced, so values >= n probe
		// the validation path); a 0xFF first byte ends the current batch.
		var batches [][]Edge
		var cur []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			if raw[i] == 0xFF {
				batches = append(batches, cur)
				cur = nil
				i--
				continue
			}
			cur = append(cur, Edge{U: int32(raw[i]), V: int32(raw[i+1])})
		}
		batches = append(batches, cur)

		var accepted []Edge
		components := inc.Components()
		for _, batch := range batches {
			epochBefore := inc.Epoch()
			merged, err := inc.Insert(batch)
			if err != nil {
				// Rejected batches are all-or-nothing: no state moved.
				if inc.Epoch() != epochBefore {
					t.Fatalf("rejected batch advanced the epoch")
				}
				continue
			}
			if len(batch) > 0 && inc.Epoch() != epochBefore+1 {
				t.Fatalf("accepted batch did not advance the epoch by 1")
			}
			if merged < 0 || merged > len(batch) {
				t.Fatalf("merged %d of %d", merged, len(batch))
			}
			accepted = append(accepted, batch...)
			if c := inc.Components(); c > components {
				t.Fatalf("component count grew %d -> %d", components, c)
			} else {
				components = c
			}
			// Idempotence: re-inserting the same batch merges nothing.
			if again, err := inc.Insert(batch); err != nil || again != 0 {
				t.Fatalf("re-insert: merged=%d err=%v", again, err)
			}
		}

		// The labeling matches a from-scratch run on the accepted edges.
		g, err := NewGraph(n, accepted, BuildOptions{KeepDuplicates: true})
		if err != nil {
			t.Fatalf("accepted edges rejected by NewGraph: %v", err)
		}
		ref := graph.RefCC(g.g)
		snap := inc.Snapshot()
		if !graph.SamePartition(ref, snap.Labels) {
			t.Fatalf("wrong partition for n=%d accepted=%v", n, accepted)
		}
		if snap.Components != NumComponents(ref) {
			t.Fatalf("components=%d, oracle=%d", snap.Components, NumComponents(ref))
		}
		// The underlying union-find stayed acyclic and in-range.
		if err := inc.uf.Load().Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzConnectedComponents: arbitrary edge bytes decoded into a small graph;
// every algorithm must agree with the oracle.
func FuzzConnectedComponents(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(5))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint8) {
		n := int(nRaw%32) + 1
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: int32(raw[i]) % int32(n), V: int32(raw[i+1]) % int32(n)})
		}
		g, err := NewGraph(n, edges, BuildOptions{KeepDuplicates: true})
		if err != nil {
			t.Fatalf("in-range edges rejected: %v", err)
		}
		ref := graph.RefCC(g.g)
		for _, alg := range Algorithms {
			labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: uint64(nRaw)})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if !graph.SamePartition(ref, labels) {
				t.Fatalf("%v: wrong partition for n=%d edges=%v", alg, n, edges)
			}
		}
	})
}
