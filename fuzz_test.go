package parconn

import (
	"bytes"
	"strings"
	"testing"

	"parconn/internal/graph"
)

// FuzzReadGraph: arbitrary bytes through the text parser must never panic,
// and anything accepted must be a structurally valid graph that round-trips.
func FuzzReadGraph(f *testing.F) {
	f.Add("AdjacencyGraph\n2\n2\n0\n1\n1\n0\n")
	f.Add("AdjacencyGraph\n0\n0\n")
	f.Add("AdjacencyGraph\n3\n2\n0\n1\n2\n1\n0\n")
	f.Add("garbage")
	f.Add("AdjacencyGraph\n-1\n-1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzReadBinary: arbitrary bytes through the binary parser must never
// panic or allocate proportionally to a corrupt header's claimed sizes, and
// anything accepted must be structurally valid and round-trip.
func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	if err := graph.Line(5, 1).WriteBinary(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Corrupt header: correct magic, implausibly huge n and m, no payload.
	corrupt := append([]byte("PCONNGR1"),
		0xFE, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, // n = 2^31-2
		0, 0, 0, 0, 0, 0, 1, 0) // m = 2^48
	f.Add(corrupt)
	f.Add([]byte("XCONNGR1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := graph.ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted binary produced invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := graph.ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N != g.N || g2.NumDirected() != g.NumDirected() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzReadEdgeList: arbitrary bytes through the SNAP parser.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("x y\n")
	f.Add("9999999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.g.Validate(); err != nil {
			t.Fatalf("accepted edge list produced invalid graph: %v", err)
		}
	})
}

// FuzzConnectedComponents: arbitrary edge bytes decoded into a small graph;
// every algorithm must agree with the oracle.
func FuzzConnectedComponents(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(5))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint8) {
		n := int(nRaw%32) + 1
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{U: int32(raw[i]) % int32(n), V: int32(raw[i+1]) % int32(n)})
		}
		g, err := NewGraph(n, edges, BuildOptions{KeepDuplicates: true})
		if err != nil {
			t.Fatalf("in-range edges rejected: %v", err)
		}
		ref := graph.RefCC(g.g)
		for _, alg := range Algorithms {
			labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: uint64(nRaw)})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if !graph.SamePartition(ref, labels) {
				t.Fatalf("%v: wrong partition for n=%d edges=%v", alg, n, edges)
			}
		}
	})
}
