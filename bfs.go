package parconn

import (
	"fmt"

	"parconn/internal/parallel"
)

// BFSResult is the output of a breadth-first search.
type BFSResult struct {
	// Dist[v] is the hop distance from the source, or -1 if unreachable.
	Dist []int32
	// Parent[v] is v's BFS-tree parent, the source's own id at the source,
	// and -1 if unreachable.
	Parent []int32
	// Visited is the number of reached vertices (including the source).
	Visited int
	// Rounds is the number of BFS levels explored.
	Rounds int
}

// BFS runs a parallel level-synchronous breadth-first search from src —
// the primitive the paper's decomposition multiplexes (§2). procs <= 0
// means all cores.
func BFS(g *Graph, src int32, procs int) (*BFSResult, error) {
	n := g.NumVertices()
	if src < 0 || int(src) >= n {
		return nil, fmt.Errorf("parconn: BFS source %d out of range [0,%d)", src, n)
	}
	procs = parallel.Procs(procs)
	res := &BFSResult{
		Dist:   make([]int32, n),
		Parent: make([]int32, n),
	}
	parallel.Fill(procs, res.Dist, int32(-1))
	parallel.Fill(procs, res.Parent, int32(-1))
	res.Dist[src] = 0
	res.Parent[src] = src
	res.Visited = 1

	cur := make([]int32, 1, n)
	cur[0] = src
	nxt := make([]int32, n)
	for d := int32(1); len(cur) > 0; d++ {
		k := 0
		// Sequential frontier expansion under procs==1, parallel with
		// per-vertex CAS-free claiming otherwise (Dist doubles as the
		// visited marker; each vertex is claimed exactly once because
		// claims only happen from the current level).
		if procs == 1 {
			for _, v := range cur {
				for _, w := range g.Neighbors(v) {
					if res.Dist[w] == -1 {
						res.Dist[w] = d
						res.Parent[w] = v
						nxt[k] = w
						k++
					}
				}
			}
		} else {
			k = bfsLevelParallel(g, res, cur, nxt, d, procs)
		}
		cur = append(cur[:0], nxt[:k]...)
		res.Visited += k
		res.Rounds++
	}
	return res, nil
}

// bfsLevelParallel expands one BFS level with CAS claiming.
func bfsLevelParallel(g *Graph, res *BFSResult, cur, nxt []int32, d int32, procs int) int {
	var cursor atomicCursor
	parallel.Blocks(procs, len(cur), 256, func(lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			v := cur[fi]
			for _, w := range g.Neighbors(v) {
				if cursor.claim(res.Dist, w, d) {
					res.Parent[w] = v
					//parconn:allow sharedwrite cursor.next reserves a unique slot via atomic add, so no two workers share an index
					nxt[cursor.next()] = w
				}
			}
		}
	})
	return cursor.len()
}
