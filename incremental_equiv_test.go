package parconn

import (
	"fmt"
	"testing"

	"parconn/internal/graph"
	"parconn/internal/prand"
)

// This file is the equivalence harness for Incremental: across hundreds of
// randomized (input graph, edge order, batching, seeding, checkpoint
// placement) cases, the labeling produced by streaming a graph's edges
// through Insert must be permutation-equivalent — same partition, possibly
// different canonical representatives — to a from-scratch
// ConnectedComponents run on the prefix graph containing exactly the edges
// inserted so far. graph.SamePartition is the normalizer: it checks the
// bidirectional label mapping, so the two sides may pick different roots.

// equivCase is one randomized equivalence scenario.
type equivCase struct {
	gen      string // input family
	seed     uint64 // drives the generator, the shuffle, and the batching
	batching string // how the stream is cut into Insert batches
	seeded   bool   // seed the Incremental from a prefix labeling instead of empty
}

// equivGenerators builds the four input families the harness streams. Sizes
// are kept small: the point is coverage of orderings and batchings, not
// scale.
func equivGraph(gen string, seed uint64) *Graph {
	switch gen {
	case "rMat":
		return RMatGraph(8, RMatOptions{EdgeFactor: 4, Seed: seed})
	case "random":
		return RandomGraph(300, 2, seed)
	case "star":
		return StarGraph(200)
	case "chain":
		return LineGraph(250, seed)
	default:
		panic("unknown generator " + gen)
	}
}

// edgeStream extracts each undirected edge of g once and shuffles it with
// the case seed, so every case replays the same graph in a different order.
func edgeStream(g *Graph, seed uint64) []Edge {
	var edges []Edge
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(int32(v)) {
			if w > int32(v) {
				edges = append(edges, Edge{U: int32(v), V: w})
			}
		}
	}
	src := prand.New(seed)
	for i := len(edges) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	return edges
}

// cutBatches splits the stream into Insert-sized batches per the strategy.
func cutBatches(edges []Edge, batching string, seed uint64) [][]Edge {
	var batches [][]Edge
	src := prand.New(seed ^ 0x9e3779b97f4a7c15)
	switch batching {
	case "single":
		for i := range edges {
			batches = append(batches, edges[i:i+1])
		}
	case "fixed":
		const k = 17
		for i := 0; i < len(edges); i += k {
			end := i + k
			if end > len(edges) {
				end = len(edges)
			}
			batches = append(batches, edges[i:end])
		}
	case "random":
		for i := 0; i < len(edges); {
			k := 1 + src.Intn(40)
			if i+k > len(edges) {
				k = len(edges) - i
			}
			batches = append(batches, edges[i:i+k])
			i += k
		}
	case "whole":
		batches = append(batches, edges)
	default:
		panic("unknown batching " + batching)
	}
	return batches
}

// prefixLabels runs the from-scratch algorithm on the graph containing
// exactly edges[:count] — the oracle for the incremental labeling at that
// point in the stream.
func prefixLabels(t *testing.T, n int, edges []Edge, count int, seed uint64) []int32 {
	t.Helper()
	g, err := NewGraph(n, edges[:count], BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ConnectedComponents(g, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return labels
}

// runEquivCase streams one case and cross-checks the incremental state at
// every checkpoint (a deterministic subset of batch boundaries plus the
// end of the stream) against the from-scratch oracle.
func runEquivCase(t *testing.T, c equivCase) {
	t.Helper()
	g := equivGraph(c.gen, c.seed)
	n := g.NumVertices()
	edges := edgeStream(g, c.seed)
	batches := cutBatches(edges, c.batching, c.seed)

	var inc *Incremental
	prefixStart := 0
	if c.seeded {
		// Seed from a from-scratch labeling of the first half of the stream;
		// the incremental layer continues from there.
		prefixStart = len(edges) / 2
		seedLabels := prefixLabels(t, n, edges, prefixStart, c.seed)
		var err error
		inc, err = NewIncrementalFromLabels(seedLabels)
		if err != nil {
			t.Fatal(err)
		}
		// Re-cut only the remaining stream.
		batches = cutBatches(edges[prefixStart:], c.batching, c.seed)
	} else {
		inc = NewIncremental(n)
	}

	// Checkpoints: ~4 per case, spread across the stream, plus the end.
	// Oracle runs dominate the harness cost, so they are rationed.
	stride := len(batches)/4 + 1
	applied := prefixStart
	for bi, batch := range batches {
		merged, err := inc.Insert(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if merged < 0 || merged > len(batch) {
			t.Fatalf("batch %d: merged %d of %d", bi, merged, len(batch))
		}
		applied += len(batch)
		if (bi+1)%stride == 0 || bi == len(batches)-1 {
			want := prefixLabels(t, n, edges, applied, c.seed)
			snap := inc.Snapshot()
			if !graph.SamePartition(want, snap.Labels) {
				t.Fatalf("after batch %d (%d/%d edges): incremental partition diverged from from-scratch oracle",
					bi, applied, len(edges))
			}
			if snap.Components != NumComponents(want) {
				t.Fatalf("after batch %d: components=%d, oracle=%d", bi, snap.Components, NumComponents(want))
			}
			// Spot-check the live point queries against the oracle too.
			src := prand.New(c.seed + uint64(bi))
			for q := 0; q < 16; q++ {
				u, v := int32(src.Intn(n)), int32(src.Intn(n))
				if got, want := inc.Same(u, v), want[u] == want[v]; got != want {
					t.Fatalf("after batch %d: Same(%d,%d)=%v, oracle %v", bi, u, v, got, want)
				}
			}
		}
	}
	// The fully-streamed graph must match a labeling of the original.
	full, err := ConnectedComponents(g, Options{Seed: c.seed})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.SamePartition(full, inc.Labels()) {
		t.Fatal("final incremental partition diverged from the full graph labeling")
	}
}

// TestIncrementalEquivalence is the harness entry point: 4 generators x 2
// seedings x 4 batchings x 7 seeds = 224 randomized cases.
func TestIncrementalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence harness runs the from-scratch oracle hundreds of times")
	}
	gens := []string{"rMat", "random", "star", "chain"}
	batchings := []string{"single", "fixed", "random", "whole"}
	cases := 0
	for _, gen := range gens {
		for _, seeded := range []bool{false, true} {
			for _, batching := range batchings {
				for seed := uint64(1); seed <= 7; seed++ {
					c := equivCase{gen: gen, seed: seed, batching: batching, seeded: seeded}
					cases++
					name := fmt.Sprintf("%s/%s/seeded=%v/seed=%d", gen, batching, seeded, seed)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						runEquivCase(t, c)
					})
				}
			}
		}
	}
	if cases < 200 {
		t.Fatalf("harness shrank to %d cases; the contract is at least 200", cases)
	}
}
