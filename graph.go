// Package parconn is a parallel graph-connectivity library reproducing
// Shun, Dhulipala, Blelloch, "A Simple and Practical Linear-Work Parallel
// Algorithm for Connectivity" (SPAA 2014).
//
// The primary entry point is ConnectedComponents, which labels the
// connected components of an undirected graph using the paper's
// decomposition-based algorithm: expected linear work, polylogarithmic
// depth, and competitive constant factors. The paper's three engineered
// variants (decomp-min, decomp-arb, decomp-arb-hybrid) and all the
// evaluation baselines (spanning-forest union-find, direction-optimizing
// BFS, multistep, label propagation, Shiloach-Vishkin) are selectable via
// Options.Algorithm, so downstream users can pick per workload and the
// benchmark harness can regenerate the paper's tables.
//
// Quick start:
//
//	g := parconn.RandomGraph(1_000_000, 5, 42)
//	labels, err := parconn.ConnectedComponents(g, parconn.Options{})
//	// labels[v] == labels[u] iff u and v are connected.
//
// All algorithms are deterministic for a fixed Options.Seed up to label
// choice, safe for concurrent use on distinct graphs, and bounded to
// Options.Procs workers.
package parconn

import (
	"fmt"
	"io"

	"parconn/internal/graph"
	"parconn/internal/parallel"
)

// Edge is an undirected edge between vertices U and V.
type Edge = graph.Edge

// RMatOptions parameterizes the R-MAT generator; see RMatGraph.
type RMatOptions = graph.RMatOptions

// Graph is an immutable undirected graph in adjacency-array (CSR) form.
// Construct one with NewGraph, a generator, or ReadGraph. Methods never
// mutate the graph, so one Graph may be shared by concurrent algorithm
// runs.
type Graph struct {
	g *graph.Graph
}

// BuildOptions controls NewGraph.
type BuildOptions struct {
	// KeepDuplicates retains parallel edges instead of deduplicating them.
	// Self-loops are always dropped.
	KeepDuplicates bool
	// Procs bounds construction parallelism; <= 0 means all cores.
	Procs int
}

// NewGraph builds a graph on n vertices from an undirected edge list. Edges
// are symmetrized (stored in both directions), self-loops dropped, and
// duplicates removed unless opt.KeepDuplicates is set. Endpoints outside
// [0, n) are an error.
func NewGraph(n int, edges []Edge, opt BuildOptions) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("parconn: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("parconn: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	g := graph.FromEdges(n, edges, graph.BuildOptions{
		RemoveDuplicates: !opt.KeepDuplicates,
		Procs:            opt.Procs,
	})
	return &Graph{g: g}, nil
}

// ReadGraph parses a graph in the PBBS/Ligra "AdjacencyGraph" text format.
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	if err := validateSymmetric(g); err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// validateSymmetric runs the cheap structural checks on an external graph;
// full symmetry validation is O(m) with a hash map, acceptable at load time.
func validateSymmetric(g *graph.Graph) error {
	return g.Validate()
}

// Write serializes the graph in the AdjacencyGraph text format.
func (g *Graph) Write(w io.Writer) error { return g.g.Write(w) }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.g.N }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.g.NumUndirected() }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int32 { return g.g.Degree(v) }

// Neighbors returns v's adjacency list as a read-only view; callers must
// not modify it.
func (g *Graph) Neighbors(v int32) []int32 { return g.g.Neighbors(v) }

// MaxDegree returns the largest vertex degree.
func (g *Graph) MaxDegree() int32 { return g.g.MaxDegree() }

// String summarizes the graph.
func (g *Graph) String() string { return g.g.String() }

// RandomGraph returns the paper's "random" input: every vertex draws
// perVertex neighbors uniformly at random (duplicates kept, self-loops
// dropped), so the graph has ~n*perVertex undirected edges.
func RandomGraph(n, perVertex int, seed uint64) *Graph {
	return &Graph{g: graph.Random(n, perVertex, seed)}
}

// RMatGraph returns a power-law graph with 2^scale vertices from the R-MAT
// recursive generator (the paper's rMat and rMat2 inputs, depending on
// EdgeFactor).
func RMatGraph(scale int, opt RMatOptions) *Graph {
	return &Graph{g: graph.RMat(scale, opt)}
}

// Grid3DGraph returns a 3-dimensional torus with side^3 vertices and six
// neighbors per vertex (the paper's 3D-grid input).
func Grid3DGraph(side int, seed uint64) *Graph {
	return &Graph{g: graph.Grid3D(side, seed)}
}

// LineGraph returns a path on n vertices with randomly permuted labels (the
// paper's degenerate high-diameter input).
func LineGraph(n int, seed uint64) *Graph {
	return &Graph{g: graph.Line(n, seed)}
}

// SocialGraph returns a synthetic social-network graph with 2^scale
// vertices at com-Orkut's edge/vertex ratio (the paper's com-Orkut input is
// substituted by this generator; see DESIGN.md).
func SocialGraph(scale int, seed uint64) *Graph {
	return &Graph{g: graph.Social(scale, seed)}
}

// StarGraph returns a star with one degree-(n-1) center, a stress test for
// high-degree vertices.
func StarGraph(n int) *Graph {
	return &Graph{g: graph.Star(n)}
}

// Union returns the disjoint union of the given graphs, relabeling each
// part into its own contiguous id range.
func Union(gs ...*Graph) *Graph {
	parts := make([]*graph.Graph, len(gs))
	for i, g := range gs {
		parts[i] = g.g
	}
	return &Graph{g: graph.Components(parts...)}
}

// Procs reports the worker count a Procs option value resolves to.
func Procs(p int) int { return parallel.Procs(p) }
