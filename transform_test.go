package parconn

import (
	"testing"

	"parconn/internal/graph"
)

func TestPublicTransforms(t *testing.T) {
	g := Union(LineGraph(20, 1), Grid2DGraph(5, 2))
	labels, err := ConnectedComponents(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, orig := LargestComponent(g, labels, 0)
	if big.NumVertices() != 25 {
		t.Fatalf("largest component has %d vertices, want 25", big.NumVertices())
	}
	if len(orig) != 25 {
		t.Fatal("orig mapping length")
	}
	keep := make([]bool, g.NumVertices())
	for i := 0; i < 20; i++ {
		keep[i] = true
	}
	sub, _ := InducedSubgraph(g, keep, 0)
	if sub.NumVertices() != 20 || sub.NumEdges() != 19 {
		t.Fatalf("induced: n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
}

// TestCCOnExtendedFamilies runs every algorithm on the extra generator
// families (trees, torus, clique chains, preferential attachment).
func TestCCOnExtendedFamilies(t *testing.T) {
	for name, g := range map[string]*Graph{
		"grid2d":      Grid2DGraph(20, 1),
		"tree":        TreeGraph(1023, 2),
		"cliquechain": CliqueChainGraph(10, 8, 3),
		"prefattach":  PreferentialAttachmentGraph(1500, 3, 4),
		"two-trees":   Union(TreeGraph(255, 5), TreeGraph(127, 6)),
	} {
		ref := graph.RefCC(g.g)
		for _, alg := range Algorithms {
			labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 5})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, alg, err)
			}
			if !graph.SamePartition(ref, labels) {
				t.Fatalf("%s/%v: partition mismatch", name, alg)
			}
		}
	}
}

// TestEdgeParallelPublicOption exercises Options.EdgeParallel end to end.
func TestEdgeParallelPublicOption(t *testing.T) {
	g := StarGraph(5000)
	ref := graph.RefCC(g.g)
	for _, thr := range []int{0, 16, 1024} {
		labels, err := ConnectedComponents(g, Options{Algorithm: DecompArb, EdgeParallel: thr, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !graph.SamePartition(ref, labels) {
			t.Fatalf("threshold=%d: mismatch", thr)
		}
	}
}
