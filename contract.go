package parconn

import (
	"fmt"

	"parconn/internal/graph"
	"parconn/internal/hashtable"
	"parconn/internal/intsort"
	"parconn/internal/parallel"
)

// Contract returns the quotient graph of g under labels: every label class
// becomes one vertex, intra-class edges disappear, duplicate inter-class
// edges are merged, and self-loops are dropped. It also returns reps, the
// canonical original vertex of each quotient vertex (quotient vertex i
// corresponds to the class of reps[i]).
//
// This is the CONTRACT step of the paper's Algorithm 1 exposed as a public
// operation — useful for multilevel graph algorithms that alternate
// clustering and coarsening. labels need not be a connectivity labeling;
// any canonical labeling (labels[labels[v]] == labels[v], labels[v] in
// [0, n)) works, e.g. the output of Decompose.
func Contract(g *Graph, labels []int32, procs int) (*Graph, []int32, error) {
	n := g.NumVertices()
	if len(labels) != n {
		return nil, nil, fmt.Errorf("parconn: Contract labels length %d != n %d", len(labels), n)
	}
	procs = parallel.Procs(procs)
	for v, l := range labels {
		if l < 0 || int(l) >= n {
			return nil, nil, fmt.Errorf("parconn: Contract labels[%d]=%d out of range", v, l)
		}
		if labels[l] != l {
			return nil, nil, fmt.Errorf("parconn: Contract labels not canonical at %d", v)
		}
	}
	// Rank the canonical vertices.
	rank := make([]int32, n)
	parallel.For(procs, n, func(v int) {
		if labels[v] == int32(v) {
			rank[v] = 1
		}
	})
	k := int(parallel.ExScan(procs, rank))
	reps := make([]int32, k)
	parallel.For(procs, n, func(v int) {
		if labels[v] == int32(v) {
			reps[rank[v]] = int32(v)
		}
	})
	// Gather inter-class directed pairs in quotient space.
	kbits := uint(intsort.Bits(uint64(max(1, k-1))))
	var pairs []uint64
	for v := 0; v < n; v++ {
		src := rank[labels[v]]
		for _, w := range g.Neighbors(int32(v)) {
			tgt := rank[labels[w]]
			if src != tgt {
				pairs = append(pairs, uint64(uint32(src))<<kbits|uint64(uint32(tgt)))
			}
		}
	}
	// Dedup with the phase-concurrent hash table, as in the paper.
	set := hashtable.NewSet(procs, len(pairs))
	parallel.Blocks(procs, len(pairs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			set.Insert(pairs[i])
		}
	})
	pairs = set.Elements(procs)
	intsort.SortUint64(procs, pairs, int(2*kbits))
	// Re-pack to the builder's (u<<32 | v) convention.
	mask := uint64(1)<<kbits - 1
	parallel.For(procs, len(pairs), func(i int) {
		pairs[i] = (pairs[i]>>kbits)<<32 | (pairs[i] & mask)
	})
	q := graph.FromDirectedPairs(k, pairs, false, procs)
	return &Graph{g: q}, reps, nil
}
