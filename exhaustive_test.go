package parconn

import (
	"testing"

	"parconn/internal/graph"
)

// TestExhaustiveFiveVertexGraphs runs every algorithm on every undirected
// graph with 5 vertices (2^10 = 1024 edge subsets) and checks the partition
// against the oracle. Exhaustive coverage at this size catches boundary
// bugs (isolated vertices, leaf chains, odd component mixes) that random
// testing can miss.
func TestExhaustiveFiveVertexGraphs(t *testing.T) {
	const n = 5
	var pairs [][2]int32
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int32{u, v})
		}
	}
	if len(pairs) != 10 {
		t.Fatal("expected 10 vertex pairs")
	}
	// Under -short (the race-detector CI lane) sample every 17th mask: 17 is
	// coprime to 1024, so repeated short runs still sweep varied structure
	// while cutting the 1024 x len(Algorithms) product ~17x.
	stride := 1
	if testing.Short() {
		stride = 17
	}
	for mask := 0; mask < 1<<10; mask += stride {
		var edges []Edge
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				edges = append(edges, Edge{U: p[0], V: p[1]})
			}
		}
		g, err := NewGraph(n, edges, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ref := graph.RefCC(g.g)
		for _, alg := range Algorithms {
			labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: uint64(mask)})
			if err != nil {
				t.Fatalf("mask=%04x %v: %v", mask, alg, err)
			}
			if !graph.SamePartition(ref, labels) {
				t.Fatalf("mask=%04x %v: partition mismatch (labels=%v)", mask, alg, labels)
			}
			for v, l := range labels {
				if labels[l] != l {
					t.Fatalf("mask=%04x %v: non-canonical label at %d", mask, alg, v)
				}
			}
		}
	}
}

// TestExhaustiveTriangleWithMultiEdges covers multigraph handling: every
// multiplicity combination (0-2 copies) of the three triangle edges.
func TestExhaustiveTriangleWithMultiEdges(t *testing.T) {
	base := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}
	for c0 := 0; c0 <= 2; c0++ {
		for c1 := 0; c1 <= 2; c1++ {
			for c2 := 0; c2 <= 2; c2++ {
				var edges []Edge
				for i, c := range []int{c0, c1, c2} {
					for k := 0; k < c; k++ {
						edges = append(edges, base[i])
					}
				}
				g, err := NewGraph(3, edges, BuildOptions{KeepDuplicates: true})
				if err != nil {
					t.Fatal(err)
				}
				ref := graph.RefCC(g.g)
				for _, alg := range Algorithms {
					labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 9})
					if err != nil {
						t.Fatal(err)
					}
					if !graph.SamePartition(ref, labels) {
						t.Fatalf("mult=(%d,%d,%d) %v: mismatch", c0, c1, c2, alg)
					}
				}
			}
		}
	}
}
