package parconn

import (
	"testing"

	"parconn/internal/graph"
)

// TestLargeScale drives the full stack at a million-edge scale — closer to
// the benchmark regime than the unit tests — and cross-checks every
// algorithm family. Skipped under -short.
func TestLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test")
	}
	g := Union(
		RandomGraph(200_000, 5, 1),
		RMatGraph(16, RMatOptions{EdgeFactor: 5, Seed: 2, KeepDuplicates: true}),
		LineGraph(100_000, 3),
	)
	ref := graph.RefCC(g.g)
	for _, alg := range Algorithms {
		labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 4})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !graph.SamePartition(ref, labels) {
			t.Fatalf("%v: partition mismatch at scale", alg)
		}
	}
	if err := VerifyLabeling(g, ref); err != nil {
		t.Fatal(err)
	}
	// Spanner at scale.
	edges, err := Spanner(g, SpannerOptions{Beta: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewGraph(g.NumVertices(), edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.SamePartition(ref, graph.RefCC(sub.g)) {
		t.Fatal("spanner changed connectivity at scale")
	}
}
