package parconn

import (
	"testing"

	"parconn/internal/graph"
)

func TestContractByComponents(t *testing.T) {
	// Contracting by connectivity labels yields an edgeless graph with one
	// vertex per component.
	g := Union(LineGraph(30, 1), Grid3DGraph(3, 2), StarGraph(7))
	labels, err := ConnectedComponents(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, reps, err := Contract(g, labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 3 || q.NumEdges() != 0 {
		t.Fatalf("quotient: n=%d m=%d", q.NumVertices(), q.NumEdges())
	}
	if len(reps) != 3 {
		t.Fatal("reps length")
	}
}

func TestContractByDecomposition(t *testing.T) {
	// Contracting by a low-diameter decomposition yields a graph whose
	// components correspond 1:1 to the original's.
	g := Union(RandomGraph(2000, 5, 1), LineGraph(500, 2))
	d, err := Decompose(g, DecompOptions{Beta: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q, reps, err := Contract(g, d.Labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != d.NumPartitions {
		t.Fatalf("quotient n=%d partitions=%d", q.NumVertices(), d.NumPartitions)
	}
	// Quotient edge count = unique inter-partition pairs <= cut edges.
	if 2*q.NumEdges() > d.CutEdges {
		t.Fatalf("quotient directed edges %d exceed cut %d", 2*q.NumEdges(), d.CutEdges)
	}
	origLabels, err := ConnectedComponents(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qLabels, err := ConnectedComponents(q, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if NumComponents(qLabels) != NumComponents(origLabels) {
		t.Fatalf("quotient has %d components, original %d", NumComponents(qLabels), NumComponents(origLabels))
	}
	// reps of connected quotient vertices are connected originals.
	for qa := 0; qa < q.NumVertices(); qa++ {
		for _, qb := range q.Neighbors(int32(qa)) {
			if origLabels[reps[qa]] != origLabels[reps[qb]] {
				t.Fatal("quotient edge joins different original components")
			}
		}
	}
}

func TestContractRejectsBadLabels(t *testing.T) {
	g := LineGraph(4, 1)
	if _, _, err := Contract(g, []int32{0, 0}, 0); err == nil {
		t.Fatal("short labels accepted")
	}
	if _, _, err := Contract(g, []int32{0, 0, 9, 9}, 0); err == nil {
		t.Fatal("out-of-range labels accepted")
	}
	if _, _, err := Contract(g, []int32{1, 0, 2, 3}, 0); err == nil {
		t.Fatal("non-canonical labels accepted")
	}
}

func TestBFSLine(t *testing.T) {
	g, err := NewGraph(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4} {
		res, err := BFS(g, 0, procs)
		if err != nil {
			t.Fatal(err)
		}
		wantDist := []int32{0, 1, 2, 3, -1}
		for v, w := range wantDist {
			if res.Dist[v] != w {
				t.Fatalf("procs=%d: dist[%d]=%d want %d", procs, v, res.Dist[v], w)
			}
		}
		if res.Visited != 4 || res.Rounds != 4 {
			t.Fatalf("procs=%d: visited=%d rounds=%d", procs, res.Visited, res.Rounds)
		}
		if res.Parent[0] != 0 || res.Parent[4] != -1 {
			t.Fatal("parents wrong at endpoints")
		}
		// Parent pointers walk back to the source with decreasing distance.
		for v := int32(1); v <= 3; v++ {
			p := res.Parent[v]
			if res.Dist[p] != res.Dist[v]-1 {
				t.Fatalf("parent of %d has distance %d", v, res.Dist[p])
			}
		}
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g := RMatGraph(10, RMatOptions{EdgeFactor: 5, Seed: 6})
	want := graph.BFSDistances(g.g, 17)
	for _, procs := range []int{1, 4} {
		res, err := BFS(g, 17, procs)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if res.Dist[v] != want[v] {
				t.Fatalf("procs=%d: dist[%d]=%d want %d", procs, v, res.Dist[v], want[v])
			}
		}
	}
}

func TestBFSBadSource(t *testing.T) {
	g := LineGraph(3, 1)
	if _, err := BFS(g, -1, 0); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := BFS(g, 3, 0); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
