package parconn_test

import (
	"fmt"

	"parconn"
)

func ExampleConnectedComponents() {
	// Two triangles and an isolated vertex.
	edges := []parconn.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	}
	g, err := parconn.NewGraph(7, edges, parconn.BuildOptions{})
	if err != nil {
		panic(err)
	}
	labels, err := parconn.ConnectedComponents(g, parconn.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(parconn.NumComponents(labels))
	fmt.Println(parconn.SameComponent(labels, 0, 2))
	fmt.Println(parconn.SameComponent(labels, 0, 3))
	// Output:
	// 3
	// true
	// false
}

func ExampleConnectedComponents_algorithms() {
	g := parconn.LineGraph(1000, 42)
	for _, alg := range []parconn.Algorithm{parconn.DecompArbHybrid, parconn.SerialSF, parconn.ShiloachVishkin} {
		labels, err := parconn.ConnectedComponents(g, parconn.Options{Algorithm: alg, Seed: 1})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d component(s)\n", alg, parconn.NumComponents(labels))
	}
	// Output:
	// decomp-arb-hybrid-CC: 1 component(s)
	// serial-SF: 1 component(s)
	// sv-CC: 1 component(s)
}

func ExampleDecompose() {
	g := parconn.Grid3DGraph(20, 7)
	d, err := parconn.Decompose(g, parconn.DecompOptions{Beta: 0.2, Seed: 7})
	if err != nil {
		panic(err)
	}
	// The cut is at most 2*beta*m in expectation; partitions have radius
	// O(log n / beta), bounded by the round count.
	fmt.Println(d.NumPartitions > 1)
	fmt.Println(float64(d.CutEdges) < 2*0.2*2*float64(g.NumEdges())*1.5)
	// Output:
	// true
	// true
}

func ExampleCompactLabels() {
	labels := []int32{7, 7, 3, 7, 3}
	compact, k := parconn.CompactLabels(labels)
	fmt.Println(compact, k)
	// Output:
	// [0 0 1 0 1] 2
}

func ExampleBFS() {
	g, _ := parconn.NewGraph(4, []parconn.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, parconn.BuildOptions{})
	res, _ := parconn.BFS(g, 0, 0)
	fmt.Println(res.Dist)
	fmt.Println(res.Visited)
	// Output:
	// [0 1 2 -1]
	// 3
}

func ExampleDecompose_contract() {
	// Cluster with a low-diameter decomposition, then coarsen the graph —
	// one level of the paper's Algorithm 1, exposed as building blocks.
	g := parconn.Grid3DGraph(8, 3)
	d, _ := parconn.Decompose(g, parconn.DecompOptions{Beta: 0.2, Seed: 3})
	q, reps, _ := parconn.Contract(g, d.Labels, 0)
	fmt.Println(q.NumVertices() == d.NumPartitions)
	fmt.Println(len(reps) == q.NumVertices())
	fmt.Println(q.NumEdges() <= g.NumEdges())
	// Output:
	// true
	// true
	// true
}

func ExampleSpanner() {
	g := parconn.Grid3DGraph(10, 1)
	edges, _ := parconn.Spanner(g, parconn.SpannerOptions{Beta: 0.1, Seed: 2})
	// The spanner keeps connectivity with far fewer edges.
	sub, _ := parconn.NewGraph(g.NumVertices(), edges, parconn.BuildOptions{})
	a, _ := parconn.ConnectedComponents(g, parconn.Options{})
	b, _ := parconn.ConnectedComponents(sub, parconn.Options{})
	fmt.Println(parconn.NumComponents(a) == parconn.NumComponents(b))
	fmt.Println(int64(len(edges)) < g.NumEdges())
	// Output:
	// true
	// true
}

func ExampleIncremental() {
	// Seed the incremental layer from a from-scratch labeling, then stream
	// in new edges; snapshots are always consistent with whole batches.
	g, _ := parconn.NewGraph(6, []parconn.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, parconn.BuildOptions{})
	labels, _ := parconn.ConnectedComponents(g, parconn.Options{})
	inc, _ := parconn.NewIncrementalFromLabels(labels)
	fmt.Println(inc.Components(), inc.Same(0, 2))

	merged, _ := inc.Insert([]parconn.Edge{{U: 1, V: 2}, {U: 4, V: 5}})
	snap := inc.Snapshot()
	fmt.Println(merged, snap.Epoch, snap.Components)
	fmt.Println(inc.Same(0, 3))
	// Output:
	// 4 false
	// 2 1 2
	// true
}
