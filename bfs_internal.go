package parconn

import "sync/atomic"

// atomicCursor bundles the CAS claim of an unvisited vertex with the next
// write slot of the shared frontier buffer.
type atomicCursor struct {
	n atomic.Int64
}

// claim atomically marks w visited at distance d; it reports whether this
// caller won the claim.
func (c *atomicCursor) claim(dist []int32, w, d int32) bool {
	return atomic.LoadInt32(&dist[w]) == -1 &&
		atomic.CompareAndSwapInt32(&dist[w], -1, d)
}

// next reserves the next frontier slot.
func (c *atomicCursor) next() int64 { return c.n.Add(1) - 1 }

// len returns the number of reserved slots.
func (c *atomicCursor) len() int { return int(c.n.Load()) }
