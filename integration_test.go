package parconn

import (
	"math"
	"testing"
	"testing/quick"

	"parconn/internal/graph"
	"parconn/internal/prand"
)

// integrationGraphs is the cross-algorithm test zoo: every input family
// from the paper plus degenerate shapes.
func integrationGraphs() map[string]*Graph {
	return map[string]*Graph{
		"random":     RandomGraph(2000, 5, 1),
		"rmat":       RMatGraph(10, RMatOptions{EdgeFactor: 5, Seed: 2}),
		"rmat2":      RMatGraph(7, RMatOptions{EdgeFactor: 60, Seed: 3}),
		"grid3d":     Grid3DGraph(9, 4),
		"line":       LineGraph(2000, 5),
		"social":     SocialGraph(9, 6),
		"star":       StarGraph(400),
		"empty":      mustGraph(0, nil),
		"single":     mustGraph(1, nil),
		"isolated":   mustGraph(30, nil),
		"one-edge":   mustGraph(2, []Edge{{U: 0, V: 1}}),
		"triangle":   mustGraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}),
		"many-comps": Union(LineGraph(100, 7), Grid3DGraph(4, 8), StarGraph(30), mustGraph(15, nil)),
	}
}

func mustGraph(n int, edges []Edge) *Graph {
	g, err := NewGraph(n, edges, BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

func reference(g *Graph) []int32 { return graph.RefCC(g.g) }

// TestAllAlgorithmsAgree is the central integration test: every algorithm
// must produce the same partition as the sequential BFS oracle on every
// graph family.
func TestAllAlgorithmsAgree(t *testing.T) {
	for gname, g := range integrationGraphs() {
		ref := reference(g)
		for _, alg := range Algorithms {
			labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 11})
			if err != nil {
				t.Fatalf("%s/%v: %v", gname, alg, err)
			}
			if !graph.SamePartition(ref, labels) {
				t.Fatalf("%s/%v: partition mismatch (%d comps, want %d)",
					gname, alg, NumComponents(labels), graph.NumComponentsOf(ref))
			}
			for v, l := range labels {
				if labels[l] != l {
					t.Fatalf("%s/%v: label of %d not canonical", gname, alg, v)
				}
			}
		}
	}
}

// TestQuickRandomEdgeLists drives every algorithm with arbitrary edge lists
// from testing/quick and checks them against the oracle.
func TestQuickRandomEdgeLists(t *testing.T) {
	f := func(raw []uint32, nSeed uint8) bool {
		n := int(nSeed%60) + 1
		edges := make([]Edge, 0, len(raw))
		for _, r := range raw {
			u := int32(r % uint32(n))
			v := int32((r / uint32(n)) % uint32(n))
			edges = append(edges, Edge{U: u, V: v})
		}
		// Self-loops are intentionally included: NewGraph must drop them.
		g, err := NewGraph(n, edges, BuildOptions{KeepDuplicates: true})
		if err != nil {
			return false
		}
		ref := reference(g)
		for _, alg := range Algorithms {
			labels, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: uint64(nSeed)})
			if err != nil {
				return false
			}
			if !graph.SamePartition(ref, labels) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecompositionInvariants property-tests the public Decompose on
// random graphs: full coverage, center-canonical labels, partitions
// connected.
func TestQuickDecompositionInvariants(t *testing.T) {
	f := func(seed uint16, betaRaw uint8) bool {
		src := prand.New(uint64(seed))
		n := src.Intn(300) + 2
		deg := src.Intn(4) + 1
		g := RandomGraph(n, deg, uint64(seed))
		beta := 0.05 + float64(betaRaw%90)/100.0
		d, err := Decompose(g, DecompOptions{Beta: beta, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		if len(d.Labels) != n {
			return false
		}
		for _, l := range d.Labels {
			if l < 0 || int(l) >= n || d.Labels[l] != l {
				return false
			}
		}
		// Partitions refine components: same partition implies same
		// component in the reference labeling.
		ref := reference(g)
		for v, l := range d.Labels {
			if ref[v] != ref[l] {
				return false
			}
		}
		// Cut count matches a direct recount on the original graph.
		var cut int64
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(int32(v)) {
				if d.Labels[v] != d.Labels[w] {
					cut++
				}
			}
		}
		return cut == d.CutEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestLevelsShrinkGeometrically checks the paper's core complexity claim at
// the system level: per-level edge counts decay by at least a constant
// factor on average (Theorem 1's geometric series).
func TestLevelsShrinkGeometrically(t *testing.T) {
	for _, gname := range []string{"random", "rmat", "grid3d", "line"} {
		g := integrationGraphs()[gname]
		var levels []LevelStat
		if _, err := ConnectedComponents(g, Options{Algorithm: DecompArbHybrid, Beta: 0.2, Seed: 3, Levels: &levels}); err != nil {
			t.Fatal(err)
		}
		if len(levels) == 0 {
			t.Fatalf("%s: no levels", gname)
		}
		if len(levels) == 1 {
			continue // single decomposition swallowed the graph
		}
		// Average shrink factor across levels must beat 0.75 (the 2*beta
		// expectation is 0.4; duplicates usually push it far lower).
		first := float64(levels[0].EdgesIn)
		last := float64(levels[len(levels)-1].EdgesIn)
		steps := float64(len(levels) - 1)
		if last > 0 && first > 0 {
			rate := math.Pow(last/first, 1/steps)
			if rate > 0.75 {
				t.Fatalf("%s: average shrink rate %.3f too slow", gname, rate)
			}
		}
	}
}
