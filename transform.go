package parconn

import "parconn/internal/graph"

// InducedSubgraph returns the subgraph induced by the vertices with
// keep[v] == true and the mapping from new vertex ids to original ids.
// keep must have length NumVertices.
func InducedSubgraph(g *Graph, keep []bool, procs int) (*Graph, []int32) {
	sub, orig := graph.InducedSubgraph(g.g, keep, procs)
	return &Graph{g: sub}, orig
}

// LargestComponent extracts the largest connected component under labels
// (as returned by ConnectedComponents) and the new-to-original vertex
// mapping.
func LargestComponent(g *Graph, labels []int32, procs int) (*Graph, []int32) {
	sub, orig := graph.LargestComponent(g.g, labels, procs)
	return &Graph{g: sub}, orig
}

// Grid2DGraph returns a 2-dimensional torus with side^2 vertices.
func Grid2DGraph(side int, seed uint64) *Graph {
	return &Graph{g: graph.Grid2D(side, seed)}
}

// TreeGraph returns a complete binary tree on n vertices with permuted
// labels.
func TreeGraph(n int, seed uint64) *Graph {
	return &Graph{g: graph.CompleteBinaryTree(n, seed)}
}

// CliqueChainGraph returns numCliques cliques of cliqueSize vertices, each
// joined to the next by one bridge edge.
func CliqueChainGraph(numCliques, cliqueSize int, seed uint64) *Graph {
	return &Graph{g: graph.CliqueChain(numCliques, cliqueSize, seed)}
}

// PreferentialAttachmentGraph returns a Barabási–Albert-style connected
// power-law graph with ~k edges per arriving vertex.
func PreferentialAttachmentGraph(n, k int, seed uint64) *Graph {
	return &Graph{g: graph.PreferentialAttachment(n, k, seed)}
}
