package parconn

import (
	"fmt"

	"parconn/internal/decomp"
	"parconn/internal/hashtable"
	"parconn/internal/parallel"
)

// SpannerOptions configures Spanner.
type SpannerOptions struct {
	// Beta trades size for stretch: the spanner has at most
	// n - 1 + 2*beta*m expected edges and stretch O(log n / beta). Zero
	// means 0.1.
	Beta float64
	// Seed makes the construction reproducible.
	Seed uint64
	// Procs bounds parallelism; <= 0 means all cores.
	Procs int
}

// Spanner builds an O(log n / beta)-stretch spanner of g using one
// low-diameter decomposition — the classic application of Miller et al.
// decompositions the paper's introduction cites (low-stretch subgraphs for
// SDD solvers, metric embeddings):
//
//   - the BFS trees the decomposition grows inside each cluster (the claim
//     edges) connect every vertex to its center along a shortest path, and
//   - one representative original edge is kept for every pair of adjacent
//     clusters.
//
// Any edge (u,v) of g is then stretched by at most 2·radius + 1 inside the
// spanner (up u's tree, across the representative edge, down v's tree),
// and the radius is O(log n / beta) w.h.p., so the result is an
// O(log n / beta)-spanner with n - 1 + 2*beta*m expected edges. The
// returned edges are a subset of g's edges.
func Spanner(g *Graph, opt SpannerOptions) ([]Edge, error) {
	if opt.Beta == 0 {
		opt.Beta = 0.1
	}
	procs := parallel.Procs(opt.Procs)
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	w := decomp.NewWGraph(g.g, procs)
	res, err := decomp.Decompose(w, decomp.Arb, decomp.Options{
		Beta: opt.Beta, Seed: opt.Seed, Procs: procs, WantParents: true,
	})
	if err != nil {
		return nil, err
	}
	clusters := res.Labels

	// Tree edges: every non-center vertex contributes its claim edge.
	edges := make([]Edge, 0, n)
	for v := 0; v < n; v++ {
		if p := res.Parents[v]; p != int32(v) {
			edges = append(edges, Edge{U: p, V: int32(v)})
		}
	}

	// Representative inter-cluster edges: the working graph's surviving
	// entries are (source vertex v, target cluster D); pick one per
	// unordered cluster pair via the hash set, then recover a concrete
	// original edge by rescanning v's adjacency for a neighbor in D.
	seen := hashtable.NewSet(procs, int(w.LiveEdges(procs))+1)
	for v := 0; v < n; v++ {
		cv := clusters[v]
		base := w.Offs[v]
		for i := int64(0); i < int64(w.Deg[v]); i++ {
			d := w.Adj[base+i]
			a, b := cv, d
			if a > b {
				a, b = b, a
			}
			if !seen.Insert(uint64(uint32(a))<<32 | uint64(uint32(b))) {
				continue // this cluster pair already has a representative
			}
			found := false
			for _, u := range g.Neighbors(int32(v)) {
				if clusters[u] == d {
					edges = append(edges, Edge{U: int32(v), V: u})
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("parconn: internal error: no original edge behind cluster pair (%d,%d)", a, b)
			}
		}
	}
	return edges, nil
}
