// Command parconnvet runs this repository's concurrency-safety static
// analyses over the module: mixedatomic, sharedwrite, norand,
// conversioncheck, and obsrecorder (see internal/analysis and DESIGN.md
// §"Correctness tooling"). It is stdlib-only and wired into `make vet` /
// `make check`.
//
// Usage:
//
//	parconnvet [-v] [packages]
//
// With no arguments (or "./..."), every package of the enclosing module is
// analyzed. Arguments select packages by import path or directory, with a
// trailing /... matching subtrees. Findings print one per line as
//
//	file:line:col: [check] message
//
// and the exit status is 1 when any unsuppressed finding exists, 2 on load
// errors, 0 otherwise. Intentional idioms are suppressed in source with
// `//parconn:allow <check> <reason>` comments; -v lists what was
// suppressed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parconn/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "also list suppressed findings and per-package stats")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: parconnvet [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(flag.Args(), *verbose))
}

func run(args []string, verbose bool) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "parconnvet:", err)
		return 2
	}
	passes, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parconnvet:", err)
		return 2
	}

	var active, suppressed []analysis.Finding
	analyzed := 0
	for _, pass := range passes {
		if !selected(pass.Path, args) {
			continue
		}
		analyzed++
		findings := analysis.CheckAllows(pass)
		for _, a := range analysis.All() {
			findings = append(findings, a.Run(pass)...)
		}
		act, sup := analysis.Apply(pass, findings)
		active = append(active, act...)
		suppressed = append(suppressed, sup...)
	}
	if analyzed == 0 {
		fmt.Fprintf(os.Stderr, "parconnvet: no packages match %v\n", args)
		return 2
	}

	analysis.SortFindings(active)
	for _, f := range active {
		fmt.Println(relativize(root, f))
	}
	if verbose {
		analysis.SortFindings(suppressed)
		for _, f := range suppressed {
			fmt.Printf("suppressed: %s\n", relativize(root, f))
		}
		fmt.Fprintf(os.Stderr, "parconnvet: %d packages, %d findings, %d suppressed\n",
			analyzed, len(active), len(suppressed))
	}
	if len(active) > 0 {
		return 1
	}
	return 0
}

// selected reports whether the package path matches any of the argument
// patterns. No arguments and "./..." both mean "everything".
func selected(path string, args []string) bool {
	if len(args) == 0 {
		return true
	}
	for _, arg := range args {
		pat := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == sub || strings.HasSuffix(path, "/"+sub) ||
				strings.Contains(path+"/", "/"+sub+"/") {
				return true
			}
			continue
		}
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// relativize shortens finding paths relative to the module root for
// stable, readable output.
func relativize(root string, f analysis.Finding) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
