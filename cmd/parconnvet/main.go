// Command parconnvet runs this repository's concurrency-safety static
// analyses over the module: the per-file checks (mixedatomic, sharedwrite,
// norand, conversioncheck, obsrecorder) and the interprocedural checks
// built on the module-wide call graph (hotalloc, blockingcall,
// scratchlifetime) — see internal/analysis and DESIGN.md §"Correctness
// tooling" / §"Interprocedural analysis". It is stdlib-only and wired into
// `make vet` / `make check`.
//
// Usage:
//
//	parconnvet [-v] [-json file] [-graph file] [packages]
//
// With no arguments (or "./..."), every package of the enclosing module is
// analyzed. Arguments select packages by import path or directory, with a
// trailing /... matching subtrees. Findings print one per line as
//
//	file:line:col: [check] message
//
// and the exit status is 1 when any unsuppressed finding exists, 2 on load
// errors, 0 otherwise. Intentional idioms are suppressed in source with
// `//parconn:allow <check> <reason>` comments; a suppression that matches
// no finding is itself an active finding, so stale allows fail the run.
// -v lists what was suppressed; -json writes a machine-readable report
// (active + suppressed, module-relative paths; "-" for stdout); -graph
// dumps the inferred hot-path/parallel-context sets with per-function
// provenance ("-" for stdout).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"parconn/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "also list suppressed findings and per-package stats")
	jsonOut := flag.String("json", "", "write a JSON findings report to `file` (\"-\" for stdout)")
	graphOut := flag.String("graph", "", "dump the inferred context sets to `file` (\"-\" for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: parconnvet [-v] [-json file] [-graph file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(flag.Args(), *verbose, *jsonOut, *graphOut))
}

func run(args []string, verbose bool, jsonOut, graphOut string) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "parconnvet:", err)
		return 2
	}
	passes, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parconnvet:", err)
		return 2
	}

	var active, suppressed []analysis.Finding
	var pkgs []string
	analyzed := 0
	for _, pass := range passes {
		if !selected(pass.Path, args) {
			continue
		}
		analyzed++
		pkgs = append(pkgs, pass.Path)
		findings := analysis.CheckAllows(pass)
		for _, a := range analysis.All() {
			findings = append(findings, a.Run(pass)...)
		}
		act, sup := analysis.Apply(pass, findings)
		// A well-formed allow that suppressed nothing is dead weight that
		// reads as documentation of a hazard that does not exist: hard
		// failure, same as any other active finding.
		act = append(act, analysis.UnusedAllows(pass, sup)...)
		active = append(active, act...)
		suppressed = append(suppressed, sup...)
	}
	if analyzed == 0 {
		fmt.Fprintf(os.Stderr, "parconnvet: no packages match %v\n", args)
		return 2
	}

	analysis.SortFindings(active)
	analysis.SortFindings(suppressed)
	for _, f := range active {
		fmt.Println(relativize(root, f))
	}
	if verbose {
		for _, f := range suppressed {
			fmt.Printf("suppressed: %s\n", relativize(root, f))
		}
		fmt.Fprintf(os.Stderr, "parconnvet: %d packages, %d findings, %d suppressed\n",
			analyzed, len(active), len(suppressed))
	}
	if jsonOut != "" {
		report := analysis.NewReport(root, modulePath(root), pkgs, active, suppressed)
		if err := withOutput(jsonOut, report.Write); err != nil {
			fmt.Fprintln(os.Stderr, "parconnvet:", err)
			return 2
		}
	}
	if graphOut != "" {
		if err := withOutput(graphOut, func(w io.Writer) error {
			return passes[0].Mod.WriteGraph(w)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "parconnvet:", err)
			return 2
		}
	}
	if len(active) > 0 {
		return 1
	}
	return 0
}

// withOutput runs emit against the named file, with "-" meaning stdout.
func withOutput(name string, emit func(io.Writer) error) error {
	if name == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// modulePath reads the module line of root's go.mod; report labeling only,
// so a malformed file degrades to an empty name rather than an error.
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// selected reports whether the package path matches any of the argument
// patterns. No arguments and "./..." both mean "everything".
func selected(path string, args []string) bool {
	if len(args) == 0 {
		return true
	}
	for _, arg := range args {
		pat := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == sub || strings.HasSuffix(path, "/"+sub) ||
				strings.Contains(path+"/", "/"+sub+"/") {
				return true
			}
			continue
		}
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// relativize shortens finding paths relative to the module root for
// stable, readable output.
func relativize(root string, f analysis.Finding) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
