package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parconn/internal/analysis"
)

// TestRepoIsClean runs the full analysis over the module, as `make vet`
// does, and demands a clean bill: any new finding must either be fixed or
// carry a //parconn:allow comment with a justification. Unused allows count
// as findings, so stale suppressions fail here too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	if code := run(nil, false, "", ""); code != 0 {
		t.Fatalf("parconnvet over the module exited %d, want 0 (run `go run ./cmd/parconnvet -v ./...` for details)", code)
	}
}

// TestJSONReport exercises the -json flag end to end: the report written
// for the module must read back identical and carry relative paths only.
func TestJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	out := filepath.Join(t.TempDir(), "findings.json")
	if code := run(nil, false, out, ""); code != 0 {
		t.Fatalf("run exited %d, want 0", code)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("opening report: %v", err)
	}
	defer f.Close()
	rep, err := analysis.ReadReport(f)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if rep.Module != "parconn" {
		t.Errorf("Module = %q, want parconn", rep.Module)
	}
	if len(rep.Packages) == 0 {
		t.Error("report lists no packages")
	}
	if len(rep.Active) != 0 {
		t.Errorf("report has %d active findings, want 0", len(rep.Active))
	}
	if len(rep.Suppressed) == 0 {
		t.Error("report lists no suppressed findings; the annotated repo should have many")
	}
	for _, f := range rep.Suppressed {
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q is absolute; report paths must be module-relative", f.File)
		}
	}
}

// TestGraphDump checks the -graph flag writes a non-empty context dump
// including the hot-path root.
func TestGraphDump(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	out := filepath.Join(t.TempDir(), "graph.txt")
	if code := run(nil, false, "", out); code != 0 {
		t.Fatalf("run exited %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading graph dump: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("graph dump is empty")
	}
	if want := "ccLevel"; !strings.Contains(string(data), want) {
		t.Errorf("graph dump does not mention %q, the marked hot-path root", want)
	}
}

func TestSelected(t *testing.T) {
	cases := []struct {
		path string
		args []string
		want bool
	}{
		{"parconn/internal/decomp", nil, true},
		{"parconn/internal/decomp", []string{"./..."}, true},
		{"parconn/internal/decomp", []string{"./internal/decomp"}, true},
		{"parconn/internal/decomp", []string{"internal/decomp"}, true},
		{"parconn/internal/decomp", []string{"decomp"}, true},
		{"parconn/internal/decomp", []string{"./internal/..."}, true},
		{"parconn/internal/decomp", []string{"graph"}, false},
		{"parconn", []string{"./..."}, true},
		{"parconn", []string{"internal/decomp"}, false},
		{"parconn/cmd/parconnvet", []string{"cmd/..."}, true},
	}
	for _, c := range cases {
		if got := selected(c.path, c.args); got != c.want {
			t.Errorf("selected(%q, %v) = %v, want %v", c.path, c.args, got, c.want)
		}
	}
}
