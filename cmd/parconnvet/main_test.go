package main

import "testing"

// TestRepoIsClean runs the full analysis over the module, as `make vet`
// does, and demands a clean bill: any new finding must either be fixed or
// carry a //parconn:allow comment with a justification.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	if code := run(nil, false); code != 0 {
		t.Fatalf("parconnvet over the module exited %d, want 0 (run `go run ./cmd/parconnvet -v ./...` for details)", code)
	}
}

func TestSelected(t *testing.T) {
	cases := []struct {
		path string
		args []string
		want bool
	}{
		{"parconn/internal/decomp", nil, true},
		{"parconn/internal/decomp", []string{"./..."}, true},
		{"parconn/internal/decomp", []string{"./internal/decomp"}, true},
		{"parconn/internal/decomp", []string{"internal/decomp"}, true},
		{"parconn/internal/decomp", []string{"decomp"}, true},
		{"parconn/internal/decomp", []string{"./internal/..."}, true},
		{"parconn/internal/decomp", []string{"graph"}, false},
		{"parconn", []string{"./..."}, true},
		{"parconn", []string{"internal/decomp"}, false},
		{"parconn/cmd/parconnvet", []string{"cmd/..."}, true},
	}
	for _, c := range cases {
		if got := selected(c.path, c.args); got != c.want {
			t.Errorf("selected(%q, %v) = %v, want %v", c.path, c.args, got, c.want)
		}
	}
}
