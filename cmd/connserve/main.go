// Command connserve is connectivity-as-a-service: it loads a graph once,
// labels it once with any of the library's algorithms, and then serves
// component queries over HTTP/JSON until terminated.
//
// The server binds immediately so orchestrators can watch /v1/healthz; the
// endpoint answers 503 while the graph is loading and labeling, and flips
// to 200 the moment the labeling is published. All query endpoints read
// one immutable answer array lock-free, so concurrency costs nothing
// beyond the HTTP stack itself.
//
// Endpoints: GET /v1/component?v=, GET /v1/same?u=&v=, POST /v1/batch,
// POST /v1/insert (batched edge insertion into the incremental layer,
// unless -incremental=false), GET /v1/stats, GET /v1/healthz (see
// internal/serve), GET /metrics (Prometheus text: request counters, error
// taxonomy, rolling latency quantiles, runtime series), plus the obshttp
// debug surface (/debug/parconn, /debug/vars, /debug/pprof/) fed by the
// labeling run.
//
// Every /v1 request carries a Parconn-Trace-Id response header (client
// value echoed when supplied); one request in -span-sample is recorded as
// a span in the flight recorder and, with -request-trace FILE, appended as
// JSONL for offline analysis.
//
// Usage:
//
//	connserve -addr :8080 -gen rmat -scale 20
//	connserve -addr :8080 -in graph.adj -algorithm parallel-SF-PRM
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// requests before exiting.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parconn"
	"parconn/internal/obs"
	"parconn/internal/obs/obshttp"
	"parconn/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it serves until ctx is cancelled (the
// signal path in main), then drains and returns the exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("connserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "HTTP listen address")
		inPath   = fs.String("in", "", "input graph file (AdjacencyGraph, binary, or edge-list format)")
		gen      = fs.String("gen", "", "generator: random, rmat, grid3d, line, social, star")
		n        = fs.Int("n", 1_000_000, "vertex count for random/line/star generators")
		scale    = fs.Int("scale", 18, "log2 vertex count for rmat/social generators")
		side     = fs.Int("side", 100, "side length for grid3d")
		degree   = fs.Int("degree", 5, "edges per vertex for random; edge factor for rmat")
		seed     = fs.Uint64("seed", 42, "random seed (generators and algorithm)")
		algName  = fs.String("algorithm", "decomp-arb-hybrid-CC", "algorithm (see parconn.Algorithms)")
		beta     = fs.Float64("beta", 0.2, "decomposition beta")
		procs    = fs.Int("procs", 0, "max workers for the labeling run (0 = all cores)")
		maxBatch = fs.Int("max-batch", serve.DefaultMaxBatch, "maximum pairs per /v1/batch or /v1/insert request")
		topK     = fs.Int("top", 5, "largest components reported by /v1/stats")
		incr     = fs.Bool("incremental", true, "enable /v1/insert batched edge insertion over the labeling")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		sample   = fs.Int("span-sample", 1024, "head-sample one request span per N requests (0 disables spans)")
		traceOut = fs.String("request-trace", "", "also append sampled request spans to this JSONL file (default: flight recorder only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Fail fast on a bad spec before binding the port: a server that will
	// never become ready should not look half-started to an orchestrator.
	if *inPath == "" && *gen == "" {
		fmt.Fprintln(stderr, "connserve: need -in FILE or -gen NAME")
		return 2
	}
	alg, err := parconn.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintf(stderr, "%v\navailable:", err)
		for _, a := range parconn.Algorithms {
			fmt.Fprintf(stderr, " %s", a)
		}
		fmt.Fprintln(stderr)
		return 2
	}

	// Sampled request spans always land in the flight recorder (visible at
	// /debug/parconn); -request-trace additionally appends them to a JSONL
	// file for offline tooling.
	state := obshttp.NewState("cmd/connserve", 0)
	spanSinks := []obs.SpanRecorder{state.Flight}
	var traceFile *os.File
	var traceWriter *obs.JSONLWriter
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		traceWriter = obs.NewJSONLWriter(traceFile)
		spanSinks = append(spanSinks, traceWriter)
	}
	observer := serve.NewObserver(serve.ObserverConfig{
		Metrics:     state.Metrics,
		Spans:       obs.MultiSpan(spanSinks...),
		SampleEvery: *sample,
	})
	sv := serve.New(serve.Config{MaxBatch: *maxBatch, TopK: *topK, Observer: observer, Metrics: state.Metrics})
	mux := http.NewServeMux()
	mux.Handle("/v1/", sv.Handler())
	mux.Handle("/", state.Handler())
	srv, err := obshttp.ServeHandler(*addr, mux)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "connserve: listening on http://%s (healthz 503 until ready)\n", srv.Addr())

	loadStart := time.Now()
	g, source, err := loadGraph(*inPath, *gen, *n, *scale, *side, *degree, *seed)
	if err != nil {
		srv.Close()
		fmt.Fprintln(stderr, err)
		return 2
	}
	loadTime := time.Since(loadStart)
	fmt.Fprintf(stdout, "graph: %d vertices, %d undirected edges from %s in %v\n",
		g.NumVertices(), g.NumEdges(), source, loadTime.Round(time.Millisecond))

	labelStart := time.Now()
	labels, err := parconn.ConnectedComponents(g, parconn.Options{
		Algorithm: alg, Beta: *beta, Seed: *seed, Procs: *procs, Recorder: state.Recorder(),
	})
	if err != nil {
		srv.Close()
		fmt.Fprintln(stderr, err)
		return 1
	}
	labelTime := time.Since(labelStart)

	sv.Publish(serve.Labeling{
		Labels:    labels,
		Edges:     int64(g.NumEdges()),
		Algorithm: fmt.Sprint(alg),
		Source:    source,
		LoadTime:  loadTime,
		LabelTime: labelTime,
	})
	if *incr {
		// The answer array seeds the incremental layer: one union-find root
		// per component, so /v1/insert starts from the published labeling.
		inc, err := parconn.NewIncrementalFromLabels(labels)
		if err != nil {
			srv.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		sv.EnableIncremental(inc)
	}
	count, _ := parconn.TopComponents(labels, 1)
	fmt.Fprintf(stdout, "ready: %d components labeled with %s in %v; serving /v1/* (incremental=%v)\n",
		count, alg, labelTime.Round(time.Millisecond), *incr)

	<-ctx.Done()
	fmt.Fprintf(stdout, "connserve: shutting down, draining in-flight requests (budget %v)\n", *drain)
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if traceWriter != nil {
		// Flush after the drain so the file carries every sampled span.
		if err := traceWriter.Flush(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	return 0
}

// loadGraph mirrors cmd/connect's loader and additionally reports a
// human-readable source spec for /v1/stats.
func loadGraph(inPath, gen string, n, scale, side, degree int, seed uint64) (*parconn.Graph, string, error) {
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		br := bufio.NewReaderSize(f, 1<<20)
		var g *parconn.Graph
		if head, err := br.Peek(14); err == nil && string(head[:8]) == "PCONNGR1" {
			g, err = parconn.ReadBinaryGraph(br)
			return g, inPath, err
		} else if err == nil && string(head) == "AdjacencyGraph" {
			g, err = parconn.ReadGraph(br)
			return g, inPath, err
		}
		g, err = parconn.ReadEdgeList(br)
		return g, inPath, err
	}
	switch gen {
	case "random":
		return parconn.RandomGraph(n, degree, seed), fmt.Sprintf("gen:random(n=%d,degree=%d)", n, degree), nil
	case "rmat":
		return parconn.RMatGraph(scale, parconn.RMatOptions{EdgeFactor: degree, Seed: seed}),
			fmt.Sprintf("gen:rmat(scale=%d,ef=%d)", scale, degree), nil
	case "grid3d":
		return parconn.Grid3DGraph(side, seed), fmt.Sprintf("gen:grid3d(side=%d)", side), nil
	case "line":
		return parconn.LineGraph(n, seed), fmt.Sprintf("gen:line(n=%d)", n), nil
	case "social":
		return parconn.SocialGraph(scale, seed), fmt.Sprintf("gen:social(scale=%d)", scale), nil
	case "star":
		return parconn.StarGraph(n), fmt.Sprintf("gen:star(n=%d)", n), nil
	default:
		return nil, "", fmt.Errorf("connserve: unknown generator %q", gen)
	}
}
