package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"parconn/internal/obs"
	"parconn/internal/obs/metrics"
)

// syncBuffer lets the test read run's stdout while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond until it returns true or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServeLifecycle boots the server on a random port, waits for
// readiness, exercises the query and debug endpoints, then cancels the
// context (the SIGINT/SIGTERM path) and checks the drain: exit code 0 and
// the port closed afterwards.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	errb := &syncBuffer{}
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-gen", "random", "-n", "2000", "-top", "3"}, out, errb)
	}()

	var base string
	waitFor(t, 10*time.Second, "listen announcement", func() bool {
		s := out.String()
		i := strings.Index(s, "listening on http://")
		if i < 0 {
			return false
		}
		rest := s[i+len("listening on "):]
		base = strings.TrimSpace(strings.SplitN(rest, " ", 2)[0])
		return true
	})
	client := &http.Client{Timeout: 2 * time.Second}

	waitFor(t, 20*time.Second, "readiness", func() bool {
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode == http.StatusOK
	})

	// Point query.
	resp, err := client.Get(base + "/v1/component?v=0")
	if err != nil {
		t.Fatal(err)
	}
	var comp struct {
		V         int32 `json:"v"`
		Component int32 `json:"component"`
		Size      int   `json:"size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || comp.Size <= 0 {
		t.Fatalf("component: status %d, %+v", resp.StatusCode, comp)
	}

	// Batch query.
	resp, err = client.Post(base+"/v1/batch", "application/json", strings.NewReader("[[0,1],[1,0]]"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}

	// Stats reflects the generated graph and records endpoint latencies.
	resp, err = client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Vertices  int    `json:"vertices"`
		Algorithm string `json:"algorithm"`
		Source    string `json:"source"`
		Endpoints map[string]struct {
			Count int64 `json:"count"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Vertices != 2000 || !strings.Contains(st.Source, "random") {
		t.Fatalf("stats: %+v", st)
	}
	if st.Endpoints["component"].Count != 1 || st.Endpoints["batch"].Count != 1 {
		t.Fatalf("endpoint counts: %+v", st.Endpoints)
	}

	// The debug mux is mounted alongside /v1.
	resp, err = client.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug vars: status %d", resp.StatusCode)
	}

	// Graceful shutdown: cancel the context, run must drain and return 0,
	// and the port must stop answering.
	cancel()
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exit=%d stderr=%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
	if resp, err := client.Get(base + "/v1/healthz"); err == nil {
		resp.Body.Close()
		t.Fatalf("server still answering after shutdown: %s", base)
	}
	if !strings.Contains(out.String(), "draining in-flight requests") {
		t.Fatalf("no drain announcement:\n%s", out.String())
	}
}

// TestInsertLifecycle boots the server with the incremental layer (the
// default), races concurrent /v1/insert writers against /v1/same readers
// through the real HTTP stack, and checks the final state: the inserted
// spanning chain collapses the line graph's pieces into one component.
func TestInsertLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	errb := &syncBuffer{}
	codeCh := make(chan int, 1)
	const n = 400
	go func() {
		codeCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-gen", "random", "-n", fmt.Sprint(n), "-degree", "1"}, out, errb)
	}()

	var base string
	waitFor(t, 10*time.Second, "listen announcement", func() bool {
		s := out.String()
		i := strings.Index(s, "listening on http://")
		if i < 0 {
			return false
		}
		base = strings.TrimSpace(strings.SplitN(s[i+len("listening on "):], " ", 2)[0])
		return true
	})
	client := &http.Client{Timeout: 5 * time.Second}
	waitFor(t, 20*time.Second, "readiness", func() bool {
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	if !strings.Contains(out.String(), "incremental=true") {
		t.Fatalf("ready line does not announce the incremental layer:\n%s", out.String())
	}

	// Writers insert disjoint stripes of one spanning chain over [0, n);
	// readers poll /v1/same concurrently. Between them the graph becomes
	// connected, so afterwards every pair answers same=true.
	const writers = 4
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := w * (n / writers); v < (w+1)*(n/writers)+1 && v < n-1; v++ {
				body := fmt.Sprintf("[[%d,%d]]", v, v+1)
				resp, err := client.Post(base+"/v1/insert", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d at %d: status %d", w, v, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := client.Get(fmt.Sprintf("%s/v1/same?u=%d&v=%d", base, i%n, (i*7)%n))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d op %d: status %d", r, i, resp.StatusCode)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The chain connected everything: cross-graph pairs are now same, and
	// stats reports one component at a positive epoch.
	var same struct {
		Same bool `json:"same"`
	}
	resp, err := client.Get(fmt.Sprintf("%s/v1/same?u=0&v=%d", base, n-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&same); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !same.Same {
		t.Fatal("spanning chain inserted but endpoints still in different components")
	}
	var st struct {
		Components int    `json:"components"`
		Epoch      uint64 `json:"epoch"`
	}
	resp, err = client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Components != 1 || st.Epoch == 0 {
		t.Fatalf("stats after inserts: components=%d epoch=%d", st.Components, st.Epoch)
	}

	cancel()
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exit=%d stderr=%s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
}

// TestInsertDisabled pins -incremental=false: /v1/insert answers 501 and
// the ready line says so.
func TestInsertDisabled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-gen", "line", "-n", "100", "-incremental=false"}, out, io.Discard)
	}()
	var base string
	waitFor(t, 10*time.Second, "listen announcement", func() bool {
		s := out.String()
		i := strings.Index(s, "listening on http://")
		if i < 0 {
			return false
		}
		base = strings.TrimSpace(strings.SplitN(s[i+len("listening on "):], " ", 2)[0])
		return true
	})
	client := &http.Client{Timeout: 5 * time.Second}
	waitFor(t, 20*time.Second, "readiness", func() bool {
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	resp, err := client.Post(base+"/v1/insert", "application/json", strings.NewReader("[[0,1]]"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("insert with -incremental=false: status %d want 501", resp.StatusCode)
	}
	if !strings.Contains(out.String(), "incremental=false") {
		t.Fatalf("ready line does not announce the disabled layer:\n%s", out.String())
	}
	cancel()
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exit=%d", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return")
	}
}

// TestRunErrors pins the fail-fast paths: all must exit non-zero without
// binding a long-lived server.
func TestRunErrors(t *testing.T) {
	runErr := func(args ...string) (int, string) {
		var out, errb bytes.Buffer
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		code := run(ctx, args, &out, &errb)
		return code, errb.String()
	}
	if code, _ := runErr("-badflag"); code != 2 {
		t.Fatalf("bad flag: exit=%d", code)
	}
	if code, errb := runErr(); code != 2 || !strings.Contains(errb, "need -in FILE or -gen NAME") {
		t.Fatalf("no input: exit=%d stderr=%s", code, errb)
	}
	if code, errb := runErr("-gen", "random", "-algorithm", "bogus"); code != 2 || !strings.Contains(errb, "available:") {
		t.Fatalf("bogus algorithm: exit=%d stderr=%s", code, errb)
	}
	if code, _ := runErr("-addr", "127.0.0.1:0", "-gen", "bogus"); code != 2 {
		t.Fatalf("bogus generator: exit=%d", code)
	}
	if code, _ := runErr("-addr", "127.0.0.1:0", "-in", "/nonexistent/file"); code != 2 {
		t.Fatalf("missing file: exit=%d", code)
	}
	if code, _ := runErr("-gen", "line", "-n", "10", "-addr", "256.256.256.256:1"); code != 2 {
		t.Fatalf("bad addr: exit=%d", code)
	}
}

// TestShutdownWhileDrainingInFlight starts a slow batch request and then
// cancels the server; the request must complete (drained), not be cut off.
func TestShutdownWhileDrainingInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-gen", "line", "-n", "1000"}, out, io.Discard)
	}()
	var base string
	waitFor(t, 10*time.Second, "listen announcement", func() bool {
		s := out.String()
		i := strings.Index(s, "listening on http://")
		if i < 0 {
			return false
		}
		base = strings.TrimSpace(strings.SplitN(s[i+len("listening on "):], " ", 2)[0])
		return true
	})
	client := &http.Client{Timeout: 5 * time.Second}
	waitFor(t, 20*time.Second, "readiness", func() bool {
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// Post a batch whose body arrives through a pipe, with Expect:
	// 100-continue so the transport only reads the pipe after the server's
	// handler started reading the body. Once the first write unblocks, the
	// request is provably active server-side; only then cancel the server.
	// Shutdown must drain the request to a 200, not abort it.
	pr, pw := io.Pipe()
	postClient := &http.Client{
		Transport: &http.Transport{ExpectContinueTimeout: 10 * time.Second},
		Timeout:   10 * time.Second,
	}
	defer postClient.CloseIdleConnections()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Expect", "100-continue")
	done := make(chan error, 1)
	go func() {
		resp, err := postClient.Do(req)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		done <- nil
	}()
	if _, err := pw.Write([]byte("[[0,1]")); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Give Shutdown a moment to close the listener while the request is
	// still open, then finish the body.
	time.Sleep(100 * time.Millisecond)
	if _, err := pw.Write([]byte(",[1,2]]")); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exit=%d", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return")
	}
}

// TestMetricsEndpoint is the metrics-smoke check: boot the full server,
// drive a little traffic, scrape /metrics, and validate both the exposition
// format and the presence of every required series family — request
// counters, error taxonomy, rolling quantile gauges, cumulative duration
// histograms, and runtime metrics. It also pins the trace-ID header and the
// -request-trace JSONL span file end to end.
func TestMetricsEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	traceFile := filepath.Join(t.TempDir(), "spans.jsonl")
	out := &syncBuffer{}
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-gen", "line", "-n", "1000",
			"-span-sample", "1", "-request-trace", traceFile,
		}, out, io.Discard)
	}()
	var base string
	waitFor(t, 10*time.Second, "listen announcement", func() bool {
		s := out.String()
		i := strings.Index(s, "listening on http://")
		if i < 0 {
			return false
		}
		base = strings.TrimSpace(strings.SplitN(s[i+len("listening on "):], " ", 2)[0])
		return true
	})
	client := &http.Client{Timeout: 5 * time.Second}
	waitFor(t, 20*time.Second, "readiness", func() bool {
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// Traffic: point queries, a batch, one taxonomy error (bad param), and
	// an insert (epoch-carrying span).
	for i := 0; i < 5; i++ {
		resp, err := client.Get(fmt.Sprintf("%s/v1/component?v=%d", base, i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("Parconn-Trace-Id"); got == "" {
			t.Fatal("no trace ID on /v1/component response")
		}
	}
	resp, err := client.Post(base+"/v1/batch", "application/json", strings.NewReader("[[0,1],[2,3]]"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = client.Get(base + "/v1/component?v=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad param: status %d", resp.StatusCode)
	}
	resp, err = client.Post(base+"/v1/insert", "application/json", strings.NewReader("[[0,500]]"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}

	// Scrape and validate.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/metrics content-type %q, want %q", ct, metrics.ContentType)
	}
	parsed, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics body does not parse: %v", err)
	}
	expect := map[string]float64{
		`parconn_http_requests_total{endpoint="component"}`:                 6,
		`parconn_http_requests_total{endpoint="batch"}`:                     1,
		`parconn_http_requests_total{endpoint="insert"}`:                    1,
		`parconn_http_errors_total{endpoint="component",class="4xx"}`:       1,
		`parconn_http_request_duration_seconds_count{endpoint="component"}`: 6,
		`parconn_http_spans_sampled_total`:                                  8,
		`parconn_ready`:                                                     1,
		`parconn_published_epoch`:                                           1,
	}
	for key, want := range expect {
		got, ok := parsed[key]
		if !ok {
			t.Errorf("/metrics missing %s", key)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
	for _, key := range []string{
		`parconn_http_rolling_latency_seconds{endpoint="component",quantile="0.5"}`,
		`parconn_http_rolling_latency_seconds{endpoint="component",quantile="0.95"}`,
		`parconn_http_rolling_latency_seconds{endpoint="component",quantile="0.99"}`,
		`parconn_http_errors_total{endpoint="insert",class="read_only"}`,
		`parconn_http_inflight_requests`,
		"parconn_goroutines",
		"parconn_heap_inuse_bytes",
		"parconn_gc_pause_seconds_total",
	} {
		if _, ok := parsed[key]; !ok {
			t.Errorf("/metrics missing %s", key)
		}
	}
	if parsed[`parconn_http_rolling_latency_seconds{endpoint="component",quantile="0.99"}`] <= 0 {
		t.Error("rolling P99 is zero right after traffic")
	}

	// Shutdown flushes the span trace; every request above was sampled.
	cancel()
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("run exit=%d", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return")
	}
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := obs.ValidateJSONL(f)
	if err != nil {
		t.Fatalf("span trace invalid: %v", err)
	}
	if sum.Spans != 8 {
		t.Fatalf("span trace holds %d spans, want 8", sum.Spans)
	}
}
