// Command connect computes connected components of a graph with any of the
// library's algorithms and reports the component structure.
//
// The input graph is either read from a file in the PBBS/Ligra
// AdjacencyGraph format or the library's binary format (-in, sniffed), or
// generated (-gen with -n / -scale / -seed).
//
// Usage:
//
//	connect -gen random -n 1000000 -algorithm decomp-arb-hybrid-CC
//	connect -in graph.adj -algorithm parallel-SF-PRM -labels out.txt
//	connect -gen grid3d -side 50 -decompose -beta 0.1
//	connect -gen rmat -scale 14 -trace run.jsonl
//	connect -validate-trace run.jsonl
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"parconn"
	"parconn/internal/obs/obshttp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, executes, writes reports to
// stdout and diagnostics to stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("connect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		inPath    = fs.String("in", "", "input graph file (AdjacencyGraph or binary format)")
		gen       = fs.String("gen", "", "generator: random, rmat, grid3d, line, social, star")
		n         = fs.Int("n", 1_000_000, "vertex count for random/line/star generators")
		scale     = fs.Int("scale", 18, "log2 vertex count for rmat/social generators")
		side      = fs.Int("side", 100, "side length for grid3d")
		degree    = fs.Int("degree", 5, "edges per vertex for random; edge factor for rmat")
		seed      = fs.Uint64("seed", 42, "random seed (generators and algorithm)")
		algName   = fs.String("algorithm", "decomp-arb-hybrid-CC", "algorithm (see parconn.Algorithms)")
		beta      = fs.Float64("beta", 0.2, "decomposition beta")
		procs     = fs.Int("procs", 0, "max workers (0 = all cores)")
		labelsOut = fs.String("labels", "", "write per-vertex labels to this file")
		topK      = fs.Int("top", 5, "print the K largest components")
		decompose = fs.Bool("decompose", false, "run a low-diameter decomposition instead of full connectivity and print its statistics")
		verify    = fs.Bool("verify", false, "verify the labeling in O(n+m) after computing it")
		stats     = fs.Bool("stats", false, "print structural statistics of the input graph")
		tracePath = fs.String("trace", "", "write the observability event stream to this file as JSONL")
		validate  = fs.String("validate-trace", "", "validate a JSONL trace file written by -trace and exit")
		httpAddr  = fs.String("http", "", "serve /debug/parconn, /debug/vars, and /debug/pprof on this address (e.g. :6060) while the run executes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		sum, err := parconn.ValidateTrace(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			fmt.Fprintf(stderr, "connect: invalid trace %s: %v\n", *validate, err)
			return 1
		}
		fmt.Fprintf(stdout, "trace %s valid: %d events (%d runs, %d levels, %d rounds, %d phases, %d counters)\n",
			*validate, sum.Events, sum.Runs, sum.Levels, sum.Rounds, sum.Phases, sum.Counters)
		return 0
	}

	var (
		rec       parconn.Recorder
		traceDone func() error
	)
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		jr := parconn.NewJSONLRecorder(f)
		jr.SetTool("cmd/connect")
		rec = jr
		traceDone = func() error {
			if err := jr.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "trace: %d events written to %s\n", jr.Count(), *tracePath)
			return nil
		}
	}

	if *httpAddr != "" {
		state := obshttp.NewState("cmd/connect", 0)
		srv, err := obshttp.Serve(*httpAddr, state)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		fmt.Fprintf(stdout, "debug server: http://%s/debug/parconn\n", srv.Addr())
		rec = parconn.MultiRecorder(rec, state.Recorder())
	}

	g, err := loadGraph(*inPath, *gen, *n, *scale, *side, *degree, *seed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	alg, err := parconn.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintf(stderr, "%v\navailable:", err)
		for _, a := range parconn.Algorithms {
			fmt.Fprintf(stderr, " %s", a)
		}
		fmt.Fprintln(stderr)
		return 2
	}
	fmt.Fprintf(stdout, "graph: %d vertices, %d undirected edges\n", g.NumVertices(), g.NumEdges())
	if *stats {
		fmt.Fprintf(stdout, "stats: %v\n", parconn.Summarize(g, *seed))
	}

	if *decompose {
		start := time.Now()
		d, err := parconn.Decompose(g, parconn.DecompOptions{
			Algorithm: alg, Beta: *beta, Seed: *seed, Procs: *procs, Recorder: rec,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		elapsed := time.Since(start)
		m := 2 * g.NumEdges()
		fmt.Fprintf(stdout, "%s decomposition (beta=%.3g): %d partitions, %d BFS rounds in %v\n",
			alg, *beta, d.NumPartitions, d.Rounds, elapsed)
		if m > 0 {
			fmt.Fprintf(stdout, "cut edges: %d of %d directed (%.2f%%; 2*beta bound is %.2f%%)\n",
				d.CutEdges, m, 100*float64(d.CutEdges)/float64(m), 200**beta)
		}
		if traceDone != nil {
			if err := traceDone(); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		return 0
	}

	start := time.Now()
	labels, err := parconn.ConnectedComponents(g, parconn.Options{
		Algorithm: alg, Beta: *beta, Seed: *seed, Procs: *procs, Recorder: rec,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	elapsed := time.Since(start)

	if *verify {
		if err := parconn.VerifyLabeling(g, labels); err != nil {
			fmt.Fprintf(stderr, "VERIFICATION FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "labeling verified")
	}
	count, top := parconn.TopComponents(labels, *topK)
	fmt.Fprintf(stdout, "%s: %d components in %v\n", alg, count, elapsed)
	for _, c := range top {
		fmt.Fprintf(stdout, "  component %d: %d vertices (%.2f%%)\n", c.Label, c.Size, 100*float64(c.Size)/float64(g.NumVertices()))
	}

	if *labelsOut != "" {
		if err := writeLabels(*labelsOut, labels); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "labels written to %s\n", *labelsOut)
	}
	if traceDone != nil {
		if err := traceDone(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	return 0
}

func loadGraph(inPath, gen string, n, scale, side, degree int, seed uint64) (*parconn.Graph, error) {
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		br := bufio.NewReaderSize(f, 1<<20)
		// Sniff the format: binary starts with "PCONNGR1", the PBBS text
		// format with "AdjacencyGraph"; anything else is treated as a
		// SNAP-style edge list.
		if head, err := br.Peek(14); err == nil {
			switch {
			case string(head[:8]) == "PCONNGR1":
				return parconn.ReadBinaryGraph(br)
			case string(head) == "AdjacencyGraph":
				return parconn.ReadGraph(br)
			}
		}
		return parconn.ReadEdgeList(br)
	}
	switch gen {
	case "random":
		return parconn.RandomGraph(n, degree, seed), nil
	case "rmat":
		return parconn.RMatGraph(scale, parconn.RMatOptions{EdgeFactor: degree, Seed: seed}), nil
	case "grid3d":
		return parconn.Grid3DGraph(side, seed), nil
	case "line":
		return parconn.LineGraph(n, seed), nil
	case "social":
		return parconn.SocialGraph(scale, seed), nil
	case "star":
		return parconn.StarGraph(n), nil
	case "":
		return nil, fmt.Errorf("connect: need -in FILE or -gen NAME")
	default:
		return nil, fmt.Errorf("connect: unknown generator %q", gen)
	}
}

func writeLabels(path string, labels []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	for _, l := range labels {
		fmt.Fprintln(w, l)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
