package main

import (
	"bufio"
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parconn"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunGenerated(t *testing.T) {
	code, out, _ := runCapture(t, "-gen", "random", "-n", "5000", "-verify", "-stats")
	if code != 0 {
		t.Fatalf("exit=%d", code)
	}
	for _, want := range []string{"graph: 5000 vertices", "labeling verified", "components in", "stats:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEveryGenerator(t *testing.T) {
	for _, gen := range []string{"random", "rmat", "grid3d", "line", "social", "star"} {
		code, out, errb := runCapture(t, "-gen", gen, "-n", "2000", "-scale", "9", "-side", "8", "-verify")
		if code != 0 {
			t.Fatalf("%s: exit=%d stderr=%s", gen, code, errb)
		}
		if !strings.Contains(out, "labeling verified") {
			t.Fatalf("%s: not verified:\n%s", gen, out)
		}
	}
}

func TestRunDecomposeMode(t *testing.T) {
	code, out, _ := runCapture(t, "-gen", "grid3d", "-side", "10", "-decompose", "-beta", "0.1")
	if code != 0 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(out, "partitions") || !strings.Contains(out, "cut edges") {
		t.Fatalf("decompose output wrong:\n%s", out)
	}
}

func TestRunFileRoundTripAndLabels(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.adj")
	labelsPath := filepath.Join(dir, "labels.txt")

	// Write a graph file via the library, then feed it back through -in.
	g := mustLine(t, 100)
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	if err := g.Write(bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out, errb := runCapture(t, "-in", graphPath, "-labels", labelsPath, "-algorithm", "serial-SF")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	if !strings.Contains(out, "1 components") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	data, err := os.ReadFile(labelsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(string(data))
	if len(lines) != 100 {
		t.Fatalf("labels file has %d entries", len(lines))
	}
}

func TestRunErrors(t *testing.T) {
	if code, _, _ := runCapture(t); code == 0 {
		t.Fatal("no input accepted")
	}
	if code, _, _ := runCapture(t, "-gen", "bogus"); code == 0 {
		t.Fatal("bogus generator accepted")
	}
	if code, _, errb := runCapture(t, "-gen", "line", "-n", "10", "-algorithm", "bogus"); code == 0 || !strings.Contains(errb, "available:") {
		t.Fatal("bogus algorithm accepted or help missing")
	}
	if code, _, _ := runCapture(t, "-in", "/nonexistent/file"); code == 0 {
		t.Fatal("missing file accepted")
	}
	if code, _, _ := runCapture(t, "-badflag"); code == 0 {
		t.Fatal("bad flag accepted")
	}
	if code, _, _ := runCapture(t, "-gen", "line", "-n", "10", "-decompose", "-algorithm", "serial-SF"); code == 0 {
		t.Fatal("decompose with non-decomposition algorithm accepted")
	}
}

func mustLine(t *testing.T, n int) *parconn.Graph {
	t.Helper()
	g, err := loadGraph("", "line", n, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunEdgeListInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("# snap style\n10 20\n20 30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCapture(t, "-in", path, "-verify")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	if !strings.Contains(out, "graph: 3 vertices, 2 undirected edges") {
		t.Fatalf("output wrong:\n%s", out)
	}
}

// TestRunTrace exercises -trace end to end: the JSONL file must validate,
// per-level edge counts must never increase, and the per-phase durations
// must account for the run's wall time to within 10%.
func TestRunTrace(t *testing.T) {
	// Warm the process-global worker pool, arena, and machine pools first:
	// the 10% criterion pins the steady-state accounting of the engine's
	// work, not one-time process initialization (cold pprof/pool/GC setup
	// costs land between phases on the very first run).
	if code, _, errb := runCapture(t, "-gen", "rmat", "-scale", "10", "-trace", filepath.Join(t.TempDir(), "warm.jsonl")); code != 0 {
		t.Fatalf("warmup exit=%d stderr=%s", code, errb)
	}

	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	code, out, errb := runCapture(t, "-gen", "rmat", "-scale", "14", "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	if !strings.Contains(out, "events written to") {
		t.Fatalf("trace report missing:\n%s", out)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := parconn.ParseTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := parconn.ValidateTraceEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 1 || sum.Levels == 0 || sum.Rounds == 0 {
		t.Fatalf("summary %+v", sum)
	}

	var (
		phaseSum time.Duration
		wall     time.Duration
		prevIn   = int64(1) << 62
		levels   int
	)
	for _, ev := range events {
		switch e := ev.V.(type) {
		case parconn.Phase:
			phaseSum += e.Duration
		case parconn.RunEnd:
			wall = e.Duration
		case parconn.LevelEnd:
			if e.EdgesIn > prevIn {
				t.Fatalf("level %d edges_in %d > previous %d", e.Level, e.EdgesIn, prevIn)
			}
			prevIn = e.EdgesIn
			levels++
		}
	}
	if levels == 0 || wall <= 0 {
		t.Fatalf("levels=%d wall=%v", levels, wall)
	}
	if ratio := float64(phaseSum) / float64(wall); ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("phase durations sum to %v, wall %v (ratio %.3f, want within 10%%)", phaseSum, wall, ratio)
	}

	// The -validate-trace mode must agree.
	code, out, errb = runCapture(t, "-validate-trace", tracePath)
	if code != 0 {
		t.Fatalf("validate exit=%d stderr=%s", code, errb)
	}
	if !strings.Contains(out, "valid") {
		t.Fatalf("validate output wrong:\n%s", out)
	}
}

// TestRunTraceDecompose covers -trace in -decompose mode.
func TestRunTraceDecompose(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "decomp.jsonl")
	code, _, errb := runCapture(t, "-gen", "grid3d", "-side", "10", "-decompose", "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := parconn.ValidateTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 1 || sum.Rounds == 0 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestRunValidateTraceRejects covers the failure paths of -validate-trace.
func TestRunValidateTraceRejects(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"ev\":\"run_end\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errb := runCapture(t, "-validate-trace", path); code == 0 || !strings.Contains(errb, "invalid trace") {
		t.Fatalf("bad trace accepted: exit=%d stderr=%s", code, errb)
	}
	if code, _, _ := runCapture(t, "-validate-trace", "/nonexistent/trace.jsonl"); code == 0 {
		t.Fatal("missing trace file accepted")
	}
}

// TestRunHTTPDebugServer runs a small job with -http and confirms that the
// debug server binds and announces its address, and — since the lifecycle
// fix — that it is shut down again when run returns instead of leaking for
// the rest of the process. (The endpoint's content is covered by the
// obshttp package tests; here the run has already exited by the time we
// could query it.)
func TestRunHTTPDebugServer(t *testing.T) {
	code, out, errb := runCapture(t, "-gen", "random", "-n", "2000", "-http", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	const marker = "debug server: http://"
	i := strings.Index(out, marker)
	if i < 0 {
		t.Fatalf("no debug server line:\n%s", out)
	}
	url := strings.TrimSpace(strings.SplitN(out[i+len("debug server: "):], "\n", 2)[0])
	c := &http.Client{Timeout: time.Second}
	resp, err := c.Get(url)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("debug server still answering after run returned: %s", url)
	}
}
