// Command gen writes synthetic benchmark graphs in the PBBS/Ligra
// AdjacencyGraph text format or the library's binary format, for feeding to
// cmd/connect or external tools.
//
// Usage:
//
//	gen -kind random -n 1000000 -degree 5 -out random.adj
//	gen -kind rmat -scale 20 -degree 5 -binary -out rmat.bin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"parconn"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; the graph is written to stdout unless
// -out names a file, and the summary always goes to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind   = fs.String("kind", "random", "generator: random, rmat, grid3d, line, social, star")
		n      = fs.Int("n", 1_000_000, "vertex count (random/line/star)")
		scale  = fs.Int("scale", 18, "log2 vertex count (rmat/social)")
		side   = fs.Int("side", 100, "side length (grid3d)")
		degree = fs.Int("degree", 5, "edges per vertex (random) / edge factor (rmat)")
		seed   = fs.Uint64("seed", 42, "random seed")
		out    = fs.String("out", "", "output file (default stdout)")
		binFmt = fs.Bool("binary", false, "write the compact binary format instead of AdjacencyGraph text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g *parconn.Graph
	switch *kind {
	case "random":
		g = parconn.RandomGraph(*n, *degree, *seed)
	case "rmat":
		g = parconn.RMatGraph(*scale, parconn.RMatOptions{EdgeFactor: *degree, Seed: *seed})
	case "grid3d":
		g = parconn.Grid3DGraph(*side, *seed)
	case "line":
		g = parconn.LineGraph(*n, *seed)
	case "social":
		g = parconn.SocialGraph(*scale, *seed)
	case "star":
		g = parconn.StarGraph(*n)
	default:
		fmt.Fprintf(stderr, "gen: unknown kind %q\n", *kind)
		return 2
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	writeFn := g.Write
	if *binFmt {
		writeFn = g.WriteBinary
	}
	if err := writeFn(bw); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "gen: wrote %s (%d vertices, %d edges)\n", *kind, g.NumVertices(), g.NumEdges())
	return 0
}
