package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parconn"
)

func TestGenTextToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-kind", "line", "-n", "50"}, &out, &errb); code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	g, err := parconn.ReadGraph(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 50 || g.NumEdges() != 49 {
		t.Fatalf("wrong graph: %v", g)
	}
	if !strings.Contains(errb.String(), "wrote line") {
		t.Fatalf("summary missing: %q", errb.String())
	}
}

func TestGenBinaryToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.bin")
	var out, errb bytes.Buffer
	if code := run([]string{"-kind", "grid3d", "-side", "5", "-binary", "-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	f, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := parconn.ReadBinaryGraph(bytes.NewReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 125 {
		t.Fatalf("n=%d", g.NumVertices())
	}
}

func TestGenErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-kind", "bogus"}, &out, &errb); code == 0 {
		t.Fatal("bogus kind accepted")
	}
	if code := run([]string{"-badflag"}, &out, &errb); code == 0 {
		t.Fatal("bad flag accepted")
	}
	if code := run([]string{"-kind", "line", "-n", "5", "-out", "/no/such/dir/file"}, &out, &errb); code == 0 {
		t.Fatal("unwritable path accepted")
	}
}
