package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parconn"
)

func TestBenchSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "table1", "-scale", "0.002", "-trials", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 1") || !strings.Contains(out.String(), "com-Orkut") {
		t.Fatalf("output wrong:\n%s", out.String())
	}
}

func TestBenchThreadsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "fig8", "-scale", "0.01", "-trials", "1", "-threads", "1,2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 8") {
		t.Fatalf("output wrong:\n%s", out.String())
	}
}

// TestBenchTrace checks that -trace records every timed run of an experiment
// as a schema-valid JSONL stream (trials runs per measurement).
func TestBenchTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "bench.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "table2", "-scale", "0.002", "-trials", "1", "-trace", tracePath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "events written to") {
		t.Fatalf("trace report missing:\n%s", out.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := parconn.ValidateTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	// table2 times every implementation on every input; even at one trial
	// that is dozens of recorded runs.
	if sum.Runs < 4 {
		t.Fatalf("summary %+v: want >= 4 recorded runs", sum)
	}
}

func TestBenchTraceBadPath(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "table1", "-trace", "/nonexistent/dir/t.jsonl"}, &out, &errb); code == 0 {
		t.Fatal("unwritable trace path accepted")
	}
}

func TestBenchErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "bogus"}, &out, &errb); code == 0 {
		t.Fatal("bogus experiment accepted")
	}
	if code := run([]string{"-threads", "x"}, &out, &errb); code == 0 {
		t.Fatal("bad threads accepted")
	}
	if code := run([]string{"-threads", "0"}, &out, &errb); code == 0 {
		t.Fatal("zero threads accepted")
	}
	if code := run([]string{"-badflag"}, &out, &errb); code == 0 {
		t.Fatal("bad flag accepted")
	}
}
