package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parconn"
)

func TestBenchSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "table1", "-scale", "0.002", "-trials", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 1") || !strings.Contains(out.String(), "com-Orkut") {
		t.Fatalf("output wrong:\n%s", out.String())
	}
}

func TestBenchThreadsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "fig8", "-scale", "0.01", "-trials", "1", "-threads", "1,2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 8") {
		t.Fatalf("output wrong:\n%s", out.String())
	}
}

// TestBenchTrace checks that -trace records every timed run of an experiment
// as a schema-valid JSONL stream (trials runs per measurement).
func TestBenchTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "bench.jsonl")
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "table2", "-scale", "0.002", "-trials", "1", "-trace", tracePath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "events written to") {
		t.Fatalf("trace report missing:\n%s", out.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := parconn.ValidateTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	// table2 times every implementation on every input; even at one trial
	// that is dozens of recorded runs.
	if sum.Runs < 4 {
		t.Fatalf("summary %+v: want >= 4 recorded runs", sum)
	}
}

func TestBenchTraceBadPath(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "table1", "-trace", "/nonexistent/dir/t.jsonl"}, &out, &errb); code == 0 {
		t.Fatal("unwritable trace path accepted")
	}
}

func TestBenchErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bogus experiment: exit=%d", code)
	}
	// The unknown name must fail upfront with usage, before any experiment
	// (or side effect like a trace file) starts.
	if msg := errb.String(); !strings.Contains(msg, `unknown experiment "bogus"`) ||
		!strings.Contains(msg, "usage:") || !strings.Contains(msg, "table2") || !strings.Contains(msg, "serve") {
		t.Fatalf("unknown-experiment message wrong:\n%s", msg)
	}
	if code := run([]string{"-threads", "x"}, &out, &errb); code == 0 {
		t.Fatal("bad threads accepted")
	}
	if code := run([]string{"-threads", "0"}, &out, &errb); code == 0 {
		t.Fatal("zero threads accepted")
	}
	if code := run([]string{"-badflag"}, &out, &errb); code == 0 {
		t.Fatal("bad flag accepted")
	}
	if code := run([]string{"-procs", "x"}, &out, &errb); code == 0 {
		t.Fatal("bad procs accepted")
	}
}

// TestBenchHelp pins -h as a successful exit: asking for usage is not an
// error.
func TestBenchHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h: exit=%d", code)
	}
	if !strings.Contains(errb.String(), "-experiment") {
		t.Fatalf("usage missing:\n%s", errb.String())
	}
}

// TestBenchUnknownExperimentNoTraceFile checks the fail-fast ordering: a
// bad experiment name must not create the -trace output file.
func TestBenchUnknownExperimentNoTraceFile(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "t.jsonl")
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "bogus", "-trace", tracePath}, &out, &errb); code != 2 {
		t.Fatalf("exit=%d", code)
	}
	if _, err := os.Stat(tracePath); err == nil {
		t.Fatal("trace file created despite unknown experiment")
	}
}

// TestBenchServeExperiment runs the serving benchmark end to end at smoke
// scale and validates the written BENCH_serve.json.
func TestBenchServeExperiment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "serve", "-scale", "0.01", "-procs", "2", "-json", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Vertices int `json:"vertices"`
		Results  []struct {
			Workload string  `json:"workload"`
			Requests int64   `json:"requests"`
			QPS      float64 `json:"qps"`
			P99NS    int64   `json:"p99_ns"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Vertices <= 0 || len(rep.Results) != 4 {
		t.Fatalf("report: vertices=%d results=%d", rep.Vertices, len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Requests <= 0 || r.QPS <= 0 || r.P99NS <= 0 {
			t.Fatalf("workload %s: %+v", r.Workload, r)
		}
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}
