package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "table1", "-scale", "0.002", "-trials", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table 1") || !strings.Contains(out.String(), "com-Orkut") {
		t.Fatalf("output wrong:\n%s", out.String())
	}
}

func TestBenchThreadsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-experiment", "fig8", "-scale", "0.01", "-trials", "1", "-threads", "1,2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 8") {
		t.Fatalf("output wrong:\n%s", out.String())
	}
}

func TestBenchErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "bogus"}, &out, &errb); code == 0 {
		t.Fatal("bogus experiment accepted")
	}
	if code := run([]string{"-threads", "x"}, &out, &errb); code == 0 {
		t.Fatal("bad threads accepted")
	}
	if code := run([]string{"-threads", "0"}, &out, &errb); code == 0 {
		t.Fatal("zero threads accepted")
	}
	if code := run([]string{"-badflag"}, &out, &errb); code == 0 {
		t.Fatal("bad flag accepted")
	}
}
