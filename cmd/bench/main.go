// Command bench regenerates the tables and figures of Shun, Dhulipala,
// Blelloch (SPAA'14) on this host. Each experiment prints a plain-text
// table shaped like the corresponding artifact in the paper.
//
// Usage:
//
//	bench -experiment table2              # one experiment
//	bench -experiment all -scale 0.25     # everything, quarter-size inputs
//	bench -experiment fig2 -threads 1,2,4 # explicit worker sweep
//	bench -experiment ablation            # design-choice ablations
//	bench -experiment json                # machine-readable BENCH_parconn.json
//	bench -experiment speedup -procs 1,2,4   # efficiency sweep, BENCH_speedup.json
//	bench -experiment serve               # serving QPS/latency, BENCH_serve.json
//	bench -experiment churn               # insert/query churn, BENCH_churn.json
//	bench -experiment table2 -trace t.jsonl  # also record an observability trace
//
// Experiments: table1, table2, fig2..fig8, ablation, work, json, speedup,
// serve, churn, all.
// See EXPERIMENTS.md for the mapping to the paper and the recorded runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"parconn"
	"parconn/internal/bench"
	"parconn/internal/obs/obshttp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all", "experiment to run: table1,table2,fig2..fig8,ablation,work,json,speedup,serve,churn,all")
		scale      = fs.Float64("scale", 1.0, "input size multiplier (1.0 = harness defaults, ~100x below paper sizes)")
		trials     = fs.Int("trials", 3, "trials per measurement; median reported")
		procs      = fs.String("procs", "0", "max workers (0 = all cores); a comma list like 1,2,4 sets the speedup sweep")
		threads    = fs.String("threads", "", "comma-separated worker counts for fig2 (default 1,2,4,...,procs)")
		seed       = fs.Uint64("seed", 42, "random seed")
		csvDir     = fs.String("csv", "", "also write each table as CSV into this directory")
		jsonPath   = fs.String("json", "", "output path for the json/speedup/serve experiments (default BENCH_<experiment>.json)")
		tracePath  = fs.String("trace", "", "write a JSONL observability trace of every timed run (perturbs timings)")
		httpAddr   = fs.String("http", "", "serve /debug/parconn, /debug/vars, and /debug/pprof on this address while experiments run")
		sloTarget  = fs.Duration("slo", 0, "rolling-P99 SLO target graded during serve/churn runs (0 = 25ms default; gated by tracestat slo)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Validate the experiment name before any side effects (trace files,
	// debug servers): a typo must exit with usage, not after creating an
	// empty trace file or running for minutes.
	names := bench.ExperimentNames()
	valid := false
	for _, n := range names {
		if *experiment == n {
			valid = true
			break
		}
	}
	if !valid {
		fmt.Fprintf(stderr, "bench: unknown experiment %q\nusage: bench -experiment NAME\navailable: %s\n",
			*experiment, strings.Join(names, " "))
		return 2
	}

	cfg := bench.Config{
		Scale:        *scale,
		Trials:       *trials,
		Seed:         *seed,
		Out:          stdout,
		CSVDir:       *csvDir,
		JSONPath:     *jsonPath,
		SLOTargetP99: *sloTarget,
	}
	// -procs is a single bound for most experiments; a comma list makes it
	// the explicit sweep of the "speedup" experiment (and bounds the rest
	// at the list's maximum).
	for _, part := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || (v < 1 && strings.Contains(*procs, ",")) || v < 0 {
			fmt.Fprintf(stderr, "bench: bad -procs entry %q\n", part)
			return 2
		}
		if strings.Contains(*procs, ",") {
			cfg.ProcsList = append(cfg.ProcsList, v)
			if v > cfg.Procs {
				cfg.Procs = v
			}
		} else {
			cfg.Procs = v
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 2
		}
		rec := parconn.NewJSONLRecorder(f)
		rec.SetTool("cmd/bench")
		cfg.Recorder = rec
		defer func() {
			if err := rec.Flush(); err != nil {
				fmt.Fprintf(stderr, "bench: flushing trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "bench: closing trace: %v\n", err)
			}
			fmt.Fprintf(stdout, "trace: %d events written to %s\n", rec.Count(), *tracePath)
		}()
	}
	if *httpAddr != "" {
		state := obshttp.NewState("cmd/bench", 0)
		srv, err := obshttp.Serve(*httpAddr, state)
		if err != nil {
			fmt.Fprintf(stderr, "bench: %v\n", err)
			return 2
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		fmt.Fprintf(stdout, "debug server: http://%s/debug/parconn\n", srv.Addr())
		cfg.Recorder = parconn.MultiRecorder(cfg.Recorder, state.Recorder())
	}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(stderr, "bench: bad -threads entry %q\n", part)
				return 2
			}
			cfg.Threads = append(cfg.Threads, v)
		}
	}
	if err := bench.Run(*experiment, cfg); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}
