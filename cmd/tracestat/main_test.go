package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parconn"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeFixtureTrace synthesizes a small valid trace whose contract phase
// takes the given duration, so diff tests can inject a slowdown in one
// metric while everything else stays identical.
func writeFixtureTrace(t *testing.T, path string, contract time.Duration, env parconn.Env) {
	t.Helper()
	tr := parconn.NewTrace()
	var envp *parconn.Env
	if !env.IsZero() {
		envp = &env
	}
	tr.RunStart(parconn.RunStart{Algorithm: "decomp-arb-hybrid-CC", Vertices: 1000, Edges: 4000, Procs: 2, Seed: 7, Beta: 0.2, Env: envp})
	tr.Phase(parconn.Phase{Level: 0, Name: "init", Duration: 10 * time.Millisecond})
	tr.LevelStart(parconn.LevelStart{Level: 0, Vertices: 1000, EdgesIn: 4000})
	tr.Round(parconn.Round{Level: 0, Round: 0, Frontier: 200, NewCenters: 200, Duration: 5 * time.Millisecond})
	tr.Phase(parconn.Phase{Level: 0, Name: "bfs_sparse", Duration: 100 * time.Millisecond})
	tr.LevelEnd(parconn.LevelEnd{Level: 0, Vertices: 1000, EdgesIn: 4000, EdgesCut: 400, EdgesOut: 100, Components: 50, Rounds: 1})
	tr.Phase(parconn.Phase{Level: 0, Name: "contract", Duration: contract})
	tr.RunEnd(parconn.RunEnd{Components: 3, Duration: 110*time.Millisecond + contract})

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	writeFixtureTrace(t, path, 40*time.Millisecond, parconn.CaptureEnv())
	code, out, errb := runCapture(t, "summary", path)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	for _, want := range []string{
		"1 runs",
		"env: go",
		"decomp-arb-hybrid-CC n=1000 m=4000",
		"bfs_sparse", // phase table
		"contract",   // phase table
		"edges_cut",  // level table header
		"0.025",      // edge decay 100/4000
		"frontier sizes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
	// The phase table is sorted by descending total: bfs_sparse (100ms)
	// before contract (40ms) before init (10ms).
	if i, j := strings.Index(out, "bfs_sparse"), strings.Index(out, "contract"); i > j {
		t.Errorf("phase table not sorted by total time:\n%s", out)
	}
}

func TestDiffIdenticalTracesPass(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	writeFixtureTrace(t, base, 40*time.Millisecond, parconn.Env{})
	code, out, errb := runCapture(t, "diff", base, base)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s\n%s", code, errb, out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Fatalf("diff output:\n%s", out)
	}
}

func TestDiffDetectsPhaseSlowdown(t *testing.T) {
	// A 2.5x slowdown of one phase, well above the default 2ms floor, must
	// be flagged at the default 1.5x tolerance and exit non-zero.
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	slow := filepath.Join(dir, "slow.jsonl")
	writeFixtureTrace(t, base, 40*time.Millisecond, parconn.Env{})
	writeFixtureTrace(t, slow, 100*time.Millisecond, parconn.Env{})
	code, out, _ := runCapture(t, "diff", base, slow)
	if code != 1 {
		t.Fatalf("exit=%d want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "phase/contract") {
		t.Fatalf("regression not reported:\n%s", out)
	}
	// Only the injected phase regresses; the run total grows 1.4x, under
	// the 1.5x tolerance.
	if strings.Count(out, "REGRESSION") != 1 {
		t.Fatalf("unexpected regression count:\n%s", out)
	}

	// A generous tolerance waves the same slowdown through.
	code, _, _ = runCapture(t, "diff", "-tol", "4", base, slow)
	if code != 0 {
		t.Fatalf("tol=4 exit=%d want 0", code)
	}

	// A floor above the absolute increase suppresses it too.
	code, _, _ = runCapture(t, "diff", "-floor", "500ms", base, slow)
	if code != 0 {
		t.Fatalf("floor=500ms exit=%d want 0", code)
	}
}

func TestDiffFloorSuppressesTinyRegressions(t *testing.T) {
	// 2.5x ratio but only 1ms absolute: below the default 2ms floor.
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	slow := filepath.Join(dir, "slow.jsonl")
	writeFixtureTrace(t, base, 600*time.Microsecond, parconn.Env{})
	writeFixtureTrace(t, slow, 1500*time.Microsecond, parconn.Env{})
	code, out, _ := runCapture(t, "diff", base, slow)
	if code != 0 {
		t.Fatalf("exit=%d want 0 (floor should suppress)\n%s", code, out)
	}
}

func TestDiffEnvMismatchWarns(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	other := filepath.Join(dir, "other.jsonl")
	env := parconn.CaptureEnv()
	writeFixtureTrace(t, base, 40*time.Millisecond, env)
	env.GoMaxProcs += 7
	writeFixtureTrace(t, other, 40*time.Millisecond, env)
	code, _, errb := runCapture(t, "diff", base, other)
	if code != 0 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(errb, "environment mismatch") || !strings.Contains(errb, "gomaxprocs") {
		t.Fatalf("no env warning:\n%s", errb)
	}
}

func TestDiffAgainstBenchReport(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.jsonl")
	writeFixtureTrace(t, trace, 40*time.Millisecond, parconn.Env{}) // run duration 150ms
	rep := map[string]any{
		"go_version": "go1.24.0",
		"gomaxprocs": 1,
		"results": []map[string]any{
			// Slowest input wins as baseline: 200ms, so the 150ms run passes.
			{"input": "rMat", "algorithm": "decomp-arb-hybrid-CC", "ns_per_op": 200e6},
			{"input": "random", "algorithm": "decomp-arb-hybrid-CC", "ns_per_op": 50e6},
			{"input": "rMat", "algorithm": "serial-SF", "ns_per_op": 10e6},
		},
	}
	bench := filepath.Join(dir, "BENCH.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bench, data, 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errb := runCapture(t, "diff", bench, trace)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s\n%s", code, errb, out)
	}
	if !strings.Contains(out, "run/decomp-arb-hybrid-CC") {
		t.Fatalf("bench metric not compared:\n%s", out)
	}

	// Narrowed to the fast input, the same run is a 3x regression.
	code, out, _ = runCapture(t, "diff", "-input", "random", bench, trace)
	if code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("exit=%d want 1:\n%s", code, out)
	}

	// Unknown input family is an input error, not a silent pass.
	if code, _, _ := runCapture(t, "diff", "-input", "nope", bench, trace); code != 2 {
		t.Fatalf("unknown input: exit=%d want 2", code)
	}
}

func TestUsageAndInputErrors(t *testing.T) {
	if code, _, _ := runCapture(t); code != 2 {
		t.Fatal("no args accepted")
	}
	if code, _, _ := runCapture(t, "bogus"); code != 2 {
		t.Fatal("unknown subcommand accepted")
	}
	if code, _, _ := runCapture(t, "summary"); code != 2 {
		t.Fatal("summary without file accepted")
	}
	if code, _, _ := runCapture(t, "summary", "/nonexistent.jsonl"); code != 2 {
		t.Fatal("missing file accepted")
	}
	if code, _, _ := runCapture(t, "diff", "/nonexistent.jsonl", "/nonexistent.jsonl"); code != 2 {
		t.Fatal("missing diff inputs accepted")
	}

	// A structurally invalid trace (end without start) is rejected.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"ev\":\"run_end\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errb := runCapture(t, "summary", bad); code != 2 || !strings.Contains(errb, "tracestat:") {
		t.Fatalf("invalid trace accepted: exit=%d stderr=%s", code, errb)
	}

	// Two traces with no common metrics cannot be gated.
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(t.TempDir(), "good.jsonl")
	writeFixtureTrace(t, good, 40*time.Millisecond, parconn.Env{})
	if code, _, errb := runCapture(t, "diff", empty, good); code != 2 || !strings.Contains(errb, "nothing compared") {
		t.Fatalf("empty baseline: exit=%d stderr=%s", code, errb)
	}
}

// TestSummaryShareColumn checks the share-of-total column: with phases of
// 100ms, 40ms, and 10ms the shares are 66.7%, 26.7%, and 6.7%.
func TestSummaryShareColumn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	writeFixtureTrace(t, path, 40*time.Millisecond, parconn.CaptureEnv())
	code, out, errb := runCapture(t, "summary", path)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	for _, want := range []string{"share", "66.7%", "26.7%", "6.7%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

// writeSpeedupFixture writes a minimal BENCH_speedup.json with the given
// efficiency at the widest procs setting of the gated algorithm.
func writeSpeedupFixture(t *testing.T, path string, topEfficiency float64) {
	t.Helper()
	report := map[string]any{
		"go_version": "go1.24.0",
		"env":        parconn.CaptureEnv(),
		"scale":      1.0,
		"seed":       42,
		"results": []map[string]any{{
			"input":     "rMat",
			"algorithm": "decomp-arb-hybrid-CC",
			"points": []map[string]any{
				{"procs": 1, "effective_workers": 1, "ns_per_op": 1e8, "speedup": 1.0, "efficiency": 1.0},
				{"procs": 4, "effective_workers": 1, "ns_per_op": 1e8 / topEfficiency, "speedup": topEfficiency, "efficiency": topEfficiency},
			},
		}},
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupGatePasses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sp.json")
	writeSpeedupFixture(t, path, 0.95)
	code, out, errb := runCapture(t, "speedup", path)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s out=%s", code, errb, out)
	}
	if !strings.Contains(out, "holds efficiency") {
		t.Errorf("missing pass line:\n%s", out)
	}
}

func TestSpeedupGateTripsBelowFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sp.json")
	writeSpeedupFixture(t, path, 0.3) // below the default 0.5 floor
	code, out, _ := runCapture(t, "speedup", path)
	if code != 1 {
		t.Fatalf("exit=%d, want 1 (efficiency 0.3 under floor 0.5):\n%s", code, out)
	}
	if !strings.Contains(out, "BELOW FLOOR") {
		t.Errorf("missing BELOW FLOOR verdict:\n%s", out)
	}
	// An unknown gated algorithm is a usage error, not a pass.
	if code, _, _ := runCapture(t, "speedup", "-algorithm", "no-such-alg", path); code != 2 {
		t.Errorf("unknown algorithm: exit=%d, want 2", code)
	}
}

// writeServeReport synthesizes a BENCH_serve.json-shaped report for the
// serve gate tests.
func writeServeReport(t *testing.T, path string, qps float64, p99 int64, errs int64) {
	t.Helper()
	rep := map[string]any{
		"go_version": "go-test",
		"gomaxprocs": 2,
		"env":        parconn.CaptureEnv(),
		"results": []map[string]any{
			{"workload": "point", "concurrency": 2, "requests": 1000, "errors": errs,
				"qps": qps, "p50_ns": p99 / 4, "p95_ns": p99 / 2, "p99_ns": p99, "max_ns": p99 * 2},
			{"workload": "batch", "concurrency": 2, "requests": 500, "errors": 0,
				"qps": qps / 4, "p50_ns": p99, "p95_ns": 2 * p99, "p99_ns": 3 * p99, "max_ns": 4 * p99},
		},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestServeGateIdenticalPasses(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeServeReport(t, base, 50000, 1_000_000, 0)
	code, out, errb := runCapture(t, "serve", base, base)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	if !strings.Contains(out, "no serving regressions") {
		t.Fatalf("output wrong:\n%s", out)
	}
}

func TestServeGateTripsOnLatency(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	writeServeReport(t, base, 50000, 1_000_000, 0)
	writeServeReport(t, cur, 50000, 5_000_000, 0) // p99 5x slower
	code, out, _ := runCapture(t, "serve", "-tol", "2", base, cur)
	if code != 1 {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("no regression flagged:\n%s", out)
	}
	// A loose enough tolerance passes the same pair.
	if code, out, _ := runCapture(t, "serve", "-tol", "20", base, cur); code != 0 {
		t.Fatalf("tol=20 exit=%d:\n%s", code, out)
	}
}

func TestServeGateTripsOnQPSDrop(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	writeServeReport(t, base, 50000, 1_000_000, 0)
	writeServeReport(t, cur, 10000, 1_000_000, 0) // 5x throughput drop
	code, out, _ := runCapture(t, "serve", "-tol", "2", base, cur)
	if code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
}

func TestServeGateFloorSuppressesTinyLatency(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	// 10x latency regression, but in absolute terms at most ~135us (batch
	// p99): below the 200us default floor. QPS unchanged.
	writeServeReport(t, base, 50000, 5_000, 0)
	writeServeReport(t, cur, 50000, 50_000, 0)
	code, out, _ := runCapture(t, "serve", "-tol", "2", base, cur)
	if code != 0 {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
}

func TestServeGateTripsOnNewErrors(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	writeServeReport(t, base, 50000, 1_000_000, 0)
	writeServeReport(t, cur, 50000, 1_000_000, 25)
	code, out, _ := runCapture(t, "serve", base, cur)
	if code != 1 || !strings.Contains(out, "new errors") {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
}

// writeChurnReport synthesizes a BENCH_churn.json-shaped report for the
// churn gate tests: two insert fractions, query QPS plus insert quantiles.
func writeChurnReport(t *testing.T, path string, qps float64, insP95 int64, insErrs int64) {
	t.Helper()
	row := func(frac float64) map[string]any {
		return map[string]any{
			"workload": "churn", "insert_fraction": frac, "insert_batch": 32,
			"concurrency": 2, "requests": 1000, "errors": 0,
			"qps": qps, "p50_ns": insP95 / 8, "p95_ns": insP95 / 4, "p99_ns": insP95 / 2,
			"inserts": 100, "insert_errors": insErrs, "insert_qps": qps / 10,
			"insert_p50_ns": insP95 / 2, "insert_p95_ns": insP95, "insert_p99_ns": 2 * insP95,
		}
	}
	rep := map[string]any{
		"go_version": "go-test",
		"gomaxprocs": 2,
		"env":        parconn.CaptureEnv(),
		"results":    []map[string]any{row(0.05), row(0.25)},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestChurnGateIdenticalPasses(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeChurnReport(t, base, 50000, 1_000_000, 0)
	code, out, errb := runCapture(t, "churn", base, base)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb)
	}
	if !strings.Contains(out, "no churn regressions across 2 insert fraction(s)") {
		t.Fatalf("output wrong:\n%s", out)
	}
}

func TestChurnGateTripsOnInsertLatency(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	writeChurnReport(t, base, 50000, 1_000_000, 0)
	writeChurnReport(t, cur, 50000, 5_000_000, 0) // insert p95 5x slower
	code, out, _ := runCapture(t, "churn", "-tol", "2", base, cur)
	if code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
	// A loose enough tolerance passes the same pair.
	if code, out, _ := runCapture(t, "churn", "-tol", "20", base, cur); code != 0 {
		t.Fatalf("tol=20 exit=%d:\n%s", code, out)
	}
}

func TestChurnGateTripsOnQueryQPSDrop(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	writeChurnReport(t, base, 50000, 1_000_000, 0)
	writeChurnReport(t, cur, 10000, 1_000_000, 0) // 5x query throughput drop
	code, out, _ := runCapture(t, "churn", "-tol", "2", base, cur)
	if code != 1 || !strings.Contains(out, "REGRESSION (below base/2.00)") {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
}

func TestChurnGateTripsOnNewInsertErrors(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	writeChurnReport(t, base, 50000, 1_000_000, 0)
	writeChurnReport(t, cur, 50000, 1_000_000, 9)
	code, out, _ := runCapture(t, "churn", base, cur)
	if code != 1 || !strings.Contains(out, "new errors") {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
}

func TestChurnGateUsageErrors(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeChurnReport(t, base, 50000, 1_000_000, 0)
	if code, _, _ := runCapture(t, "churn", base); code != 2 {
		t.Fatal("one-arg churn accepted")
	}
	if code, _, _ := runCapture(t, "churn", "-tol", "0.5", base, base); code != 2 {
		t.Fatal("tol <= 1 accepted")
	}
	// A serve report is not a churn report: no insert fractions.
	notChurn := filepath.Join(dir, "serve.json")
	writeServeReport(t, notChurn, 50000, 1_000_000, 0)
	if code, _, _ := runCapture(t, "churn", notChurn, base); code != 2 {
		t.Fatal("serve report accepted as churn baseline")
	}
}

func TestServeGateUsageErrors(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeServeReport(t, base, 50000, 1_000_000, 0)
	if code, _, _ := runCapture(t, "serve", base); code != 2 {
		t.Fatal("one-arg serve accepted")
	}
	if code, _, _ := runCapture(t, "serve", "-tol", "0.5", base, base); code != 2 {
		t.Fatal("tol <= 1 accepted")
	}
	if code, _, _ := runCapture(t, "serve", "/nonexistent.json", base); code != 2 {
		t.Fatal("missing baseline accepted")
	}
	notServe := filepath.Join(dir, "not.json")
	if err := os.WriteFile(notServe, []byte(`{"results":[{"input":"rMat"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errb := runCapture(t, "serve", notServe, base); code != 2 || !strings.Contains(errb, "not a serve report") {
		t.Fatalf("non-serve report accepted: exit=%d stderr=%s", code, errb)
	}
}

// writeSloServeReport synthesizes a BENCH_serve.json-shaped report whose
// rows carry SLO-attainment columns: two observed workloads plus one row
// recorded without SLO tracking, so the skip path is always exercised.
func writeSloServeReport(t *testing.T, path string, targetNS int64, pointGood, batchGood int) {
	t.Helper()
	row := func(w string, good int) map[string]any {
		return map[string]any{
			"workload": w, "concurrency": 2, "requests": 1000, "errors": 0,
			"qps": 50000, "p50_ns": 10_000, "p95_ns": 50_000, "p99_ns": 100_000, "max_ns": 200_000,
			"slo_target_ns": targetNS, "slo_windows": 20, "slo_good_windows": good,
			"slo_attainment": float64(good) / 20,
		}
	}
	legacy := map[string]any{
		"workload": "hot", "concurrency": 2, "requests": 1000, "errors": 0,
		"qps": 50000, "p50_ns": 10_000, "p95_ns": 50_000, "p99_ns": 100_000, "max_ns": 200_000,
	}
	rep := map[string]any{
		"go_version": "go-test",
		"gomaxprocs": 2,
		"env":        parconn.CaptureEnv(),
		"results":    []map[string]any{row("point", pointGood), row("batch", batchGood), legacy},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSloGateIdenticalPasses(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeSloServeReport(t, base, 25_000_000, 20, 19) // 100% and 95%
	code, out, errb := runCapture(t, "slo", base, base)
	if code != 0 {
		t.Fatalf("exit=%d stdout=%s stderr=%s", code, out, errb)
	}
	if !strings.Contains(out, "SLO attainment holds across 2 gated row(s)") {
		t.Fatalf("output wrong:\n%s", out)
	}
	if !strings.Contains(out, "no SLO data, skipped") {
		t.Fatalf("legacy row not reported as skipped:\n%s", out)
	}
}

func TestSloGateTripsOnAttainmentDrop(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	writeSloServeReport(t, base, 25_000_000, 20, 20)
	writeSloServeReport(t, cur, 25_000_000, 20, 18) // batch 100% -> 90%: ok for -min 0.9, over -drop 0.05
	code, out, _ := runCapture(t, "slo", base, cur)
	if code != 1 || !strings.Contains(out, "REGRESSION (dropped") {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
	// A wider allowed drop passes the same pair.
	if code, out, _ := runCapture(t, "slo", "-drop", "0.2", base, cur); code != 0 {
		t.Fatalf("drop=0.2 exit=%d:\n%s", code, out)
	}
}

func TestSloGateTripsBelowFloor(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	// The baseline itself is already bad, so no drop — only the floor trips.
	writeSloServeReport(t, base, 25_000_000, 20, 10)
	writeSloServeReport(t, cur, 25_000_000, 20, 10)
	code, out, _ := runCapture(t, "slo", base, cur)
	if code != 1 || !strings.Contains(out, "below 90% floor") {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
	if code, out, _ := runCapture(t, "slo", "-min", "0.5", base, cur); code != 0 {
		t.Fatalf("min=0.5 exit=%d:\n%s", code, out)
	}
}

func TestSloGateTargetChangeSkipsDropGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	writeSloServeReport(t, base, 25_000_000, 20, 20)
	writeSloServeReport(t, cur, 50_000_000, 20, 19) // looser target, 95% still above floor
	code, out, errb := runCapture(t, "slo", base, cur)
	if code != 0 {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
	if !strings.Contains(errb, "SLO target changed") {
		t.Fatalf("no target-change warning:\n%s", errb)
	}
}

func TestSloGateChurnReportKeyedByFraction(t *testing.T) {
	dir := t.TempDir()
	write := func(path string, good05, good25 int) {
		row := func(frac float64, good int) map[string]any {
			return map[string]any{
				"workload": "churn", "insert_fraction": frac, "insert_batch": 32,
				"concurrency": 2, "requests": 1000, "errors": 0,
				"qps": 40000, "p95_ns": 60_000, "inserts": 100, "insert_qps": 2000,
				"insert_p95_ns": 200_000, "insert_p99_ns": 400_000,
				"slo_target_ns": 25_000_000, "slo_windows": 10, "slo_good_windows": good,
				"slo_attainment": float64(good) / 10,
			}
		}
		rep := map[string]any{
			"env":     parconn.CaptureEnv(),
			"results": []map[string]any{row(0.05, good05), row(0.25, good25)},
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	base := filepath.Join(dir, "base.json")
	cur := filepath.Join(dir, "new.json")
	write(base, 10, 10)
	write(cur, 10, 8) // churn@0.25 drops to 80%
	code, out, _ := runCapture(t, "slo", base, cur)
	if code != 1 {
		t.Fatalf("exit=%d:\n%s", code, out)
	}
	if !strings.Contains(out, "churn@0.25") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("fraction key or regression missing:\n%s", out)
	}
	if code, out, _ := runCapture(t, "slo", base, base); code != 0 {
		t.Fatalf("self-diff exit=%d:\n%s", code, out)
	}
}

func TestSloGateUsageErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	writeSloServeReport(t, good, 25_000_000, 20, 20)

	if code, _, _ := runCapture(t, "slo", good); code != 2 {
		t.Fatalf("one arg: exit=%d", code)
	}
	if code, _, _ := runCapture(t, "slo", "-min", "1.5", good, good); code != 2 {
		t.Fatalf("bad -min: exit=%d", code)
	}
	if code, _, _ := runCapture(t, "slo", filepath.Join(dir, "missing.json"), good); code != 2 {
		t.Fatalf("missing base: exit=%d", code)
	}
	notReport := filepath.Join(dir, "not.json")
	if err := os.WriteFile(notReport, []byte(`{"results": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCapture(t, "slo", notReport, good); code != 2 {
		t.Fatalf("empty results: exit=%d", code)
	}

	// A report whose rows all predate SLO tracking gates nothing: exit 2, so
	// a misconfigured CI lane fails loudly instead of silently passing.
	legacy := filepath.Join(dir, "legacy.json")
	rep := map[string]any{
		"env": parconn.CaptureEnv(),
		"results": []map[string]any{{
			"workload": "point", "qps": 50000, "p99_ns": 100_000,
		}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errb := runCapture(t, "slo", good, legacy); code != 2 || !strings.Contains(errb, "nothing gated") {
		t.Fatalf("legacy new report: exit=%d stderr=%s", code, errb)
	}
}
