// Command tracestat summarizes and compares JSONL observability traces
// written by cmd/connect, cmd/bench, or any JSONLRecorder. It is the
// offline read side of the event stream: "summary" turns one trace into
// per-phase histogram and per-level edge-decay tables; "diff" compares a
// trace against an older trace (or against BENCH_parconn.json) and exits
// non-zero when a metric regressed past the tolerance, which makes it
// usable as a CI perf gate.
//
// Usage:
//
//	tracestat summary run.jsonl
//	tracestat diff baseline.jsonl run.jsonl
//	tracestat diff -tol 2 -floor 20ms baseline.jsonl run.jsonl
//	tracestat diff -input rMat BENCH_parconn.json run.jsonl
//
// Diff compares, for every metric present on both sides: total time per
// phase name and median run duration per algorithm. A metric regresses
// when the new value exceeds base*tol AND the absolute increase exceeds
// the floor (the floor suppresses noise on metrics too small to gate on).
// Exit codes: 0 no regression, 1 regression detected, 2 usage or input
// error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"parconn"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "summary":
		return runSummary(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "speedup":
		return runSpeedup(args[1:], stdout, stderr)
	case "serve":
		return runServe(args[1:], stdout, stderr)
	case "churn":
		return runChurn(args[1:], stdout, stderr)
	case "slo":
		return runSlo(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "tracestat: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  tracestat summary TRACE.jsonl
  tracestat diff [-tol N] [-floor DUR] [-input NAME] BASE NEW.jsonl
  tracestat speedup [-algorithm NAME] [-efficiency-floor F] BENCH_speedup.json
  tracestat serve [-tol N] [-floor DUR] BASE_serve.json NEW_serve.json
  tracestat churn [-tol N] [-floor DUR] BASE_churn.json NEW_churn.json
  tracestat slo [-min F] [-drop F] BASE.json NEW.json

BASE is either a JSONL trace or a BENCH_parconn.json benchmark report
(detected by shape). Speedup gates a cmd/bench -experiment speedup report:
every point of the gated algorithm must reach the efficiency floor. Serve
diffs two cmd/bench -experiment serve reports per workload: latency
quantiles regress past base*tol (above the floor), QPS regresses below
base/tol. Churn does the same per insert fraction of two cmd/bench
-experiment churn reports, gating query QPS plus insert-batch latency. Slo
diffs the SLO-attainment columns of two serve or churn reports: a row
regresses when its attainment falls below -min or drops more than -drop
from the baseline; rows without SLO data (slo_windows 0) are skipped.
`)
}

// loadTrace parses and validates one JSONL trace file.
func loadTrace(path string) ([]parconn.TraceEvent, parconn.TraceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, parconn.TraceSummary{}, err
	}
	defer f.Close()
	events, err := parconn.ParseTrace(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, parconn.TraceSummary{}, fmt.Errorf("%s: %w", path, err)
	}
	sum, err := parconn.ValidateTraceEvents(events)
	if err != nil {
		return nil, parconn.TraceSummary{}, fmt.Errorf("%s: %w", path, err)
	}
	return events, sum, nil
}

// runStat is one RunStart/RunEnd pair from the stream.
type runStat struct {
	Algorithm  string
	Vertices   int
	Edges      int64
	Procs      int
	Components int
	Duration   time.Duration
	Err        string
}

// traceStats is everything the summary and diff views need from a trace.
type traceStats struct {
	Env    parconn.Env
	Runs   []runStat
	Phases map[string]*parconn.Histogram // phase name -> duration ns, all levels merged
	Levels []levelStat                   // indexed by level
	Hists  *parconn.HistogramSet         // frontier + per-round histograms via replay
}

// levelStat aggregates the LevelEnd events of one contraction level across
// every run in the trace.
type levelStat struct {
	Count    int   // LevelEnd events seen for this level
	Vertices int64 // summed across runs
	EdgesIn  int64
	EdgesCut int64
	EdgesOut int64
	Rounds   int64
}

func statsOf(events []parconn.TraceEvent) *traceStats {
	st := &traceStats{
		Env:    parconn.TraceEnvOf(events),
		Phases: map[string]*parconn.Histogram{},
		Hists:  parconn.NewHistogramSet(),
	}
	parconn.ReplayTrace(st.Hists, events)
	var open *runStat
	for _, ev := range events {
		switch v := ev.V.(type) {
		case parconn.RunStart:
			st.Runs = append(st.Runs, runStat{
				Algorithm: v.Algorithm, Vertices: v.Vertices, Edges: v.Edges, Procs: v.Procs,
			})
			open = &st.Runs[len(st.Runs)-1]
		case parconn.RunEnd:
			if open != nil {
				open.Components = v.Components
				open.Duration = v.Duration
				open.Err = v.Err
				open = nil
			}
		case parconn.Phase:
			h := st.Phases[v.Name]
			if h == nil {
				h = &parconn.Histogram{}
				st.Phases[v.Name] = h
			}
			h.Record(v.Duration.Nanoseconds())
		case parconn.LevelEnd:
			for len(st.Levels) <= v.Level {
				st.Levels = append(st.Levels, levelStat{})
			}
			l := &st.Levels[v.Level]
			l.Count++
			l.Vertices += int64(v.Vertices)
			l.EdgesIn += v.EdgesIn
			l.EdgesCut += v.EdgesCut
			l.EdgesOut += v.EdgesOut
			l.Rounds += int64(v.Rounds)
		}
	}
	return st
}

// sortedPhaseNames returns the phase names ordered by descending total time,
// the order a reader scanning for the expensive phase wants.
func (st *traceStats) sortedPhaseNames() []string {
	names := make([]string, 0, len(st.Phases))
	for name := range st.Phases {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := st.Phases[names[i]].Sum(), st.Phases[names[j]].Sum()
		if a != b {
			return a > b
		}
		return names[i] < names[j]
	})
	return names
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		usage(stderr)
		return 2
	}
	path := fs.Arg(0)
	events, sum, err := loadTrace(path)
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	st := statsOf(events)

	fmt.Fprintf(stdout, "trace: %s (%d events, %d runs, %d levels, %d rounds)\n",
		path, sum.Events, sum.Runs, sum.Levels, sum.Rounds)
	if !st.Env.IsZero() {
		fmt.Fprintf(stdout, "env: %s\n", st.Env)
	}
	for i, r := range st.Runs {
		status := fmt.Sprintf("%d components in %v", r.Components, roundDur(r.Duration))
		if r.Err != "" {
			status = "ERROR " + r.Err
		}
		fmt.Fprintf(stdout, "run %d: %s n=%d m=%d procs=%d: %s\n",
			i, r.Algorithm, r.Vertices, r.Edges, r.Procs, status)
	}

	if len(st.Phases) > 0 {
		// share is each phase's fraction of the summed phase time, so
		// gap-hunting ("which phase do I attack next") needs no manual
		// arithmetic over the ns columns.
		var totalNS int64
		for _, h := range st.Phases {
			totalNS += h.Sum()
		}
		fmt.Fprintf(stdout, "\n%-16s %7s %12s %7s %12s %12s %12s %12s\n",
			"phase", "count", "total", "share", "mean", "p50", "p90", "max")
		for _, name := range st.sortedPhaseNames() {
			s := st.Phases[name].Snapshot()
			share := "-"
			if totalNS > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(s.Sum)/float64(totalNS))
			}
			fmt.Fprintf(stdout, "%-16s %7d %12v %7s %12v %12v %12v %12v\n",
				name, s.Count,
				roundDur(time.Duration(s.Sum)),
				share,
				roundDur(time.Duration(int64(s.Mean()))),
				roundDur(time.Duration(s.Quantile(0.5))),
				roundDur(time.Duration(s.Quantile(0.9))),
				roundDur(time.Duration(s.Max)))
		}
	}

	if fr := st.Hists.Frontier().Snapshot(); fr.Count > 0 {
		fmt.Fprintf(stdout, "\nfrontier sizes: %s\n", fr)
	}

	if len(st.Levels) > 0 {
		fmt.Fprintf(stdout, "\n%-6s %6s %12s %12s %12s %12s %8s\n",
			"level", "ends", "vertices", "edges_in", "edges_cut", "edges_out", "decay")
		for lvl, l := range st.Levels {
			decay := "-"
			if l.EdgesIn > 0 {
				decay = fmt.Sprintf("%.3f", float64(l.EdgesOut)/float64(l.EdgesIn))
			}
			fmt.Fprintf(stdout, "%-6d %6d %12d %12d %12d %12d %8s\n",
				lvl, l.Count, l.Vertices, l.EdgesIn, l.EdgesCut, l.EdgesOut, decay)
		}
	}
	return 0
}

// metric is one comparable quantity extracted from a trace or a bench
// report; values are nanoseconds.
type metric struct {
	base, new int64
	hasBase   bool
	hasNew    bool
}

// benchBaseline mirrors the subset of internal/bench's BENCH_parconn.json
// schema this tool reads. Kept as a local struct: importing internal/bench
// would pull the testing package into a shipped binary.
type benchBaseline struct {
	GoVersion  string      `json:"go_version"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Env        parconn.Env `json:"env"`
	Results    []struct {
		Input     string  `json:"input"`
		Algorithm string  `json:"algorithm"`
		NsPerOp   float64 `json:"ns_per_op"`
	} `json:"results"`
}

// loadBase loads the diff baseline: a JSONL trace, or a bench report
// (detected by successfully decoding the whole file as one report object
// with results). A bench report has per-(input, algorithm) cells while a
// trace only knows the algorithm, so input narrows the report to one
// input family; when empty the slowest input per algorithm is taken as
// the (conservative) baseline. For trace baselines input is ignored.
func loadBase(path, input string) (map[string]int64, parconn.Env, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, parconn.Env{}, err
	}
	var rep benchBaseline
	if err := json.Unmarshal(data, &rep); err == nil && len(rep.Results) > 0 {
		env := rep.Env
		if env.IsZero() {
			env = parconn.Env{GoVersion: rep.GoVersion, GoMaxProcs: rep.GoMaxProcs}
		}
		m := map[string]int64{}
		found := false
		for _, r := range rep.Results {
			if input != "" && r.Input != input {
				continue
			}
			found = true
			key := "run/" + r.Algorithm
			if ns := int64(r.NsPerOp); ns > m[key] {
				m[key] = ns
			}
		}
		if !found {
			return nil, parconn.Env{}, fmt.Errorf("%s: no results for input %q", path, input)
		}
		return m, env, nil
	}
	events, _, err := loadTraceBytes(path, data)
	if err != nil {
		return nil, parconn.Env{}, err
	}
	st := statsOf(events)
	return st.metrics(), st.Env, nil
}

// loadTraceBytes parses an already-read trace file.
func loadTraceBytes(path string, data []byte) ([]parconn.TraceEvent, parconn.TraceSummary, error) {
	events, err := parconn.ParseTrace(strings.NewReader(string(data)))
	if err != nil {
		return nil, parconn.TraceSummary{}, fmt.Errorf("%s: %w", path, err)
	}
	sum, err := parconn.ValidateTraceEvents(events)
	if err != nil {
		return nil, parconn.TraceSummary{}, fmt.Errorf("%s: %w", path, err)
	}
	return events, sum, nil
}

// metrics flattens a trace into the comparable quantities diff gates on:
// total nanoseconds per phase name, and the median run duration per
// algorithm.
func (st *traceStats) metrics() map[string]int64 {
	m := map[string]int64{}
	for name, h := range st.Phases {
		m["phase/"+name] = h.Sum()
	}
	byAlg := map[string][]time.Duration{}
	for _, r := range st.Runs {
		if r.Err == "" && r.Duration > 0 {
			byAlg[r.Algorithm] = append(byAlg[r.Algorithm], r.Duration)
		}
	}
	for alg, ds := range byAlg {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		m["run/"+alg] = ds[len(ds)/2].Nanoseconds()
	}
	return m
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tol   = fs.Float64("tol", 1.5, "regression threshold: new > base*tol flags the metric")
		floor = fs.Duration("floor", 2*time.Millisecond, "ignore regressions whose absolute increase is below this duration")
		input = fs.String("input", "", "bench-report baselines only: gate against this input family (default: slowest per algorithm)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		usage(stderr)
		return 2
	}
	if *tol <= 0 {
		fmt.Fprintln(stderr, "tracestat: -tol must be positive")
		return 2
	}
	basePath, newPath := fs.Arg(0), fs.Arg(1)

	base, baseEnv, err := loadBase(basePath, *input)
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	newEvents, _, err := loadTrace(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	newStats := statsOf(newEvents)

	if diffs := baseEnv.Mismatch(newStats.Env); len(diffs) > 0 {
		fmt.Fprintf(stderr, "tracestat: WARNING: environment mismatch (timings not directly comparable): %s\n",
			strings.Join(diffs, "; "))
	}

	merged := map[string]*metric{}
	for k, v := range base {
		merged[k] = &metric{base: v, hasBase: true}
	}
	for k, v := range newStats.metrics() {
		m := merged[k]
		if m == nil {
			m = &metric{}
			merged[k] = m
		}
		m.new, m.hasNew = v, true
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	compared := 0
	fmt.Fprintf(stdout, "%-28s %12s %12s %8s\n", "metric", "base", "new", "ratio")
	for _, k := range keys {
		m := merged[k]
		switch {
		case !m.hasNew:
			fmt.Fprintf(stdout, "%-28s %12v %12s %8s  (missing in new trace)\n",
				k, roundDur(time.Duration(m.base)), "-", "-")
		case !m.hasBase:
			fmt.Fprintf(stdout, "%-28s %12s %12v %8s  (missing in baseline)\n",
				k, "-", roundDur(time.Duration(m.new)), "-")
		default:
			compared++
			ratio := float64(m.new) / float64(m.base)
			verdict := "ok"
			if m.new > int64(float64(m.base)**tol) && m.new-m.base > floor.Nanoseconds() {
				regressions++
				verdict = fmt.Sprintf("REGRESSION (+%v > %v floor)",
					roundDur(time.Duration(m.new-m.base)), *floor)
			}
			fmt.Fprintf(stdout, "%-28s %12v %12v %7.2fx  %s\n",
				k, roundDur(time.Duration(m.base)), roundDur(time.Duration(m.new)), ratio, verdict)
		}
	}
	if compared == 0 {
		fmt.Fprintln(stderr, "tracestat: no metric exists on both sides; nothing compared")
		return 2
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "tracestat: %d regression(s) (tolerance %.2fx, floor %v)\n", regressions, *tol, *floor)
		return 1
	}
	fmt.Fprintf(stdout, "tracestat: no regressions in %d compared metric(s) (tolerance %.2fx, floor %v)\n",
		compared, *tol, *floor)
	return 0
}

// speedupReport mirrors the subset of internal/bench's BENCH_speedup.json
// schema this tool gates on (local for the same reason as benchBaseline).
type speedupReport struct {
	Env     parconn.Env `json:"env"`
	Results []struct {
		Input     string `json:"input"`
		Algorithm string `json:"algorithm"`
		Points    []struct {
			Procs            int     `json:"procs"`
			EffectiveWorkers int     `json:"effective_workers"`
			NsPerOp          float64 `json:"ns_per_op"`
			Speedup          float64 `json:"speedup"`
			Efficiency       float64 `json:"efficiency"`
		} `json:"points"`
	} `json:"results"`
}

// runSpeedup gates a speedup-sweep report: the gated algorithm's efficiency
// (speedup over effective workers, i.e. procs clamped to the recording
// host's cores) must reach the floor at every swept procs setting. The
// floor's job is to catch parallel-efficiency regressions — an engine
// change that makes adding workers slow the run down — not to assert
// absolute times, so it is robust to slow CI hosts; the default 0.5 trips
// when extra workers cost a third of the serial time, well past scheduler
// noise.
func runSpeedup(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat speedup", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		alg   = fs.String("algorithm", "decomp-arb-hybrid-CC", "algorithm whose sweep is gated (others are reported only)")
		floor = fs.Float64("efficiency-floor", 0.5, "minimum efficiency at every swept procs setting")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		usage(stderr)
		return 2
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	var rep speedupReport
	if err := json.Unmarshal(data, &rep); err != nil || len(rep.Results) == 0 {
		fmt.Fprintf(stderr, "tracestat: %s: not a speedup report\n", fs.Arg(0))
		return 2
	}
	gated := 0
	failures := 0
	fmt.Fprintf(stdout, "%-10s %-22s %6s %8s %12s %9s %11s\n",
		"input", "algorithm", "procs", "workers", "ns/op", "speedup", "efficiency")
	for _, s := range rep.Results {
		for _, p := range s.Points {
			verdict := ""
			if s.Algorithm == *alg {
				gated++
				if p.Efficiency < *floor {
					failures++
					verdict = fmt.Sprintf("  BELOW FLOOR %.2f", *floor)
				}
			}
			fmt.Fprintf(stdout, "%-10s %-22s %6d %8d %12.0f %8.2fx %11.2f%s\n",
				s.Input, s.Algorithm, p.Procs, p.EffectiveWorkers, p.NsPerOp, p.Speedup, p.Efficiency, verdict)
		}
	}
	if gated == 0 {
		fmt.Fprintf(stderr, "tracestat: no points for gated algorithm %q\n", *alg)
		return 2
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "tracestat: %d point(s) of %s below efficiency floor %.2f\n", failures, *alg, *floor)
		return 1
	}
	fmt.Fprintf(stdout, "tracestat: %s holds efficiency >= %.2f at all %d swept setting(s)\n", *alg, *floor, gated)
	return 0
}

// serveReport mirrors the subset of internal/bench's BENCH_serve.json
// schema this tool gates on (local for the same reason as benchBaseline).
type serveReport struct {
	Env     parconn.Env `json:"env"`
	Results []struct {
		Workload string  `json:"workload"`
		Requests int64   `json:"requests"`
		Errors   int64   `json:"errors"`
		QPS      float64 `json:"qps"`
		P50NS    int64   `json:"p50_ns"`
		P95NS    int64   `json:"p95_ns"`
		P99NS    int64   `json:"p99_ns"`
	} `json:"results"`
}

func loadServeReport(path string) (serveReport, error) {
	var rep serveReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil || len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: not a serve report", path)
	}
	for _, r := range rep.Results {
		if r.Workload == "" {
			return rep, fmt.Errorf("%s: not a serve report (result without workload)", path)
		}
	}
	return rep, nil
}

// runServe diffs two serving benchmark reports (cmd/bench -experiment
// serve) per workload. A latency quantile regresses when the new value
// exceeds base*tol AND the absolute increase exceeds the floor; QPS
// regresses when the new value drops below base/tol. Tail quantiles of a
// loaded HTTP server are noisy, so CI should pass a loose -tol.
func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tol   = fs.Float64("tol", 2.0, "regression threshold: latency new > base*tol, QPS new < base/tol")
		floor = fs.Duration("floor", 200*time.Microsecond, "ignore latency regressions whose absolute increase is below this duration")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		usage(stderr)
		return 2
	}
	if *tol <= 1 {
		fmt.Fprintln(stderr, "tracestat: -tol must be greater than 1")
		return 2
	}
	base, err := loadServeReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	cur, err := loadServeReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	if diffs := base.Env.Mismatch(cur.Env); len(diffs) > 0 {
		fmt.Fprintf(stderr, "tracestat: WARNING: environment mismatch (throughput not directly comparable): %s\n",
			strings.Join(diffs, "; "))
	}

	type row struct{ base, cur int }
	byWorkload := map[string]*row{}
	for i, r := range base.Results {
		byWorkload[r.Workload] = &row{base: i, cur: -1}
	}
	for i, r := range cur.Results {
		if w := byWorkload[r.Workload]; w != nil {
			w.cur = i
		} else {
			byWorkload[r.Workload] = &row{base: -1, cur: i}
		}
	}
	names := make([]string, 0, len(byWorkload))
	for w := range byWorkload {
		names = append(names, w)
	}
	sort.Strings(names)

	regressions := 0
	compared := 0
	fmt.Fprintf(stdout, "%-8s %-6s %12s %12s %8s\n", "workload", "metric", "base", "new", "ratio")
	for _, name := range names {
		w := byWorkload[name]
		if w.base < 0 || w.cur < 0 {
			fmt.Fprintf(stdout, "%-8s %-6s %12s %12s %8s  (missing on one side)\n", name, "-", "-", "-", "-")
			continue
		}
		b, c := base.Results[w.base], cur.Results[w.cur]
		compared++
		lat := []struct {
			metric string
			baseNS int64
			curNS  int64
		}{
			{"p50", b.P50NS, c.P50NS},
			{"p95", b.P95NS, c.P95NS},
			{"p99", b.P99NS, c.P99NS},
		}
		for _, l := range lat {
			verdict := "ok"
			if l.curNS > int64(float64(l.baseNS)**tol) && l.curNS-l.baseNS > floor.Nanoseconds() {
				regressions++
				verdict = fmt.Sprintf("REGRESSION (+%v > %v floor)", roundDur(time.Duration(l.curNS-l.baseNS)), *floor)
			}
			ratio := 0.0
			if l.baseNS > 0 {
				ratio = float64(l.curNS) / float64(l.baseNS)
			}
			fmt.Fprintf(stdout, "%-8s %-6s %12v %12v %7.2fx  %s\n",
				name, l.metric, roundDur(time.Duration(l.baseNS)), roundDur(time.Duration(l.curNS)), ratio, verdict)
		}
		verdict := "ok"
		if c.QPS < b.QPS / *tol {
			regressions++
			verdict = fmt.Sprintf("REGRESSION (below base/%.2f)", *tol)
		}
		ratio := 0.0
		if b.QPS > 0 {
			ratio = c.QPS / b.QPS
		}
		fmt.Fprintf(stdout, "%-8s %-6s %12.0f %12.0f %7.2fx  %s\n", name, "qps", b.QPS, c.QPS, ratio, verdict)
		if c.Errors > 0 && b.Errors == 0 {
			regressions++
			fmt.Fprintf(stdout, "%-8s %-6s %12d %12d %8s  REGRESSION (new errors)\n", name, "errors", b.Errors, c.Errors, "-")
		}
	}
	if compared == 0 {
		fmt.Fprintln(stderr, "tracestat: no workload exists on both sides; nothing compared")
		return 2
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "tracestat: %d serving regression(s) (tolerance %.2fx, floor %v)\n", regressions, *tol, *floor)
		return 1
	}
	fmt.Fprintf(stdout, "tracestat: no serving regressions across %d workload(s) (tolerance %.2fx, floor %v)\n",
		compared, *tol, *floor)
	return 0
}

// churnReport mirrors the subset of internal/bench's BENCH_churn.json schema
// this tool gates on (local for the same reason as serveReport). Rows are
// matched by insert fraction, the sweep axis of the churn experiment.
type churnReport struct {
	Env     parconn.Env `json:"env"`
	Results []struct {
		InsertFraction float64 `json:"insert_fraction"`
		Requests       int64   `json:"requests"`
		Errors         int64   `json:"errors"`
		QPS            float64 `json:"qps"`
		P95NS          int64   `json:"p95_ns"`
		Inserts        int64   `json:"inserts"`
		InsertErrors   int64   `json:"insert_errors"`
		InsertQPS      float64 `json:"insert_qps"`
		InsertP95NS    int64   `json:"insert_p95_ns"`
		InsertP99NS    int64   `json:"insert_p99_ns"`
	} `json:"results"`
}

func loadChurnReport(path string) (churnReport, error) {
	var rep churnReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil || len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: not a churn report", path)
	}
	for _, r := range rep.Results {
		if r.InsertFraction <= 0 || r.Inserts+r.InsertErrors == 0 {
			return rep, fmt.Errorf("%s: not a churn report (result without inserts)", path)
		}
	}
	return rep, nil
}

// runChurn diffs two churn benchmark reports (cmd/bench -experiment churn)
// per insert fraction. Query QPS regresses when it drops below base/tol;
// insert p95/p99 regress when the new value exceeds base*tol AND the
// absolute increase exceeds the floor; new insert errors on a previously
// clean fraction always regress. Like serve, the quantiles of a loaded HTTP
// server are noisy, so CI should pass a loose -tol.
func runChurn(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat churn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tol   = fs.Float64("tol", 2.0, "regression threshold: latency new > base*tol, QPS new < base/tol")
		floor = fs.Duration("floor", 200*time.Microsecond, "ignore latency regressions whose absolute increase is below this duration")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		usage(stderr)
		return 2
	}
	if *tol <= 1 {
		fmt.Fprintln(stderr, "tracestat: -tol must be greater than 1")
		return 2
	}
	base, err := loadChurnReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	cur, err := loadChurnReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	if diffs := base.Env.Mismatch(cur.Env); len(diffs) > 0 {
		fmt.Fprintf(stderr, "tracestat: WARNING: environment mismatch (throughput not directly comparable): %s\n",
			strings.Join(diffs, "; "))
	}

	fracKey := func(f float64) string { return fmt.Sprintf("%.4f", f) }
	type row struct{ base, cur int }
	byFrac := map[string]*row{}
	for i, r := range base.Results {
		byFrac[fracKey(r.InsertFraction)] = &row{base: i, cur: -1}
	}
	for i, r := range cur.Results {
		if w := byFrac[fracKey(r.InsertFraction)]; w != nil {
			w.cur = i
		} else {
			byFrac[fracKey(r.InsertFraction)] = &row{base: -1, cur: i}
		}
	}
	keys := make([]string, 0, len(byFrac))
	for k := range byFrac {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	compared := 0
	fmt.Fprintf(stdout, "%-8s %-12s %12s %12s %8s\n", "f", "metric", "base", "new", "ratio")
	for _, key := range keys {
		w := byFrac[key]
		if w.base < 0 || w.cur < 0 {
			fmt.Fprintf(stdout, "%-8s %-12s %12s %12s %8s  (missing on one side)\n", key, "-", "-", "-", "-")
			continue
		}
		b, c := base.Results[w.base], cur.Results[w.cur]
		compared++
		verdict := "ok"
		if c.QPS < b.QPS / *tol {
			regressions++
			verdict = fmt.Sprintf("REGRESSION (below base/%.2f)", *tol)
		}
		ratio := 0.0
		if b.QPS > 0 {
			ratio = c.QPS / b.QPS
		}
		fmt.Fprintf(stdout, "%-8s %-12s %12.0f %12.0f %7.2fx  %s\n", key, "query qps", b.QPS, c.QPS, ratio, verdict)
		lat := []struct {
			metric string
			baseNS int64
			curNS  int64
		}{
			{"query p95", b.P95NS, c.P95NS},
			{"insert p95", b.InsertP95NS, c.InsertP95NS},
			{"insert p99", b.InsertP99NS, c.InsertP99NS},
		}
		for _, l := range lat {
			verdict := "ok"
			if l.curNS > int64(float64(l.baseNS)**tol) && l.curNS-l.baseNS > floor.Nanoseconds() {
				regressions++
				verdict = fmt.Sprintf("REGRESSION (+%v > %v floor)", roundDur(time.Duration(l.curNS-l.baseNS)), *floor)
			}
			ratio := 0.0
			if l.baseNS > 0 {
				ratio = float64(l.curNS) / float64(l.baseNS)
			}
			fmt.Fprintf(stdout, "%-8s %-12s %12v %12v %7.2fx  %s\n",
				key, l.metric, roundDur(time.Duration(l.baseNS)), roundDur(time.Duration(l.curNS)), ratio, verdict)
		}
		if errs := c.Errors + c.InsertErrors; errs > 0 && b.Errors+b.InsertErrors == 0 {
			regressions++
			fmt.Fprintf(stdout, "%-8s %-12s %12d %12d %8s  REGRESSION (new errors)\n",
				key, "errors", b.Errors+b.InsertErrors, errs, "-")
		}
	}
	if compared == 0 {
		fmt.Fprintln(stderr, "tracestat: no insert fraction exists on both sides; nothing compared")
		return 2
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "tracestat: %d churn regression(s) (tolerance %.2fx, floor %v)\n", regressions, *tol, *floor)
		return 1
	}
	fmt.Fprintf(stdout, "tracestat: no churn regressions across %d insert fraction(s) (tolerance %.2fx, floor %v)\n",
		compared, *tol, *floor)
	return 0
}

// sloReport mirrors the SLO-attainment subset shared by BENCH_serve.json
// and BENCH_churn.json (local for the same reason as serveReport). Rows are
// keyed by workload, qualified by insert fraction when present, so one
// subcommand gates both report shapes.
type sloReport struct {
	Env     parconn.Env `json:"env"`
	Results []struct {
		Workload       string  `json:"workload"`
		InsertFraction float64 `json:"insert_fraction"`
		SLOTargetNS    int64   `json:"slo_target_ns"`
		SLOWindows     int64   `json:"slo_windows"`
		SLOGoodWindows int64   `json:"slo_good_windows"`
		SLOAttainment  float64 `json:"slo_attainment"`
	} `json:"results"`
}

func loadSloReport(path string) (sloReport, error) {
	var rep sloReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil || len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: not a serve or churn report", path)
	}
	return rep, nil
}

// sloKey names one result row: the workload, qualified by the insert
// fraction for churn reports where every row shares the workload name.
func sloKey(workload string, frac float64) string {
	if workload == "" {
		workload = "?"
	}
	if frac > 0 {
		return fmt.Sprintf("%s@%.2f", workload, frac)
	}
	return workload
}

// runSlo gates the SLO-attainment columns of two serve or churn reports. A
// row regresses when its new attainment falls below the -min floor, or
// drops by more than -drop from the baseline's attainment for the same
// key. Rows whose reports carry no SLO data (slo_windows 0 — recorded
// before SLO tracking existed, or with scraping disabled) are skipped, so
// old baselines don't fail the gate; they simply don't constrain it.
// Attainment is already a fraction of graded windows, so unlike the
// latency gates there is no tolerance ratio — the floor and the allowed
// drop are both absolute attainment fractions.
func runSlo(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat slo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		minAtt = fs.Float64("min", 0.9, "minimum SLO attainment per row (fraction of good windows)")
		drop   = fs.Float64("drop", 0.05, "maximum attainment drop from the baseline row before flagging")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		usage(stderr)
		return 2
	}
	if *minAtt < 0 || *minAtt > 1 || *drop < 0 || *drop > 1 {
		fmt.Fprintln(stderr, "tracestat: -min and -drop must be in [0, 1]")
		return 2
	}
	base, err := loadSloReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	cur, err := loadSloReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "tracestat: %v\n", err)
		return 2
	}
	if diffs := base.Env.Mismatch(cur.Env); len(diffs) > 0 {
		fmt.Fprintf(stderr, "tracestat: WARNING: environment mismatch (attainment not directly comparable): %s\n",
			strings.Join(diffs, "; "))
	}

	baseBy := map[string]int{}
	for i, r := range base.Results {
		if r.SLOWindows > 0 {
			baseBy[sloKey(r.Workload, r.InsertFraction)] = i
		}
	}

	regressions := 0
	gated := 0
	fmt.Fprintf(stdout, "%-14s %10s %10s %10s %14s\n", "row", "target", "base", "new", "windows")
	for _, r := range cur.Results {
		key := sloKey(r.Workload, r.InsertFraction)
		if r.SLOWindows == 0 {
			fmt.Fprintf(stdout, "%-14s %10s %10s %10s %14s  (no SLO data, skipped)\n", key, "-", "-", "-", "-")
			continue
		}
		gated++
		baseCell := "-"
		verdict := "ok"
		if r.SLOAttainment < *minAtt {
			regressions++
			verdict = fmt.Sprintf("REGRESSION (below %.0f%% floor)", *minAtt*100)
		}
		if bi, ok := baseBy[key]; ok {
			b := base.Results[bi]
			baseCell = fmt.Sprintf("%.0f%%", b.SLOAttainment*100)
			if b.SLOTargetNS != r.SLOTargetNS {
				fmt.Fprintf(stderr, "tracestat: WARNING: %s: SLO target changed (%v -> %v); drop gate skipped for this row\n",
					key, time.Duration(b.SLOTargetNS), time.Duration(r.SLOTargetNS))
			} else if verdict == "ok" && r.SLOAttainment < b.SLOAttainment-*drop {
				regressions++
				verdict = fmt.Sprintf("REGRESSION (dropped %.0f%% > %.0f%% allowed)",
					(b.SLOAttainment-r.SLOAttainment)*100, *drop*100)
			}
		}
		fmt.Fprintf(stdout, "%-14s %10v %10s %9.0f%% %14s  %s\n",
			key, time.Duration(r.SLOTargetNS), baseCell, r.SLOAttainment*100,
			fmt.Sprintf("%d/%d", r.SLOGoodWindows, r.SLOWindows), verdict)
	}
	if gated == 0 {
		fmt.Fprintln(stderr, "tracestat: no row in the new report carries SLO data; nothing gated")
		return 2
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "tracestat: %d SLO regression(s) (floor %.0f%%, allowed drop %.0f%%)\n",
			regressions, *minAtt*100, *drop*100)
		return 1
	}
	fmt.Fprintf(stdout, "tracestat: SLO attainment holds across %d gated row(s) (floor %.0f%%, allowed drop %.0f%%)\n",
		gated, *minAtt*100, *drop*100)
	return 0
}

// roundDur trims a duration to four significant digits so table cells stay
// readable (1.234567ms -> 1.235ms).
func roundDur(d time.Duration) time.Duration {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	p := time.Duration(1)
	for abs >= 10*p {
		p *= 10
	}
	if p < 1000 {
		return d
	}
	return d.Round(p / 1000)
}
