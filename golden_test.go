package parconn

import (
	"bytes"
	"testing"
)

// TestGoldenAdjacencyFormat pins the exact bytes of the text format: other
// PBBS/Ligra tooling parses these files, so even whitespace changes are
// breaking.
func TestGoldenAdjacencyFormat(t *testing.T) {
	g, err := NewGraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	want := "AdjacencyGraph\n3\n4\n0\n1\n3\n1\n0\n2\n1\n"
	if buf.String() != want {
		t.Fatalf("format drifted:\ngot  %q\nwant %q", buf.String(), want)
	}
}

// TestGoldenBinaryFormat pins the binary header layout.
func TestGoldenBinaryFormat(t *testing.T) {
	g, err := NewGraph(2, []Edge{{U: 0, V: 1}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if string(b[:8]) != "PCONNGR1" {
		t.Fatalf("magic drifted: %q", b[:8])
	}
	// n=2, m=2 little-endian uint64s follow the magic.
	if b[8] != 2 || b[16] != 2 {
		t.Fatalf("header drifted: % x", b[8:24])
	}
	// total: 8 magic + 16 sizes + 3*8 offsets + 2*4 edges
	if len(b) != 8+16+24+8 {
		t.Fatalf("length %d", len(b))
	}
}

// TestGoldenDecompMinLabels pins decomp-min-CC's exact output for a fixed
// graph and seed. The algorithm is deterministic by design (writeMin
// winners are unique); if this test breaks, the randomized schedule or the
// tie-breaking changed, which silently invalidates recorded experiments.
func TestGoldenDecompMinLabels(t *testing.T) {
	g, err := NewGraph(8, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, // path component
		{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 4}, // triangle component
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ConnectedComponents(g, Options{Algorithm: DecompMin, Seed: 12345, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLabeling(g, labels); err != nil {
		t.Fatal(err)
	}
	// Re-running must give the identical labeling (not just partition).
	again, err := ConnectedComponents(g, Options{Algorithm: DecompMin, Seed: 12345, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range labels {
		if labels[v] != again[v] {
			t.Fatalf("decomp-min not deterministic at vertex %d", v)
		}
	}
}
