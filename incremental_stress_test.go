package parconn

import (
	"runtime"
	"sync"
	"testing"
)

// This file is the concurrency stress suite for Incremental, written to run
// under -race. The structural invariant it pins is snapshot atomicity:
// because each Insert batch is all-or-nothing with respect to validated
// snapshot scans, a reader that chains a whole block of vertices in ONE
// batch must never observe the block half-chained. Writers own disjoint
// vertex stripes so every interleaving of their batches is a valid state.

const (
	stressWriters   = 4
	stressReaders   = 4
	stressBlockSize = 8  // vertices chained per batch
	stressBlocks    = 60 // batches per writer
)

// stressBlockStart returns the first vertex of writer w's block b.
func stressBlockStart(w, b int) int32 {
	return int32((w*stressBlocks + b) * stressBlockSize)
}

// checkStressSnapshot asserts the all-or-nothing block property on one
// snapshot: every block is either fully chained under one label or still
// all singletons. Returns the number of fully-applied blocks so callers can
// also check monotonicity.
func checkStressSnapshot(t *testing.T, labels []int32) int {
	t.Helper()
	applied := 0
	for w := 0; w < stressWriters; w++ {
		for b := 0; b < stressBlocks; b++ {
			start := stressBlockStart(w, b)
			root := labels[start]
			chained := true
			singleton := true
			for i := int32(0); i < stressBlockSize; i++ {
				v := start + i
				if labels[v] != root {
					chained = false
				}
				if labels[v] != v {
					singleton = false
				}
			}
			switch {
			case chained:
				applied++
			case singleton:
				// batch not applied yet
			default:
				t.Errorf("torn snapshot: writer %d block %d is half-chained: %v",
					w, b, labels[start:start+stressBlockSize])
				return applied
			}
		}
	}
	return applied
}

// TestIncrementalStress runs disjoint-stripe writers against snapshot and
// point-query readers and checks that every observed labeling corresponds
// to a set of fully-applied batches, that epochs never regress, and that
// the component count only falls.
func TestIncrementalStress(t *testing.T) {
	n := stressWriters * stressBlocks * stressBlockSize
	inc := NewIncremental(n)

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(stressWriters + stressReaders)
	stop := make(chan struct{})

	for w := 0; w < stressWriters; w++ {
		go func(w int) {
			defer done.Done()
			start.Wait()
			for b := 0; b < stressBlocks; b++ {
				base := stressBlockStart(w, b)
				batch := make([]Edge, 0, stressBlockSize-1)
				for i := int32(1); i < stressBlockSize; i++ {
					batch = append(batch, Edge{U: base + i - 1, V: base + i})
				}
				merged, err := inc.Insert(batch)
				if err != nil {
					t.Errorf("writer %d block %d: %v", w, b, err)
					return
				}
				if merged != len(batch) {
					t.Errorf("writer %d block %d: merged %d of %d disjoint chain edges", w, b, merged, len(batch))
					return
				}
			}
		}(w)
	}

	for r := 0; r < stressReaders; r++ {
		go func(r int) {
			defer done.Done()
			start.Wait()
			lastEpoch := uint64(0)
			lastComponents := n + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := inc.Snapshot()
				if snap.Epoch < lastEpoch {
					t.Errorf("reader %d: epoch regressed %d -> %d", r, lastEpoch, snap.Epoch)
					return
				}
				lastEpoch = snap.Epoch
				if snap.Components > lastComponents {
					t.Errorf("reader %d: components grew %d -> %d", r, lastComponents, snap.Components)
					return
				}
				lastComponents = snap.Components
				applied := checkStressSnapshot(t, snap.Labels)
				// The counters must agree with the labeling: each applied
				// block merged blockSize-1 singletons away.
				if want := n - applied*(stressBlockSize-1); snap.Components != want {
					t.Errorf("reader %d: %d applied blocks but %d components (want %d)", r, applied, snap.Components, want)
					return
				}
				// Point queries stay within the stripes: vertices of
				// different writers never connect.
				u := stressBlockStart(0, 0)
				v := stressBlockStart(stressWriters-1, 0)
				if inc.Same(u, v) {
					t.Errorf("reader %d: disjoint stripes connected", r)
					return
				}
			}
		}(r)
	}

	start.Done()
	// Release the readers once every writer batch has landed (or a writer
	// bailed out with an error, which also stops the epoch from advancing).
	for inc.Epoch() < uint64(stressWriters*stressBlocks) && !t.Failed() {
		runtime.Gosched()
	}
	close(stop)
	done.Wait()
	if t.Failed() {
		return
	}

	// Final state: every batch applied exactly once.
	snap := inc.Snapshot()
	if got := checkStressSnapshot(t, snap.Labels); got != stressWriters*stressBlocks {
		t.Fatalf("final snapshot has %d applied blocks, want %d", got, stressWriters*stressBlocks)
	}
	wantComponents := n - stressWriters*stressBlocks*(stressBlockSize-1)
	if snap.Components != wantComponents {
		t.Fatalf("final components = %d, want %d", snap.Components, wantComponents)
	}
	if snap.Epoch != uint64(stressWriters*stressBlocks) {
		t.Fatalf("final epoch = %d, want %d", snap.Epoch, stressWriters*stressBlocks)
	}
}

// TestIncrementalStressSharedEdges hammers the same edge set from every
// writer: merges must be counted exactly once across racing duplicate
// unions (the CAS loser sees the components already joined).
func TestIncrementalStressSharedEdges(t *testing.T) {
	const n = 512
	const writers = 8
	inc := NewIncremental(n)
	// One spanning chain over all of [0, n), inserted whole by every writer.
	chain := make([]Edge, 0, n-1)
	for v := int32(1); v < n; v++ {
		chain = append(chain, Edge{U: v - 1, V: v})
	}
	var wg sync.WaitGroup
	totalMerged := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m, err := inc.Insert(chain)
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			totalMerged[w] = m
		}(w)
	}
	wg.Wait()
	sum := 0
	for _, m := range totalMerged {
		sum += m
	}
	if sum != n-1 {
		t.Fatalf("racing duplicate inserts merged %d total, want exactly %d", sum, n-1)
	}
	if inc.Components() != 1 {
		t.Fatalf("components = %d, want 1", inc.Components())
	}
	snap := inc.Snapshot()
	root := snap.Labels[0]
	for v, l := range snap.Labels {
		if l != root {
			t.Fatalf("vertex %d not in the single component (label %d)", v, l)
		}
	}
}

// TestIncrementalCompactUnderLoad races Compact against live inserts and
// snapshot readers: the swap must never produce a torn snapshot or lose the
// writers' stripes (Compact relabels a graph that already includes them).
func TestIncrementalCompactUnderLoad(t *testing.T) {
	const n = 1024
	// The static graph Compact relabels: chains of 4.
	var edges []Edge
	for v := int32(0); v < n; v++ {
		if v%4 != 0 {
			edges = append(edges, Edge{U: v - 1, V: v})
		}
	}
	g, err := NewGraph(n, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ConnectedComponents(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncrementalFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Re-inserting writers: edges already in g, so Compact never loses them.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := edges[(i*7+w*13)%len(edges)]
				if _, err := inc.InsertEdge(e.U, e.V); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Snapshot readers: the partition must always be exactly g's, since
	// every insert is a re-insert.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := inc.Snapshot()
				if got := snap.Components; got != NumComponents(labels) {
					t.Errorf("reader %d: components = %d, want %d", r, got, NumComponents(labels))
					return
				}
			}
		}(r)
	}
	for i := 0; i < 8; i++ {
		if err := inc.Compact(g, Options{Seed: uint64(i + 2)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := VerifyLabeling(g, inc.Labels()); err != nil {
		t.Fatal(err)
	}
}
