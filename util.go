package parconn

import (
	"io"

	"parconn/internal/graph"
	"parconn/internal/unionfind"
)

// VerifyLabeling checks in O(n + m) that labels is a correct canonical
// connected-components labeling of g, returning a descriptive error for the
// first violation found. Downstream systems can use it to validate labels
// produced elsewhere (or to test this library against themselves).
func VerifyLabeling(g *Graph, labels []int32) error {
	return graph.VerifyLabeling(g.g, labels)
}

// Stats summarizes a graph's structure; see Summarize.
type Stats = graph.Stats

// Summarize computes structural statistics of g: degree distribution
// summary, component counts, and a double-sweep diameter lower bound.
// Intended for reporting, not hot paths.
func Summarize(g *Graph, seed uint64) Stats {
	return graph.Summarize(g.g, seed)
}

// WriteBinary serializes g in the library's compact binary format (magic
// "PCONNGR1"), which loads much faster than the text format for large
// graphs.
func (g *Graph) WriteBinary(w io.Writer) error { return g.g.WriteBinary(w) }

// ReadBinaryGraph parses a graph in the binary format written by
// WriteBinary.
func ReadBinaryGraph(r io.Reader) (*Graph, error) {
	gg, err := graph.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: gg}, nil
}

// UnionFind is an incremental connectivity structure over a fixed vertex
// set: insert edges with Union and query with Find/Connected at any point.
// It is safe for concurrent use and is the structure behind the library's
// spanning-forest baselines (lock-free linking with CAS, path halving).
//
// For a static graph, ConnectedComponents is faster; UnionFind is for
// streaming / incremental settings.
type UnionFind struct {
	u *unionfind.Concurrent
	n int
}

// NewUnionFind returns a structure over n isolated vertices.
func NewUnionFind(n int) *UnionFind {
	return &UnionFind{u: unionfind.NewConcurrent(n), n: n}
}

// Union connects u and v; it reports whether they were previously in
// different components.
func (s *UnionFind) Union(u, v int32) bool { return s.u.Union(u, v) }

// Find returns the current canonical vertex of v's component. Canonical
// vertices may change as edges are inserted.
func (s *UnionFind) Find(v int32) int32 { return s.u.Find(v) }

// Connected reports whether u and v are currently in the same component.
// Under concurrent Union calls the answer reflects some linearization.
func (s *UnionFind) Connected(u, v int32) bool { return s.u.Find(u) == s.u.Find(v) }

// Labels materializes the current components as a canonical labeling. It
// must not run concurrently with Union.
func (s *UnionFind) Labels() []int32 {
	labels := make([]int32, s.n)
	for v := range labels {
		labels[v] = s.u.Find(int32(v))
	}
	return labels
}

// ReadEdgeList parses a SNAP-style whitespace-separated edge list ('#'/'%'
// comments allowed), compacting arbitrary vertex ids to [0, n) — the format
// the paper's com-Orkut input ships in. The graph is symmetrized and
// deduplicated.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	gg, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: gg}, nil
}

// WriteEdgeList writes g as a SNAP-style edge list (each undirected edge
// once).
func (g *Graph) WriteEdgeList(w io.Writer) error { return g.g.WriteEdgeList(w) }
