package parconn

// This file holds one testing.B benchmark family per table/figure of the
// paper's evaluation, at sizes small enough for `go test -bench=.` to
// finish quickly. The full harness with paper-shaped output is cmd/bench;
// EXPERIMENTS.md maps both to the paper.

import (
	"fmt"
	"math"
	"testing"
)

// benchGraphs builds the six Table 1 inputs at bench scale (one to two
// orders of magnitude below the harness defaults, which are themselves
// ~100x below the paper).
func benchGraphs() map[string]*Graph {
	return map[string]*Graph{
		"random":    RandomGraph(200_000, 5, 0xB01),
		"rMat":      RMatGraph(18, RMatOptions{EdgeFactor: 5, Seed: 0xB02, KeepDuplicates: true}),
		"rMat2":     RMatGraph(12, RMatOptions{EdgeFactor: 200, Seed: 0xB03, KeepDuplicates: true}),
		"3D-grid":   Grid3DGraph(58, 0xB04),
		"line":      LineGraph(400_000, 0xB05),
		"com-Orkut": SocialGraph(14, 0xB06),
	}
}

var table1Order = []string{"random", "rMat", "rMat2", "3D-grid", "line", "com-Orkut"}

// BenchmarkTable1Generators measures graph construction per input family
// (Table 1's inputs themselves).
func BenchmarkTable1Generators(b *testing.B) {
	gens := map[string]func() *Graph{
		"random":    func() *Graph { return RandomGraph(200_000, 5, 0xB01) },
		"rMat":      func() *Graph { return RMatGraph(18, RMatOptions{EdgeFactor: 5, Seed: 0xB02, KeepDuplicates: true}) },
		"rMat2":     func() *Graph { return RMatGraph(12, RMatOptions{EdgeFactor: 200, Seed: 0xB03, KeepDuplicates: true}) },
		"3D-grid":   func() *Graph { return Grid3DGraph(58, 0xB04) },
		"line":      func() *Graph { return LineGraph(400_000, 0xB05) },
		"com-Orkut": func() *Graph { return SocialGraph(14, 0xB06) },
	}
	for _, name := range table1Order {
		b.Run(name, func(b *testing.B) {
			var g *Graph
			for i := 0; i < b.N; i++ {
				g = gens[name]()
			}
			b.ReportMetric(float64(g.NumEdges()), "edges")
		})
	}
}

// BenchmarkTable2 measures every implementation on every input (Table 2's
// grid). Run a slice with e.g. -bench 'Table2/random'.
func BenchmarkTable2(b *testing.B) {
	graphs := benchGraphs()
	for _, gname := range table1Order {
		g := graphs[gname]
		for _, alg := range Algorithms {
			b.Run(fmt.Sprintf("%s/%s", gname, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 42}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCCAllocs measures steady-state allocations of the decomposition
// CC variants with warm scheduler and scratch arena: one untimed warm-up run
// populates the workspace free lists, so the timed iterations see the reuse
// path (per-level buffers recycled, loop bodies pre-bound). The remaining
// allocations are the result labels handed to the caller (which cannot be
// recycled) plus per-parallel-section bookkeeping.
func BenchmarkCCAllocs(b *testing.B) {
	graphs := benchGraphs()
	for _, gname := range []string{"rMat", "random"} {
		g := graphs[gname]
		for _, alg := range []Algorithm{DecompArbHybrid, DecompArb} {
			b.Run(fmt.Sprintf("%s/%s", gname, alg), func(b *testing.B) {
				opt := Options{Algorithm: alg, Seed: 42}
				if _, err := ConnectedComponents(g, opt); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ConnectedComponents(g, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig2Threads measures the decomposition CC at several worker
// counts (Figure 2's thread sweep; on a single-core host the points
// coincide).
func BenchmarkFig2Threads(b *testing.B) {
	g := RandomGraph(200_000, 5, 0xF2)
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ConnectedComponents(g, Options{Algorithm: DecompArbHybrid, Procs: procs, Seed: 42}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3BetaSweep measures the three decomposition variants across
// beta (Figure 3).
func BenchmarkFig3BetaSweep(b *testing.B) {
	g := RandomGraph(200_000, 5, 0xF3)
	for _, alg := range []Algorithm{DecompArb, DecompArbHybrid, DecompMin} {
		for _, beta := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
			b.Run(fmt.Sprintf("%s/beta=%.2f", alg, beta), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ConnectedComponents(g, Options{Algorithm: alg, Beta: beta, Seed: 42}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4EdgeDecay reports the per-iteration edge decay of
// decomp-arb-hybrid-CC as custom metrics (Figure 4): levels = recursion
// depth, shrink = geometric mean per-level edge shrink factor.
func BenchmarkFig4EdgeDecay(b *testing.B) {
	g := RandomGraph(200_000, 5, 0xF4)
	for _, beta := range []float64{0.1, 0.3, 0.5} {
		b.Run(fmt.Sprintf("beta=%.1f", beta), func(b *testing.B) {
			var levels []LevelStat
			for i := 0; i < b.N; i++ {
				levels = levels[:0]
				if _, err := ConnectedComponents(g, Options{Algorithm: DecompArbHybrid, Beta: beta, Seed: 42, Levels: &levels}); err != nil {
					b.Fatal(err)
				}
			}
			if len(levels) > 1 {
				first := float64(levels[0].EdgesIn)
				last := float64(levels[len(levels)-1].EdgesIn)
				steps := float64(len(levels) - 1)
				b.ReportMetric(float64(len(levels)), "levels")
				if last > 0 {
					b.ReportMetric(math.Pow(last/first, 1/steps), "shrink")
				}
			}
		})
	}
}

// BenchmarkFig567Phases measures each decomposition variant once per input
// (the runs behind the Figures 5-7 breakdowns; per-phase numbers come from
// cmd/bench).
func BenchmarkFig567Phases(b *testing.B) {
	graphs := benchGraphs()
	for _, alg := range []Algorithm{DecompMin, DecompArb, DecompArbHybrid} {
		for _, gname := range []string{"random", "rMat", "3D-grid", "line"} {
			g := graphs[gname]
			b.Run(fmt.Sprintf("%s/%s", alg, gname), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ConnectedComponents(g, Options{Algorithm: alg, Seed: 42}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8Scaling measures decomp-arb-hybrid-CC across problem sizes
// (Figure 8: near-linear time in m).
func BenchmarkFig8Scaling(b *testing.B) {
	for _, m := range []int{100_000, 200_000, 400_000, 800_000} {
		n := m / 5
		g := RandomGraph(n, 5, uint64(m))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ConnectedComponents(g, Options{Algorithm: DecompArbHybrid, Seed: 42}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m)/float64(b.Elapsed().Nanoseconds()/int64(b.N))*1000, "edges/us")
		})
	}
}
