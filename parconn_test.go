package parconn

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewGraphBasics(t *testing.T) {
	g, err := NewGraph(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("wrong degrees")
	}
	if len(g.Neighbors(0)) != 1 || g.Neighbors(0)[0] != 1 {
		t.Fatalf("Neighbors(0)=%v", g.Neighbors(0))
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree=%d", g.MaxDegree())
	}
	if !strings.Contains(g.String(), "n=4") {
		t.Fatalf("String()=%q", g.String())
	}
}

func TestNewGraphErrors(t *testing.T) {
	if _, err := NewGraph(-1, nil, BuildOptions{}); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := NewGraph(2, []Edge{{U: 0, V: 5}}, BuildOptions{}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := NewGraph(2, []Edge{{U: -1, V: 0}}, BuildOptions{}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

func TestNewGraphDuplicates(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 0, V: 1}}
	dedup, err := NewGraph(2, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dedup.NumEdges() != 1 {
		t.Fatalf("dedup m=%d", dedup.NumEdges())
	}
	kept, err := NewGraph(2, edges, BuildOptions{KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if kept.NumEdges() != 3 {
		t.Fatalf("kept m=%d", kept.NumEdges())
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := RMatGraph(8, RMatOptions{EdgeFactor: 4, Seed: 1})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed shape")
	}
	if _, err := ReadGraph(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Asymmetric input must be rejected at load time.
	asym := "AdjacencyGraph\n2\n1\n0\n1\n1\n"
	if _, err := ReadGraph(strings.NewReader(asym)); err == nil {
		t.Fatal("asymmetric graph accepted")
	}
}

func TestGeneratorsShape(t *testing.T) {
	if g := RandomGraph(1000, 5, 1); g.NumVertices() != 1000 || g.NumEdges() < 4900 {
		t.Fatalf("random: %v", g)
	}
	if g := Grid3DGraph(5, 1); g.NumVertices() != 125 || g.NumEdges() != 375 {
		t.Fatalf("grid: %v", g)
	}
	if g := LineGraph(100, 1); g.NumEdges() != 99 {
		t.Fatalf("line: %v", g)
	}
	if g := StarGraph(10); g.MaxDegree() != 9 {
		t.Fatalf("star: %v", g)
	}
	if g := SocialGraph(9, 1); float64(g.NumEdges())/float64(g.NumVertices()) < 10 {
		t.Fatalf("social not dense: %v", g)
	}
}

func TestUnionGraphs(t *testing.T) {
	g := Union(LineGraph(10, 1), StarGraph(5), LineGraph(3, 2))
	if g.NumVertices() != 18 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	labels, err := ConnectedComponents(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if NumComponents(labels) != 3 {
		t.Fatalf("components=%d want 3", NumComponents(labels))
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[Algorithm]string{
		DecompArbHybrid:  "decomp-arb-hybrid-CC",
		DecompArb:        "decomp-arb-CC",
		DecompMin:        "decomp-min-CC",
		SerialSF:         "serial-SF",
		ParallelSFPBBS:   "parallel-SF-PBBS",
		ParallelSFPRM:    "parallel-SF-PRM",
		HybridBFS:        "hybrid-BFS-CC",
		Multistep:        "multistep-CC",
		LabelProp:        "labelprop-CC",
		ShiloachVishkin:  "sv-CC",
		RandomMate:       "randmate-CC",
		ParallelSFVerify: "parallel-SF-verify",
		SampledSF:        "sampled-SF",
		LDDUnionFind:     "ldd-uf-CC",
	}
	if len(Algorithms) != len(want) {
		t.Fatalf("Algorithms has %d entries, want %d", len(Algorithms), len(want))
	}
	for a, name := range want {
		if a.String() != name {
			t.Fatalf("%d.String()=%q want %q", int(a), a.String(), name)
		}
		back, err := ParseAlgorithm(name)
		if err != nil || back != a {
			t.Fatalf("ParseAlgorithm(%q)=%v,%v", name, back, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("unknown name parsed")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm empty name")
	}
}

func TestConnectedComponentsErrors(t *testing.T) {
	g := LineGraph(10, 1)
	if _, err := ConnectedComponents(g, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := ConnectedComponents(g, Options{Beta: 7}); err == nil {
		t.Fatal("bad beta accepted")
	}
}

func TestLabelHelpers(t *testing.T) {
	labels := []int32{5, 5, 9, 5, 9}
	if NumComponents(labels) != 2 {
		t.Fatal("NumComponents")
	}
	sizes := ComponentSizes(labels)
	if sizes[5] != 3 || sizes[9] != 2 {
		t.Fatalf("sizes=%v", sizes)
	}
	compact, k := CompactLabels(labels)
	if k != 2 {
		t.Fatalf("k=%d", k)
	}
	wantCompact := []int32{0, 0, 1, 0, 1}
	for i := range wantCompact {
		if compact[i] != wantCompact[i] {
			t.Fatalf("compact=%v", compact)
		}
	}
	if !SameComponent(labels, 0, 3) || SameComponent(labels, 0, 2) {
		t.Fatal("SameComponent")
	}
}

func TestSpanningForestPublic(t *testing.T) {
	g := Union(LineGraph(100, 1), Grid3DGraph(4, 2))
	forest := SpanningForest(g, 0)
	labels, err := ConnectedComponents(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := g.NumVertices() - NumComponents(labels)
	if len(forest) != want {
		t.Fatalf("forest edges=%d want %d", len(forest), want)
	}
}

func TestDecomposePublic(t *testing.T) {
	g := RandomGraph(5000, 5, 3)
	d, err := Decompose(g, DecompOptions{Beta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Labels) != g.NumVertices() {
		t.Fatal("labels length")
	}
	if d.NumPartitions < 1 || d.Rounds < 1 {
		t.Fatalf("degenerate decomposition: %+v", d)
	}
	if d.CutEdges < 0 || d.CutEdges > 2*g.NumEdges() {
		t.Fatalf("cut=%d", d.CutEdges)
	}
	// Input graph must be untouched: rerun and compare.
	d2, err := Decompose(g, DecompOptions{Beta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumPartitions != d.NumPartitions || d2.CutEdges != d.CutEdges {
		t.Fatal("Decompose not reproducible on the same input")
	}
	if _, err := Decompose(g, DecompOptions{Algorithm: SerialSF}); err == nil {
		t.Fatal("non-decomposition algorithm accepted")
	}
}

func TestProcsHelper(t *testing.T) {
	if Procs(3) != 3 || Procs(0) < 1 {
		t.Fatal("Procs")
	}
}
