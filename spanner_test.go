package parconn

import (
	"math"
	"testing"

	"parconn/internal/graph"
	"parconn/internal/prand"
)

// buildSub materializes a spanner edge list as a Graph for distance checks.
func buildSub(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	sub, err := NewGraph(n, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestSpannerPreservesConnectivity(t *testing.T) {
	for name, g := range map[string]*Graph{
		"random":     RandomGraph(3000, 5, 1),
		"grid3d":     Grid3DGraph(10, 2),
		"line":       LineGraph(2000, 3),
		"rmat":       RMatGraph(10, RMatOptions{EdgeFactor: 6, Seed: 4}),
		"many-comps": Union(LineGraph(100, 5), Grid2DGraph(7, 6), mustGraph(10, nil)),
	} {
		for _, beta := range []float64{0.05, 0.2, 0.5} {
			edges, err := Spanner(g, SpannerOptions{Beta: beta, Seed: 7})
			if err != nil {
				t.Fatalf("%s/beta=%v: %v", name, beta, err)
			}
			// Subset check: every spanner edge must exist in g.
			for _, e := range edges {
				found := false
				for _, u := range g.Neighbors(e.U) {
					if u == e.V {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: spanner edge (%d,%d) not in graph", name, e.U, e.V)
				}
			}
			sub := buildSub(t, g.NumVertices(), edges)
			want := graph.RefCC(g.g)
			got := graph.RefCC(sub.g)
			if !graph.SamePartition(want, got) {
				t.Fatalf("%s/beta=%v: spanner changed connectivity", name, beta)
			}
		}
	}
}

func TestSpannerSizeBound(t *testing.T) {
	// Expected size: n - 1 + 2*beta*m representative edges; allow 2x slack
	// over the bound on the concentrated line/grid inputs.
	for name, g := range map[string]*Graph{
		"line":   LineGraph(20000, 1),
		"grid3d": Grid3DGraph(20, 2),
	} {
		const beta = 0.1
		edges, err := Spanner(g, SpannerOptions{Beta: beta, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		bound := float64(g.NumVertices()) + 2*2*beta*float64(g.NumEdges())
		if float64(len(edges)) > bound {
			t.Fatalf("%s: %d spanner edges exceeds 2x expected bound %.0f", name, len(edges), bound)
		}
	}
}

func TestSpannerStretchBound(t *testing.T) {
	// Sampled pairs: spanner distance <= (2*rounds+1) * graph distance.
	g := Grid3DGraph(12, 5)
	const beta = 0.2
	edges, err := Spanner(g, SpannerOptions{Beta: beta, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sub := buildSub(t, g.NumVertices(), edges)
	// The radius is bounded by the decomposition's round count; bound it
	// generously by 4*ln(n)/beta + 20 as in the decomposition tests.
	n := float64(g.NumVertices())
	maxStretch := 2*(4*math.Log(n)/beta+20) + 1
	src := prand.New(1)
	for trial := 0; trial < 5; trial++ {
		s := int32(src.Intn(g.NumVertices()))
		dg, err := BFS(g, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := BFS(sub, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		for v := range dg.Dist {
			if dg.Dist[v] < 0 {
				if ds.Dist[v] >= 0 {
					t.Fatal("spanner connects unconnected vertices")
				}
				continue
			}
			if ds.Dist[v] < 0 {
				t.Fatalf("vertex %d unreachable in spanner", v)
			}
			if float64(ds.Dist[v]) > maxStretch*math.Max(1, float64(dg.Dist[v])) {
				t.Fatalf("stretch at %d: %d vs %d exceeds %.0f", v, ds.Dist[v], dg.Dist[v], maxStretch)
			}
		}
	}
}

func TestSpannerEmptyAndTiny(t *testing.T) {
	if edges, err := Spanner(mustGraph(0, nil), SpannerOptions{}); err != nil || len(edges) != 0 {
		t.Fatal("empty graph")
	}
	if edges, err := Spanner(mustGraph(5, nil), SpannerOptions{}); err != nil || len(edges) != 0 {
		t.Fatal("isolated vertices need no edges")
	}
	edges, err := Spanner(mustGraph(2, []Edge{{U: 0, V: 1}}), SpannerOptions{})
	if err != nil || len(edges) != 1 {
		t.Fatalf("single edge: %v %v", edges, err)
	}
}
