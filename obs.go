package parconn

import (
	"io"
	"time"

	"parconn/internal/core"
	"parconn/internal/decomp"
	"parconn/internal/obs"
)

// This file is the public face of the observability layer (internal/obs):
// type aliases so external callers can implement Recorder or consume events
// without importing an internal package, plus constructors for the three
// shipped sinks and the legacy-view helpers.

// Recorder receives the structured event stream of connectivity runs: one
// RunStart/RunEnd pair per ConnectedComponents call, LevelStart/LevelEnd per
// contraction level, Round per BFS round, Phase per timed section, and
// Counter for run-level totals (arena bytes reused/allocated, pool worker
// joins). Attach one via Options.Recorder; nil disables all instrumentation
// at the cost of one pointer test per site. Methods are invoked only by the
// run's coordinating goroutine, between parallel sections.
type Recorder = obs.Recorder

// Event types delivered to a Recorder; see the field docs in internal/obs.
type (
	RunStart   = obs.RunStart
	RunEnd     = obs.RunEnd
	LevelStart = obs.LevelStart
	LevelEnd   = obs.LevelEnd
	Round      = obs.Round
	Phase      = obs.Phase
	Counter    = obs.Counter
)

// Span is one sampled request through the serving stack (request plane):
// trace ID, endpoint, status, latency, batch size, and — for inserts — the
// incremental epoch the request published. Spans ride the same JSONL
// encoding as run-plane events under the "span" kind tag.
type Span = obs.Span

// SpanRecorder is the sink extension receiving request spans; JSONLRecorder
// and FlightRecorder implement it.
type SpanRecorder = obs.SpanRecorder

// Trace is the in-memory Recorder: it stores every event in arrival order
// and can re-emit them as JSONL. It subsumes PhaseTimes/LevelStat — see
// PhaseTimesOf and LevelStatsOf.
type Trace = obs.Trace

// NewTrace returns an empty in-memory trace recorder.
func NewTrace() *Trace { return obs.NewTrace() }

// JSONLRecorder streams events to an io.Writer as JSON lines (one object
// per event, tagged with an "ev" kind field). Call Flush before closing the
// underlying writer.
type JSONLRecorder = obs.JSONLWriter

// NewJSONLRecorder returns a recorder streaming JSONL to w.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder { return obs.NewJSONLWriter(w) }

// NewExpvarRecorder returns a recorder aggregating events into
// expvar-published counters for long-running embedders (prefix "" means
// "parconn_"). Registration is process-permanent; repeated construction
// with the same prefix reuses the existing variables.
func NewExpvarRecorder(prefix string) Recorder { return obs.NewExpvar(prefix) }

// MultiRecorder fans events out to every non-nil recorder, returning nil
// when all are nil.
func MultiRecorder(recs ...Recorder) Recorder { return obs.Multi(recs...) }

// Histogram counts non-negative samples (nanosecond durations, frontier
// sizes) in fixed log2-spaced buckets; recording is wait-free and
// allocation-free, and histograms merge. The zero value is ready to use.
type Histogram = obs.Histogram

// HistogramSnapshot is a point-in-time histogram copy with quantile
// estimation (the JSON shape served by the debug endpoint).
type HistogramSnapshot = obs.HistogramSnapshot

// HistogramSet is a Recorder aggregating the event stream into histograms:
// per-(level, phase) durations, per-round frontier sizes and durations.
type HistogramSet = obs.HistogramSet

// NewHistogramSet returns an empty histogram-aggregating recorder.
func NewHistogramSet() *HistogramSet { return obs.NewHistogramSet() }

// FlightRecorder retains the most recent events in a bounded ring for live
// or post-mortem inspection of a long run's tail.
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder returns a recorder retaining the last n events (n <= 0
// selects the default capacity).
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewFlightRecorder(n) }

// Progress exposes the engine's current run/level/round/phase through
// atomics, so a concurrent reader never blocks the coordinator.
type Progress = obs.Progress

// NewProgress returns an empty live-progress recorder.
func NewProgress() *Progress { return obs.NewProgress() }

// Env records the execution environment a trace was captured in; traces
// from mismatched environments are not directly comparable.
type Env = obs.Env

// CaptureEnv reads the current process environment (go version, GOMAXPROCS,
// CPU count, OS/arch).
func CaptureEnv() Env { return obs.CaptureEnv() }

// TraceEnvOf extracts the capture environment of a parsed trace (from its
// meta header or first RunStart), zero when the trace predates recording.
func TraceEnvOf(events []TraceEvent) Env { return obs.EnvOf(events) }

// TraceEvent is one parsed trace record: the JSONL kind tag plus the
// concrete event struct (RunStart, Round, ...) by value.
type TraceEvent = obs.Event

// ReplayTrace dispatches parsed trace events back into a Recorder, letting
// offline tools aggregate stored traces through the live sinks.
func ReplayTrace(rec Recorder, events []TraceEvent) { obs.Replay(rec, events) }

// ParseTrace decodes a JSONL trace stream (as written by JSONLRecorder or
// Trace.WriteJSONL) back into typed events.
func ParseTrace(r io.Reader) ([]TraceEvent, error) { return obs.ParseJSONL(r) }

// TraceSummary aggregates a validated trace (counts per event kind).
type TraceSummary = obs.Summary

// ValidateTrace parses a JSONL trace stream and checks its structural
// invariants: run/level bracketing, monotonically non-increasing per-level
// edge counts (the paper's geometric-decay direction), non-negative counts
// and durations, and known phase/counter names.
func ValidateTrace(r io.Reader) (TraceSummary, error) { return obs.ValidateJSONL(r) }

// ValidateTraceEvents checks the same invariants on already-parsed events
// (e.g. a Trace's Events slice re-parsed from JSONL).
func ValidateTraceEvents(events []obs.Event) (TraceSummary, error) { return obs.Validate(events) }

// PhaseTimesOf rebuilds the legacy per-phase breakdown from a trace — the
// compatibility view that Options.Phases is now a shorthand for.
func PhaseTimesOf(t *Trace) PhaseTimes { return decomp.PhaseTimesFrom(t.Phases()) }

// LevelStatsOf rebuilds the legacy per-level statistics from a trace — the
// compatibility view that Options.Levels is now a shorthand for.
func LevelStatsOf(t *Trace) []LevelStat { return core.LevelStatsFrom(t.LevelEnds()) }

// now is the single clock read for run timing in this package; the
// stopwatch is diagnostic instrumentation, not algorithmic state.
func now() time.Time {
	return time.Now() //parconn:allow norand run-duration stopwatch only; algorithmic randomness comes from injected seeds
}

// countComponents counts the roots of a canonical labeling (labels[v] == v
// exactly once per component; every algorithm here returns canonical
// labelings, see VerifyLabeling).
func countComponents(labels []int32) int {
	n := 0
	for v, l := range labels {
		if int(l) == v {
			n++
		}
	}
	return n
}
