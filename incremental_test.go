package parconn

import (
	"testing"

	"parconn/internal/graph"
)

// TestIncrementalBasics covers the sequential contract: seeding, batched
// insertion, live queries, snapshot consistency, and the counters.
func TestIncrementalBasics(t *testing.T) {
	inc := NewIncremental(6)
	if inc.Vertices() != 6 || inc.Components() != 6 || inc.Epoch() != 0 {
		t.Fatalf("fresh state: vertices=%d components=%d epoch=%d", inc.Vertices(), inc.Components(), inc.Epoch())
	}
	merged, err := inc.Insert([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if merged != 2 {
		t.Fatalf("merged = %d, want 2 (triangle closes, self-loop is a no-op)", merged)
	}
	if inc.Components() != 4 || inc.Epoch() != 1 || inc.Edges() != 4 {
		t.Fatalf("after batch: components=%d epoch=%d edges=%d", inc.Components(), inc.Epoch(), inc.Edges())
	}
	if !inc.Same(0, 2) || inc.Same(0, 3) {
		t.Fatal("live Same answers wrong")
	}
	if inc.Find(0) != inc.Find(2) || inc.Find(-1) != -1 || inc.Find(6) != -1 {
		t.Fatal("live Find answers wrong")
	}
	snap := inc.Snapshot()
	if snap.Epoch != 1 || snap.Components != 4 || snap.Edges != 4 {
		t.Fatalf("snapshot meta: %+v", snap)
	}
	for v, l := range snap.Labels {
		if snap.Labels[l] != l {
			t.Fatalf("snapshot labeling not canonical at %d", v)
		}
	}
	// Re-inserting the same batch merges nothing and bumps the epoch.
	if m, _ := inc.Insert([]Edge{{U: 0, V: 1}, {U: 1, V: 2}}); m != 0 {
		t.Fatalf("re-insert merged %d", m)
	}
	if inc.Epoch() != 2 {
		t.Fatalf("epoch = %d after re-insert", inc.Epoch())
	}
	// The cached snapshot is epoch-validated: a fresh one reflects epoch 2.
	if s := inc.Snapshot(); s.Epoch != 2 || !graph.SamePartition(snap.Labels, s.Labels) {
		t.Fatalf("re-snapshot: epoch=%d", s.Epoch)
	}
}

// TestIncrementalRejectsBadBatch pins the all-or-nothing validation.
func TestIncrementalRejectsBadBatch(t *testing.T) {
	inc := NewIncremental(4)
	if _, err := inc.Insert([]Edge{{U: 0, V: 1}, {U: 2, V: 4}}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := inc.Insert([]Edge{{U: -1, V: 1}}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	// Nothing from the rejected batches may have been applied.
	if inc.Epoch() != 0 || inc.Components() != 4 || inc.Edges() != 0 {
		t.Fatalf("rejected batch leaked state: epoch=%d components=%d edges=%d", inc.Epoch(), inc.Components(), inc.Edges())
	}
	if m, err := inc.Insert(nil); err != nil || m != 0 {
		t.Fatalf("empty batch: merged=%d err=%v", m, err)
	}
	if inc.Epoch() != 0 {
		t.Fatal("empty batch bumped the epoch")
	}
}

// TestIncrementalFromLabels seeds from a real from-scratch labeling and
// checks that inserts continue from it.
func TestIncrementalFromLabels(t *testing.T) {
	g := RandomGraph(500, 1, 11)
	labels, err := ConnectedComponents(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncrementalFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Components() != NumComponents(labels) {
		t.Fatalf("seeded components = %d, want %d", inc.Components(), NumComponents(labels))
	}
	if !graph.SamePartition(labels, inc.Labels()) {
		t.Fatal("seeded labeling does not match the seed")
	}
	// A chain over the component roots collapses everything into one.
	var roots []int32
	for v, l := range labels {
		if int32(v) == l {
			roots = append(roots, int32(v))
		}
	}
	var batch []Edge
	for i := 1; i < len(roots); i++ {
		batch = append(batch, Edge{U: roots[i-1], V: roots[i]})
	}
	merged, err := inc.Insert(batch)
	if err != nil {
		t.Fatal(err)
	}
	if merged != len(batch) || inc.Components() != 1 {
		t.Fatalf("collapse: merged=%d/%d components=%d", merged, len(batch), inc.Components())
	}

	if _, err := NewIncrementalFromLabels([]int32{1, 0}); err == nil {
		t.Fatal("non-canonical seed accepted")
	}
}

// TestIncrementalCompact exercises the full-recompute hook: after inserts,
// Compact against an equivalent static graph must preserve the partition,
// reset the ingestion counter, and advance the epoch.
func TestIncrementalCompact(t *testing.T) {
	base := RandomGraph(300, 1, 5)
	labels, err := ConnectedComponents(base, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncrementalFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	extra := []Edge{{U: 0, V: 150}, {U: 10, V: 250}, {U: 5, V: 99}}
	if _, err := inc.Insert(extra); err != nil {
		t.Fatal(err)
	}
	before := inc.Labels()

	// The "same graph plus the inserted edges", built statically.
	var all []Edge
	for v := 0; v < base.NumVertices(); v++ {
		for _, w := range base.Neighbors(int32(v)) {
			if w > int32(v) {
				all = append(all, Edge{U: int32(v), V: w})
			}
		}
	}
	full, err := NewGraph(base.NumVertices(), append(all, extra...), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := inc.Epoch()
	if err := inc.Compact(full, Options{Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if inc.Epoch() != epochBefore+1 {
		t.Fatalf("Compact epoch: %d -> %d", epochBefore, inc.Epoch())
	}
	if inc.Edges() != 0 {
		t.Fatalf("Compact did not reset the ingestion counter: %d", inc.Edges())
	}
	after := inc.Labels()
	if !graph.SamePartition(before, after) {
		t.Fatal("Compact changed the partition")
	}
	if err := VerifyLabeling(full, after); err != nil {
		t.Fatal(err)
	}

	wrong := StarGraph(10)
	if err := inc.Compact(wrong, Options{}); err == nil {
		t.Fatal("Compact accepted a graph with a different vertex count")
	}
}
