package parconn

import (
	"fmt"
	"time"

	"parconn/internal/baseline"
	"parconn/internal/core"
	"parconn/internal/decomp"
	"parconn/internal/graph"
	"parconn/internal/parallel"
)

// Algorithm selects the connectivity algorithm. The zero value,
// DecompArbHybrid, is the paper's fastest variant and the right default.
type Algorithm int

const (
	// DecompArbHybrid is the paper's decomp-arb-hybrid-CC: decomposition
	// with arbitrary tie-breaking plus direction-optimizing dense rounds.
	// Expected linear work, O(log^3 n) depth w.h.p.
	DecompArbHybrid Algorithm = iota
	// DecompArb is decomp-arb-CC: one CAS pass per BFS round.
	DecompArb
	// DecompMin is decomp-min-CC: the original Miller et al. decomposition
	// with deterministic writeMin tie-breaking (two passes per round).
	DecompMin
	// SerialSF is the sequential union-find spanning-forest baseline.
	SerialSF
	// ParallelSFPBBS is the CAS-based concurrent union-find baseline
	// (PBBS-style spanning forest).
	ParallelSFPBBS
	// ParallelSFPRM is the lock-based concurrent union-find baseline
	// (Patwary-Refsnes-Manne-style spanning forest).
	ParallelSFPRM
	// HybridBFS runs a direction-optimizing BFS per component, one
	// component at a time (Ligra-style hybrid-BFS-CC).
	HybridBFS
	// Multistep is Slota et al.'s multistep-CC: BFS for the giant
	// component, then label propagation.
	Multistep
	// LabelProp is pure label propagation (graph-systems baseline).
	LabelProp
	// ShiloachVishkin is the classic O(m log n) PRAM algorithm.
	ShiloachVishkin
	// RandomMate is Reif's random-mate contraction algorithm, the other
	// classic O(m log n) family from the paper's introduction.
	RandomMate
	// ParallelSFVerify is the verification-based Patwary et al. spanning
	// forest (speculative lock-free unions + re-verification); the paper
	// mentions it alongside ParallelSFPRM.
	ParallelSFVerify
	// SampledSF is a two-phase sampling accelerator over the concurrent
	// union-find: union a per-vertex edge sample, guess the giant
	// component, then only process edges not already internal to it (in
	// the spirit of the sampling-based algorithms the paper cites and of
	// the later ConnectIt framework).
	SampledSF
	// LDDUnionFind runs one low-diameter decomposition as a clustering
	// phase and finishes the remaining inter-cluster edges with the
	// concurrent union-find — the non-recursive alternative to
	// DecompArbHybrid's contraction recursion.
	LDDUnionFind
)

// Algorithms lists every implemented algorithm in a stable order, for
// harnesses that sweep all of them.
var Algorithms = []Algorithm{
	DecompArbHybrid, DecompArb, DecompMin,
	SerialSF, ParallelSFPBBS, ParallelSFPRM,
	HybridBFS, Multistep, LabelProp, ShiloachVishkin, RandomMate,
	ParallelSFVerify, SampledSF, LDDUnionFind,
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case DecompArbHybrid:
		return "decomp-arb-hybrid-CC"
	case DecompArb:
		return "decomp-arb-CC"
	case DecompMin:
		return "decomp-min-CC"
	case SerialSF:
		return "serial-SF"
	case ParallelSFPBBS:
		return "parallel-SF-PBBS"
	case ParallelSFPRM:
		return "parallel-SF-PRM"
	case HybridBFS:
		return "hybrid-BFS-CC"
	case Multistep:
		return "multistep-CC"
	case LabelProp:
		return "labelprop-CC"
	case ShiloachVishkin:
		return "sv-CC"
	case RandomMate:
		return "randmate-CC"
	case ParallelSFVerify:
		return "parallel-SF-verify"
	case SampledSF:
		return "sampled-SF"
	case LDDUnionFind:
		return "ldd-uf-CC"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a paper-style name (as printed by String) back to an
// Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("parconn: unknown algorithm %q", name)
}

// DedupMode selects duplicate-edge handling during contraction; see the
// core package constants re-exported below.
type DedupMode = core.DedupMode

// Duplicate-edge handling during graph contraction.
const (
	// DedupHash removes duplicates with a phase-concurrent hash table (the
	// paper's choice).
	DedupHash = core.DedupHash
	// DedupSort removes duplicates by sorting.
	DedupSort = core.DedupSort
	// DedupNone keeps duplicates (ablation; correct but slower).
	DedupNone = core.DedupNone
)

// PhaseTimes accumulates per-phase wall-clock time for the decomposition
// algorithms (the paper's Figures 5-7 breakdowns).
type PhaseTimes = decomp.PhaseTimes

// LevelStat describes one recursion level of a decomposition-based run
// (the paper's Figure 4 per-iteration edge counts).
type LevelStat = core.LevelStat

// Options configures ConnectedComponents.
type Options struct {
	// Algorithm selects the implementation; zero is DecompArbHybrid.
	Algorithm Algorithm
	// Beta is the decomposition parameter in (0,1); zero means 0.2. The
	// paper's sweep (Figure 3) finds 0.05-0.2 fastest. Ignored by
	// non-decomposition algorithms.
	Beta float64
	// Seed makes randomized algorithms reproducible.
	Seed uint64
	// Procs bounds the number of parallel workers; <= 0 means all cores.
	Procs int
	// DenseFrac is the frontier fraction at which DecompArbHybrid switches
	// to read-based rounds; zero means the paper's 20%.
	DenseFrac float64
	// Dedup selects duplicate-edge removal during contraction.
	Dedup DedupMode
	// EdgeParallel, when positive, scans the adjacency lists of frontier
	// vertices with at least this many live edges using nested parallelism
	// (the paper's optional high-degree optimization, §4; DecompArb only).
	// Zero disables it, matching the paper's final configuration.
	EdgeParallel int
	// Phases, if non-nil, accumulates per-phase times (decomposition
	// algorithms only). A compatibility view over the Recorder stream.
	Phases *PhaseTimes
	// Levels, if non-nil, receives per-recursion-level statistics
	// (decomposition algorithms only). A compatibility view over the
	// Recorder stream.
	Levels *[]LevelStat
	// Recorder, if non-nil, receives the structured observability event
	// stream: run start/end for every algorithm, plus per-level, per-round,
	// per-phase, and counter events for the decomposition algorithms. See
	// the Recorder docs in obs.go. nil disables all instrumentation.
	Recorder Recorder
}

// validate rejects option combinations before they reach the engine, where
// they would surface as NaN shifts, degenerate all-dense rounds, or
// silently ignored knobs.
func (o Options) validate() error {
	switch o.Algorithm {
	case DecompArbHybrid, DecompArb, DecompMin:
		// Negated comparisons so NaN (which fails every ordered comparison)
		// is rejected instead of waved through.
		if o.Beta != 0 && !(o.Beta > 0 && o.Beta < 1) {
			return fmt.Errorf("parconn: Beta %v outside (0,1); zero selects the default 0.2", o.Beta)
		}
		if o.DenseFrac != 0 && !(o.DenseFrac > 0 && o.DenseFrac <= 1) {
			return fmt.Errorf("parconn: DenseFrac %v outside (0,1]; zero selects the default 0.2", o.DenseFrac)
		}
		if o.EdgeParallel < 0 {
			return fmt.Errorf("parconn: EdgeParallel %d is negative", o.EdgeParallel)
		}
	case LDDUnionFind:
		if o.Beta != 0 && !(o.Beta > 0 && o.Beta < 1) {
			return fmt.Errorf("parconn: Beta %v outside (0,1); zero selects the default 0.2", o.Beta)
		}
		if o.EdgeParallel != 0 {
			return fmt.Errorf("parconn: EdgeParallel is only meaningful for the decomposition algorithms, not %v", o.Algorithm)
		}
	default:
		if o.EdgeParallel != 0 {
			return fmt.Errorf("parconn: EdgeParallel is only meaningful for the decomposition algorithms, not %v", o.Algorithm)
		}
	}
	return nil
}

// ConnectedComponents labels the connected components of g: the returned
// slice maps every vertex to a canonical vertex id of its component, so
// labels[u] == labels[v] iff u and v are connected, and labels[labels[v]]
// == labels[v] for all v.
func ConnectedComponents(g *Graph, opt Options) ([]int32, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	rec := opt.Recorder
	if rec == nil {
		return connectedComponents(g, opt)
	}
	beta := opt.Beta
	switch opt.Algorithm {
	case DecompArbHybrid, DecompArb, DecompMin, LDDUnionFind:
		if beta == 0 {
			beta = 0.2
		}
	default:
		beta = 0
	}
	t0 := now()
	env := CaptureEnv()
	rec.RunStart(RunStart{
		Algorithm: opt.Algorithm.String(),
		Vertices:  g.NumVertices(),
		Edges:     g.g.NumDirected(),
		Procs:     parallel.Procs(opt.Procs),
		Seed:      opt.Seed,
		Beta:      beta,
		Env:       &env,
	})
	labels, err := connectedComponents(g, opt)
	end := RunEnd{Duration: time.Since(t0)}
	if err != nil {
		end.Err = err.Error()
	} else {
		end.Components = countComponents(labels)
	}
	rec.RunEnd(end)
	return labels, err
}

// connectedComponents dispatches a validated Options to the engine.
func connectedComponents(g *Graph, opt Options) ([]int32, error) {
	procs := parallel.Procs(opt.Procs)
	switch opt.Algorithm {
	case DecompArbHybrid, DecompArb, DecompMin:
		return core.CC(g.g, core.Options{
			Variant:      variantOf(opt.Algorithm),
			Beta:         opt.Beta,
			Seed:         opt.Seed,
			Procs:        procs,
			DenseFrac:    opt.DenseFrac,
			Dedup:        opt.Dedup,
			EdgeParallel: opt.EdgeParallel,
			Phases:       opt.Phases,
			Levels:       opt.Levels,
			Recorder:     opt.Recorder,
		})
	case SerialSF:
		return baseline.SerialSF(g.g), nil
	case ParallelSFPBBS:
		return baseline.ParallelSFPBBS(g.g, procs), nil
	case ParallelSFPRM:
		return baseline.ParallelSFPRM(g.g, procs), nil
	case HybridBFS:
		return baseline.HybridBFSCC(g.g, procs), nil
	case Multistep:
		return baseline.MultistepCC(g.g, procs), nil
	case LabelProp:
		return baseline.LabelPropCC(g.g, procs), nil
	case ShiloachVishkin:
		return baseline.ShiloachVishkinCC(g.g, procs), nil
	case RandomMate:
		return baseline.RandomMateCC(g.g, procs, opt.Seed), nil
	case ParallelSFVerify:
		return baseline.ParallelSFVerify(g.g, procs), nil
	case SampledSF:
		return baseline.SampledSF(g.g, procs, 2), nil
	case LDDUnionFind:
		return baseline.LDDSampledCC(g.g, procs, opt.Beta, opt.Seed)
	default:
		return nil, fmt.Errorf("parconn: unknown algorithm %d", int(opt.Algorithm))
	}
}

func variantOf(a Algorithm) decomp.Variant {
	switch a {
	case DecompArb:
		return decomp.Arb
	case DecompMin:
		return decomp.Min
	default:
		return decomp.ArbHybrid
	}
}

// SpanningForest returns the edges of a spanning forest of g (exactly
// NumVertices - NumComponents edges), computed with the concurrent
// union-find.
func SpanningForest(g *Graph, procs int) []Edge {
	return baseline.SpanningForest(g.g, procs)
}

// DecompOptions configures Decompose.
type DecompOptions struct {
	// Algorithm must be one of the decomposition variants; zero is
	// DecompArbHybrid.
	Algorithm Algorithm
	// Beta controls partition radius (O(log n / Beta)) versus cut size
	// (<= 2*Beta*m expected); zero means 0.2.
	Beta float64
	// Seed makes the decomposition reproducible.
	Seed uint64
	// Procs bounds parallelism; <= 0 means all cores.
	Procs int
	// Recorder, if non-nil, receives the structured event stream (run
	// bracketing plus per-round and per-phase events, all at level 0).
	Recorder Recorder
}

// Decomposition is the result of a low-diameter decomposition.
type Decomposition struct {
	// Labels[v] identifies v's partition by its center vertex.
	Labels []int32
	// NumPartitions is the number of partitions.
	NumPartitions int
	// Rounds is the number of parallel BFS rounds used; partition radii
	// are bounded by it.
	Rounds int
	// CutEdges is the number of directed edges crossing partitions.
	CutEdges int64
}

// Decompose computes a (beta, O(log n / beta)) low-diameter decomposition
// of g (Miller, Peng, Xu SPAA'13 / §2 of the paper): vertices are
// partitioned into balls of radius O(log n / beta) such that at most a
// 2*beta fraction of edges cross partitions in expectation. The input graph
// is not modified.
func Decompose(g *Graph, opt DecompOptions) (*Decomposition, error) {
	switch opt.Algorithm {
	case DecompArbHybrid, DecompArb, DecompMin:
	default:
		return nil, fmt.Errorf("parconn: Decompose requires a decomposition algorithm, got %v", opt.Algorithm)
	}
	procs := parallel.Procs(opt.Procs)
	rec := opt.Recorder
	t0 := now()
	if rec != nil {
		beta := opt.Beta
		if beta == 0 {
			beta = 0.2
		}
		env := CaptureEnv()
		rec.RunStart(RunStart{
			Algorithm: opt.Algorithm.String(),
			Vertices:  g.NumVertices(),
			Edges:     g.g.NumDirected(),
			Procs:     procs,
			Seed:      opt.Seed,
			Beta:      beta,
			Env:       &env,
		})
	}
	w := decomp.NewWGraph(g.g, procs)
	res, err := decomp.Decompose(w, variantOf(opt.Algorithm), decomp.Options{
		Beta:     opt.Beta,
		Seed:     opt.Seed,
		Procs:    procs,
		Recorder: rec,
	})
	if err != nil {
		if rec != nil {
			rec.RunEnd(RunEnd{Duration: time.Since(t0), Err: err.Error()})
		}
		return nil, err
	}
	d := &Decomposition{
		Labels:        res.Labels,
		NumPartitions: res.NumCenters,
		Rounds:        res.Rounds,
		CutEdges:      w.LiveEdges(procs),
	}
	if rec != nil {
		rec.RunEnd(RunEnd{Components: d.NumPartitions, Duration: time.Since(t0)})
	}
	return d, nil
}

// NumComponents returns the number of distinct components in a labeling.
func NumComponents(labels []int32) int {
	return graph.NumComponentsOf(labels)
}

// ComponentSizes returns the size of each component, keyed by label.
func ComponentSizes(labels []int32) map[int32]int {
	return graph.ComponentSizesOf(labels)
}

// ComponentSize is one component of a labeling: its label and vertex count.
type ComponentSize = graph.ComponentSize

// TopComponents returns the number of distinct components and the k largest
// (size descending, ties by ascending label; k <= 0 returns all, sorted).
func TopComponents(labels []int32, k int) (int, []ComponentSize) {
	return graph.ComponentSummary(labels, k)
}

// CompactLabels rewrites a labeling into dense ids 0..k-1 (ordered by first
// appearance) and returns the new labeling and k.
func CompactLabels(labels []int32) ([]int32, int) {
	remap := make(map[int32]int32, 64)
	out := make([]int32, len(labels))
	for i, l := range labels {
		id, ok := remap[l]
		if !ok {
			//parconn:allow conversioncheck len(remap) <= len(labels) and vertex ids are int32, so the map can never exceed 2^31 entries
			id = int32(len(remap))
			remap[l] = id
		}
		out[i] = id
	}
	return out, len(remap)
}

// SameComponent reports whether u and v share a component under labels.
func SameComponent(labels []int32, u, v int32) bool {
	return labels[u] == labels[v]
}
