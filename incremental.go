package parconn

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"parconn/internal/parallel"
	"parconn/internal/unionfind"
)

// Incremental is a concurrent, batched edge-insertion layer over a
// connectivity labeling: seed it from a from-scratch ConnectedComponents
// answer array (or empty, with NewIncremental), then Insert edge batches as
// the graph grows. Any number of goroutines may Insert, query (Find, Same,
// Components), and take Snapshots concurrently.
//
// Internally it is the library's lock-free CAS union-find
// (internal/unionfind.Concurrent, the Liu–Tarjan concurrent union-find with
// path compression, arXiv:1812.06177) plus an epoch/generation scheme for
// reads: point queries are answered live and linearizably from the CAS
// structure, while Labels/Snapshot materialize a full labeling that is
// guaranteed torn-free — it reflects exactly the batches applied up to some
// generation, never a half-applied batch. Writers are wait-free with
// respect to snapshots in the common case (snapshots validate an optimistic
// scan against the generation counters and retry); under sustained write
// pressure the snapshot path falls back to briefly excluding writers so it
// always terminates.
//
// Deletions are out of scope for the incremental path: handle them by
// rebuilding the graph without the deleted edges and calling Compact, which
// re-seeds the structure from a fresh from-scratch labeling (reusing the
// full parallel decomp-CC machinery) and collapses every union-find path
// built up by inserts.
//
// For a static graph, ConnectedComponents is faster; Incremental is for
// evolving graphs where recomputing from scratch on every mutation is too
// expensive.
type Incremental struct {
	n  int
	uf atomic.Pointer[unionfind.Concurrent] // swapped wholesale by Compact

	// Generation scheme: writers holds the number of Insert calls currently
	// applying unions; applied counts fully-applied batches (the epoch). A
	// labeling scan is consistent iff writers was zero and applied was
	// unchanged across the whole scan — see Snapshot.
	writers atomic.Int64
	applied atomic.Uint64

	components atomic.Int64 // live component count; each merge decrements
	edges      atomic.Int64 // edges accepted by Insert since seeding (self-loops and duplicates included)

	// mu serializes the stop-the-world paths: Insert holds it shared, so
	// Compact and the snapshot fallback can exclude writers by holding it
	// exclusively. The optimistic snapshot path never touches it.
	mu   sync.RWMutex
	snap atomic.Pointer[IncrementalSnapshot] // latest published snapshot (epoch-monotone)
}

// IncrementalSnapshot is one consistent view of an Incremental: a canonical
// labeling together with the generation it reflects. The Labels slice is
// shared by every caller that observes the same epoch and must be treated
// as read-only.
type IncrementalSnapshot struct {
	// Labels is a canonical connected-components labeling
	// (Labels[Labels[v]] == Labels[v]) of the graph as of Epoch.
	Labels []int32
	// Epoch is the insert-batch generation the labeling reflects; it
	// increases by one per applied batch (and per Compact).
	Epoch uint64
	// Components is the component count of Labels.
	Components int
	// Edges is the number of edges accepted by Insert as of Epoch (it does
	// not deduplicate re-inserted edges).
	Edges int64
}

// snapshotRetries bounds the optimistic scan attempts before Snapshot
// escalates to excluding writers; each failed attempt means a batch landed
// mid-scan, so a couple of retries absorb bursts without ever spinning
// unboundedly against a saturating writer.
const snapshotRetries = 3

// snapshotScanGrain is the per-block work of the parallel labeling scan;
// Find is a handful of atomic loads, so blocks are kept large.
const snapshotScanGrain = 1 << 13

// NewIncremental returns an Incremental over n isolated vertices.
func NewIncremental(n int) *Incremental {
	if n < 0 {
		n = 0
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	inc, err := NewIncrementalFromLabels(labels)
	if err != nil {
		panic(err) // identity labeling is always canonical
	}
	return inc
}

// NewIncrementalFromLabels returns an Incremental seeded from a canonical
// connectivity labeling — typically the answer array of a from-scratch
// ConnectedComponents run, which makes every component a depth-one
// union-find tree rooted at its canonical vertex. The labels slice is not
// retained for writing: it becomes the epoch-0 snapshot, so callers must
// not mutate it afterwards.
func NewIncrementalFromLabels(labels []int32) (*Incremental, error) {
	uf, err := unionfind.NewConcurrentFromLabels(labels)
	if err != nil {
		return nil, err
	}
	inc := &Incremental{n: len(labels)}
	inc.uf.Store(uf)
	inc.components.Store(int64(NumComponents(labels)))
	inc.snap.Store(&IncrementalSnapshot{Labels: labels, Epoch: 0, Components: NumComponents(labels)})
	return inc, nil
}

// Vertices returns the (fixed) vertex count.
func (inc *Incremental) Vertices() int { return inc.n }

// Epoch returns the current insert-batch generation: the number of batches
// fully applied (plus one per Compact).
func (inc *Incremental) Epoch() uint64 { return inc.applied.Load() }

// Components returns the live component count. It is exact between batches
// and, during concurrent inserts, reflects a prefix of each in-flight
// batch's merges; it never increases except through Compact.
func (inc *Incremental) Components() int { return int(inc.components.Load()) }

// Edges returns the number of edges accepted by Insert since seeding (or
// since the last Compact). Duplicates and self-loops count: this is an
// ingestion counter, not the graph's deduplicated edge count.
func (inc *Incremental) Edges() int64 { return inc.edges.Load() }

// Insert applies one batch of undirected edges, returning how many of them
// merged two previously-distinct components. The batch is validated up
// front and rejected whole if any endpoint is outside [0, Vertices()), so a
// batch is all-or-nothing; self-loops and duplicate edges are accepted
// no-ops. Any number of goroutines may Insert concurrently — edges within
// and across batches are applied with lock-free CAS unions.
func (inc *Incremental) Insert(edges []Edge) (merged int, err error) {
	n := int32(inc.n) //parconn:allow conversioncheck NewConcurrentFromLabels bounds n at 2^31-1 in every constructor path
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return 0, fmt.Errorf("parconn: Insert edge %d (%d,%d) outside [0, %d)", i, e.U, e.V, n)
		}
	}
	if len(edges) == 0 {
		return 0, nil
	}
	inc.mu.RLock()
	inc.writers.Add(1)
	uf := inc.uf.Load()
	for _, e := range edges {
		if e.U != e.V && uf.Union(e.U, e.V) {
			merged++
		}
	}
	// Counter updates land inside the writers>0 window so a validated
	// snapshot scan always sees labels and counters from the same
	// generation.
	inc.components.Add(-int64(merged))
	inc.edges.Add(int64(len(edges)))
	inc.applied.Add(1)
	inc.writers.Add(-1)
	inc.mu.RUnlock()
	return merged, nil
}

// InsertEdge is Insert for a single edge.
func (inc *Incremental) InsertEdge(u, v int32) (merged bool, err error) {
	m, err := inc.Insert([]Edge{{U: u, V: v}})
	return m == 1, err
}

// Find returns the current canonical vertex of v's component, answered live
// from the CAS union-find (linearizable with concurrent inserts). Canonical
// vertices may change as components merge.
func (inc *Incremental) Find(v int32) int32 {
	if v < 0 || int(v) >= inc.n {
		return -1
	}
	return inc.uf.Load().Find(v)
}

// Same reports whether u and v are currently in the same component,
// answered live. Under concurrent inserts the answer reflects some
// linearization of the unions.
func (inc *Incremental) Same(u, v int32) bool {
	if u < 0 || int(u) >= inc.n || v < 0 || int(v) >= inc.n {
		return false
	}
	uf := inc.uf.Load()
	return uf.Find(u) == uf.Find(v)
}

// Labels returns a consistent canonical labeling: the Labels of Snapshot.
// The slice is shared with other observers of the same epoch — treat it as
// read-only.
func (inc *Incremental) Labels() []int32 { return inc.Snapshot().Labels }

// Snapshot materializes a consistent view of the current components. The
// returned labeling reflects exactly the batches applied up to the
// snapshot's Epoch — never a torn, half-applied batch — and epochs of
// published snapshots only move forward.
//
// The fast path reuses the last published snapshot when no batch has landed
// since. Otherwise the scan is optimistic: read the generation, scan every
// vertex's root, and validate that no writer was active and no batch
// completed in between (a seqlock over the batch counters). After
// snapshotRetries failed validations it escalates to holding the write lock
// for the duration of one scan, which excludes writers and always succeeds.
func (inc *Incremental) Snapshot() *IncrementalSnapshot {
	if s := inc.snap.Load(); s != nil && inc.writers.Load() == 0 && s.Epoch == inc.applied.Load() {
		return s
	}
	for attempt := 0; attempt < snapshotRetries; attempt++ {
		e1 := inc.applied.Load()
		if inc.writers.Load() != 0 {
			runtime.Gosched()
			continue
		}
		labels := inc.scan()
		comps := inc.components.Load()
		edges := inc.edges.Load()
		if inc.writers.Load() == 0 && inc.applied.Load() == e1 {
			s := &IncrementalSnapshot{Labels: labels, Epoch: e1, Components: int(comps), Edges: edges}
			inc.publish(s)
			return s
		}
	}
	// Writers keep landing batches mid-scan: exclude them for one scan.
	inc.mu.Lock()
	defer inc.mu.Unlock()
	s := &IncrementalSnapshot{
		Labels:     inc.scan(),
		Epoch:      inc.applied.Load(),
		Components: int(inc.components.Load()),
		Edges:      inc.edges.Load(),
	}
	inc.publish(s)
	return s
}

// scan materializes the current labeling from the union-find, in parallel
// through the shared worker pool for large vertex sets. Find performs
// best-effort path halving, so scans also compact the structure.
func (inc *Incremental) scan() []int32 {
	uf := inc.uf.Load()
	labels := make([]int32, inc.n)
	parallel.ForGrain(0, inc.n, snapshotScanGrain, func(i int) {
		labels[i] = uf.Find(int32(i))
	})
	return labels
}

// publish installs s as the cached snapshot unless a newer epoch already
// is: concurrent snapshot scans may complete out of order, and readers of
// the cache must never observe the labeling move backwards.
func (inc *Incremental) publish(s *IncrementalSnapshot) {
	for {
		old := inc.snap.Load()
		if old != nil && old.Epoch >= s.Epoch {
			return
		}
		if inc.snap.CompareAndSwap(old, s) {
			return
		}
	}
}

// Compact is the periodic full-recompute hook: it relabels g from scratch
// with ConnectedComponents (decomp-arb-hybrid-CC by default, through the
// existing parallel worker pool) and re-seeds the structure from the fresh
// answer array, collapsing every union-find path accumulated by inserts.
// This is also how deletions are handled — rebuild g without the deleted
// edges and Compact. g must cover the same vertex set. Concurrent queries
// keep answering throughout (against the old structure until the swap);
// concurrent Inserts are excluded only for the brief swap itself, not for
// the relabeling run.
func (inc *Incremental) Compact(g *Graph, opt Options) error {
	if g.NumVertices() != inc.n {
		return fmt.Errorf("parconn: Compact graph has %d vertices, Incremental has %d", g.NumVertices(), inc.n)
	}
	labels, err := ConnectedComponents(g, opt)
	if err != nil {
		return err
	}
	uf, err := unionfind.NewConcurrentFromLabels(labels)
	if err != nil {
		return err // unreachable: ConnectedComponents returns canonical labelings
	}
	comps := NumComponents(labels)
	inc.mu.Lock()
	defer inc.mu.Unlock()
	// Flagging a writer keeps any in-flight optimistic scan from validating
	// against a half-swapped state.
	inc.writers.Add(1)
	inc.uf.Store(uf)
	inc.components.Store(int64(comps))
	inc.edges.Store(0)
	epoch := inc.applied.Add(1)
	inc.writers.Add(-1)
	inc.snap.Store(&IncrementalSnapshot{Labels: labels, Epoch: epoch, Components: comps})
	return nil
}
