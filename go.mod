module parconn

go 1.22
