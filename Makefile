# Standard developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race race-short bench bench-smoke speedup-smoke trace-smoke trace-regression serve-smoke serve-regression churn-smoke churn-regression metrics-smoke slo-regression vet check fmt fmt-check repro repro-quick examples clean

all: check test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI-sized race lane: -short trims the exhaustive/zoo suites to keep
# the race detector's ~10x slowdown affordable.
race-short:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash without paying for real measurements (the CI lane).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Parallel-efficiency smoke: sweep procs 1 vs 2 vs 4 at reduced scale and
# gate decomp-arb-hybrid-CC with tracestat's efficiency floor. Efficiency
# is speedup over min(procs, NumCPU), so the gate is meaningful on any CI
# host: it trips when adding workers makes the run substantially slower
# than serial (a parallel-efficiency regression), never on absolute speed.
speedup-smoke:
	$(GO) run ./cmd/bench -experiment speedup -procs 1,2,4 -scale 0.1 -json /tmp/parconn-speedup.json
	$(GO) run ./cmd/tracestat speedup /tmp/parconn-speedup.json

# Refresh the committed speedup curve (run on a quiet machine).
BENCH_speedup.json:
	$(GO) run ./cmd/bench -experiment speedup -procs 1,2,4 -json $@

# Record an observability trace of one real run, then validate it against
# the JSONL schema (run/level bracketing, monotone edge decay, known phases).
trace-smoke:
	$(GO) run ./cmd/connect -gen rmat -scale 14 -trace /tmp/parconn-trace.jsonl
	$(GO) run ./cmd/connect -validate-trace /tmp/parconn-trace.jsonl

# Record a fresh trace of the standard rMat-14 run and gate it against the
# committed baseline with cmd/tracestat. The tolerance and floor are
# deliberately loose: this lane runs on arbitrary shared CI machines and
# should only trip on order-of-magnitude phase blowups, not scheduler noise
# (tracestat's default 1.5x is for same-machine comparisons).
trace-regression:
	$(GO) run ./cmd/connect -gen rmat -scale 14 -seed 42 -trace /tmp/parconn-trace-regression.jsonl
	$(GO) run ./cmd/tracestat diff -tol 8 -floor 100ms testdata/trace-baseline-rmat14.jsonl /tmp/parconn-trace-regression.jsonl

# Refresh the committed trace-regression baseline (run on a quiet machine).
testdata/trace-baseline-rmat14.jsonl:
	$(GO) run ./cmd/connect -gen rmat -scale 14 -seed 42 -trace $@

# Serving smoke: boot connserve on an ephemeral port, wait for the
# readiness gate, probe each query endpoint, then run a short load burst
# through the in-process serving benchmark.
serve-smoke:
	$(GO) test -run 'TestServeLifecycle' -count=1 ./cmd/connserve
	$(GO) run ./cmd/bench -experiment serve -scale 0.02 -procs 2 -json /tmp/parconn-serve-smoke.json
	$(GO) run ./cmd/tracestat serve /tmp/parconn-serve-smoke.json /tmp/parconn-serve-smoke.json

# Re-measure serving QPS/latency and gate against the committed baseline.
# Loose tolerance for the same reason as trace-regression: CI hosts differ
# from the recording machine, so only order-of-magnitude serving blowups
# should trip (tracestat serve's default 2x is for same-machine use).
serve-regression:
	$(GO) run ./cmd/bench -experiment serve -scale 0.1 -procs 2 -seed 42 -json /tmp/parconn-serve-regression.json
	$(GO) run ./cmd/tracestat serve -tol 10 -floor 2ms BENCH_serve.json /tmp/parconn-serve-regression.json

# Refresh the committed serving baseline (run on a quiet machine).
BENCH_serve.json:
	$(GO) run ./cmd/bench -experiment serve -scale 0.1 -procs 2 -seed 42 -json $@

# Churn smoke: boot connserve with the incremental layer through the
# insert lifecycle test, then run a short interleaved insert/query burst
# through the in-process churn benchmark and self-diff the report.
churn-smoke:
	$(GO) test -run 'TestInsertLifecycle' -count=1 ./cmd/connserve
	$(GO) run ./cmd/bench -experiment churn -scale 0.02 -procs 2 -json /tmp/parconn-churn-smoke.json
	$(GO) run ./cmd/tracestat churn /tmp/parconn-churn-smoke.json /tmp/parconn-churn-smoke.json

# Re-measure churn QPS/latency and gate against the committed baseline.
# Same loose tolerance as serve-regression: only order-of-magnitude insert
# or query blowups should trip on shared CI hosts.
churn-regression:
	$(GO) run ./cmd/bench -experiment churn -scale 0.1 -procs 2 -seed 42 -json /tmp/parconn-churn-regression.json
	$(GO) run ./cmd/tracestat churn -tol 10 -floor 2ms BENCH_churn.json /tmp/parconn-churn-regression.json

# Refresh the committed churn baseline (run on a quiet machine).
BENCH_churn.json:
	$(GO) run ./cmd/bench -experiment churn -scale 0.1 -procs 2 -seed 42 -json $@

# Metrics smoke: boot connserve with span sampling on every request, drive
# each endpoint class (queries, batch, a 4xx, an insert), and assert the
# /metrics exposition carries the request counters, error taxonomy, rolling
# latency quantiles, and runtime series — plus a JSONL span trace that
# validates against the schema.
metrics-smoke:
	$(GO) test -run 'TestMetricsEndpoint' -count=1 ./cmd/connserve

# Re-measure SLO attainment (the fraction of scrape windows whose rolling
# P99 stayed under the 25ms default target, graded live off /metrics during
# the load run) for the serving and churn benchmarks, and gate against the
# committed baselines' attainment columns. Attainment is a fraction of the
# run's own windows, not an absolute time, so unlike serve-regression this
# gate is meaningful across machines of similar class; rows recorded
# without SLO data are skipped.
slo-regression:
	$(GO) run ./cmd/bench -experiment serve -scale 0.1 -procs 2 -seed 42 -json /tmp/parconn-serve-slo.json
	$(GO) run ./cmd/tracestat slo BENCH_serve.json /tmp/parconn-serve-slo.json
	$(GO) run ./cmd/bench -experiment churn -scale 0.1 -procs 2 -seed 42 -json /tmp/parconn-churn-slo.json
	$(GO) run ./cmd/tracestat slo BENCH_churn.json /tmp/parconn-churn-slo.json

# parconnvet fails on active findings AND on stale //parconn:allow
# suppressions (an allow that matches no finding is itself a finding).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/parconnvet ./...

# Machine-readable findings report (what CI uploads as an artifact) and the
# inferred hot-path/parallel-context sets with per-function provenance.
vet-json:
	$(GO) run ./cmd/parconnvet -json /tmp/parconnvet-findings.json ./... ; \
	cat /tmp/parconnvet-findings.json

vet-graph:
	$(GO) run ./cmd/parconnvet -graph - ./...

# Everything that must pass before a change lands: formatting, go vet, and
# the repository's own static analyses (see DESIGN.md "Correctness tooling").
check: fmt-check vet

fmt:
	gofmt -w $$(find . -name '*.go' -not -path './results_csv/*')

fmt-check:
	@out=$$(gofmt -l $$(find . -name '*.go' -not -path './results_csv/*')); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Regenerate every table/figure of the paper (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/bench -experiment all -scale 1 -trials 3 -csv results_csv | tee results_full.txt

# Quick end-to-end pass at tiny scale (~seconds).
repro-quick:
	$(GO) run ./cmd/bench -experiment all -scale 0.01 -trials 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/socialnetwork
	$(GO) run ./examples/imagesegment
	$(GO) run ./examples/netreliability
	$(GO) run ./examples/streaming

clean:
	rm -rf results_csv
