# Standard developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench vet fmt repro repro-quick examples clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w $$(find . -name '*.go' -not -path './results_csv/*')

# Regenerate every table/figure of the paper (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/bench -experiment all -scale 1 -trials 3 -csv results_csv | tee results_full.txt

# Quick end-to-end pass at tiny scale (~seconds).
repro-quick:
	$(GO) run ./cmd/bench -experiment all -scale 0.01 -trials 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/socialnetwork
	$(GO) run ./examples/imagesegment
	$(GO) run ./examples/netreliability
	$(GO) run ./examples/streaming

clean:
	rm -rf results_csv
