// Package unionfind provides the disjoint-set substrates behind the paper's
// spanning-forest baselines (§5): a sequential structure with path halving
// (serial-SF), a lock-free CAS-based concurrent structure (the
// parallel-SF-PBBS stand-in), and a lock-based concurrent structure in the
// style of Patwary, Refsnes, Manne (parallel-SF-PRM).
package unionfind

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Serial is a sequential union-find with union by rank and path halving —
// the structure inside the paper's serial-SF baseline.
type Serial struct {
	parent []int32
	rank   []uint8
}

// NewSerial returns a structure over n singleton sets.
func NewSerial(n int) *Serial {
	s := &Serial{parent: make([]int32, n), rank: make([]uint8, n)}
	for i := range s.parent {
		s.parent[i] = int32(i)
	}
	return s
}

// Find returns the root of x's set, halving the path as it walks.
func (s *Serial) Find(x int32) int32 {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// Union merges the sets of x and y; it reports whether they were distinct
// (i.e. the edge (x,y) joins the spanning forest).
func (s *Serial) Union(x, y int32) bool {
	rx, ry := s.Find(x), s.Find(y)
	if rx == ry {
		return false
	}
	if s.rank[rx] < s.rank[ry] {
		rx, ry = ry, rx
	}
	s.parent[ry] = rx
	if s.rank[rx] == s.rank[ry] {
		s.rank[rx]++
	}
	return true
}

// Concurrent is a lock-free union-find: roots are linked by id (higher root
// under lower) with a CAS, and Find does best-effort path halving. Any
// number of goroutines may call Union/Find concurrently.
type Concurrent struct {
	parent []int32
}

// NewConcurrent returns a structure over n singleton sets.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{parent: make([]int32, n)}
	for i := range c.parent {
		//parconn:allow mixedatomic pre-publication init; the constructor returns before any concurrent use
		c.parent[i] = int32(i)
	}
	return c
}

// NewConcurrentFromLabels returns a structure seeded from a canonical
// connected-components labeling (labels[l] == l for every label l in use):
// vertices sharing a label start in one set rooted at the label's canonical
// vertex, so every seeded parent chain has depth at most one. This is the
// bridge from a from-scratch decomp-CC answer array to an incremental
// structure: the labeling is the perfect union-find initializer, one root
// per component.
//
// Seeding relaxes the identity-init invariant parent[v] <= v (a canonical
// label may exceed the vertices it labels), but the structure stays acyclic
// and lock-free for the same reasons: non-root parents only change by path
// halving (pointing strictly closer to a root), and Union links roots by id
// with the higher-id root placed under the lower — the root set only ever
// shrinks toward smaller ids, exactly the Liu–Tarjan concurrent union-find
// discipline (arXiv:1812.06177).
func NewConcurrentFromLabels(labels []int32) (*Concurrent, error) {
	n := len(labels)
	if n > math.MaxInt32 {
		// Vertex ids are int32 throughout the library (the paper's graphs
		// top out well under 2^31 vertices), so the forest is too.
		return nil, fmt.Errorf("unionfind: %d vertices exceed the int32 id space", n)
	}
	c := &Concurrent{parent: make([]int32, n)}
	for i, l := range labels {
		if l < 0 || int(l) >= n || labels[l] != l {
			return nil, fmt.Errorf("unionfind: labels not canonical at vertex %d (label %d)", i, l)
		}
		//parconn:allow mixedatomic pre-publication init; the constructor returns before any concurrent use
		c.parent[i] = l
	}
	return c, nil
}

// Len returns the number of vertices the structure covers.
func (c *Concurrent) Len() int { return len(c.parent) }

// Validate checks the structural invariants that every reachable state of
// the lock-free protocol maintains: parent chains are acyclic (every walk
// reaches a self-loop root within n steps). It is for tests and fuzzing,
// not hot paths, and must not run concurrently with Union.
func (c *Concurrent) Validate() error {
	n := int32(len(c.parent)) //parconn:allow conversioncheck every constructor bounds the forest at 2^31-1 vertices (ids are int32)
	for v := int32(0); v < n; v++ {
		x := v
		for steps := int32(0); ; steps++ {
			if steps > n {
				return fmt.Errorf("unionfind: parent cycle reachable from vertex %d", v)
			}
			p := atomic.LoadInt32(&c.parent[x])
			if p < 0 || p >= n {
				return fmt.Errorf("unionfind: parent[%d] = %d outside [0, %d)", x, p, n)
			}
			if p == x {
				break
			}
			x = p
		}
	}
	return nil
}

// Find returns the current root of x's set. Concurrent unions may change
// the root afterwards; callers needing a stable answer must quiesce first.
func (c *Concurrent) Find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&c.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&c.parent[p])
		if gp != p {
			// Best-effort halving; losing the race is harmless.
			atomic.CompareAndSwapInt32(&c.parent[x], p, gp)
		}
		x = p
	}
}

// Union merges the sets of x and y, reporting whether they were distinct at
// link time (exactly one concurrent Union of two given sets reports true).
func (c *Concurrent) Union(x, y int32) bool {
	for {
		rx, ry := c.Find(x), c.Find(y)
		if rx == ry {
			return false
		}
		if rx < ry {
			rx, ry = ry, rx
		}
		// rx > ry: link the higher-id root under the lower-id one. Linking
		// by id (not rank) keeps the invariant parent[v] <= v, which makes
		// the structure provably linearizable with plain CAS linking.
		if atomic.CompareAndSwapInt32(&c.parent[rx], rx, ry) {
			return true
		}
		// rx stopped being a root; retry with fresh roots.
	}
}

// Locked is a lock-based concurrent union-find in the style of the
// Patwary-Refsnes-Manne spanning-forest algorithm: a spinlock per vertex,
// taken on the two roots in id order to avoid deadlock, with re-validation
// after locking.
type Locked struct {
	parent []int32
	rank   []uint8
	lock   []int32 // 0 free, 1 held
}

// NewLocked returns a structure over n singleton sets.
func NewLocked(n int) *Locked {
	l := &Locked{parent: make([]int32, n), rank: make([]uint8, n), lock: make([]int32, n)}
	for i := range l.parent {
		//parconn:allow mixedatomic pre-publication init; the constructor returns before any concurrent use
		l.parent[i] = int32(i)
	}
	return l
}

func (l *Locked) acquire(v int32) {
	for !atomic.CompareAndSwapInt32(&l.lock[v], 0, 1) {
	}
}

func (l *Locked) release(v int32) { atomic.StoreInt32(&l.lock[v], 0) }

// Find returns the current root of x's set (no compression under
// concurrency; compression happens inside Union under locks).
func (l *Locked) Find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&l.parent[x])
		if p == x {
			return x
		}
		x = p
	}
}

// Union merges the sets of x and y, reporting whether they were distinct.
func (l *Locked) Union(x, y int32) bool {
	for {
		rx, ry := l.Find(x), l.Find(y)
		if rx == ry {
			return false
		}
		a, b := rx, ry
		if a > b {
			a, b = b, a
		}
		l.acquire(a)
		l.acquire(b)
		// Re-validate: both must still be roots, else retry.
		if atomic.LoadInt32(&l.parent[rx]) == rx && atomic.LoadInt32(&l.parent[ry]) == ry {
			if l.rank[rx] < l.rank[ry] {
				rx, ry = ry, rx
			}
			atomic.StoreInt32(&l.parent[ry], rx)
			if l.rank[rx] == l.rank[ry] {
				l.rank[rx]++
			}
			l.release(b)
			l.release(a)
			return true
		}
		l.release(b)
		l.release(a)
	}
}
