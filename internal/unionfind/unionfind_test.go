package unionfind

import (
	"sync"
	"testing"
	"testing/quick"

	"parconn/internal/prand"
)

// uf is the common interface of the three structures, for table tests.
type uf interface {
	Find(int32) int32
	Union(int32, int32) bool
}

func structures(n int) map[string]uf {
	return map[string]uf{
		"serial":     NewSerial(n),
		"concurrent": NewConcurrent(n),
		"locked":     NewLocked(n),
	}
}

func TestBasicUnionFind(t *testing.T) {
	for name, u := range structures(10) {
		if u.Find(3) != 3 {
			t.Fatalf("%s: fresh Find(3) != 3", name)
		}
		if !u.Union(1, 2) {
			t.Fatalf("%s: first Union(1,2) reported duplicate", name)
		}
		if u.Union(1, 2) || u.Union(2, 1) {
			t.Fatalf("%s: repeated union reported new", name)
		}
		if u.Find(1) != u.Find(2) {
			t.Fatalf("%s: 1 and 2 not merged", name)
		}
		if u.Find(1) == u.Find(3) {
			t.Fatalf("%s: 3 wrongly merged", name)
		}
		if !u.Union(2, 3) {
			t.Fatalf("%s: Union(2,3) reported duplicate", name)
		}
		if u.Find(3) != u.Find(1) {
			t.Fatalf("%s: transitive merge failed", name)
		}
	}
}

func TestChainsAndSelfUnion(t *testing.T) {
	for name, u := range structures(1000) {
		if u.Union(5, 5) {
			t.Fatalf("%s: self-union reported new", name)
		}
		for i := int32(0); i < 999; i++ {
			u.Union(i, i+1)
		}
		root := u.Find(0)
		for i := int32(0); i < 1000; i++ {
			if u.Find(i) != root {
				t.Fatalf("%s: chain not fully merged at %d", name, i)
			}
		}
	}
}

// refPartition computes the expected partition with a simple map-based DSU.
func refPartition(n int, ops [][2]int32) []int32 {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, op := range ops {
		parent[find(op[0])] = find(op[1])
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = find(int32(i))
	}
	return out
}

func samePartition(a, b []int32) bool {
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := bwd[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func TestRandomOpsMatchReference(t *testing.T) {
	src := prand.New(1)
	const n = 500
	for trial := 0; trial < 20; trial++ {
		ops := make([][2]int32, 300)
		for i := range ops {
			ops[i] = [2]int32{src.Int31n(n), src.Int31n(n)}
		}
		want := refPartition(n, ops)
		for name, u := range structures(n) {
			for _, op := range ops {
				u.Union(op[0], op[1])
			}
			got := make([]int32, n)
			for i := range got {
				got[i] = u.Find(int32(i))
			}
			if !samePartition(want, got) {
				t.Fatalf("%s: partition mismatch on trial %d", name, trial)
			}
		}
	}
}

func TestQuickRandomOps(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 64
		ops := make([][2]int32, len(pairs))
		for i, p := range pairs {
			ops[i] = [2]int32{int32(p % n), int32((p >> 8) % n)}
		}
		want := refPartition(n, ops)
		for _, u := range structures(n) {
			for _, op := range ops {
				u.Union(op[0], op[1])
			}
			got := make([]int32, n)
			for i := range got {
				got[i] = u.Find(int32(i))
			}
			if !samePartition(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	// Hammer concurrent structures from many goroutines; afterwards the
	// partition must match the sequential result, and the number of
	// successful unions must equal n - #components (spanning-forest size).
	const n = 20000
	const workers = 8
	src := prand.New(2)
	ops := make([][2]int32, 60000)
	for i := range ops {
		ops[i] = [2]int32{src.Int31n(n), src.Int31n(n)}
	}
	want := refPartition(n, ops)
	comps := map[int32]bool{}
	for _, r := range want {
		comps[r] = true
	}
	wantTreeEdges := n - len(comps)

	for name, u := range map[string]uf{"concurrent": NewConcurrent(n), "locked": NewLocked(n)} {
		var wg sync.WaitGroup
		newCounts := make([]int, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := 0
				for i := w; i < len(ops); i += workers {
					if u.Union(ops[i][0], ops[i][1]) {
						c++
					}
				}
				newCounts[w] = c
			}(w)
		}
		wg.Wait()
		total := 0
		for _, c := range newCounts {
			total += c
		}
		if total != wantTreeEdges {
			t.Fatalf("%s: %d successful unions, want %d", name, total, wantTreeEdges)
		}
		got := make([]int32, n)
		for i := range got {
			got[i] = u.Find(int32(i))
		}
		if !samePartition(want, got) {
			t.Fatalf("%s: concurrent partition mismatch", name)
		}
	}
}

func BenchmarkSerialUnion1M(b *testing.B) {
	const n = 1 << 20
	src := prand.New(3)
	ops := make([][2]int32, n)
	for i := range ops {
		ops[i] = [2]int32{src.Int31n(n), src.Int31n(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NewSerial(n)
		for _, op := range ops {
			u.Union(op[0], op[1])
		}
	}
}

// TestNewConcurrentFromLabels covers the labeling-seeded constructor: the
// seeded partition must match the labeling, non-canonical or out-of-range
// labelings must be rejected, and unions on the seeded structure must
// behave exactly like unions on an identity-seeded structure whose
// components were pre-merged.
func TestNewConcurrentFromLabels(t *testing.T) {
	// Canonical labeling with non-minimal roots: component {0,1,5} rooted
	// at 5, {2,4} rooted at 4, {3} alone.
	labels := []int32{5, 5, 4, 3, 4, 5}
	c, err := NewConcurrentFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != len(labels) {
		t.Fatalf("Len() = %d, want %d", c.Len(), len(labels))
	}
	got := make([]int32, len(labels))
	for i := range got {
		got[i] = c.Find(int32(i))
	}
	if !samePartition(labels, got) {
		t.Fatalf("seeded partition drifted: %v vs %v", labels, got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Re-inserting an intra-component edge is a no-op; a bridge merges.
	if c.Union(0, 1) {
		t.Fatal("intra-component union reported new")
	}
	if !c.Union(1, 2) {
		t.Fatal("bridge union reported duplicate")
	}
	if c.Find(0) != c.Find(4) {
		t.Fatal("bridge did not merge the seeded components")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	for name, bad := range map[string][]int32{
		"non-canonical": {1, 2, 2},  // labels[0] = 1 but labels[1] = 2: label 1 is not its own root
		"out-of-range":  {0, 7, 2},  // 7 outside [0,3)
		"negative":      {0, -1, 2}, // -1 outside [0,3)
	} {
		if _, err := NewConcurrentFromLabels(bad); err == nil {
			t.Fatalf("%s labeling accepted: %v", name, bad)
		}
	}
}

// TestValidateDetectsCycle pins that Validate is a real check, not a
// tautology: a hand-corrupted parent cycle must be reported.
func TestValidateDetectsCycle(t *testing.T) {
	c := NewConcurrent(4)
	c.parent[2] = 3
	c.parent[3] = 2
	if err := c.Validate(); err == nil {
		t.Fatal("parent cycle not detected")
	}
}

// TestSeededConcurrentUnions stress-merges a label-seeded structure from
// many goroutines and checks the final partition against a serial replay.
func TestSeededConcurrentUnions(t *testing.T) {
	const n = 2000
	src := prand.New(7)
	// Random canonical seed labeling: group vertices into blocks of 4.
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i - i%4)
	}
	ops := make([][2]int32, 1500)
	for i := range ops {
		ops[i] = [2]int32{src.Int31n(n), src.Int31n(n)}
	}
	ref := NewSerial(n)
	for i := 0; i < n; i++ {
		ref.Union(int32(i), labels[i])
	}
	for _, op := range ops {
		ref.Union(op[0], op[1])
	}
	want := make([]int32, n)
	for i := range want {
		want[i] = ref.Find(int32(i))
	}

	c, err := NewConcurrentFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += workers {
				c.Union(ops[i][0], ops[i][1])
			}
		}(w)
	}
	wg.Wait()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	got := make([]int32, n)
	for i := range got {
		got[i] = c.Find(int32(i))
	}
	if !samePartition(want, got) {
		t.Fatal("seeded concurrent partition mismatch vs serial replay")
	}
}
