package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parconn"
)

// testLabeling is two components: evens (label 0) and odds (label 1) over
// 10 vertices... actually a simple split: vertices 0..5 -> label 0,
// vertices 6..9 -> label 6.
func testLabeling() Labeling {
	return Labeling{
		Labels:    []int32{0, 0, 0, 0, 0, 0, 6, 6, 6, 6},
		Edges:     12,
		Algorithm: "decomp-arb-hybrid-CC",
		Source:    "test",
		LoadTime:  3 * time.Millisecond,
		LabelTime: 7 * time.Millisecond,
	}
}

func newReadyServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{MaxBatch: 8, TopK: 2})
	s.Publish(testLabeling())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s: content-type %q", url, ct)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestReadinessGate(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Every query endpoint answers 503 before Publish; healthz reports
	// loading with a Retry-After hint.
	for _, path := range []string{"/v1/component?v=0", "/v1/same?u=0&v=1", "/v1/stats", "/v1/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s before publish: status %d want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s before publish: no Retry-After", path)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader("[[0,1]]"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch before publish: status %d want 503", resp.StatusCode)
	}

	s.Publish(testLabeling())
	var hz healthzResponse
	if code := getJSON(t, ts.URL+"/v1/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz after publish: %d %+v", code, hz)
	}
}

func TestComponentAndSame(t *testing.T) {
	_, ts := newReadyServer(t)

	var comp componentResponse
	if code := getJSON(t, ts.URL+"/v1/component?v=7", &comp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if comp.V != 7 || comp.Component != 6 || comp.Size != 4 {
		t.Fatalf("component response %+v", comp)
	}

	var same sameResponse
	if code := getJSON(t, ts.URL+"/v1/same?u=1&v=5", &same); code != http.StatusOK || !same.Same {
		t.Fatalf("same(1,5): %d %+v", code, same)
	}
	if code := getJSON(t, ts.URL+"/v1/same?u=1&v=9", &same); code != http.StatusOK || same.Same {
		t.Fatalf("same(1,9): %d %+v", code, same)
	}
}

func TestMalformedInputs(t *testing.T) {
	_, ts := newReadyServer(t)

	cases := []struct {
		path string
		want int
	}{
		{"/v1/component", http.StatusBadRequest},               // missing v
		{"/v1/component?v=abc", http.StatusBadRequest},         // non-numeric
		{"/v1/component?v=1e3", http.StatusBadRequest},         // float-ish
		{"/v1/component?v=99999999999", http.StatusBadRequest}, // out of int32
		{"/v1/component?v=-1", http.StatusNotFound},            // negative
		{"/v1/component?v=10", http.StatusNotFound},            // == n
		{"/v1/same?u=0", http.StatusBadRequest},                // missing v
		{"/v1/same?u=0&v=xyz", http.StatusBadRequest},
		{"/v1/same?u=0&v=10", http.StatusNotFound},
	}
	for _, tc := range cases {
		var eb errorBody
		if code := getJSON(t, ts.URL+tc.path, &eb); code != tc.want {
			t.Errorf("%s: status %d want %d (%+v)", tc.path, code, tc.want, eb)
		} else if eb.Error == "" {
			t.Errorf("%s: empty error body", tc.path)
		}
	}

	// Method confusion is 405 with an Allow header.
	resp, err := http.Post(ts.URL+"/v1/component?v=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodGet {
		t.Errorf("POST component: status %d allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp, err = http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status %d", resp.StatusCode)
	}
}

func TestBatch(t *testing.T) {
	_, ts := newReadyServer(t)

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp, body := post("[[0,1],[0,9],[6,7]]")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 3 || !br.Same[0] || br.Same[1] || !br.Same[2] {
		t.Fatalf("batch response %+v", br)
	}

	// Empty batch is fine.
	if resp, body := post("[]"); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch: %d %s", resp.StatusCode, body)
	}
	// Garbage body is 400.
	if resp, _ := post("{nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", resp.StatusCode)
	}
	// Out-of-range vertex is 404.
	if resp, _ := post("[[0,10]]"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range pair: %d", resp.StatusCode)
	}
	// Oversized batch (server configured MaxBatch=8) is 413.
	var sb bytes.Buffer
	sb.WriteString("[")
	for i := 0; i < 9; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "[%d,%d]", i%10, (i+1)%10)
	}
	sb.WriteString("]")
	if resp, _ := post(sb.String()); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	_, ts := newReadyServer(t)

	// Touch two endpoints so their latency histograms are non-empty.
	getJSON(t, ts.URL+"/v1/component?v=0", nil)
	getJSON(t, ts.URL+"/v1/same?u=0&v=1", nil)

	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.Vertices != 10 || st.Edges != 12 || st.Components != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Algorithm != "decomp-arb-hybrid-CC" || st.LoadMS != 3 || st.LabelMS != 7 {
		t.Fatalf("stats meta %+v", st)
	}
	// TopK=2: component 0 (6 vertices) then component 6 (4 vertices).
	if len(st.TopComponents) != 2 || st.TopComponents[0].Label != 0 || st.TopComponents[0].Size != 6 ||
		st.TopComponents[1].Label != 6 || st.TopComponents[1].Size != 4 {
		t.Fatalf("top components %+v", st.TopComponents)
	}
	if st.SizeHistogram.Count != 2 || st.SizeHistogram.Min != 4 || st.SizeHistogram.Max != 6 {
		t.Fatalf("size histogram %+v", st.SizeHistogram)
	}
	if st.Endpoints[EndpointComponent].Count != 1 || st.Endpoints[EndpointSame].Count != 1 {
		t.Fatalf("endpoint latencies %+v", st.Endpoints)
	}
	if st.Endpoints[EndpointComponent].P99NS <= 0 {
		t.Fatalf("component p99 not recorded: %+v", st.Endpoints[EndpointComponent])
	}
}

// TestConcurrentMixedQueries hammers every endpoint from many goroutines;
// under -race this checks that the published labeling and the wait-free
// latency histograms are safe to read and record concurrently.
func TestConcurrentMixedQueries(t *testing.T) {
	s, ts := newReadyServer(t)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perWorker; i++ {
				u, v := (w+i)%10, (w*i+3)%10
				var resp *http.Response
				var err error
				switch i % 4 {
				case 0:
					resp, err = client.Get(fmt.Sprintf("%s/v1/component?v=%d", ts.URL, u))
				case 1:
					resp, err = client.Get(fmt.Sprintf("%s/v1/same?u=%d&v=%d", ts.URL, u, v))
				case 2:
					resp, err = client.Post(ts.URL+"/v1/batch", "application/json",
						strings.NewReader(fmt.Sprintf("[[%d,%d],[%d,%d]]", u, v, v, u)))
				case 3:
					resp, err = client.Get(ts.URL + "/v1/stats")
				}
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d op %d: status %d", w, i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	lat := s.LatencySnapshot()
	var total int64
	for _, snap := range lat {
		total += snap.Count
	}
	if total != workers*perWorker {
		t.Fatalf("latency histograms recorded %d requests, want %d", total, workers*perWorker)
	}
}

// newIncrementalServer is newReadyServer with the incremental layer
// attached, so /v1/insert is live.
func newIncrementalServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := newReadyServer(t)
	inc, err := parconn.NewIncrementalFromLabels(testLabeling().Labels)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableIncremental(inc)
	return s, ts
}

func postInsert(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// TestInsert covers the /v1/insert contract: disabled servers answer 501,
// merges republish the labeling so /v1/same flips without a restart, and
// input errors map to the same status codes as /v1/batch.
func TestInsert(t *testing.T) {
	// Without EnableIncremental the endpoint is declared-but-disabled.
	_, ro := newReadyServer(t)
	if resp, _ := postInsert(t, ro, "[[0,6]]"); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("read-only server: status %d want 501", resp.StatusCode)
	}

	_, ts := newIncrementalServer(t)

	// The two components of testLabeling are disjoint until this insert.
	var same sameResponse
	if code := getJSON(t, ts.URL+"/v1/same?u=0&v=6", &same); code != http.StatusOK || same.Same {
		t.Fatalf("before insert: %d %+v", code, same)
	}
	resp, body := postInsert(t, ts, "[[2,7],[3,3]]")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, body)
	}
	var ir insertResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Inserted != 2 || ir.Merged != 1 || ir.Epoch != 1 || ir.Components != 1 {
		t.Fatalf("insert response %+v", ir)
	}
	// The merge is immediately visible to readers through the republished
	// labeling, and /v1/stats reports the new epoch and component count.
	if code := getJSON(t, ts.URL+"/v1/same?u=0&v=6", &same); code != http.StatusOK || !same.Same {
		t.Fatalf("after insert: %d %+v", code, same)
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Components != 1 || st.Epoch != 1 {
		t.Fatalf("stats after insert: components=%d epoch=%d", st.Components, st.Epoch)
	}
	if st.Edges != testLabeling().Edges+2 {
		t.Fatalf("stats edges after insert: %d", st.Edges)
	}

	// Input errors mirror /v1/batch.
	if resp, _ := postInsert(t, ts, "{nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", resp.StatusCode)
	}
	if resp, _ := postInsert(t, ts, "[[0,10]]"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range edge: %d", resp.StatusCode)
	}
	if resp, _ := postInsert(t, ts, "[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9]]"); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d", resp.StatusCode)
	}
	// Method confusion is 405.
	respGet, err := http.Get(ts.URL + "/v1/insert")
	if err != nil {
		t.Fatal(err)
	}
	respGet.Body.Close()
	if respGet.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET insert: %d", respGet.StatusCode)
	}
}

// TestConcurrentInsertAndQuery races writers on /v1/insert against readers
// on /v1/same and /v1/stats; under -race this exercises the whole
// insert -> snapshot -> republish path against lock-free readers. Inserted
// edges stay within the even component, so reader answers are stable.
func TestConcurrentInsertAndQuery(t *testing.T) {
	_, ts := newIncrementalServer(t)

	const writers, readers, ops = 4, 4, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < ops; i++ {
				u, v := (2*i+2*w)%6, (2*i+2*w+2)%6 // even vertices: label-0 component
				body := fmt.Sprintf("[[%d,%d]]", u, v)
				resp, err := client.Post(ts.URL+"/v1/insert", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d op %d: status %d", w, i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := ts.Client()
			lastEpoch := uint64(0)
			for i := 0; i < ops; i++ {
				// Same-component answers never change: the inserts only
				// re-link vertices already labeled 0.
				var same sameResponse
				resp, err := client.Get(fmt.Sprintf("%s/v1/same?u=%d&v=%d", ts.URL, 2*(i%3), 9))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d op %d: status %d", r, i, resp.StatusCode)
					return
				}
				if err := json.Unmarshal(body, &same); err != nil {
					errs <- err
					return
				}
				if same.Same {
					errs <- fmt.Errorf("reader %d op %d: cross-component pair reported same", r, i)
					return
				}
				// Epochs visible through /v1/stats never regress.
				var st statsResponse
				resp, err = client.Get(ts.URL + "/v1/stats")
				if err != nil {
					errs <- err
					return
				}
				body, _ = io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := json.Unmarshal(body, &st); err != nil {
					errs <- err
					return
				}
				if st.Epoch < lastEpoch {
					errs <- fmt.Errorf("reader %d: epoch regressed %d -> %d", r, lastEpoch, st.Epoch)
					return
				}
				lastEpoch = st.Epoch
				if st.Components != 2 {
					errs <- fmt.Errorf("reader %d: components = %d, want 2", r, st.Components)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRepublish checks that Publish can swap the labeling atomically while
// queries are running.
func TestRepublish(t *testing.T) {
	s, ts := newReadyServer(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/v1/component?v=3")
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	for i := 0; i < 20; i++ {
		s.Publish(testLabeling())
	}
	close(stop)
	wg.Wait()
	if !s.Ready() {
		t.Fatal("server not ready after republish")
	}
}
