// Request-plane observability for the serve package: per-request trace IDs,
// an error taxonomy as labeled counters, rolling latency quantiles, and
// head-sampled request spans. All of it hangs off an Observer so the plain
// Server keeps working with zero observability dependencies — attach one via
// Config.Observer to light it up.

package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"parconn/internal/obs"
	"parconn/internal/obs/metrics"
	"parconn/internal/prand"
)

// TraceHeader is the request/response header carrying the request trace ID.
// Clients may supply their own (any non-empty value up to maxTraceIDLen
// bytes is accepted verbatim); the server generates one otherwise, and
// always echoes the effective ID on the response so either side can grep
// sampled span logs for it.
const TraceHeader = "Parconn-Trace-Id"

// maxTraceIDLen caps accepted client trace IDs so a hostile header cannot
// bloat span logs.
const maxTraceIDLen = 128

// Error-taxonomy classes of parconn_http_errors_total. Specific service
// states get their own class (a load balancer retrying a not_ready 503 is
// routine; a burst of plain 5xx is a bug), the rest roll up by status
// family.
const (
	errClass4xx      = "4xx"
	errClass5xx      = "5xx"
	errClassNotReady = "not_ready" // 503: labeling not yet published
	errClassReadOnly = "read_only" // 501: insert without an incremental layer
)

var errClasses = []string{errClass4xx, errClass5xx, errClassNotReady, errClassReadOnly}

// observedEndpoints are the latency-timed endpoints the Observer
// pre-registers series for; healthz is deliberately absent (load balancers
// poll it, and it carries no request-plane signal).
var observedEndpoints = []string{
	EndpointComponent, EndpointSame, EndpointBatch, EndpointInsert, EndpointStats,
}

// ObserverConfig parameterizes NewObserver.
type ObserverConfig struct {
	// Metrics receives the request-plane series. Required.
	Metrics *metrics.Registry
	// Spans receives head-sampled request spans; nil disables sampling.
	Spans obs.SpanRecorder
	// SampleEvery emits one span per N requests per endpoint (head
	// sampling: the decision is made before the handler runs, so sampled
	// requests form an unbiased 1-in-N slice of arrivals). 0 disables
	// sampling even when Spans is set.
	SampleEvery int
	// RollingWindow and RollingWindows size the rolling-quantile ring
	// (defaults: 1s windows, 60 of them — "P99 over the last minute").
	RollingWindow  time.Duration
	RollingWindows int
}

// Observer instruments Server request handling. One Observer belongs to one
// Server (attach via Config.Observer); all its paths are wait-free after
// construction, so instrumented handlers never serialize on it.
type Observer struct {
	spans       obs.SpanRecorder
	sampleEvery uint64
	seq         atomic.Uint64 // request arrivals; drives sampling + trace IDs
	traceSeed   uint64

	requests map[string]*metrics.Counter            // endpoint -> arrivals
	errors   map[string]map[string]*metrics.Counter // endpoint -> class -> count
	rolling  map[string]*metrics.RollingHistogram   // endpoint -> rolling latency
	sampled  *metrics.Counter
	inflight *metrics.Gauge
}

// NewObserver builds an Observer and pre-registers every request-plane
// series (all endpoints and error classes appear in /metrics at zero from
// the first scrape, so dashboards and the SLO scraper never key-miss):
//
//	parconn_http_requests_total{endpoint}            arrivals
//	parconn_http_errors_total{endpoint,class}        non-2xx answers by taxonomy
//	parconn_http_inflight_requests                   currently executing
//	parconn_http_spans_sampled_total                 spans emitted
//	parconn_http_rolling_latency_seconds{endpoint,quantile}  P50/P95/P99
//	                                                 over the rolling span
func NewObserver(cfg ObserverConfig) *Observer {
	if cfg.Metrics == nil {
		panic("serve: ObserverConfig.Metrics is required")
	}
	o := &Observer{
		spans:    cfg.Spans,
		requests: make(map[string]*metrics.Counter, len(observedEndpoints)),
		errors:   make(map[string]map[string]*metrics.Counter, len(observedEndpoints)),
		rolling:  make(map[string]*metrics.RollingHistogram, len(observedEndpoints)),
	}
	if cfg.Spans != nil && cfg.SampleEvery > 0 {
		o.sampleEvery = uint64(cfg.SampleEvery)
	}
	o.traceSeed = prand.Hash64(uint64(time.Now().UnixNano())) //parconn:allow norand trace-ID uniqueness seed; not algorithmic randomness
	for _, ep := range observedEndpoints {
		o.requests[ep] = cfg.Metrics.Counter("parconn_http_requests_total",
			"HTTP requests received, by endpoint.", metrics.L("endpoint", ep))
		byClass := make(map[string]*metrics.Counter, len(errClasses))
		for _, class := range errClasses {
			byClass[class] = cfg.Metrics.Counter("parconn_http_errors_total",
				"Non-2xx HTTP answers, by endpoint and error class.",
				metrics.L("endpoint", ep, "class", class))
		}
		o.errors[ep] = byClass
		rh := metrics.NewRollingHistogram(cfg.RollingWindow, cfg.RollingWindows)
		o.rolling[ep] = rh
		cfg.Metrics.RollingQuantilesNS("parconn_http_rolling_latency_seconds",
			"Request latency quantiles over the rolling window span.",
			metrics.L("endpoint", ep), rh, 0.50, 0.95, 0.99)
	}
	o.inflight = cfg.Metrics.Gauge("parconn_http_inflight_requests",
		"Requests currently executing.", nil)
	o.sampled = cfg.Metrics.Counter("parconn_http_spans_sampled_total",
		"Request spans emitted by head sampling.", nil)
	return o
}

// bind registers the server-state series that need the Server itself: the
// cumulative latency histograms (the same wait-free histograms /v1/stats
// summarizes) and readiness/epoch gauges. Called once from New.
func (o *Observer) bind(s *Server, reg *metrics.Registry) {
	for _, ep := range observedEndpoints {
		reg.HistogramNS("parconn_http_request_duration_seconds",
			"Request latency since process start.", metrics.L("endpoint", ep), s.lat[ep])
	}
	reg.GaugeFunc("parconn_ready", "1 once a labeling is published.", nil, func() float64 {
		if s.Ready() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("parconn_published_epoch",
		"Incremental generation of the published labeling (0 = initial).", nil, func() float64 {
			p := s.pub.Load()
			if p == nil {
				return 0
			}
			return float64(p.epoch)
		})
}

// Rolling returns the rolling latency histogram of one endpoint (nil for
// unobserved names). Exposed for tests and in-process SLO checks.
func (o *Observer) Rolling(endpoint string) *metrics.RollingHistogram {
	return o.rolling[endpoint]
}

// spanInfo rides the request context so handlers can annotate the span the
// middleware will emit. Only sampled requests carry one; annotation helpers
// no-op otherwise, keeping the unsampled fast path allocation-free.
type spanInfo struct {
	batch int
	epoch uint64
}

type spanInfoKey struct{}

// annotateBatch records the decoded batch size on the request's span, if
// this request is being sampled.
func annotateBatch(ctx context.Context, n int) {
	if si, ok := ctx.Value(spanInfoKey{}).(*spanInfo); ok {
		si.batch = n
	}
}

// annotateEpoch records the epoch an insert published on the request's
// span, if this request is being sampled.
func annotateEpoch(ctx context.Context, epoch uint64) {
	if si, ok := ctx.Value(spanInfoKey{}).(*spanInfo); ok {
		si.epoch = epoch
	}
}

// statusWriter captures the response status for taxonomy counting and span
// emission. WriteHeader-less success paths count as 200, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// classify maps a response status to its error-taxonomy class ("" for
// non-errors).
func classify(status int) string {
	switch {
	case status == http.StatusServiceUnavailable:
		return errClassNotReady
	case status == http.StatusNotImplemented:
		return errClassReadOnly
	case status >= 500:
		return errClass5xx
	case status >= 400:
		return errClass4xx
	default:
		return ""
	}
}

// traceID returns the effective trace ID of a request: the client's header
// when present (truncated to maxTraceIDLen), a generated 16-hex-digit ID
// otherwise. seq keeps generated IDs unique within the process; the
// hashed start-time seed keeps them distinct across restarts.
func (o *Observer) traceID(r *http.Request, seq uint64) string {
	if id := r.Header.Get(TraceHeader); id != "" {
		if len(id) > maxTraceIDLen {
			id = id[:maxTraceIDLen]
		}
		return id
	}
	return fmt.Sprintf("%016x", prand.Hash64(o.traceSeed^seq))
}

// observe is the request middleware: counts the arrival, stamps the trace
// ID, runs the handler with a status-capturing writer, then records
// latency (cumulative + rolling), taxonomy errors, and — for head-sampled
// requests — a span through the obs sink.
func (o *Observer) observe(endpoint string, hist *obs.Histogram, h http.HandlerFunc, w http.ResponseWriter, r *http.Request) {
	seq := o.seq.Add(1)
	o.requests[endpoint].Inc()
	o.inflight.Add(1)
	defer o.inflight.Add(-1)

	id := o.traceID(r, seq)
	w.Header().Set(TraceHeader, id)

	var si *spanInfo
	if o.sampleEvery > 0 && seq%o.sampleEvery == 0 {
		si = &spanInfo{}
		r = r.WithContext(context.WithValue(r.Context(), spanInfoKey{}, si))
	}

	sw := &statusWriter{ResponseWriter: w}
	start := time.Now() //parconn:allow norand request-latency stopwatch; no algorithmic randomness
	h(sw, r)
	dur := time.Since(start)

	hist.Record(dur.Nanoseconds())
	o.rolling[endpoint].Record(dur.Nanoseconds())
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	if class := classify(status); class != "" {
		o.errors[endpoint][class].Inc()
	}
	if si != nil {
		o.sampled.Inc()
		o.spans.Span(obs.Span{
			TraceID:  id,
			Endpoint: endpoint,
			Status:   status,
			Duration: dur,
			Batch:    si.batch,
			Epoch:    si.epoch,
		})
	}
}
