// Package serve is the read side of a computed connectivity labeling as a
// long-lived HTTP/JSON service: load a graph once, label it once, then
// answer component queries at high QPS from the immutable answer array.
//
// The labeling is published with a single atomic pointer store
// ([Server.Publish]) and never mutated afterwards, so every query handler
// reads it lock-free and concurrently; until Publish, the /v1 endpoints
// answer 503 and /v1/healthz acts as the readiness gate. Per-endpoint
// latency is recorded into wait-free obs.Histograms and exposed both in
// /v1/stats and programmatically for the serving benchmark
// (internal/bench/serveload).
//
// Endpoints (all JSON):
//
//	GET  /v1/component?v=ID      component label of one vertex
//	GET  /v1/same?u=ID&v=ID      whether two vertices share a component
//	POST /v1/batch               body [[u,v],...]: same-component per pair
//	POST /v1/insert              body [[u,v],...]: insert an edge batch into
//	                             the incremental layer and republish the
//	                             labeling (EnableIncremental servers only)
//	GET  /v1/stats               graph/labeling summary: component count,
//	                             size histogram, top-k sizes, endpoint
//	                             latency quantiles
//	GET  /v1/healthz             200 once the labeling is published, 503
//	                             while loading
//
// A server with EnableIncremental attached is no longer read-only: each
// accepted /v1/insert batch applies lock-free unions in the
// parconn.Incremental layer, takes a consistent snapshot, and republishes
// it through the same atomic-pointer path — queries keep reading an
// immutable labeling, writers only ever swap in a newer one (epochs are
// monotone, so two racing inserts can never publish an older labeling over
// a newer one).
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"parconn"
	"parconn/internal/graph"
	"parconn/internal/obs"
	"parconn/internal/obs/metrics"
)

// DefaultMaxBatch bounds the number of pairs one /v1/batch request may
// carry when Config.MaxBatch is zero. The bound keeps one client from
// turning the point-query service into an unbounded scan: 4096 pairs is
// far above any sane batching window but caps the per-request work.
const DefaultMaxBatch = 4096

// Endpoints in latency-recording order; keys of LatencySnapshot.
const (
	EndpointComponent = "component"
	EndpointSame      = "same"
	EndpointBatch     = "batch"
	EndpointInsert    = "insert"
	EndpointStats     = "stats"
)

// Config parameterizes a Server.
type Config struct {
	// MaxBatch caps the pairs per /v1/batch request (0 = DefaultMaxBatch).
	MaxBatch int
	// TopK is how many largest components /v1/stats reports (0 = 5).
	TopK int
	// Observer, when set, instruments every timed endpoint with request
	// counters, error-taxonomy counters, rolling latency quantiles, trace
	// IDs, and head-sampled spans (see NewObserver). Nil serves without
	// request-plane observability, exactly as before.
	Observer *Observer
	// Metrics is the registry Observer's server-state series (cumulative
	// latency histograms, readiness, published epoch) are registered in.
	// Required when Observer is set; ignored otherwise.
	Metrics *metrics.Registry
}

// Labeling is the immutable artifact a Server publishes: the answer array
// plus the metadata /v1/stats reports. Labels must not be mutated after
// Publish — every request goroutine reads it without synchronization.
type Labeling struct {
	Labels    []int32
	Edges     int64         // undirected edge count of the labeled graph
	Algorithm string        // e.g. "decomp-arb-hybrid-CC"
	Source    string        // where the graph came from (file path or generator spec)
	LoadTime  time.Duration // graph load + build time
	LabelTime time.Duration // connectivity computation time
}

// published is the precomputed read-side state derived from one Labeling.
type published struct {
	lab        Labeling
	epoch      uint64 // incremental generation (0 for a Publish-ed labeling)
	components int
	sizes      map[int32]int // label -> component size
	top        []graph.ComponentSize
	sizeHist   obs.HistogramSnapshot // component sizes, log2 buckets
	since      time.Time
}

// Server answers connectivity queries over a published Labeling. Create
// with New, mount Handler, then Publish the labeling when it is ready.
// EnableIncremental additionally activates /v1/insert, which mutates the
// labeling through a parconn.Incremental and republishes.
type Server struct {
	cfg     Config
	pub     atomic.Pointer[published]
	inc     atomic.Pointer[parconn.Incremental]
	incBase atomic.Int64              // Labeling.Edges at EnableIncremental time
	lat     map[string]*obs.Histogram // per-endpoint request latency, ns
	obs     *Observer                 // nil = uninstrumented
}

// New returns a Server that is not yet ready: queries answer 503 until
// Publish.
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 5
	}
	s := &Server{
		cfg: cfg,
		lat: map[string]*obs.Histogram{
			EndpointComponent: {},
			EndpointSame:      {},
			EndpointBatch:     {},
			EndpointInsert:    {},
			EndpointStats:     {},
		},
		obs: cfg.Observer,
	}
	if s.obs != nil {
		if cfg.Metrics == nil {
			panic("serve: Config.Observer requires Config.Metrics")
		}
		s.obs.bind(s, cfg.Metrics)
	}
	return s
}

// newPublished precomputes the read-side state of one labeling.
func (s *Server) newPublished(lab Labeling, epoch uint64) *published {
	count, top := graph.ComponentSummary(lab.Labels, s.cfg.TopK)
	sizes := graph.ComponentSizesOf(lab.Labels)
	var hist obs.Histogram
	for _, sz := range sizes {
		hist.Record(int64(sz))
	}
	return &published{
		lab:        lab,
		epoch:      epoch,
		components: count,
		sizes:      sizes,
		top:        top,
		sizeHist:   hist.Snapshot(),
		since:      time.Now(), //parconn:allow norand uptime stopwatch for /v1/stats; no algorithmic randomness
	}
}

// Publish computes the stats view of lab and flips the server ready. The
// labeling is shared immutably from here on; callers must not write to
// lab.Labels afterwards. Publishing again replaces the labeling atomically
// (in-flight requests finish against whichever version they loaded).
func (s *Server) Publish(lab Labeling) {
	s.pub.Store(s.newPublished(lab, 0))
}

// Ready reports whether a labeling has been published.
func (s *Server) Ready() bool { return s.pub.Load() != nil }

// EnableIncremental attaches the mutable connectivity layer behind
// /v1/insert. Call it after Publish-ing the labeling inc was seeded from:
// the current labeling's edge count becomes the base that insert batches
// add to. Until this is called, /v1/insert answers 501.
func (s *Server) EnableIncremental(inc *parconn.Incremental) {
	if p := s.pub.Load(); p != nil {
		s.incBase.Store(p.lab.Edges)
	}
	s.inc.Store(inc)
}

// republish swaps in the read-side state of one incremental snapshot,
// keeping the published epoch monotone: two racing inserts republish in
// some order, but a reader can never observe the labeling move backwards.
// The stats view is computed once, outside the CAS loop.
func (s *Server) republish(snap *parconn.IncrementalSnapshot) {
	var np *published
	for {
		p := s.pub.Load()
		if p == nil || p.epoch >= snap.Epoch {
			return
		}
		if np == nil {
			lab := p.lab
			lab.Labels = snap.Labels
			lab.Edges = s.incBase.Load() + snap.Edges
			np = s.newPublished(lab, snap.Epoch)
		}
		if s.pub.CompareAndSwap(p, np) {
			return
		}
		np = nil // a racing publish won; rebuild against the fresh state
	}
}

// LatencySnapshot returns the per-endpoint request-latency histograms
// (nanoseconds), keyed by the Endpoint* constants.
func (s *Server) LatencySnapshot() map[string]obs.HistogramSnapshot {
	out := make(map[string]obs.HistogramSnapshot, len(s.lat))
	for name, h := range s.lat {
		out[name] = h.Snapshot()
	}
	return out
}

// Handler returns the /v1 mux. Mount it on the command's root mux,
// typically alongside obshttp's debug handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/component", s.timed(EndpointComponent, s.serveComponent))
	mux.HandleFunc("/v1/same", s.timed(EndpointSame, s.serveSame))
	mux.HandleFunc("/v1/batch", s.timed(EndpointBatch, s.serveBatch))
	mux.HandleFunc("/v1/insert", s.timed(EndpointInsert, s.serveInsert))
	mux.HandleFunc("/v1/stats", s.timed(EndpointStats, s.serveStats))
	mux.HandleFunc("/v1/healthz", s.serveHealthz)
	return mux
}

// timed wraps a handler with latency recording. The histogram is wait-free,
// so concurrent requests never serialize on it. With an Observer attached,
// the full request middleware (trace IDs, taxonomy counters, rolling
// quantiles, sampled spans) runs instead; latency lands in the same
// histogram either way.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.lat[name]
	if o := s.obs; o != nil {
		return func(w http.ResponseWriter, r *http.Request) {
			o.observe(name, hist, h, w, r)
		}
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //parconn:allow norand request-latency stopwatch; no algorithmic randomness
		h(w, r)
		hist.Record(time.Since(start).Nanoseconds())
	}
}

// errorBody is the JSON shape of every non-2xx answer.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// loaded returns the published state, or answers 503 and nil while the
// labeling is still being computed.
func (s *Server) loaded(w http.ResponseWriter) *published {
	p := s.pub.Load()
	if p == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "labeling not ready")
	}
	return p
}

// vertexParam parses a vertex id query parameter: 400 for missing or
// non-numeric values, 404 for ids outside [0, n).
func vertexParam(w http.ResponseWriter, r *http.Request, name string, n int) (int32, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing query parameter %q", name)
		return 0, false
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parameter %q: not a vertex id: %q", name, raw)
		return 0, false
	}
	if v < 0 || v >= int64(n) {
		writeError(w, http.StatusNotFound, "vertex %d outside [0, %d)", v, n)
		return 0, false
	}
	return int32(v), true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

// componentResponse answers /v1/component.
type componentResponse struct {
	V         int32 `json:"v"`
	Component int32 `json:"component"`
	Size      int   `json:"size"`
}

func (s *Server) serveComponent(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	p := s.loaded(w)
	if p == nil {
		return
	}
	v, ok := vertexParam(w, r, "v", len(p.lab.Labels))
	if !ok {
		return
	}
	label := p.lab.Labels[v]
	writeJSON(w, http.StatusOK, componentResponse{V: v, Component: label, Size: p.sizes[label]})
}

// sameResponse answers /v1/same.
type sameResponse struct {
	U    int32 `json:"u"`
	V    int32 `json:"v"`
	Same bool  `json:"same"`
}

func (s *Server) serveSame(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	p := s.loaded(w)
	if p == nil {
		return
	}
	u, ok := vertexParam(w, r, "u", len(p.lab.Labels))
	if !ok {
		return
	}
	v, ok := vertexParam(w, r, "v", len(p.lab.Labels))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sameResponse{U: u, V: v, Same: p.lab.Labels[u] == p.lab.Labels[v]})
}

// batchResponse answers /v1/batch: Same[i] corresponds to request pair i.
type batchResponse struct {
	Count int    `json:"count"`
	Same  []bool `json:"same"`
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	p := s.loaded(w)
	if p == nil {
		return
	}
	var pairs [][2]int64
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&pairs); err != nil {
		writeError(w, http.StatusBadRequest, "body: want JSON [[u,v],...]: %v", err)
		return
	}
	if len(pairs) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d pairs exceeds limit %d", len(pairs), s.cfg.MaxBatch)
		return
	}
	annotateBatch(r.Context(), len(pairs))
	n := int64(len(p.lab.Labels))
	same := make([]bool, len(pairs))
	for i, pr := range pairs {
		u, v := pr[0], pr[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			writeError(w, http.StatusNotFound, "pair %d: vertex outside [0, %d)", i, n)
			return
		}
		same[i] = p.lab.Labels[u] == p.lab.Labels[v]
	}
	writeJSON(w, http.StatusOK, batchResponse{Count: len(same), Same: same})
}

// insertResponse answers /v1/insert: how many edges the batch carried, how
// many merged two components, and the generation + component count after
// the batch (from the consistent snapshot the republished labeling uses).
type insertResponse struct {
	Inserted   int    `json:"inserted"`
	Merged     int    `json:"merged"`
	Epoch      uint64 `json:"epoch"`
	Components int    `json:"components"`
}

func (s *Server) serveInsert(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if s.loaded(w) == nil {
		return
	}
	inc := s.inc.Load()
	if inc == nil {
		writeError(w, http.StatusNotImplemented, "incremental updates not enabled")
		return
	}
	var pairs [][2]int64
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	if err := dec.Decode(&pairs); err != nil {
		writeError(w, http.StatusBadRequest, "body: want JSON [[u,v],...]: %v", err)
		return
	}
	if len(pairs) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d edges exceeds limit %d", len(pairs), s.cfg.MaxBatch)
		return
	}
	annotateBatch(r.Context(), len(pairs))
	n := int64(inc.Vertices())
	edges := make([]parconn.Edge, len(pairs))
	for i, pr := range pairs {
		if pr[0] < 0 || pr[0] >= n || pr[1] < 0 || pr[1] >= n {
			writeError(w, http.StatusNotFound, "edge %d: vertex outside [0, %d)", i, n)
			return
		}
		edges[i] = parconn.Edge{U: int32(pr[0]), V: int32(pr[1])}
	}
	merged, err := inc.Insert(edges)
	if err != nil {
		// Unreachable after the range check above, but never 500 on input.
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	snap := inc.Snapshot()
	s.republish(snap)
	annotateEpoch(r.Context(), snap.Epoch)
	writeJSON(w, http.StatusOK, insertResponse{
		Inserted:   len(edges),
		Merged:     merged,
		Epoch:      snap.Epoch,
		Components: snap.Components,
	})
}

// endpointLatency is one endpoint's latency summary inside statsResponse.
type endpointLatency struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// statsResponse answers /v1/stats.
type statsResponse struct {
	Vertices      int                        `json:"vertices"`
	Edges         int64                      `json:"edges"`
	Components    int                        `json:"components"`
	Epoch         uint64                     `json:"epoch"`
	Algorithm     string                     `json:"algorithm"`
	Source        string                     `json:"source,omitempty"`
	LoadMS        float64                    `json:"load_ms"`
	LabelMS       float64                    `json:"label_ms"`
	UptimeSec     float64                    `json:"uptime_sec"`
	TopComponents []graph.ComponentSize      `json:"top_components"`
	SizeHistogram obs.HistogramSnapshot      `json:"size_histogram"`
	Endpoints     map[string]endpointLatency `json:"endpoints"`
}

func (s *Server) serveStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	p := s.loaded(w)
	if p == nil {
		return
	}
	eps := make(map[string]endpointLatency, len(s.lat))
	for name, snap := range s.LatencySnapshot() {
		eps[name] = endpointLatency{
			Count:  snap.Count,
			MeanNS: int64(snap.Mean()),
			P50NS:  snap.Quantile(0.50),
			P95NS:  snap.Quantile(0.95),
			P99NS:  snap.Quantile(0.99),
			MaxNS:  snap.Max,
		}
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Vertices:      len(p.lab.Labels),
		Edges:         p.lab.Edges,
		Components:    p.components,
		Epoch:         p.epoch,
		Algorithm:     p.lab.Algorithm,
		Source:        p.lab.Source,
		LoadMS:        float64(p.lab.LoadTime.Microseconds()) / 1000,
		LabelMS:       float64(p.lab.LabelTime.Microseconds()) / 1000,
		UptimeSec:     time.Since(p.since).Seconds(),
		TopComponents: p.top,
		SizeHistogram: p.sizeHist,
		Endpoints:     eps,
	})
}

// healthzResponse answers /v1/healthz.
type healthzResponse struct {
	Status string `json:"status"`
}

// serveHealthz is the readiness gate: 503 while the labeling is computing,
// 200 after Publish. Deliberately not latency-timed — load balancers poll
// it and would drown the query histograms.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if s.pub.Load() == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, healthzResponse{Status: "loading"})
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok"})
}
