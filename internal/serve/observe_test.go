package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parconn"
	"parconn/internal/obs"
	"parconn/internal/obs/metrics"
)

// newObservedServer builds a ready server with full observability attached:
// every request sampled into the flight recorder, metrics in a fresh
// registry.
func newObservedServer(t *testing.T, sampleEvery int) (*Server, *Observer, *metrics.Registry, *obs.FlightRecorder, *httptest.Server) {
	t.Helper()
	reg := metrics.New()
	fr := obs.NewFlightRecorder(256)
	o := NewObserver(ObserverConfig{Metrics: reg, Spans: fr, SampleEvery: sampleEvery})
	s := New(Config{MaxBatch: 8, TopK: 2, Observer: o, Metrics: reg})
	s.Publish(testLabeling())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, o, reg, fr, ts
}

func scrape(t *testing.T, reg *metrics.Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := metrics.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	return parsed
}

func spansOf(t *testing.T, fr *obs.FlightRecorder) []obs.Span {
	t.Helper()
	evs, _ := fr.Snapshot()
	var spans []obs.Span
	for _, ev := range evs {
		if sp, ok := ev.V.(obs.Span); ok {
			spans = append(spans, sp)
		}
	}
	return spans
}

func TestObserverCountsRequests(t *testing.T) {
	_, _, reg, _, ts := newObservedServer(t, 1)

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/component?v=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/same?u=0&v=9")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	parsed := scrape(t, reg)
	if got := parsed[metrics.Series("parconn_http_requests_total", metrics.L("endpoint", "component"))]; got != 3 {
		t.Errorf("component requests = %v, want 3", got)
	}
	if got := parsed[metrics.Series("parconn_http_requests_total", metrics.L("endpoint", "same"))]; got != 1 {
		t.Errorf("same requests = %v, want 1", got)
	}
	// Cumulative duration histogram counted the same requests.
	if got := parsed[`parconn_http_request_duration_seconds_count{endpoint="component"}`]; got != 3 {
		t.Errorf("duration count = %v, want 3", got)
	}
	// Rolling quantile gauges exist and are positive right after traffic.
	p99 := parsed[`parconn_http_rolling_latency_seconds{endpoint="component",quantile="0.99"}`]
	if p99 <= 0 {
		t.Errorf("rolling p99 = %v, want > 0", p99)
	}
	if got := parsed["parconn_ready"]; got != 1 {
		t.Errorf("parconn_ready = %v, want 1", got)
	}
	if got := parsed["parconn_http_inflight_requests"]; got != 0 {
		t.Errorf("inflight after quiesce = %v, want 0", got)
	}
}

func TestObserverErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name     string
		do       func(ts *httptest.Server) error
		endpoint string
		class    string
	}{
		{"bad vertex param", func(ts *httptest.Server) error {
			resp, err := http.Get(ts.URL + "/v1/component?v=notanumber")
			if err == nil {
				resp.Body.Close()
			}
			return err
		}, EndpointComponent, "4xx"},
		{"insert without incremental", func(ts *httptest.Server) error {
			resp, err := http.Post(ts.URL+"/v1/insert", "application/json", strings.NewReader("[[0,1]]"))
			if err == nil {
				resp.Body.Close()
			}
			return err
		}, EndpointInsert, "read_only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, reg, _, ts := newObservedServer(t, 0)
			if err := tc.do(ts); err != nil {
				t.Fatal(err)
			}
			parsed := scrape(t, reg)
			key := metrics.Series("parconn_http_errors_total", metrics.L("endpoint", tc.endpoint, "class", tc.class))
			if got := parsed[key]; got != 1 {
				t.Errorf("%s = %v, want 1", key, got)
			}
		})
	}
}

func TestObserverNotReadyClass(t *testing.T) {
	reg := metrics.New()
	o := NewObserver(ObserverConfig{Metrics: reg})
	s := New(Config{Observer: o, Metrics: reg}) // never published
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/component?v=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	parsed := scrape(t, reg)
	key := metrics.Series("parconn_http_errors_total", metrics.L("endpoint", "component", "class", "not_ready"))
	if got := parsed[key]; got != 1 {
		t.Errorf("%s = %v, want 1", key, got)
	}
	if got := parsed["parconn_ready"]; got != 0 {
		t.Errorf("parconn_ready before publish = %v, want 0", got)
	}
}

func TestTraceIDGeneratedAndEchoed(t *testing.T) {
	_, _, _, _, ts := newObservedServer(t, 1)

	// No client ID: the server generates a 16-hex-digit one.
	resp, err := http.Get(ts.URL + "/v1/component?v=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get(TraceHeader)
	if len(id) != 16 {
		t.Fatalf("generated trace ID %q, want 16 hex chars", id)
	}
	for _, c := range id {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("generated trace ID %q has non-hex char %q", id, c)
		}
	}

	// Client-supplied ID is echoed verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/component?v=1", nil)
	req.Header.Set(TraceHeader, "client-chose-this")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(TraceHeader); got != "client-chose-this" {
		t.Fatalf("echoed trace ID %q, want client's", got)
	}

	// Oversized client IDs are truncated, not rejected.
	req3, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/component?v=1", nil)
	long := strings.Repeat("x", 500)
	req3.Header.Set(TraceHeader, long)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if got := resp3.Header.Get(TraceHeader); len(got) != maxTraceIDLen || !strings.HasPrefix(long, got) {
		t.Fatalf("oversized trace ID echoed as %d chars, want truncation to %d", len(got), maxTraceIDLen)
	}
}

func TestSampledSpansCarryRequestDetail(t *testing.T) {
	s, _, reg, fr, ts := newObservedServer(t, 1) // sample everything

	// A batch query span records the batch size.
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader("[[0,1],[0,9],[3,4]]"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	batchID := resp.Header.Get(TraceHeader)

	// An insert span records batch size and published epoch.
	inc, err := parconn.NewIncrementalFromLabels(testLabeling().Labels)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableIncremental(inc)
	resp2, err := http.Post(ts.URL+"/v1/insert", "application/json", strings.NewReader("[[0,9],[1,8]]"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()

	spans := spansOf(t, fr)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	batch, insert := spans[0], spans[1]
	if batch.Endpoint != EndpointBatch || batch.Status != 200 || batch.Batch != 3 {
		t.Errorf("batch span %+v, want endpoint=batch status=200 batch=3", batch)
	}
	if batch.TraceID != batchID {
		t.Errorf("batch span trace ID %q, header said %q", batch.TraceID, batchID)
	}
	if batch.Duration <= 0 {
		t.Errorf("batch span duration %v, want > 0", batch.Duration)
	}
	if insert.Endpoint != EndpointInsert || insert.Batch != 2 || insert.Epoch == 0 {
		t.Errorf("insert span %+v, want endpoint=insert batch=2 epoch>0", insert)
	}

	parsed := scrape(t, reg)
	if got := parsed["parconn_http_spans_sampled_total"]; got != 2 {
		t.Errorf("spans sampled counter = %v, want 2", got)
	}
	if got := parsed["parconn_published_epoch"]; got != float64(insert.Epoch) {
		t.Errorf("parconn_published_epoch = %v, want %d", got, insert.Epoch)
	}
}

func TestHeadSamplingRate(t *testing.T) {
	_, _, _, fr, ts := newObservedServer(t, 4) // 1-in-4

	for i := 0; i < 20; i++ {
		resp, err := http.Get(ts.URL + "/v1/component?v=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := len(spansOf(t, fr)); got != 5 {
		t.Fatalf("sampled %d of 20 requests at 1-in-4, want 5", got)
	}
}

func TestSpansSurviveJSONLRoundTrip(t *testing.T) {
	_, _, _, fr, ts := newObservedServer(t, 1)
	resp, err := http.Get(ts.URL + "/v1/component?v=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	for _, sp := range spansOf(t, fr) {
		jw.Span(sp)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := obs.Validate(evs)
	if err != nil {
		t.Fatalf("span stream failed validation: %v", err)
	}
	if sum.Spans != 1 {
		t.Fatalf("validated %d spans, want 1", sum.Spans)
	}
}

func TestUnobservedServerUnchanged(t *testing.T) {
	// No Observer: no trace header, handlers still work.
	_, ts := newReadyServer(t)
	resp, err := http.Get(ts.URL + "/v1/component?v=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "" {
		t.Fatalf("uninstrumented server set trace header %q", got)
	}
}

func TestHealthzStaysUnobserved(t *testing.T) {
	_, _, reg, fr, ts := newObservedServer(t, 1)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	parsed := scrape(t, reg)
	for key := range parsed {
		if strings.Contains(key, `endpoint="healthz"`) {
			t.Errorf("healthz leaked into metrics: %s", key)
		}
	}
	if got := len(spansOf(t, fr)); got != 0 {
		t.Errorf("healthz produced %d spans, want 0", got)
	}
}

func TestObserverConcurrentRequests(t *testing.T) {
	_, _, reg, _, ts := newObservedServer(t, 2)
	const workers, per = 8, 25
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < per; i++ {
				resp, err := http.Get(ts.URL + "/v1/same?u=1&v=2")
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			errc <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	parsed := scrape(t, reg)
	if got := parsed[metrics.Series("parconn_http_requests_total", metrics.L("endpoint", "same"))]; got != workers*per {
		t.Fatalf("same requests = %v, want %d", got, workers*per)
	}
}

func TestObserverRequiresMetrics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Config.Observer without Config.Metrics did not panic")
		}
	}()
	reg := metrics.New()
	o := NewObserver(ObserverConfig{Metrics: reg})
	New(Config{Observer: o})
}

func TestGeneratedTraceIDsUnique(t *testing.T) {
	_, o, _, _, _ := newObservedServer(t, 0)
	req, _ := http.NewRequest(http.MethodGet, "http://x/v1/component", nil)
	seen := make(map[string]bool)
	for i := uint64(1); i <= 1000; i++ {
		id := o.traceID(req, i)
		if seen[id] {
			t.Fatalf("duplicate generated trace ID %s at seq %d", id, i)
		}
		seen[id] = true
	}
}
