package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata fixture package against the real
// module (so fixtures can import internal/parallel).
func loadFixture(t *testing.T, name string) *Pass {
	t.Helper()
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pass, err := LoadFixture(modRoot, filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pass
}

func analyzerNamed(t *testing.T, name string) Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

var wantRE = regexp.MustCompile(`// want (".*")`)
var quotedRE = regexp.MustCompile(`"([^"]*)"`)

// wantsIn extracts the `// want "substr" ...` expectations of a fixture,
// keyed by file:line.
func wantsIn(pass *Pass) map[string][]string {
	wants := make(map[string][]string)
	for _, file := range pass.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				key := posKey(pos.Filename, pos.Line)
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					wants[key] = append(wants[key], q[1])
				}
			}
		}
	}
	return wants
}

func posKey(file string, line int) string {
	return filepath.Base(file) + ":" + strings.Repeat("", 0) + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestAnalyzerFixtures runs each check over its fixture package and demands
// an exact match between findings and `want` comments: every expectation
// observed, no extra findings.
func TestAnalyzerFixtures(t *testing.T) {
	for _, name := range []string{
		"mixedatomic", "sharedwrite", "norand", "conversioncheck", "obsrecorder",
		"hotalloc", "blockingcall", "scratchlifetime",
	} {
		t.Run(name, func(t *testing.T) {
			pass := loadFixture(t, name)
			findings, _ := Apply(pass, analyzerNamed(t, name).Run(pass))
			wants := wantsIn(pass)
			matched := make(map[string]bool)
			for _, f := range findings {
				key := posKey(f.Pos.Filename, f.Pos.Line)
				subs, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding: %s", f)
					continue
				}
				found := false
				for _, sub := range subs {
					if strings.Contains(f.Message, sub) {
						found = true
						matched[key] = true
					}
				}
				if !found {
					t.Errorf("finding %s matches none of %q", f, subs)
				}
			}
			for key := range wants {
				if !matched[key] {
					t.Errorf("want at %s produced no finding", key)
				}
			}
		})
	}
}

// TestSuppression checks that //parconn:allow comments move findings from
// the active to the suppressed set — inline, above-line, and multi-check
// forms.
func TestSuppression(t *testing.T) {
	pass := loadFixture(t, "suppress")
	var findings []Finding
	for _, a := range All() {
		findings = append(findings, a.Run(pass)...)
	}
	if len(findings) == 0 {
		t.Fatal("suppress fixture produced no raw findings; fixture is stale")
	}
	active, suppressed := Apply(pass, findings)
	for _, f := range active {
		t.Errorf("finding escaped suppression: %s", f)
	}
	if len(suppressed) < 4 {
		t.Errorf("suppressed %d findings, want at least 4", len(suppressed))
	}
	if fs := CheckAllows(pass); len(fs) != 0 {
		t.Errorf("well-formed allow comments flagged: %v", fs)
	}
}

// TestMalformedAllows checks that suppression comments with a missing
// reason or an unknown check name are themselves reported.
func TestMalformedAllows(t *testing.T) {
	pass := loadFixture(t, "badallow")
	findings := CheckAllows(pass)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "reason") {
		t.Errorf("first finding should demand a reason: %s", findings[0])
	}
	if !strings.Contains(findings[1].Message, "unknown check") {
		t.Errorf("second finding should reject the unknown check: %s", findings[1])
	}
}

// TestIsLibrary pins the package classification driving norand.
func TestIsLibrary(t *testing.T) {
	cases := map[string]bool{
		"parconn":                     true,
		"parconn/internal/decomp":     true,
		"parconn/internal/analysis":   true,
		"parconn/internal/bench":      false,
		"parconn/cmd/parconnvet":      false,
		"parconn/cmd/bench":           false,
		"parconn/examples/quickstart": false,
	}
	for path, want := range cases {
		if got := isLibrary("parconn", path); got != want {
			t.Errorf("isLibrary(%q) = %v, want %v", path, got, want)
		}
	}
}
