package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sharedWrite flags the canonical fork-join data race: a closure passed to
// one of the parallel package's entry points (For, ForGrain, Blocks,
// WorkerBlocks, Do) writing to a variable captured from the enclosing
// scope. A write is allowed when its destination is indexed by a value
// derived inside the closure (each worker then owns disjoint slots: out[i],
// partial[worker], nxt[v]) or when the index is reserved atomically
// (nxt[cursor.Add(1)-1]). Everything else — accumulating into a captured
// scalar, writing a fixed index, storing through a captured pointer — races
// with the sibling workers.
type sharedWrite struct{}

func (sharedWrite) Name() string { return "sharedwrite" }

// parallelEntryPoints are the fork-join entry points whose function-typed
// arguments run concurrently.
var parallelEntryPoints = map[string]bool{
	"For": true, "ForGrain": true, "Blocks": true, "WorkerBlocks": true, "Do": true,
}

// parallelPkgPath is the import path of the fork-join package.
const parallelPkgPath = "parconn/internal/parallel"

func (sharedWrite) Run(pass *Pass) []Finding {
	var out []Finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelEntry(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					out = append(out, checkClosure(pass, lit)...)
				}
			}
			return true
		})
	}
	return out
}

// isParallelEntry reports whether call invokes one of the fork-join entry
// points, whether through the package qualifier (parallel.For) or
// unqualified from inside the package itself.
func isParallelEntry(info *types.Info, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := info.Uses[id].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == parallelPkgPath &&
		parallelEntryPoints[fn.Name()]
}

// checkClosure walks one parallel closure body for writes to captured
// state. "Inside" is judged by declaration position: parameters, locals,
// and nested-closure locals all count as closure-owned.
func checkClosure(pass *Pass, lit *ast.FuncLit) []Finding {
	inside := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	// derivedInside reports whether e mentions a closure-local object or an
	// atomic call — either makes an index expression worker-private.
	derivedInside := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if inside(pass.Info.Uses[x]) {
					found = true
				}
			case *ast.CallExpr:
				if atomicCall(pass.Info, x) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	var out []Finding
	checkTarget := func(pos token.Pos, target ast.Expr, what string) {
		target = unparen(target)
		if idx, ok := target.(*ast.IndexExpr); ok {
			if obj := rootObject(pass.Info, idx.X); inside(obj) {
				return
			}
			if derivedInside(idx.Index) {
				return
			}
			obj := rootObject(pass.Info, idx.X)
			name := "captured variable"
			if obj != nil {
				name = obj.Name()
			}
			out = append(out, pass.finding(pos, "sharedwrite",
				"%s to captured %s at an index not derived inside the parallel closure; concurrent workers race on the same slot", what, name))
			return
		}
		if slice, ok := target.(*ast.SliceExpr); ok {
			// copy(dst[lo:hi], ...) style: worker-private iff the bounds are.
			if obj := rootObject(pass.Info, slice.X); inside(obj) {
				return
			}
			if (slice.Low != nil && derivedInside(slice.Low)) || (slice.High != nil && derivedInside(slice.High)) {
				return
			}
			target = slice.X
		}
		obj := rootObject(pass.Info, target)
		if inside(obj) {
			return
		}
		name := "captured variable"
		if obj != nil {
			name = obj.Name()
		}
		out = append(out, pass.finding(pos, "sharedwrite",
			"%s to captured %s inside a parallel closure; use an atomic, a worker-indexed slot, or a reduction", what, name))
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true // := declares closure-locals
			}
			for _, lhs := range x.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				checkTarget(lhs.Pos(), lhs, "write")
			}
		case *ast.IncDecStmt:
			checkTarget(x.Pos(), x.X, "write")
		case *ast.CallExpr:
			// The copy builtin writes through its first argument.
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "copy" && len(x.Args) == 2 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					checkTarget(x.Args[0].Pos(), x.Args[0], "copy")
				}
			}
		}
		return true
	})
	return out
}
