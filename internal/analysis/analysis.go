// Package analysis implements parconnvet, the repo's concurrency-safety
// static analyzer: a set of parconn-specific checks over the type-checked
// module, built only on the standard library's go/ast, go/parser, go/types,
// and go/importer.
//
// Checks:
//
//	mixedatomic     an object accessed through sync/atomic anywhere must be
//	                accessed atomically everywhere in the package
//	sharedwrite     closures passed to parallel.For/ForGrain/Blocks/
//	                WorkerBlocks/Do must not write captured variables unless
//	                the write is atomic or indexed by a closure-local value
//	norand          library packages may not import math/rand or call
//	                time.Now; randomness comes from internal/prand and
//	                injected seeds
//	conversioncheck count-like int/int64 expressions must not be narrowed to
//	                int32 without an explicit bounds check
//	obsrecorder     obs.Recorder methods, obs.SpanRecorder span emission,
//	                and metrics.Registry registration must not happen inside
//	                closures passed to the parallel entry points; parallel
//	                code buffers per-worker measurements (obs.ShardedInt64,
//	                pre-registered metric handles) and the coordinator emits
//	                events between sections
//	hotalloc        functions reachable from a //parconn:hotpath root must
//	                not contain allocating constructs (make, append, ...)
//	blockingcall    functions reachable from a parallel entry-point closure
//	                must not block (channels, mutexes, IO, time.Sleep)
//	scratchlifetime workspace.Arena buffers must not escape their acquiring
//	                function (field stores, pointer stores, returns)
//
// The first five checks are per-file AST checks; the last three are
// interprocedural, consuming the module-wide call graph and the inferred
// parallel-context and hot-path sets (callgraph.go, context.go) attached
// to each Pass by LoadModule and LoadFixture.
//
// Findings print as "file:line:col: [check] message". Intentional idioms
// (e.g. Decomp-Arb's phase-separated plain reads) are suppressed with
//
//	//parconn:allow <check>[,<check>...] <reason>
//
// placed on the flagged line or the line directly above it; a comment
// directly above a function declaration covers the whole declaration. The
// reason is mandatory; a missing reason or unknown check name is itself
// reported, and a suppression that matches no finding is reported stale
// (UnusedAllows).
//
// The per-file checks are intraprocedural: an object that escapes to
// another function under a different name (slice aliasing,
// address-taking) is tracked per declaration, not per memory region.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Finding is one diagnostic produced by a check.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// An Analyzer inspects one type-checked package.
type Analyzer interface {
	Name() string
	Run(pass *Pass) []Finding
}

// Pass bundles one type-checked package for the analyzers.
type Pass struct {
	Path    string // import path
	Library bool   // subject to the library-only checks (norand)
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	// Mod is the module-wide interprocedural view (call graph and context
	// sets) shared by every pass of one load; nil when a package was
	// type-checked in isolation, in which case the interprocedural checks
	// are silently skipped.
	Mod *Module
}

func (p *Pass) finding(pos token.Pos, check, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Check: check, Message: fmt.Sprintf(format, args...)}
}

// All returns the analyzers in the order they run.
func All() []Analyzer {
	return []Analyzer{
		mixedAtomic{}, sharedWrite{}, noRand{}, conversionCheck{}, obsRecorder{},
		hotAllocAnalyzer{}, blockingCallAnalyzer{}, scratchLifetimeAnalyzer{},
	}
}

// checkNames is the set of valid check names for //parconn:allow comments.
var checkNames = func() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name()] = true
	}
	return m
}()

// allowMarker introduces a suppression comment.
const allowMarker = "//parconn:allow"

type allowComment struct {
	file   string
	pos    token.Pos
	checks []string
	reason string
	lines  map[int]bool // lines in file the comment covers
}

// allowsIn parses every //parconn:allow comment of the pass. A comment
// covers its own line and the line following its comment group, so it can
// sit at the end of the flagged line or directly above it. When the
// covered line opens a function declaration, coverage extends to the
// whole declaration: one annotated reason covers a scheduler or packing
// primitive without per-line noise.
func allowsIn(pass *Pass) []allowComment {
	var out []allowComment
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		start := len(out)
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, allowMarker)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				a := allowComment{
					file: fname,
					pos:  c.Pos(),
					lines: map[int]bool{
						pass.Fset.Position(c.Pos()).Line:         true,
						pass.Fset.Position(group.End()).Line + 1: true,
					},
				}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					a.checks = strings.Split(fields[0], ",")
					a.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, a)
			}
		}
		for i := start; i < len(out); i++ {
			a := &out[i]
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				first := pass.Fset.Position(fd.Pos()).Line
				if !a.lines[first] {
					continue
				}
				last := pass.Fset.Position(fd.End()).Line
				for l := first; l <= last; l++ {
					a.lines[l] = true
				}
			}
		}
	}
	return out
}

// CheckAllows validates the //parconn:allow comments themselves: every
// comment must name known checks and give a reason, so suppressions stay
// auditable.
func CheckAllows(pass *Pass) []Finding {
	var out []Finding
	for _, a := range allowsIn(pass) {
		if len(a.checks) == 0 {
			out = append(out, pass.finding(a.pos, "allow", "suppression comment names no check; want %s <check> <reason>", allowMarker))
			continue
		}
		for _, c := range a.checks {
			if !checkNames[c] {
				out = append(out, pass.finding(a.pos, "allow", "suppression names unknown check %q", c))
			}
		}
		if a.reason == "" {
			out = append(out, pass.finding(a.pos, "allow", "suppression of %s is missing its mandatory reason", strings.Join(a.checks, ",")))
		}
	}
	return out
}

// UnusedAllows reports well-formed //parconn:allow comments that
// suppressed nothing in the given suppressed set (as returned by Apply
// for the same pass): stale suppressions hide nothing but rot into
// misleading documentation, so parconnvet fails on them. Malformed
// comments are CheckAllows's findings, not repeated here.
func UnusedAllows(pass *Pass, suppressed []Finding) []Finding {
	var out []Finding
	for _, a := range allowsIn(pass) {
		if len(a.checks) == 0 || a.reason == "" {
			continue
		}
		known := true
		for _, c := range a.checks {
			if !checkNames[c] {
				known = false
			}
		}
		if !known {
			continue
		}
		used := false
		for _, f := range suppressed {
			if f.Pos.Filename != a.file || !a.lines[f.Pos.Line] {
				continue
			}
			for _, c := range a.checks {
				if c == f.Check {
					used = true
				}
			}
		}
		if !used {
			out = append(out, pass.finding(a.pos, "allow",
				"suppression of %s matches no finding; remove the stale allow",
				strings.Join(a.checks, ",")))
		}
	}
	return out
}

// Apply splits findings into active and suppressed according to the pass's
// //parconn:allow comments, deduplicates, and sorts both sets by position.
func Apply(pass *Pass, findings []Finding) (active, suppressed []Finding) {
	allows := allowsIn(pass)
	seen := make(map[Finding]bool)
	for _, f := range findings {
		if seen[f] {
			continue
		}
		seen[f] = true
		ok := false
		for _, a := range allows {
			if a.file != f.Pos.Filename || !a.lines[f.Pos.Line] || a.reason == "" {
				continue
			}
			for _, c := range a.checks {
				if c == f.Check {
					ok = true
				}
			}
		}
		if ok {
			suppressed = append(suppressed, f)
		} else {
			active = append(active, f)
		}
	}
	SortFindings(active)
	SortFindings(suppressed)
	return active, suppressed
}

// SortFindings orders findings by file, line, column, and check name.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// rootObject resolves the variable or struct field that an lvalue-ish
// expression ultimately denotes: c -> c, c[i] -> c, s.f[i] -> field f,
// (*p)[i] -> p. It returns nil for expressions with no stable root (calls,
// composite literals, ...).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj()
			}
			return info.Uses[x.Sel] // qualified identifier
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// atomicCall reports whether call invokes sync/atomic functionality: a
// package function (atomic.LoadInt32, ...) or a method of one of the atomic
// wrapper types (atomic.Int64.Add, ...).
func atomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
