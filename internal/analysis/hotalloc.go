package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The hotalloc check enforces the allocation-free steady-state contract
// on the hot-path set (context.go): inside any function reachable from a
// //parconn:hotpath root it flags every construct the compiler may turn
// into a heap allocation — make and new, append (which may grow), slice
// and map composite literals, address-of composite literals, go
// statements, closures created at call sites, string conversions and
// concatenation, and boxing of non-pointer-shaped values into
// interfaces. The check is deliberately louder than the escape analyzer:
// a flagged site either gets removed (arena or caller-provided storage)
// or carries a //parconn:allow hotalloc annotation explaining why it is
// off the steady-state path (setup, cold error path, explicit opt-in).
type hotAllocAnalyzer struct{}

func (hotAllocAnalyzer) Name() string { return "hotalloc" }

func (hotAllocAnalyzer) Run(pass *Pass) []Finding {
	var findings []Finding
	flag := func(pos token.Pos, msg string) {
		findings = append(findings, Finding{
			Pos:     pass.Fset.Position(pos),
			Check:   "hotalloc",
			Message: msg,
		})
	}
	eachFunc(pass, func(node funcNode, body *ast.BlockStmt) {
		if !pass.Mod.Hot(node) {
			return
		}
		where := " in hot-path function (" + pass.Mod.HotVia(node) + ")"
		shallowInspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				switch name := builtinName(pass.Info, x); name {
				case "make":
					flag(x.Pos(), "make allocates"+where)
				case "new":
					flag(x.Pos(), "new allocates"+where)
				case "append":
					flag(x.Pos(), "append may grow and reallocate"+where)
				default:
					checkCallBoxing(pass, x, where, flag)
					checkConversionAlloc(pass, x, where, flag)
				}
				// Closures handed to the parallel entry points are the
				// scheduler's budgeted per-section cost — BenchmarkCCAllocs'
				// steady state already accounts for them — so only captures
				// escaping into ordinary calls are charged here.
				if !isParallelEntry(pass.Info, x) {
					for _, arg := range x.Args {
						if lit, ok := unparen(arg).(*ast.FuncLit); ok && capturesLocals(pass.Info, lit) {
							flag(lit.Pos(), "capturing closure allocates at call site"+where)
						}
					}
				}
			case *ast.CompositeLit:
				switch pass.Info.TypeOf(x).Underlying().(type) {
				case *types.Slice:
					flag(x.Pos(), "slice literal allocates"+where)
				case *types.Map:
					flag(x.Pos(), "map literal allocates"+where)
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
						flag(x.Pos(), "address of composite literal allocates"+where)
					}
				}
			case *ast.GoStmt:
				flag(x.Pos(), "go statement allocates a goroutine"+where)
			case *ast.BinaryExpr:
				if x.Op == token.ADD && isStringType(pass.Info.TypeOf(x)) {
					flag(x.Pos(), "string concatenation allocates"+where)
				}
			}
			return true
		})
	})
	return findings
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// checkConversionAlloc flags string<->[]byte/[]rune conversions, which
// copy their operand.
func checkConversionAlloc(pass *Pass, call *ast.CallExpr, where string, flag func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type.Underlying()
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	srcU := src.Underlying()
	switch {
	case isStringType(dst) && isByteOrRuneSlice(srcU):
		flag(call.Pos(), "slice-to-string conversion allocates"+where)
	case isByteOrRuneSlice(dst) && isStringType(srcU):
		flag(call.Pos(), "string-to-slice conversion allocates"+where)
	}
}

// checkCallBoxing flags arguments whose concrete, non-pointer-shaped
// values are implicitly boxed into interface parameters (one finding per
// call — fmt.Errorf("%d %d", a, b) is one allocation event to fix).
func checkCallBoxing(pass *Pass, call *ast.CallExpr, where string, flag func(token.Pos, string)) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			param = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case sig.Variadic():
			param = params.At(params.Len() - 1).Type() // f(xs...): no boxing
		default:
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || isNilOrUntypedNil(pass.Info, arg) {
			continue
		}
		// Constants boxed into interfaces (panic("..."), fmt.Errorf with
		// constant operands) become static read-only data, not heap values.
		if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		if isPointerShaped(at) {
			continue
		}
		flag(call.Pos(), "argument boxed into interface parameter allocates"+where)
		return
	}
}

// capturesLocals reports whether lit references a variable declared
// outside its own body in some enclosing function — the condition under
// which the closure needs a heap-allocated environment. References to
// package-level variables do not capture.
func capturesLocals(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package scope
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit the data word of an
// interface without allocating: pointers, channels, maps, funcs, and
// unsafe pointers.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isNilOrUntypedNil(info *types.Info, arg ast.Expr) bool {
	if id, ok := unparen(arg).(*ast.Ident); ok && id.Name == "nil" {
		if _, isNil := info.Uses[id].(*types.Nil); isNil {
			return true
		}
	}
	tv, ok := info.Types[arg]
	return ok && tv.IsNil()
}
