package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the module-wide conservative call graph the
// interprocedural checks (hotalloc, blockingcall) consume. The graph is
// deliberately reference-based rather than call-based: any mention of a
// function value — a direct call, a method value, an argument position, a
// field read — creates an edge, because a referenced function may be
// invoked by whoever receives the value. That over-approximation is what
// lets the analysis follow this codebase's bound-closure machines: a
// literal assigned to a struct field in a constructor is linked to every
// site that reads the field, without any flow analysis.
//
// Three constructs are resolved specially:
//
//   - Function literals are their own nodes (keyed by *ast.FuncLit), so a
//     closure passed to the scheduler is analyzed in the context it runs
//     in, not the context it was written in.
//   - References to function-typed variables and struct fields resolve to
//     every literal ever assigned to that object anywhere in the module
//     (litAssigns), which covers the fnPre/fnMain/fnRelabel machine fields.
//   - Interface method calls resolve to nothing. The only interface on the
//     measured hot path is obs.Recorder, whose enabled path is explicitly
//     outside the alloc-free invariant (BenchmarkCCAllocs runs with a nil
//     Recorder) and whose closure discipline the obsrecorder check enforces
//     separately.

// funcNode identifies one function-like body: a declared function or
// method (*types.Func) or a function literal (*ast.FuncLit).
type funcNode any

// funcInfo is the per-node bookkeeping of the call graph.
type funcInfo struct {
	pass    *Pass
	name    string         // qualified name, or func@file:line for literals
	body    *ast.BlockStmt // nil for bodyless declarations
	pos     token.Pos
	lits    []*ast.FuncLit // literals nested immediately inside body
	hotRoot bool           // carries a //parconn:hotpath directive
}

// hotPathMarker marks a declared function as a root of the hot-path set:
// every function it (transitively) references is held to the
// allocation-free steady-state contract by the hotalloc check.
const hotPathMarker = "//parconn:hotpath"

// Module is the interprocedural view over one load: every function node,
// the literal-assignment map, and the inferred parallel-context and
// hot-path sets. LoadModule and LoadFixture attach one to each Pass.
type Module struct {
	nodes      map[funcNode]*funcInfo
	litAssigns map[*types.Var][]*ast.FuncLit

	// hot maps every hot-path node to a short provenance string; par does
	// the same for the parallel-context set. See context.go.
	hot map[funcNode]string
	par map[funcNode]string
}

// nodeOf resolves a declaration or literal to its node key, or nil.
func (m *Module) nodeOf(pass *Pass, n ast.Node) funcNode {
	switch x := n.(type) {
	case *ast.FuncDecl:
		if fn, ok := pass.Info.Defs[x.Name].(*types.Func); ok {
			return fn
		}
	case *ast.FuncLit:
		return x
	}
	return nil
}

// collectModule builds the node set and literal-assignment map over every
// pass. The context sets are inferred afterwards (buildModule).
func collectModule(passes []*Pass) *Module {
	m := &Module{
		nodes:      make(map[funcNode]*funcInfo),
		litAssigns: make(map[*types.Var][]*ast.FuncLit),
	}
	for _, pass := range passes {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := pass.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					info := &funcInfo{
						pass:    pass,
						name:    fn.FullName(),
						body:    d.Body,
						pos:     d.Pos(),
						hotRoot: hasHotPathMarker(d),
					}
					m.nodes[fn] = info
					if d.Body != nil {
						m.collectLits(pass, info, d.Body)
					}
				case *ast.GenDecl:
					// Package-level literals (var fn = func() {...}) become
					// nodes too; they are reached through litAssigns.
					ast.Inspect(d, func(n ast.Node) bool {
						if lit, ok := n.(*ast.FuncLit); ok {
							m.addLit(pass, lit)
							return false
						}
						return true
					})
				}
			}
			m.collectAssigns(pass, file)
		}
	}
	return m
}

// collectLits registers every literal immediately nested in body as a node
// and a lexical child of parent, recursing for deeper literals.
func (m *Module) collectLits(pass *Pass, parent *funcInfo, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			parent.lits = append(parent.lits, lit)
			m.addLit(pass, lit)
			return false // the recursive addLit walk owns the subtree
		}
		return true
	})
}

// addLit registers one literal node (idempotent) and its nested literals.
func (m *Module) addLit(pass *Pass, lit *ast.FuncLit) {
	if _, ok := m.nodes[lit]; ok {
		return
	}
	pos := pass.Fset.Position(lit.Pos())
	info := &funcInfo{
		pass: pass,
		name: fmt.Sprintf("func@%s:%d", trimModulePath(pos.Filename), pos.Line),
		body: lit.Body,
		pos:  lit.Pos(),
	}
	m.nodes[lit] = info
	m.collectLits(pass, info, lit.Body)
}

// trimModulePath shortens an absolute filename to its last three path
// segments for stable, readable node names.
func trimModulePath(filename string) string {
	parts := strings.Split(filename, "/")
	if len(parts) > 3 {
		parts = parts[len(parts)-3:]
	}
	return strings.Join(parts, "/")
}

// collectAssigns records every assignment of a function literal to a named
// object — variable assignments and definitions, var declarations, and
// struct composite-literal fields — so references to the object can be
// resolved back to the literals it may hold.
func (m *Module) collectAssigns(pass *Pass, file *ast.File) {
	record := func(obj types.Object, rhs ast.Expr) {
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if lit, isLit := unparen(rhs).(*ast.FuncLit); isLit {
			m.litAssigns[v] = append(m.litAssigns[v], lit)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				record(assignTarget(pass.Info, lhs), x.Rhs[i])
			}
		case *ast.ValueSpec:
			if len(x.Names) != len(x.Values) {
				return true
			}
			for i, name := range x.Names {
				record(pass.Info.Defs[name], x.Values[i])
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					record(pass.Info.Uses[key], kv.Value)
				}
			}
		}
		return true
	})
}

// assignTarget resolves the object an assignment's left-hand side denotes:
// a plain identifier (local, global) or a struct field selector.
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	switch x := unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Defs[x]; obj != nil {
			return obj
		}
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}

// hasHotPathMarker reports whether decl's doc comment (or a comment ending
// directly above it) carries the //parconn:hotpath directive.
func hasHotPathMarker(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, hotPathMarker)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// refs invokes visit for every node referenced from n's body: direct
// calls, function values in any position, and (via litAssigns) literals
// bound to referenced function-typed variables or fields. Nested literal
// bodies are skipped — they are their own nodes, reached lexically. When
// skipGo is set, references inside go statements are ignored: a spawned
// goroutine is not part of the referencing goroutine's synchronous
// (wait-free-relevant) call chain, though it is part of its work.
func (m *Module) refs(n funcNode, skipGo bool, visit func(funcNode)) {
	info := m.nodes[n]
	if info == nil || info.body == nil {
		return
	}
	pass := info.pass
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			switch y := x.(type) {
			case *ast.FuncLit:
				if root == y {
					return true
				}
				return false
			case *ast.GoStmt:
				if skipGo {
					return false
				}
			case *ast.Ident:
				switch obj := pass.Info.Uses[y].(type) {
				case *types.Func:
					if _, ok := m.nodes[obj]; ok {
						visit(obj)
					}
				case *types.Var:
					if _, ok := obj.Type().Underlying().(*types.Signature); ok {
						for _, lit := range m.litAssigns[obj] {
							visit(lit)
						}
					}
				}
			}
			return true
		})
	}
	walk(info.body)
}
