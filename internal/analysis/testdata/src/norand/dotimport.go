package norand

import (
	. "math/rand/v2" // want "imports math/rand/v2"
)

// Dot-imported randomness resolves to the banned package functions even
// though no selector appears at the call site.
func drawDotImported() int64 {
	return Int64() // want "math/rand/v2.Int64"
}
