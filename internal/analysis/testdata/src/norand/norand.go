// Package norand is a parconnvet test fixture: every line carrying a
// `want` comment must be flagged by the norand check, every other line must
// stay clean. The fixture is loaded as a library package.
package norand

import (
	"math/rand" // want "imports math/rand"
	"time"
)

func seedFromClock() int64 {
	return time.Now().UnixNano() // want "calls time.Now"
}

func drawInjected(r *rand.Rand) int64 {
	return r.Int63() // ok: only the import line is flagged
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // ok: Since measures durations; Now is the banned source
}
