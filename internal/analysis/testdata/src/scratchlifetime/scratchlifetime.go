// Package scratchlifetime is a parconnvet test fixture: every line
// carrying a `want` comment must be flagged by the scratchlifetime check,
// every other line must stay clean.
package scratchlifetime

import "parconn/internal/workspace"

type holder struct {
	buf []int32
}

// fieldEscape parks an owned buffer in a field and returns; the release
// schedule can no longer see it.
func fieldEscape(h *holder, ws *workspace.Arena, n int) {
	h.buf = ws.Int32(n) // want "stored into field buf"
}

// fieldCleared uses the clear-before-release idiom: the later nil
// reassignment excuses the store.
func fieldCleared(h *holder, ws *workspace.Arena, n int) {
	h.buf = ws.Int32(n) // ok: cleared before return below
	use(h.buf)
	ws.PutInt32(h.buf)
	h.buf = nil
}

// returned hands the buffer to the caller, outliving the acquiring scope.
func returned(ws *workspace.Arena, n int) []int32 {
	b := ws.Int32(n)
	return b // want "returned past its acquiring function"
}

// aliasReturned returns a reslice of a tracked buffer; the fixpoint
// follows the alias.
func aliasReturned(ws *workspace.Arena, n int) []int32 {
	b := ws.Int32(n)
	half := b[:n/2]
	return half // want "returned past its acquiring function"
}

// directReturn returns the acquire call without ever binding a local.
func directReturn(ws *workspace.Arena, n int) []float64 {
	return ws.Float64(n) // want "returned past its acquiring function"
}

// derefStore writes the buffer through a caller-held pointer.
func derefStore(dst *[]int32, ws *workspace.Arena, n int) {
	*dst = ws.Int32(n) // want "stored through pointer dereference"
}

// lengthOnly returns a scalar derived from the buffer, which aliases
// nothing and is fine.
func lengthOnly(ws *workspace.Arena, n int) int {
	b := ws.Int32(n)
	defer ws.PutInt32(b)
	return len(b) // ok: scalars do not carry the buffer
}

func use(xs []int32) {}
