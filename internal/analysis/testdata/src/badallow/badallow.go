// Package badallow is a parconnvet test fixture for malformed suppression
// comments: CheckAllows must reject a missing reason and an unknown check
// name.
package badallow

func missingReason() {
	//parconn:allow mixedatomic
	_ = 0
}

func unknownCheck() {
	//parconn:allow nosuchcheck the check name above does not exist
	_ = 0
}
