// Package blockingcall is a parconnvet test fixture: every line carrying a
// `want` comment must be flagged by the blockingcall check, every other
// line must stay clean. Closures passed to the parallel entry points root
// the parallel-context set; coordinator code stays outside it.
package blockingcall

import (
	"fmt"
	"sync"
	"time"

	"parconn/internal/parallel"
)

// run's closure is a parallel-context root; everything it reaches is held
// to the wait-free contract.
func run(procs, n int, ch chan int, mu *sync.Mutex) {
	parallel.Blocks(procs, n, 0, func(lo, hi int) {
		ch <- lo  // want "channel send may block"
		v := <-ch // want "channel receive may block"
		_ = v
		time.Sleep(time.Millisecond) // want "time.Sleep parks the worker"
		mu.Lock()                    // want "sync.Mutex.Lock may block"
		fmt.Println(lo)              // want "fmt.Println writes to a stream"
		helper(ch)
	})
}

// helper is reachable from the parallel closure above.
func helper(ch chan int) {
	select { // want "select without default blocks"
	case v := <-ch: // want "channel receive may block"
		_ = v
	}
	for range ch { // want "ranging over a channel blocks"
		break
	}
}

// tryEnqueue is the sanctioned non-blocking pattern: a select with a
// default clause is exempt along with its communication operands.
func tryEnqueue(procs int, ch chan int) {
	parallel.Do(procs, func() {
		select {
		case ch <- 1: // ok: the enclosing select has a default clause
		default:
		}
	})
}

// machine binds its closure to a field before passing it to an entry
// point; litAssigns routes the binding back to the literal.
type machine struct {
	fn func(lo, hi int)
}

func newMachine(ch chan int) *machine {
	m := &machine{}
	m.fn = func(lo, hi int) {
		<-ch // want "channel receive may block"
	}
	return m
}

func (m *machine) launch(procs, n int) {
	parallel.Blocks(procs, n, 0, m.fn)
}

// coordinator code off the parallel context may block freely.
func coordinator(ch chan int) int {
	return <-ch // ok: not in the parallel-context set
}
