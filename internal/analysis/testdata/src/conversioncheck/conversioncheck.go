// Package conversioncheck is a parconnvet test fixture: every line carrying
// a `want` comment must be flagged by the conversioncheck check, every other
// line must stay clean.
package conversioncheck

import "math"

func unguardedCount(n int) int32 {
	return int32(n) // want "count-like"
}

func unguardedLen(xs []int64) int32 {
	return int32(len(xs)) // want "count-like"
}

func guardedCount(n int) (int32, bool) {
	if n > math.MaxInt32 {
		return 0, false
	}
	return int32(n), true // ok: bounds-checked above
}

func loopVariable(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i) // ok: loop variables are not count-like
	}
	return out
}

func constantConversion() int32 {
	return int32(1 << 20) // ok: constants are checked by the compiler
}

func unsignedPacking(pair uint64) int32 {
	return int32(pair >> 32) // ok: unsigned unpacking is id math, not a count
}

func unguardedMask(xs []uint64) uint32 {
	return uint32(len(xs)) // want "reinterprets negative"
}

func unguardedCapMask(xs []uint64) uint32 {
	return uint32(cap(xs)) // want "reinterprets negative"
}

func guardedMask(n int) (uint32, bool) {
	if n < 0 || n > math.MaxUint32 {
		return 0, false
	}
	return uint32(n), true // ok: bounds-checked above
}
