// Package obsrecorder is a parconnvet test fixture: every line carrying a
// `want` comment must be flagged by the obsrecorder check, every other line
// must stay clean.
package obsrecorder

import (
	"parconn/internal/obs"
	"parconn/internal/obs/metrics"
	"parconn/internal/parallel"
)

func racyInterfaceEmit(rec obs.Recorder, xs []int) {
	parallel.For(0, len(xs), func(i int) {
		rec.Counter(obs.Counter{Name: "cas", Value: 1}) // want "Counter"
	})
}

func racyConcreteSink(tr *obs.Trace, xs []int) {
	parallel.Blocks(0, len(xs), 0, func(lo, hi int) {
		tr.Round(obs.Round{Round: lo}) // want "Round"
	})
}

func racyNestedClosure(rec obs.Recorder, xs []int) {
	parallel.Do(0, func() {
		emit := func() {
			rec.Phase(obs.Phase{Name: "init"}) // want "Phase"
		}
		emit()
	}, func() {})
}

func okCoordinatorEmit(rec obs.Recorder, xs []int) {
	retries := obs.NewShardedInt64(8)
	parallel.Blocks(0, len(xs), 0, func(lo, hi int) {
		casFail := int64(0)
		for i := lo; i < hi; i++ {
			casFail++
		}
		retries.Add(lo, casFail) // ok: buffered per-worker path
	})
	rec.Counter(obs.Counter{Name: "cas", Value: retries.Sum()}) // ok: coordinator, between sections
}

func racyFlightRecorder(fr *obs.FlightRecorder, xs []int) {
	parallel.For(0, len(xs), func(i int) {
		fr.Round(obs.Round{Round: i}) // want "Round"
	})
}

func racyProgressSink(p *obs.Progress, xs []int) {
	parallel.Blocks(0, len(xs), 0, func(lo, hi int) {
		p.Phase(obs.Phase{Name: "init"}) // want "Phase"
	})
}

func racyHistogramSet(hs *obs.HistogramSet, xs []int) {
	parallel.For(0, len(xs), func(i int) {
		hs.Phase(obs.Phase{Name: "init"}) // want "Phase"
	})
}

func okHistogramFromWorkers(xs []int) {
	// A bare Histogram is not a Recorder: its Record path is atomic and
	// explicitly safe to call from inside parallel sections.
	var h obs.Histogram
	parallel.For(0, len(xs), func(i int) {
		h.Record(int64(xs[i])) // ok: wait-free atomic sink
	})
	_ = h.Count()
}

func okUnrelatedMethod(xs []int) {
	var c counterish
	parallel.For(0, len(xs), func(i int) {
		c.Round(i) // ok: not an obs.Recorder
	})
	_ = c
}

type counterish struct{ n int }

func (c *counterish) Round(int) {}

func racySpanEmit(sr obs.SpanRecorder, xs []int) {
	parallel.For(0, len(xs), func(i int) {
		sr.Span(obs.Span{Endpoint: "component"}) // want "Span"
	})
}

func racySpanConcreteSink(w *obs.JSONLWriter, xs []int) {
	parallel.Blocks(0, len(xs), 0, func(lo, hi int) {
		w.Span(obs.Span{Endpoint: "batch", Batch: hi - lo}) // want "Span"
	})
}

func okSpanFromCoordinator(sr obs.SpanRecorder, xs []int) {
	parallel.For(0, len(xs), func(i int) {
		_ = xs[i]
	})
	sr.Span(obs.Span{Endpoint: "component"}) // ok: coordinator, between sections
}

func racyRegistryRegister(reg *metrics.Registry, xs []int) {
	parallel.For(0, len(xs), func(i int) {
		reg.Counter("parconn_worker_ops_total", "per-worker ops", nil).Inc() // want "Counter"
	})
}

func racyRegistryRollingRegister(reg *metrics.Registry, rh *metrics.RollingHistogram, xs []int) {
	parallel.Do(0, func() {
		reg.RollingQuantilesNS("parconn_worker_latency_seconds", "latency", nil, rh, 0.99) // want "RollingQuantilesNS"
	}, func() {})
}

func okMetricHandlesFromWorkers(reg *metrics.Registry, rh *metrics.RollingHistogram, xs []int) {
	ops := reg.Counter("parconn_worker_ops_total", "per-worker ops", nil)
	depth := reg.Gauge("parconn_worker_depth", "queue depth", nil)
	parallel.For(0, len(xs), func(i int) {
		ops.Inc()                 // ok: handle update is wait-free
		depth.Set(float64(xs[i])) // ok: handle update is wait-free
		rh.Record(int64(xs[i]))   // ok: rolling histogram records are wait-free
	})
}
