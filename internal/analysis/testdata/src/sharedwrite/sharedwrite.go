// Package sharedwrite is a parconnvet test fixture: every line carrying a
// `want` comment must be flagged by the sharedwrite check, every other line
// must stay clean.
package sharedwrite

import (
	"sync/atomic"

	"parconn/internal/parallel"
)

func racySum(xs []int) int {
	sum := 0
	parallel.For(0, len(xs), func(i int) {
		sum += xs[i] // want "captured sum"
	})
	return sum
}

func okIndexedByLoopVar(xs, out []int) {
	parallel.For(0, len(xs), func(i int) {
		out[i] = xs[i] * 2 // ok: slot owned via the loop variable
	})
}

func racyFixedIndex(out []int) {
	parallel.Blocks(0, len(out), 0, func(lo, hi int) {
		out[0] = lo // want "captured out"
	})
}

func okDerivedIndex(out []int32) {
	parallel.Blocks(0, len(out), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := int32(i)
			out[v] = v // ok: index derived from a closure-local
		}
	})
}

func okAtomicReservedSlot(out []int64) {
	var cursor atomic.Int64
	parallel.For(0, len(out), func(i int) {
		out[cursor.Add(1)-1] = int64(i) // ok: atomically reserved slot
	})
}

func okWorkerSlot(procs, n int) []int {
	acc := make([]int, parallel.Procs(procs))
	parallel.WorkerBlocks(procs, n, func(worker, lo, hi int) {
		acc[worker] = hi - lo // ok: one slot per worker
	})
	return acc
}

func racyDo() int {
	x := 0
	parallel.Do(0,
		func() { x = 1 }, // want "captured x"
		func() { x = 2 }, // want "captured x"
	)
	return x
}

func racyPointer(p *int) {
	parallel.For(0, 8, func(i int) {
		*p = i // want "captured p"
	})
}

func racyCopy(dst, src []int) {
	parallel.Blocks(0, len(src), 0, func(lo, hi int) {
		copy(dst, src) // want "captured dst"
	})
}

func okCopyBlocked(dst, src []int) {
	parallel.Blocks(0, len(src), 0, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi]) // ok: disjoint worker ranges
	})
}

func racyIncrement(counts []int) {
	parallel.ForGrain(0, 100, 10, func(i int) {
		counts[len(counts)-1]++ // want "captured counts"
	})
}
