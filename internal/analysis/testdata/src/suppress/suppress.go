// Package suppress is a parconnvet test fixture: every finding in it is
// covered by a //parconn:allow comment, so the active set must be empty and
// the suppressed set non-empty.
package suppress

import "sync/atomic"

func benignPhaseRead(c []int32) int32 {
	atomic.AddInt32(&c[0], 1)
	//parconn:allow mixedatomic test fixture: phases separated by a fork-join barrier
	return c[0]
}

func boundedConversion(n int) int32 {
	return int32(n) //parconn:allow conversioncheck test fixture: caller guarantees n < 2^31
}

func multiCheckLine(c []int32, n int) int32 {
	atomic.AddInt32(&c[0], 1)
	//parconn:allow mixedatomic,conversioncheck test fixture: one comment, two checks
	return c[n] + int32(n)
}
