// Package mixedatomic is a parconnvet test fixture: every line carrying a
// `want` comment must be flagged by the mixedatomic check, every other line
// must stay clean.
package mixedatomic

import "sync/atomic"

type counterBox struct {
	hits int64
	cold int64
}

func mixedScalarField(b *counterBox) int64 {
	atomic.AddInt64(&b.hits, 1)
	return b.hits // want "plain access of hits"
}

func plainOnlyField(b *counterBox) int64 {
	b.cold++
	return b.cold // ok: cold is never accessed atomically
}

func mixedSliceElem(c []int32) {
	atomic.StoreInt32(&c[0], 1)
	c[1] = 2 // want "plain access of c"
}

func atomicOnlySlice(c []int32) int32 {
	atomic.AddInt32(&c[0], 1)
	return atomic.LoadInt32(&c[1]) // ok: atomic everywhere
}

func mixedRangeRead(c []int32) int32 {
	var s int32
	for _, v := range c { // want "plain access of c"
		s += v
	}
	atomic.AddInt32(&c[0], 1)
	return s
}

func addressEscape(c []int64) *int64 {
	atomic.AddInt64(&c[0], 1)
	return &c[1] // ok: taking an address reads nothing
}

func indexOnlyRange(c []int32) int {
	atomic.AddInt32(&c[0], 1)
	k := 0
	for i := range c { // ok: index-only range reads no element
		k += i
	}
	return k
}
