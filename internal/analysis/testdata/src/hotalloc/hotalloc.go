// Package hotalloc is a parconnvet test fixture: every line carrying a
// `want` comment must be flagged by the hotalloc check, every other line
// must stay clean. The //parconn:hotpath directive below roots the
// fixture's hot-path set; cold stays outside it.
package hotalloc

import (
	"fmt"

	"parconn/internal/parallel"
)

type config struct{ n int }

// level plays the per-level decomposition loop: the hot-path root.
//
//parconn:hotpath
func level(procs, n int) error {
	buf := make([]int32, n) // want "make allocates"
	p := new(int)           // want "new allocates"
	*p = n
	// Closures handed to the parallel entry points are the scheduler's
	// budgeted per-section cost and are exempt even though they capture.
	parallel.For(procs, n, func(i int) { buf[i] = 0 })
	helper(buf)
	usesClosure(n)
	if n < 0 {
		return fmt.Errorf("bad n: %d", n) // want "boxed into interface"
	}
	return nil
}

// helper is reachable from the root, so its allocations are charged too.
func helper(buf []int32) {
	xs := []int64{1, 2}              // want "slice literal allocates"
	xs = append(xs, int64(len(buf))) // want "append may grow"
	m := map[int]int{}               // want "map literal allocates"
	_ = m
	_ = xs
	go drain() // want "go statement allocates"
}

// drain is reached through the go statement above: spawned work is still
// charged to the hot path.
func drain() {
	s := "a" + name()    // want "string concatenation allocates"
	b := []byte(s)       // want "string-to-slice conversion allocates"
	_ = string(b)        // want "slice-to-string conversion allocates"
	cfg := &config{n: 1} // want "address of composite literal allocates"
	_ = cfg
}

func name() string { return "x" }

// usesClosure hands a capturing closure to an ordinary (non-entry-point)
// call, which materializes a heap environment at the call site.
func usesClosure(n int) {
	each(func(i int) { // want "capturing closure allocates"
		n += i
	})
	_ = n
}

func each(f func(int)) { f(0) }

// cold is referenced by nobody on the hot path; its allocations are free.
func cold(n int) []int32 {
	return make([]int32, n) // ok: not reachable from a //parconn:hotpath root
}
