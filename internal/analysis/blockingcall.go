package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The blockingcall check enforces the wait-free contract on the
// parallel-context set (context.go): a function that may run on a
// parallel.Pool worker must not park the worker. It flags channel sends,
// receives, selects without a default clause, ranging over a channel,
// time.Sleep, calls into the blocking standard-library packages (io, os,
// net, syscall, ...), fmt's writing and scanning entry points, and the
// blocking sync primitives (Lock, RLock, Wait, Once.Do, and all of
// sync.Map, which takes an internal mutex). Selects WITH a default
// clause are the sanctioned non-blocking pattern (the pool's own task
// enqueue) and are exempt along with their communication operands.
// Scheduler internals that must block by design carry //parconn:allow
// blockingcall annotations with the reason.
type blockingCallAnalyzer struct{}

func (blockingCallAnalyzer) Name() string { return "blockingcall" }

// blockingPkgs are import paths any call into which can block on IO or
// the OS.
var blockingPkgs = map[string]bool{
	"os":       true,
	"os/exec":  true,
	"io":       true,
	"io/fs":    true,
	"bufio":    true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
}

// blockingSyncMethods are the sync-package methods that can park the
// caller (Unlock/RUnlock/TryLock and friends cannot).
var blockingSyncMethods = map[string]bool{
	"Lock":  true,
	"RLock": true,
	"Wait":  true,
	"Do":    true,
}

func (blockingCallAnalyzer) Run(pass *Pass) []Finding {
	var findings []Finding
	eachFunc(pass, func(node funcNode, body *ast.BlockStmt) {
		if !pass.Mod.Par(node) {
			return
		}
		where := " in parallel-context function (" + pass.Mod.ParVia(node) + ")"
		flag := func(pos token.Pos, msg string) {
			findings = append(findings, Finding{
				Pos:     pass.Fset.Position(pos),
				Check:   "blockingcall",
				Message: msg + where,
			})
		}
		// Communication operands of selects that have a default clause
		// are non-blocking by construction; collect them first.
		exempt := make(map[ast.Node]bool)
		shallowInspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasDefault := false
			for _, clause := range sel.Body.List {
				if clause.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			exempt[sel] = true
			for _, clause := range sel.Body.List {
				markCommExempt(clause.(*ast.CommClause).Comm, exempt)
			}
			return true
		})
		shallowInspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SendStmt:
				if !exempt[x] {
					flag(x.Arrow, "channel send may block")
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !exempt[x] {
					flag(x.Pos(), "channel receive may block")
				}
			case *ast.SelectStmt:
				if !exempt[x] {
					flag(x.Pos(), "select without default blocks")
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(x.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						flag(x.Pos(), "ranging over a channel blocks")
					}
				}
			case *ast.CallExpr:
				checkBlockingCall(pass, x, flag)
			}
			return true
		})
	})
	return findings
}

// markCommExempt records a select clause's communication statement and
// the channel operation inside it as exempt from blocking findings.
func markCommExempt(comm ast.Stmt, exempt map[ast.Node]bool) {
	if comm == nil {
		return
	}
	exempt[comm] = true
	switch c := comm.(type) {
	case *ast.SendStmt:
		// the statement itself
	case *ast.ExprStmt:
		exempt[unparen(c.X)] = true
	case *ast.AssignStmt:
		for _, rhs := range c.Rhs {
			exempt[unparen(rhs)] = true
		}
	}
}

// checkBlockingCall flags calls that resolve to blocking standard-library
// functions or methods.
func checkBlockingCall(pass *Pass, call *ast.CallExpr, flag func(token.Pos, string)) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case blockingPkgs[pkg]:
		flag(call.Pos(), pkg+"."+name+" may block on IO")
	case pkg == "time" && name == "Sleep":
		flag(call.Pos(), "time.Sleep parks the worker")
	case pkg == "fmt" && (strings.HasPrefix(name, "Print") ||
		strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Scan") ||
		strings.HasPrefix(name, "Fscan") || strings.HasPrefix(name, "Sscan")):
		flag(call.Pos(), "fmt."+name+" writes to a stream and may block")
	case pkg == "sync" && fn.Type().(*types.Signature).Recv() != nil:
		recv := fn.Type().(*types.Signature).Recv().Type()
		if blockingSyncMethods[name] {
			flag(call.Pos(), "sync."+recvName(recv)+"."+name+" may block")
		} else if recvName(recv) == "Map" {
			flag(call.Pos(), "sync.Map."+name+" takes an internal mutex and may block")
		}
	}
}

// recvName returns the bare type name of a method receiver.
func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
