package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mixedAtomic flags plain (non-atomic) reads and writes of objects that are
// accessed through sync/atomic elsewhere in the package — the classic torn
// access: once one goroutine uses atomic.CompareAndSwapInt32(&c[w], ...),
// every access of c's elements must be atomic or separated by a
// happens-before edge, or the Go memory model gives no guarantee about what
// a plain load observes.
//
// Tracking is per declared object (variable or struct field) and per
// package: atomic access to c[i] marks the slice c element-atomic, atomic
// access to &x marks the scalar x atomic. Aliases created by slicing,
// address-taking, or passing to other functions are separate objects and
// are not followed; taking an element's address (&c[w] handed to a writeMin
// helper) is not itself counted as a plain access.
type mixedAtomic struct{}

func (mixedAtomic) Name() string { return "mixedatomic" }

// atomicUse records how an object is accessed atomically.
type atomicUse struct {
	elem   bool // atomic ops target elements (c[i]), not the object itself
	scalar bool // atomic ops target the object directly (&x)
	pos    token.Pos
}

func (mixedAtomic) Run(pass *Pass) []Finding {
	atomics := make(map[types.Object]*atomicUse)

	// Pass 1: collect every object whose address feeds a sync/atomic
	// package function (atomic.LoadInt32(&x), ...). Methods on the atomic
	// wrapper types need no tracking: their state cannot be accessed
	// plainly at all.
	record := func(arg ast.Expr) {
		un, ok := unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		operand := unparen(un.X)
		obj := rootObject(pass.Info, operand)
		if obj == nil {
			return
		}
		u := atomics[obj]
		if u == nil {
			u = &atomicUse{pos: arg.Pos()}
			atomics[obj] = u
		}
		if _, isIndex := operand.(*ast.IndexExpr); isIndex {
			u.elem = true
		} else {
			u.scalar = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
				fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
				if strings.HasPrefix(fn.Name(), prefix) {
					record(call.Args[0])
					break
				}
			}
			return true
		})
	}
	if len(atomics) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses of those objects. Nodes whose address is
	// taken are exempt (address-taking reads nothing; the resulting pointer
	// is tracked no further).
	addrTaken := make(map[ast.Expr]bool)
	var out []Finding
	report := func(n ast.Node, obj types.Object, u *atomicUse) {
		out = append(out, pass.finding(n.Pos(), "mixedatomic",
			"plain access of %s, which is accessed atomically (e.g. at %s); mixed atomic/plain access can tear",
			obj.Name(), pass.Fset.Position(u.pos)))
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					addrTaken[unparen(x.X)] = true
				}
			case *ast.IndexExpr:
				if addrTaken[x] {
					return true
				}
				if obj := rootObject(pass.Info, x.X); obj != nil {
					if u := atomics[obj]; u != nil && u.elem {
						report(x, obj, u)
						return false // one finding per access chain
					}
				}
			case *ast.SelectorExpr:
				if addrTaken[x] {
					return true
				}
				if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
					if u := atomics[sel.Obj()]; u != nil && u.scalar {
						report(x, sel.Obj(), u)
						return false
					}
				}
			case *ast.Ident:
				if addrTaken[x] {
					return true
				}
				obj := pass.Info.Uses[x]
				if obj == nil {
					return true
				}
				// Field accesses are judged at their SelectorExpr, where the
				// address-taken exemption can see the full x.f node.
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					return true
				}
				if u := atomics[obj]; u != nil && u.scalar {
					report(x, obj, u)
				}
			case *ast.RangeStmt:
				// for _, v := range c reads elements of c plainly.
				if x.Value == nil {
					return true
				}
				if obj := rootObject(pass.Info, x.X); obj != nil {
					if u := atomics[obj]; u != nil && u.elem {
						report(x.X, obj, u)
					}
				}
			}
			return true
		})
	}
	return out
}
