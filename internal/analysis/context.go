package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"sort"
)

// This file infers the two interprocedural context sets over the call
// graph (callgraph.go):
//
//   - The parallel-context set: every function reachable from a closure
//     the parallel package's fork-join entry points may run on a worker
//     goroutine — closure arguments at the call sites, plus every literal
//     bound to a variable or struct field that is ever passed to an entry
//     point (the machine pattern). The blockingcall check holds this set
//     to the wait-free contract.
//   - The hot-path set: every function reachable from a declared function
//     carrying a //parconn:hotpath directive (the per-level CC/decomp
//     loop). The hotalloc check holds this set to the allocation-free
//     steady-state contract.
//
// Propagation is (a) by reference — see Module.refs — and (b) lexical:
// a literal nested inside an in-set function is in-set, because closures
// created in a context overwhelmingly run in it or are handed onward
// within it. Parallel-context propagation skips go statements (the
// spawned goroutine does not block the worker); hot-path propagation
// follows them (the spawned work and its allocations are still charged
// to the hot path).

// buildModule collects the call graph over passes, infers both context
// sets, and attaches the module to every pass.
func buildModule(passes []*Pass) *Module {
	m := collectModule(passes)
	m.hot = m.reach(m.hotRoots(), false)
	m.par = m.reach(m.parRoots(), true)
	for _, pass := range passes {
		pass.Mod = m
	}
	return m
}

// hotRoots returns the declared functions marked //parconn:hotpath.
func (m *Module) hotRoots() map[funcNode]string {
	roots := make(map[funcNode]string)
	for n, info := range m.nodes {
		if info.hotRoot {
			roots[n] = "marked " + hotPathMarker
		}
	}
	return roots
}

// parRoots returns the entry points of the parallel-context set: for every
// call to a parallel fork-join entry, each function-typed argument —
// literals directly, declared functions directly, and variables or fields
// through every literal assigned to them anywhere in the module.
func (m *Module) parRoots() map[funcNode]string {
	roots := make(map[funcNode]string)
	for _, info := range m.nodes {
		info := info
		if info.body == nil {
			continue
		}
		pass := info.pass
		ast.Inspect(info.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelEntry(pass.Info, call) {
				return true
			}
			entry := "parallel entry at " + m.posOf(pass, call)
			for _, arg := range call.Args {
				arg = unparen(arg)
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if _, isFunc := tv.Type.Underlying().(*types.Signature); !isFunc {
					continue
				}
				switch a := arg.(type) {
				case *ast.FuncLit:
					roots[a] = "closure passed to " + entry
				default:
					switch obj := rootObject(pass.Info, arg).(type) {
					case *types.Func:
						// Unreachable through rootObject today, kept for
						// clarity; the Ident/Selector cases below match.
					case *types.Var:
						for _, lit := range m.litAssigns[obj] {
							roots[lit] = fmt.Sprintf("bound closure %q passed to %s", obj.Name(), entry)
						}
						_ = obj
					}
					if id, ok := arg.(*ast.Ident); ok {
						if fn, ok := pass.Info.Uses[id].(*types.Func); ok {
							if _, known := m.nodes[fn]; known {
								roots[fn] = "function passed to " + entry
							}
						}
					}
				}
			}
			return true
		})
	}
	return roots
}

// reach computes the closure of roots under reference edges and lexical
// nesting, recording for every member a short provenance string (its root
// description, or the name of the function it was reached from).
func (m *Module) reach(roots map[funcNode]string, skipGo bool) map[funcNode]string {
	set := make(map[funcNode]string, len(roots))
	var queue []funcNode
	add := func(n funcNode, via string) {
		if _, ok := set[n]; ok {
			return
		}
		if _, known := m.nodes[n]; !known {
			return
		}
		set[n] = via
		queue = append(queue, n)
	}
	for n, why := range roots {
		add(n, why)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		info := m.nodes[n]
		via := "reachable via " + info.name
		for _, lit := range info.lits {
			add(lit, via)
		}
		m.refs(n, skipGo, func(t funcNode) { add(t, via) })
	}
	return set
}

// posOf formats a position relative to the module layout.
func (m *Module) posOf(pass *Pass, pos ast.Node) string {
	p := pass.Fset.Position(pos.Pos())
	return fmt.Sprintf("%s:%d", trimModulePath(p.Filename), p.Line)
}

// Hot reports whether the function node n (a *types.Func or *ast.FuncLit)
// is in the hot-path set.
func (m *Module) Hot(n funcNode) bool { _, ok := m.hot[n]; return ok }

// Par reports whether n is in the parallel-context set.
func (m *Module) Par(n funcNode) bool { _, ok := m.par[n]; return ok }

// HotVia returns the provenance recorded when n entered the hot-path set.
func (m *Module) HotVia(n funcNode) string { return m.hot[n] }

// ParVia returns the provenance recorded when n entered the parallel set.
func (m *Module) ParVia(n funcNode) string { return m.par[n] }

// lookup returns the first node whose qualified name contains substr
// (tests and debugging).
func (m *Module) lookup(substr string) funcNode {
	var best funcNode
	bestName := ""
	for n, info := range m.nodes {
		if containsSub(info.name, substr) && (best == nil || info.name < bestName) {
			best, bestName = n, info.name
		}
	}
	return best
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// eachFunc invokes fn once per function-like body declared in pass's
// files — declared functions and every function literal — with the node
// key used by the context sets. Analyzers pair it with shallowInspect so
// each body is scanned exactly once, in its own context.
func eachFunc(pass *Pass, fn func(node funcNode, body *ast.BlockStmt)) {
	if pass.Mod == nil {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					if node := pass.Mod.nodeOf(pass, x); node != nil {
						fn(node, x.Body)
					}
				}
			case *ast.FuncLit:
				fn(x, x.Body)
			}
			return true
		})
	}
}

// shallowInspect walks body without descending into nested function
// literals, which are separate nodes with their own contexts.
func shallowInspect(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// WriteGraph dumps the inferred contexts: one line per in-set function,
// flagged hot/par with its provenance — the -graph debug view of
// cmd/parconnvet.
func (m *Module) WriteGraph(w io.Writer) error {
	type row struct {
		name, flags, via string
	}
	var rows []row
	for n, info := range m.nodes {
		hot, par := m.Hot(n), m.Par(n)
		if !hot && !par {
			continue
		}
		flags := ""
		via := ""
		if hot {
			flags += "hot"
			via = m.HotVia(n)
		}
		if par {
			if flags != "" {
				flags += "+"
			}
			flags += "par"
			if via == "" {
				via = m.ParVia(n)
			}
		}
		rows = append(rows, row{info.name, flags, via})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-7s %s\t(%s)\n", r.flags, r.name, r.via); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# %d of %d functions in context (hot: %d, par: %d)\n",
		len(rows), len(m.nodes), len(m.hot), len(m.par))
	return err
}
