package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The scratchlifetime check guards the workspace.Arena ownership rules:
// a scratch buffer acquired from the arena is owned until the matching
// Put, and the RELABELUP schedule releases every per-level buffer on the
// way back up the recursion. A buffer that escapes its acquiring
// function — stored into a struct field that is never reassigned before
// the function returns, written through a pointer the caller holds, or
// returned — outlives the lexical scope the release schedule reasons
// about, so every such site must either be restructured or carry a
// //parconn:allow scratchlifetime annotation naming who releases it.
//
// The analysis is function-local: within each function it tracks, to a
// fixpoint, the locals bound (directly or through aliasing and slicing)
// to the result of an Arena acquire method, then flags field stores
// without a later same-field reassignment (the clear-before-release
// idiom resets fields to nil and is not flagged), stores through pointer
// dereferences, and returns mentioning a tracked buffer. The workspace
// package itself is exempt — it is the owner being guarded against.
type scratchLifetimeAnalyzer struct{}

func (scratchLifetimeAnalyzer) Name() string { return "scratchlifetime" }

// workspacePkgSuffix identifies the arena package by import-path suffix
// so fixtures loaded under a synthetic module path are covered too.
const workspacePkgSuffix = "internal/workspace"

// arenaAcquireMethods are the workspace.Arena methods whose results are
// owned scratch buffers.
var arenaAcquireMethods = map[string]bool{
	"Int32":   true,
	"Int64":   true,
	"Uint64":  true,
	"Float64": true,
}

func (scratchLifetimeAnalyzer) Run(pass *Pass) []Finding {
	if strings.HasSuffix(pass.Pkg.Path(), workspacePkgSuffix) {
		return nil
	}
	var findings []Finding
	flag := func(pos token.Pos, msg string) {
		findings = append(findings, Finding{
			Pos:     pass.Fset.Position(pos),
			Check:   "scratchlifetime",
			Message: msg,
		})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkScratchEscapes(pass, fd.Body, flag)
			return true
		})
	}
	return findings
}

// isArenaAcquire reports whether e is a call to one of the Arena acquire
// methods.
func isArenaAcquire(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !arenaAcquireMethods[fn.Name()] {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), workspacePkgSuffix)
}

// checkScratchEscapes runs the function-local escape analysis over one
// function body (nested literals included — the tracking scope is the
// whole declaration, matching how closures share the outer locals).
func checkScratchEscapes(pass *Pass, body *ast.BlockStmt, flag func(token.Pos, string)) {
	info := pass.Info

	// Fixpoint: a local is tracked if any assignment binds it to an
	// acquire call or to an expression mentioning a tracked local.
	tracked := make(map[*types.Var]bool)
	mentionsTracked := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && tracked[v] {
					found = true
				}
				if v, ok := info.Defs[id].(*types.Var); ok && tracked[v] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	bind := func(lhs ast.Expr, rhs ast.Expr) bool {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		v, ok := localOf(info, id)
		if !ok || tracked[v] {
			return false
		}
		// Only reference-carrying locals propagate ownership; an int
		// computed from a buffer (len, a count) does not alias it.
		if !mayCarryBuffer(v.Type()) {
			return false
		}
		if isArenaAcquire(info, rhs) || mentionsTracked(rhs) {
			tracked[v] = true
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						if bind(x.Lhs[i], x.Rhs[i]) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if i < len(x.Values) {
						if bind(name, x.Values[i]) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	// No early exit on an empty tracked set: a buffer can escape without
	// ever touching a local (h.buf = ws.Int32(n), return ws.Int32(n)),
	// which the isArenaAcquire arms below catch directly.

	// fieldStores records every assignment position per field object so a
	// flagged store can be excused by a later reassignment (the
	// clear-before-release idiom).
	fieldStores := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		x, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range x.Lhs {
			if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
					fieldStores[s.Obj()] = append(fieldStores[s.Obj()], lhs.Pos())
				}
			}
		}
		return true
	})
	reassignedAfter := func(obj types.Object, pos token.Pos) bool {
		for _, p := range fieldStores[obj] {
			if p > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if !mayCarryBuffer(info.TypeOf(x.Rhs[i])) {
						continue
					}
					if !mentionsTracked(x.Rhs[i]) && !isArenaAcquire(info, x.Rhs[i]) {
						continue
					}
					switch l := unparen(lhs).(type) {
					case *ast.SelectorExpr:
						if s, ok := info.Selections[l]; ok && s.Kind() == types.FieldVal {
							if !reassignedAfter(s.Obj(), lhs.Pos()) {
								flag(lhs.Pos(), "arena buffer stored into field "+s.Obj().Name()+
									" escapes its acquiring function without a clearing reassignment")
							}
						}
					case *ast.StarExpr:
						flag(lhs.Pos(), "arena buffer stored through pointer dereference escapes its acquiring function")
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if !mayCarryBuffer(info.TypeOf(res)) {
					continue
				}
				if mentionsTracked(res) || isArenaAcquire(info, res) {
					flag(x.Pos(), "arena buffer returned past its acquiring function outlives the release schedule")
					return true
				}
			}
		}
		return true
	})
}

// mayCarryBuffer reports whether a value of type t can hold or reach a
// slice: slices themselves, and the composite/reference kinds that can
// embed one. Scalars derived from a buffer (lengths, sums) cannot.
func mayCarryBuffer(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Struct, *types.Pointer, *types.Interface,
		*types.Map, *types.Array, *types.Chan:
		return true
	}
	return false
}

// localOf resolves an identifier to the local variable it declares or
// uses; package-level variables and fields are not locals.
func localOf(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	var obj types.Object
	if d := info.Defs[id]; d != nil {
		obj = d
	} else {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil, false
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return nil, false // package scope
	}
	return v, true
}
