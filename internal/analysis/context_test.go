package analysis

import (
	"strings"
	"testing"
)

// TestHotPathInference pins the hot-path set over the hotalloc fixture:
// the marked root, everything it references (including through a go
// statement), and lexically nested literals are hot; unreferenced
// functions are not.
func TestHotPathInference(t *testing.T) {
	m := loadFixture(t, "hotalloc").Mod
	for _, name := range []string{"level", "helper", "drain", "usesClosure", "each"} {
		n := m.lookup(name)
		if n == nil {
			t.Fatalf("no node matching %q", name)
		}
		if !m.Hot(n) {
			t.Errorf("%s should be in the hot-path set", name)
		}
		if m.HotVia(n) == "" {
			t.Errorf("%s has no hot-path provenance", name)
		}
	}
	if n := m.lookup("cold"); n == nil {
		t.Fatal("no node matching cold")
	} else if m.Hot(n) {
		t.Error("cold is not referenced from the root and must stay out of the hot-path set")
	}
}

// TestParallelContextInference pins the parallel-context set over the
// blockingcall fixture: entry-point closures and their callees are in;
// bound closures are found through litAssigns; coordinator code is out.
func TestParallelContextInference(t *testing.T) {
	m := loadFixture(t, "blockingcall").Mod
	if n := m.lookup("helper"); n == nil || !m.Par(n) {
		t.Error("helper is called from a parallel closure and must be in the parallel-context set")
	}
	if n := m.lookup("coordinator"); n == nil || m.Par(n) {
		t.Error("coordinator must stay out of the parallel-context set")
	}
	// The machine's bound closure (assigned to the fn field, passed to
	// Blocks elsewhere) must be resolved through litAssigns.
	boundLits := 0
	for _, lits := range m.litAssigns {
		boundLits += len(lits)
	}
	if boundLits == 0 {
		t.Error("litAssigns resolved no bound closures; the machine pattern is broken")
	}
	if len(m.par) < 4 {
		t.Errorf("parallel-context set has %d members, want at least 4 (three closures + helper)", len(m.par))
	}
}

// TestWriteGraph smoke-tests the -graph dump format over a fixture with
// both context sets populated.
func TestWriteGraph(t *testing.T) {
	m := loadFixture(t, "hotalloc").Mod
	var sb strings.Builder
	if err := m.WriteGraph(&sb); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "hot") {
		t.Errorf("graph dump has no hot-flagged rows:\n%s", out)
	}
	if !strings.Contains(out, "level") {
		t.Errorf("graph dump does not list the root:\n%s", out)
	}
	if !strings.Contains(out, "# ") {
		t.Errorf("graph dump is missing its summary line:\n%s", out)
	}
}
