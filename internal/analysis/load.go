package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// loader type-checks the packages of one module using only the standard
// library: module-internal imports are resolved by recursively loading the
// corresponding directory, everything else is delegated to the toolchain's
// export-data importer (with a from-source fallback, so the tool keeps
// working even when no export data is available).
type loader struct {
	root    string // absolute module root directory
	modPath string // module path from go.mod
	fset    *token.FileSet
	std     types.Importer
	stdSrc  types.Importer
	pkgs    map[string]*Pass
	loading map[string]bool
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.Default(),
		stdSrc:  importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Pass),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer over the module + standard library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		p, err := ld.loadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	pkg, err := ld.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	return ld.stdSrc.Import(path)
}

func (ld *loader) loadPath(path string) (*Pass, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	rel := "."
	if path != ld.modPath {
		rel = filepath.FromSlash(strings.TrimPrefix(path, ld.modPath+"/"))
	}
	return ld.loadDir(filepath.Join(ld.root, rel), path, isLibrary(ld.modPath, path))
}

// loadDir parses and type-checks the single package in dir. Test files are
// excluded: the checks target library and command code, and external test
// packages would force a second type-checking universe per directory.
func (ld *loader) loadDir(dir, path string, library bool) (*Pass, error) {
	if ld.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildTagOK(f) {
			continue
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		if len(typeErrs) > 0 {
			err = fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
		}
		return nil, err
	}
	p := &Pass{
		Path:    path,
		Library: library,
		Fset:    ld.fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
	}
	ld.pkgs[path] = p
	return p, nil
}

// buildTagOK reports whether a file's //go:build (or legacy // +build)
// constraint is satisfied in the module's default build configuration:
// the host GOOS/GOARCH and the gc toolchain, with every other tag — in
// particular "race" — unset. Without this, file pairs selected by build
// tags (parallel's race.go/norace.go) would both be handed to the type
// checker and collide on their shared declarations.
func buildTagOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Build constraints must precede the package clause; later comment
		// groups cannot carry one.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				// A malformed constraint is the compiler's error to report,
				// not ours; keep the file so the type checker sees it.
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
			})
		}
	}
	return true
}

// isLibrary reports whether a package is held to the library-only rules
// (norand): everything in the module except commands, examples, and the
// benchmark harness, whose whole purpose is wall-clock measurement.
func isLibrary(modPath, path string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, modPath), "/")
	for _, prefix := range []string{"cmd", "examples", "internal/bench"} {
		if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			return false
		}
	}
	return true
}

// LoadModule type-checks every package of the module rooted at root and
// returns one Pass per package, sorted by import path.
func LoadModule(root string) ([]*Pass, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	seenDir := make(map[string]bool)
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "results_csv") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			if dir := filepath.Dir(p); !seenDir[dir] {
				seenDir[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	var passes []*Pass
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := ld.loadPath(path)
		if err != nil {
			return nil, err
		}
		passes = append(passes, p)
	}
	sort.Slice(passes, func(i, j int) bool { return passes[i].Path < passes[j].Path })
	buildModule(passes)
	return passes, nil
}

// LoadFixture type-checks the single package in dir (typically an analyzer
// testdata fixture) against the module rooted at modRoot, so fixtures may
// import module-internal packages. The package is treated as library code.
func LoadFixture(modRoot, dir string) (*Pass, error) {
	modRoot, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	ld := newLoader(modRoot, modPath)
	p, err := ld.loadDir(dir, "fixture/"+filepath.Base(dir), true)
	if err != nil {
		return nil, err
	}
	buildModule([]*Pass{p})
	return p, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}
