package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Report is the machine-readable result of one parconnvet run, written by
// cmd/parconnvet -json and consumed by CI (uploaded as a workflow
// artifact) and by the self-scan round-trip test. File paths are
// module-root-relative so reports diff cleanly across machines.
type Report struct {
	Module     string          `json:"module"`
	Packages   []string        `json:"packages"`
	Active     []ReportFinding `json:"active"`
	Suppressed []ReportFinding `json:"suppressed"`
}

// ReportFinding is one Finding with its position flattened for JSON.
type ReportFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// NewReport assembles a report, relativizing every finding position
// against the module root.
func NewReport(root, module string, packages []string, active, suppressed []Finding) *Report {
	conv := func(fs []Finding) []ReportFinding {
		out := make([]ReportFinding, 0, len(fs))
		for _, f := range fs {
			file := f.Pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil {
				file = filepath.ToSlash(rel)
			}
			out = append(out, ReportFinding{
				File:    file,
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Check:   f.Check,
				Message: f.Message,
			})
		}
		return out
	}
	return &Report{
		Module:     module,
		Packages:   packages,
		Active:     conv(active),
		Suppressed: conv(suppressed),
	}
}

// Write encodes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes a report written by Write.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}
