package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// conversionCheck flags int/int64 -> int32 and -> uint32 conversions of
// count-like expressions (vertex and edge counts: n, m, len(...),
// *count*, *size*, ...) that are not preceded by an explicit bounds
// comparison in the same function. Vertex ids in this library are int32;
// converting an unchecked count silently truncates once an input crosses
// 2^31 vertices or edges, and the unsigned form additionally
// reinterprets negative counts as huge positives (uint32(len(x)) is the
// classic hash-mask habit that goes wrong on empty-minus-one).
//
// A conversion is considered checked when the enclosing function contains
// any comparison whose operand text matches the converted expression
// (e.g. "if n > math.MaxInt32 { ... }" checks int32(n)). Conversions of
// loop variables and other non-count-like expressions are out of scope:
// their bounds are the enclosing data structure's, which is what the
// count-like conversions guard.
type conversionCheck struct{}

func (conversionCheck) Name() string { return "conversioncheck" }

// countLikeNames match identifiers that denote vertex/edge counts by
// convention in this codebase.
var countLikeNames = map[string]bool{
	"n": true, "m": true, "nn": true, "mm": true, "nv": true, "ne": true,
	"total": true, "count": true, "cnt": true, "size": true, "num": true,
}

func countLike(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				found = true
			}
		case *ast.Ident:
			name := strings.ToLower(x.Name)
			if countLikeNames[name] {
				found = true
			}
			for _, frag := range []string{"count", "size", "total", "num"} {
				if strings.Contains(name, frag) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func (conversionCheck) Run(pass *Pass) []Finding {
	var out []Finding
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, checkConversions(pass, fn.Body)...)
		}
	}
	return out
}

func checkConversions(pass *Pass, body *ast.BlockStmt) []Finding {
	// Collect the operand text of every comparison in the function; a
	// conversion whose operand also appears in a comparison is "checked".
	compared := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			compared[types.ExprString(unparen(bin.X))] = true
			compared[types.ExprString(unparen(bin.Y))] = true
		}
		return true
	})

	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		dst, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || (dst.Kind() != types.Int32 && dst.Kind() != types.Uint32) {
			return true
		}
		arg := unparen(call.Args[0])
		argTV := pass.Info.Types[arg]
		if argTV.Value != nil {
			return true // constant: the compiler rejects out-of-range values
		}
		src, ok := argTV.Type.Underlying().(*types.Basic)
		if !ok || (src.Kind() != types.Int && src.Kind() != types.Int64) {
			return true
		}
		if !countLike(arg) || compared[types.ExprString(arg)] {
			return true
		}
		// uint32 additionally reinterprets any negative count; the message
		// names the actual destination so the fix is obvious at the site.
		limit := "2^31"
		if dst.Kind() == types.Uint32 {
			limit = "2^32 (and reinterprets negative values)"
		}
		out = append(out, pass.finding(call.Pos(), "conversioncheck",
			"unchecked %s -> %s conversion of count-like %q can overflow past %s; bounds-check it first",
			src.Name(), dst.Name(), types.ExprString(arg), limit))
		return true
	})
	return out
}
