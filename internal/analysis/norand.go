package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// noRand bans the two stdlib sources of run-to-run nondeterminism from
// library packages: math/rand (and math/rand/v2), whose global state is
// seeded behind the caller's back, and time.Now, the classic covert seed.
// Library code draws randomness from internal/prand with seeds injected
// through Options, so every run is reproducible from its seed; commands,
// examples, and the benchmark harness (which measures wall time by design)
// are exempt, as are test files. time.Since is deliberately not banned:
// the problem is wall-clock values flowing into algorithm state, not
// duration measurement — but the time.Now calls that feed Since still need
// an annotation, which keeps every clock read auditable.
type noRand struct{}

func (noRand) Name() string { return "norand" }

func (noRand) Run(pass *Pass) []Finding {
	if !pass.Library {
		return nil
	}
	var out []Finding
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, pass.finding(imp.Pos(), "norand",
					"library package imports %s; use internal/prand with an injected seed", path))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			// Resolving bare identifiers catches both reference forms: the
			// Sel of a qualified selector (rand.Intn, time.Now) and names
			// brought into scope by a dot-import, which no selector-based
			// walk would see.
			use, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[use].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch pkg := fn.Pkg().Path(); {
			case pkg == "time" && fn.Name() == "Now":
				out = append(out, pass.finding(use.Pos(), "norand",
					"library package calls time.Now; inject seeds/clocks so runs stay reproducible"))
			case (pkg == "math/rand" || pkg == "math/rand/v2") &&
				fn.Type().(*types.Signature).Recv() == nil:
				// Package-level functions draw from the covertly seeded
				// global source; methods on an injected *rand.Rand are the
				// caller's seed and stay legal.
				out = append(out, pass.finding(use.Pos(), "norand",
					"library package calls %s.%s; use internal/prand with an injected seed", pkg, fn.Name()))
			}
			return true
		})
	}
	return out
}
