package analysis

import (
	"go/ast"
	"go/types"
)

// obsRecorder flags observability emission from inside a parallel section,
// in three forms:
//
//   - a call to one of the obs.Recorder methods in a closure passed to the
//     parallel package's fork-join entry points. The Recorder contract is
//     coordinator-only delivery — sinks (Trace, JSONLWriter) serialize on
//     one mutex, so per-element calls from workers would both race on event
//     order and turn the instrumented hot loop into a lock convoy.
//   - a call to obs.SpanRecorder's Span method. Spans are request-plane
//     events emitted once per sampled HTTP request by the serve middleware;
//     a span from inside a worker would interleave with the request's own
//     span and serialize workers on the sink mutex.
//   - a metrics.Registry registration call (Counter, Gauge, *Func,
//     HistogramNS, RollingQuantilesNS). Registration takes the registry
//     mutex and is meant for setup; workers update the returned handles
//     (Counter.Add, Gauge.Set, RollingHistogram.Record), which are
//     wait-free.
//
// Parallel code buffers measurements in block-local scalars, flushes them
// into an obs.ShardedInt64 or a pre-registered handle, and lets the
// coordinating goroutine emit events between sections.
type obsRecorder struct{}

func (obsRecorder) Name() string { return "obsrecorder" }

// obsPkgPath is the import path of the observability package;
// metricsPkgPath its metrics-registry subpackage.
const (
	obsPkgPath     = "parconn/internal/obs"
	metricsPkgPath = "parconn/internal/obs/metrics"
)

// recorderMethods is the method set of obs.Recorder.
var recorderMethods = map[string]bool{
	"RunStart": true, "RunEnd": true, "LevelStart": true, "LevelEnd": true,
	"Round": true, "Phase": true, "Counter": true,
}

// registryMutators is the registration method set of metrics.Registry —
// the calls that mutate the registry under its mutex. Handle updates
// (Counter.Add, Gauge.Set) and the read side (WriteText, Handler) are
// deliberately absent: they are safe from any goroutine.
var registryMutators = map[string]bool{
	"Counter": true, "Gauge": true, "GaugeFunc": true, "CounterFunc": true,
	"HistogramNS": true, "HistogramFunc": true, "RollingQuantilesNS": true,
}

func (obsRecorder) Run(pass *Pass) []Finding {
	rec := obsInterface(pass.Pkg, "Recorder")
	spanRec := obsInterface(pass.Pkg, "SpanRecorder")
	if rec == nil && spanRec == nil && !importsMetrics(pass.Pkg) {
		return nil // package never touches the observability layer
	}
	var out []Finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelEntry(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					out = append(out, checkObsCalls(pass, rec, spanRec, lit)...)
				}
			}
			return true
		})
	}
	return out
}

// obsInterface resolves the named obs interface type (Recorder,
// SpanRecorder) as seen by pkg, or nil when pkg neither is nor imports the
// obs package.
func obsInterface(pkg *types.Package, name string) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		obj := p.Scope().Lookup(name)
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if pkg.Path() == obsPkgPath {
		return lookup(pkg)
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == obsPkgPath {
			return lookup(imp)
		}
	}
	return nil
}

// importsMetrics reports whether pkg is or directly imports the metrics
// registry package.
func importsMetrics(pkg *types.Package) bool {
	if pkg.Path() == metricsPkgPath {
		return true
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == metricsPkgPath {
			return true
		}
	}
	return false
}

// isMetricsRegistry reports whether t (possibly behind a pointer) is the
// metrics.Registry named type.
func isMetricsRegistry(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == metricsPkgPath && named.Obj().Name() == "Registry"
}

// checkObsCalls walks one parallel closure body for calls to Recorder
// methods on any value whose static type satisfies obs.Recorder (the
// interface itself or a concrete sink), Span calls on obs.SpanRecorder
// implementors, and metrics.Registry registration calls.
func checkObsCalls(pass *Pass, rec, spanRec *types.Interface, lit *ast.FuncLit) []Finding {
	var out []Finding
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if !recorderMethods[name] && !registryMutators[name] && name != "Span" {
			return true
		}
		if _, isMethod := pass.Info.Selections[sel]; !isMethod {
			return true // package-qualified function, not a method call
		}
		t := pass.Info.Types[sel.X].Type
		if t == nil {
			return true
		}
		switch {
		// Registry first: "Counter"/"Gauge" collide with recorderMethods
		// names, and the receiver type is what disambiguates them.
		case registryMutators[name] && isMetricsRegistry(t):
			out = append(out, pass.finding(call.Pos(), "obsrecorder",
				"metrics.Registry.%s called from inside a parallel closure; registration mutates the registry under its mutex — register series during setup and have workers update the returned handle (Counter.Add, Gauge.Set are wait-free)", name))
		case name == "Span" && spanRec != nil &&
			(types.Implements(t, spanRec) || types.Implements(types.NewPointer(t), spanRec)):
			out = append(out, pass.finding(call.Pos(), "obsrecorder",
				"obs.SpanRecorder Span called from inside a parallel closure; spans are per-request events emitted by the serve middleware on the coordinator — never from workers"))
		case recorderMethods[name] && rec != nil &&
			(types.Implements(t, rec) || types.Implements(types.NewPointer(t), rec)):
			out = append(out, pass.finding(call.Pos(), "obsrecorder",
				"obs.Recorder method %s called from inside a parallel closure; accumulate into a block-local counter, flush through obs.ShardedInt64, and emit the event from the coordinator between sections", name))
		}
		return true
	})
	return out
}
