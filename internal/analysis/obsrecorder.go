package analysis

import (
	"go/ast"
	"go/types"
)

// obsRecorder flags observability-event emission from inside a parallel
// section: a call to one of the obs.Recorder methods in a closure passed to
// the parallel package's fork-join entry points. The Recorder contract is
// coordinator-only delivery — sinks (Trace, JSONLWriter) serialize on one
// mutex, so per-element calls from workers would both race on event order
// and turn the instrumented hot loop into a lock convoy. Parallel code
// buffers measurements in block-local scalars, flushes them into an
// obs.ShardedInt64, and lets the coordinating goroutine emit one event
// between sections.
type obsRecorder struct{}

func (obsRecorder) Name() string { return "obsrecorder" }

// obsPkgPath is the import path of the observability package.
const obsPkgPath = "parconn/internal/obs"

// recorderMethods is the method set of obs.Recorder.
var recorderMethods = map[string]bool{
	"RunStart": true, "RunEnd": true, "LevelStart": true, "LevelEnd": true,
	"Round": true, "Phase": true, "Counter": true,
}

func (obsRecorder) Run(pass *Pass) []Finding {
	rec := recorderInterface(pass.Pkg)
	if rec == nil {
		return nil // package never touches obs
	}
	var out []Finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelEntry(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					out = append(out, checkRecorderCalls(pass, rec, lit)...)
				}
			}
			return true
		})
	}
	return out
}

// recorderInterface resolves the obs.Recorder interface type as seen by
// pkg, or nil when pkg neither is nor imports the obs package.
func recorderInterface(pkg *types.Package) *types.Interface {
	lookup := func(p *types.Package) *types.Interface {
		obj := p.Scope().Lookup("Recorder")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if pkg.Path() == obsPkgPath {
		return lookup(pkg)
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == obsPkgPath {
			return lookup(imp)
		}
	}
	return nil
}

// checkRecorderCalls walks one parallel closure body for calls to Recorder
// methods on any value whose static type satisfies obs.Recorder (the
// interface itself or a concrete sink).
func checkRecorderCalls(pass *Pass, rec *types.Interface, lit *ast.FuncLit) []Finding {
	var out []Finding
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !recorderMethods[sel.Sel.Name] {
			return true
		}
		if _, isMethod := pass.Info.Selections[sel]; !isMethod {
			return true // package-qualified function, not a method call
		}
		t := pass.Info.Types[sel.X].Type
		if t == nil {
			return true
		}
		if types.Implements(t, rec) || types.Implements(types.NewPointer(t), rec) {
			out = append(out, pass.finding(call.Pos(), "obsrecorder",
				"obs.Recorder method %s called from inside a parallel closure; accumulate into a block-local counter, flush through obs.ShardedInt64, and emit the event from the coordinator between sections", sel.Sel.Name))
		}
		return true
	})
	return out
}
