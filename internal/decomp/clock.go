package decomp

import "time"

// now is the single clock read for phase timing in this package. The
// stopwatch is diagnostic instrumentation, not algorithmic state: decomp
// draws all randomness from the injected seed via internal/prand, so a
// wall-clock read here cannot influence results or reproducibility.
func now() time.Time {
	return time.Now() //parconn:allow norand phase-timing stopwatch only; algorithmic randomness comes from injected seeds
}
