package decomp

import (
	"testing"

	"parconn/internal/graph"
)

func TestEdgeParallelMatchesSequentialContract(t *testing.T) {
	// A tiny threshold forces the nested-parallel path for essentially
	// every frontier vertex; the decomposition contract must still hold on
	// graphs with and without hubs.
	for name, g := range map[string]*graph.Graph{
		"star":   graph.Star(2000),
		"rmat":   graph.RMat(10, graph.RMatOptions{EdgeFactor: 8, Seed: 3}),
		"random": graph.Random(2000, 5, 4),
		"line":   graph.Line(500, 5),
	} {
		for _, threshold := range []int{1, 4, 1 << 20} {
			w := NewWGraph(g, 0)
			res, err := Decompose(w, Arb, Options{Beta: 0.2, Seed: 7, EdgeParallel: threshold})
			if err != nil {
				t.Fatalf("%s/thr=%d: %v", name, threshold, err)
			}
			checkDecomposition(t, g, w, res, nil)
		}
	}
}

func TestEdgeParallelSameCutAsSequential(t *testing.T) {
	// With one worker the claim order is deterministic enough that the
	// surviving edge multiset must be identical with and without the
	// edge-parallel path (same seed, same winner per CAS when serialized).
	g := graph.Star(5000)
	w1 := NewWGraph(g, 1)
	if _, err := Decompose(w1, Arb, Options{Beta: 0.2, Seed: 9, Procs: 1}); err != nil {
		t.Fatal(err)
	}
	w2 := NewWGraph(g, 1)
	if _, err := Decompose(w2, Arb, Options{Beta: 0.2, Seed: 9, Procs: 1, EdgeParallel: 8}); err != nil {
		t.Fatal(err)
	}
	if w1.LiveEdges(1) != w2.LiveEdges(1) {
		t.Fatalf("cut differs: %d vs %d", w1.LiveEdges(1), w2.LiveEdges(1))
	}
}
