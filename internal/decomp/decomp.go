// Package decomp implements the parallel low-diameter graph decomposition of
// Miller, Peng, Xu (SPAA'13) and the two engineered variants introduced by
// Shun, Dhulipala, Blelloch (SPAA'14, §4):
//
//   - Min: the original algorithm ("Decomp-Min"). Ties between BFS's
//     arriving at a vertex in the same round are broken by the smallest
//     fractional shift value via an atomic writeMin, requiring two phases
//     per round (Algorithm 2 of the paper).
//   - Arb: ties broken arbitrarily ("Decomp-Arb", Algorithm 3) — a single
//     phase per round using one CAS per first visit. The paper proves this
//     still yields a (2β, O(log n / β)) decomposition (Theorem 2).
//   - ArbHybrid: Decomp-Arb plus Beamer-style direction optimization
//     ("Decomp-Arb-Hybrid"): rounds whose frontier exceeds 20% of the
//     vertices switch to a read-based pass over unvisited vertices, with a
//     final filterEdges pass classifying the edges the dense rounds skipped.
//
// All variants operate destructively on a WGraph: intra-component edges are
// deleted on the fly, inter-component edges are compacted to the front of
// each vertex's edge segment and their targets relabeled to the owning
// component's id (the paper's in-place packing described in §4). After
// Decompose returns, WGraph holds exactly the inter-component edges, ready
// for contraction.
package decomp

import (
	"fmt"
	"time"

	"parconn/internal/obs"
	"parconn/internal/parallel"
	"parconn/internal/prand"
	"parconn/internal/workspace"
)

// Variant selects the decomposition algorithm.
type Variant int

const (
	// Min is the original Miller et al. algorithm with deterministic
	// smallest-shift tie-breaking (Decomp-Min).
	Min Variant = iota
	// Arb breaks ties arbitrarily (Decomp-Arb).
	Arb
	// ArbHybrid is Arb with direction-optimizing dense rounds
	// (Decomp-Arb-Hybrid).
	ArbHybrid
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case Min:
		return "decomp-min"
	case Arb:
		return "decomp-arb"
	case ArbHybrid:
		return "decomp-arb-hybrid"
	default:
		return fmt.Sprintf("decomp-variant(%d)", int(v))
	}
}

// unvisited marks a vertex no BFS has reached yet (Arb / ArbHybrid).
const unvisited = int32(-1)

// Options configures a decomposition.
type Options struct {
	// Beta is the decomposition parameter: ball radii are O(log n / Beta)
	// and at most Beta*m (2*Beta*m for Arb variants) edges cross partitions
	// in expectation. Must be in (0, 1). Zero means the default 0.2.
	Beta float64
	// Seed drives the random permutation and the fractional shifts.
	Seed uint64
	// Procs bounds worker parallelism; <= 0 means GOMAXPROCS.
	Procs int
	// DenseFrac is the frontier fraction above which ArbHybrid switches to
	// the read-based dense round. Zero means the paper's 20%.
	DenseFrac float64
	// EdgeParallel, when positive, processes the edge lists of frontier
	// vertices whose live degree is at least this threshold with a nested
	// parallel loop plus a pack, instead of sequentially (§4: "for
	// high-degree vertices the inner sequential for-loops ... can be
	// replaced with a parallel for-loop, marking the deleted edges with a
	// special value and packing the edges with a parallel prefix sums").
	// Zero means adaptive: the tuner derives a cutoff from the level's
	// live edge count and worker count (parallel.Tuner.EdgeParallelCutoff),
	// which only fires on lists that are a meaningful fraction of the
	// level's work — effectively off for the paper's inputs, matching its
	// final configuration, without leaving star-like graphs serialized on
	// one hub. Currently honored by the Arb variant.
	EdgeParallel int
	// Phases, if non-nil, accumulates wall-clock time per phase. It is a
	// compatibility view over the Recorder event stream: Decompose folds it
	// into Recorder via PhasesRecorder.
	Phases *PhaseTimes
	// Rounds, if non-nil, receives one entry per BFS round. Like Phases, it
	// is folded into Recorder via RoundsRecorder.
	Rounds *[]RoundStat
	// Recorder, if non-nil, receives the structured event stream (one Round
	// event per BFS round, per-phase durations, CAS retry counts); see
	// internal/obs. Recorder methods are invoked only by the coordinating
	// goroutine, between parallel sections. nil costs one pointer test.
	Recorder obs.Recorder
	// Level tags emitted events with the contraction recursion depth; the
	// connectivity driver sets it, standalone decompositions leave it 0.
	Level int
	// WantParents asks the Arb variant to record the BFS tree: the claim
	// edges (parent[w] = the frontier vertex whose CAS captured w; centers
	// are their own parents). The per-cluster trees are exactly the
	// shortest-path trees the decomposition grows, which spanner
	// construction consumes. Only honored by the Arb variant.
	WantParents bool
	// Pool, if non-nil, supplies the worker pool used for the
	// decomposition's main parallel loops; nil means the shared
	// parallel.Default pool.
	Pool *parallel.Pool
	// Workspace, if non-nil, supplies the scratch arena frontier buffers,
	// shift arrays, and labels are acquired from; nil means the shared
	// workspace.Default arena. Result.Labels is acquired here and its
	// ownership transfers to the caller (release it back or let the GC
	// have it).
	Workspace *workspace.Arena
	// Scratch, if non-nil, caches the per-variant bound-closure machines
	// across Decompose calls (one recursion's levels, typically) so the
	// steady state allocates no closures. Must not be shared by
	// concurrent Decompose calls.
	Scratch *Scratch
	// Tuner, if non-nil, supplies the adaptive scheduling decisions (grain
	// sizes, edge-parallel cutoff) and accumulates cost observations across
	// calls; nil uses the Scratch's tuner (one per recursion). Like
	// Scratch, it must not be shared by concurrent Decompose calls.
	Tuner *parallel.Tuner
}

// resolve returns the effective pool and arena for opt.
func (o Options) resolve() (*parallel.Pool, *workspace.Arena) {
	pool := o.Pool
	if pool == nil {
		pool = parallel.Default()
	}
	ws := o.Workspace
	if ws == nil {
		ws = workspace.Default()
	}
	return pool, ws
}

func (o Options) withDefaults() Options {
	if o.Beta == 0 {
		o.Beta = 0.2
	}
	if o.DenseFrac == 0 {
		o.DenseFrac = 0.2
	}
	o.Procs = parallel.Procs(o.Procs)
	return o
}

//parconn:allow hotalloc cold rejection path; formats an error at most once per Decompose call
func (o Options) validate() error {
	// The negated comparisons are NaN-proof: NaN fails every ordered
	// comparison, so "x <= 0 || x >= 1" would wave NaN through into the
	// shift computation.
	if !(o.Beta > 0 && o.Beta < 1) {
		return fmt.Errorf("decomp: beta %v out of (0,1)", o.Beta)
	}
	if !(o.DenseFrac >= 0 && o.DenseFrac <= 1) {
		return fmt.Errorf("decomp: dense fraction %v out of [0,1]", o.DenseFrac)
	}
	if o.EdgeParallel < 0 {
		return fmt.Errorf("decomp: edge-parallel threshold %d negative", o.EdgeParallel)
	}
	return nil
}

// PhaseTimes records where the wall-clock time of a connectivity run goes,
// matching the paper's Figures 5-7 breakdowns. Durations accumulate across
// recursion levels.
type PhaseTimes struct {
	Init        time.Duration // permutations, shift values, array init
	BFSPre      time.Duration // adding new centers to the frontier
	BFSPhase1   time.Duration // Decomp-Min first pass (writeMin marking)
	BFSPhase2   time.Duration // Decomp-Min second pass (CAS claiming)
	BFSMain     time.Duration // Decomp-Arb single pass
	BFSSparse   time.Duration // ArbHybrid write-based rounds
	BFSDense    time.Duration // ArbHybrid read-based rounds
	FilterEdges time.Duration // ArbHybrid post-pass classifying edges
	Contract    time.Duration // contraction + relabeling (filled by core)
}

// Total returns the sum of all recorded phases.
func (p *PhaseTimes) Total() time.Duration {
	return p.Init + p.BFSPre + p.BFSPhase1 + p.BFSPhase2 + p.BFSMain +
		p.BFSSparse + p.BFSDense + p.FilterEdges + p.Contract
}

// RoundStat describes one BFS round of one decomposition call.
type RoundStat struct {
	Round      int
	Frontier   int  // frontier size (centers + BFS arrivals)
	NewCenters int  // centers started this round
	Dense      bool // ArbHybrid used the read-based pass
}

// Result of a decomposition.
type Result struct {
	// Labels[v] is the id of the center whose ball captured v; vertices
	// with the same label form one partition. A center c has Labels[c]==c.
	Labels []int32
	// NumCenters is the number of partitions (BFS's started).
	NumCenters int
	// Rounds is the number of BFS rounds executed (the maximum ball radius
	// plus center-insertion rounds).
	Rounds int
	// Parents holds the BFS claim tree when Options.WantParents was set
	// (nil otherwise): Parents[w] is the vertex that captured w, and
	// centers have Parents[c] == c. Within each partition the parent edges
	// form a shortest-path tree rooted at the center.
	Parents []int32
	// CASRetries counts lost CAS/writeMin races across the whole
	// decomposition — the contention the paper's arbitrary tie-breaking
	// tolerates instead of serializing.
	CASRetries int64
	// EdgesOut is the number of directed inter-component edges surviving
	// in the WGraph after the decomposition — exactly what LiveEdges would
	// report, accumulated for free in the machines' final classification
	// passes so the connectivity driver needs no extra reduction to decide
	// its base case.
	EdgesOut int64
}

// Decompose runs the selected variant on g, destructively (see package doc).
func Decompose(g *WGraph, variant Variant, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	// Fold the legacy telemetry sinks into the event stream so the machines
	// consult a single Recorder. The guard keeps the fully-disabled path
	// allocation-free (Multi builds a slice).
	if opt.Phases != nil || opt.Rounds != nil {
		opt.Recorder = obs.Multi(opt.Recorder, PhasesRecorder(opt.Phases), RoundsRecorder(opt.Rounds))
		opt.Phases, opt.Rounds = nil, nil
	}
	sc := opt.Scratch
	if sc == nil {
		//parconn:allow hotalloc fallback scratch for one-shot callers; level loops pass a reusable Scratch
		sc = &Scratch{}
	}
	if opt.Tuner == nil {
		opt.Tuner = &sc.tuner
	}
	switch variant {
	case Min:
		return sc.minM().run(g, opt), nil
	case Arb:
		return sc.arbM().run(g, opt), nil
	case ArbHybrid:
		return sc.hybridM().run(g, opt), nil
	default:
		//parconn:allow hotalloc cold error path for an unknown variant
		return Result{}, fmt.Errorf("decomp: unknown variant %d", int(variant))
	}
}

// shifts realizes the exponential start-time shifts of Miller et al.: each
// vertex v draws delta_v ~ Exp(beta), and its BFS may start at round
// floor(delta_max - delta_v) — the largest shift starts first, which is what
// makes early centers few and balls large; the number of vertices becoming
// eligible per round grows by a factor ~e^beta ("chunks of vertices from the
// beginning of the permutation, where the chunk size grows exponentially",
// §4). order lists the vertices by start round (a uniform random permutation
// refined by round boundaries), and cum[r] counts vertices with start round
// <= r, so round r's new centers are the still-unvisited vertices in
// order[cum[r-1]:cum[r]].
//
// The paper replaces the draws with a permutation and analytic chunk sizes;
// we keep the actual draws (same O(n) cost, deterministic per seed) because
// the analytic rounding is degenerate on very small remainder graphs — with
// n=2 and e^beta-1 > 1 it deterministically starts both vertices every
// level and the recursion never bottoms out, whereas the true process
// separates them with constant probability per level.
type shifts struct {
	order []int32
	cum   []int32
}

// newShifts draws its scratch (deltas, counting-sort arrays) and its
// results (order, cum) from ws; the scratch is released before returning,
// and the caller releases order and cum via shifts.release when the
// decomposition's round loop ends.
func newShifts(n int, beta float64, seed uint64, procs int, ws *workspace.Arena) shifts {
	deltas := ws.Float64(n)
	parallel.Blocks(procs, n, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			deltas[v] = prand.ExpFromUniform(prand.Hash64(seed^(uint64(v)+0x51ed2701)), beta)
		}
	})
	dmax := 0.0
	if n > 0 {
		dmax = parallel.Max(procs, deltas)
	}
	rounds := int(dmax) + 1
	// Counting sort by start round (sequential: O(n + rounds), a tiny
	// fraction of a decomposition's work, and proc-count independent).
	// Counts fit int32 because vertex ids do. Arena buffers come back
	// dirty, so zero counts explicitly.
	counts := ws.Int32(rounds + 1)
	for r := range counts {
		counts[r] = 0
	}
	start := ws.Int32(n)
	for v := 0; v < n; v++ {
		r := int(dmax - deltas[v])
		start[v] = int32(r)
		counts[r]++
	}
	cum := ws.Int32(rounds)
	acc := int32(0)
	for r := 0; r < rounds; r++ {
		acc += counts[r]
		cum[r] = acc
		counts[r] = acc - counts[r] // scatter cursor
	}
	order := ws.Int32(n)
	for v := 0; v < n; v++ {
		r := start[v]
		order[counts[r]] = int32(v)
		counts[r]++
	}
	ws.PutFloat64(deltas)
	ws.PutInt32(counts)
	ws.PutInt32(start)
	//parconn:allow scratchlifetime order and cum transfer to the round loop and are released via shifts.release
	return shifts{order: order, cum: cum}
}

// release returns the shift arrays to the arena; s must not be used after.
func (s shifts) release(ws *workspace.Arena) {
	ws.PutInt32(s.order)
	ws.PutInt32(s.cum)
}

// end returns the number of vertices whose start round is <= round.
func (s shifts) end(round int) int {
	if round >= len(s.cum) {
		return len(s.order)
	}
	if round < 0 {
		return 0
	}
	return int(s.cum[round])
}

// fastForward returns the smallest round >= r whose schedule end exceeds
// ptr. Used when the frontier goes empty: with no active BFS, idle rounds
// are no-ops, so we jump to the round that produces the next center.
func (s shifts) fastForward(r, ptr int) int {
	for s.end(r) <= ptr {
		r++
	}
	return r
}

// countVisited is a helper for stats assertions in tests.
func countVisited(labels []int32) int {
	c := 0
	for _, l := range labels {
		if l != unvisited {
			c++
		}
	}
	return c
}
