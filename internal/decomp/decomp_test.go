package decomp

import (
	"testing"

	"parconn/internal/graph"
	"parconn/internal/workspace"
)

var variants = []Variant{Min, Arb, ArbHybrid}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"random":    graph.Random(2000, 5, 1),
		"rmat":      graph.RMat(11, graph.RMatOptions{EdgeFactor: 5, Seed: 2}),
		"grid3d":    graph.Grid3D(10, 3),
		"line":      graph.Line(3000, 4),
		"star":      graph.Star(500),
		"isolated":  graph.FromEdges(50, nil, graph.BuildOptions{}),
		"empty":     graph.FromEdges(0, nil, graph.BuildOptions{}),
		"single":    graph.FromEdges(1, nil, graph.BuildOptions{}),
		"two-comps": graph.Components(graph.Line(100, 5), graph.Grid3D(5, 6)),
		"dense":     graph.RMat(8, graph.RMatOptions{EdgeFactor: 50, Seed: 7}),
	}
}

// checkDecomposition verifies the full contract of a decomposition run:
// every vertex is labeled with a center id, partitions are internally
// connected with radius bounded by the round count, and the working graph
// retains exactly the inter-partition edges, relabeled to component ids.
func checkDecomposition(t *testing.T, g0 *graph.Graph, w *WGraph, res Result, rounds []RoundStat) {
	t.Helper()
	n := g0.N
	labels := res.Labels
	if len(labels) != n {
		t.Fatalf("labels length %d, want %d", len(labels), n)
	}
	if got := countVisited(labels); got != n {
		t.Fatalf("%d vertices left unvisited", n-got)
	}
	centers := map[int32]bool{}
	for v := 0; v < n; v++ {
		l := labels[v]
		if l < 0 || int(l) >= n {
			t.Fatalf("label out of range: labels[%d]=%d", v, l)
		}
		if labels[l] != l {
			t.Fatalf("label %d of vertex %d is not a center (labels[%d]=%d)", l, v, l, labels[l])
		}
		centers[l] = true
	}
	if len(centers) != res.NumCenters {
		t.Fatalf("NumCenters=%d but %d distinct centers", res.NumCenters, len(centers))
	}

	// Partition connectivity and radius: BFS from each center restricted to
	// its partition must reach all members within res.Rounds levels.
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	reached := 0
	var queue []int32
	for c := range centers {
		dist[c] = 0
		reached++
		queue = append(queue[:0], c)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g0.Neighbors(v) {
				if labels[u] == labels[c] && dist[u] == -1 {
					dist[u] = dist[v] + 1
					if int(dist[u]) > res.Rounds {
						t.Fatalf("vertex %d at depth %d from center %d exceeds %d rounds", u, dist[u], c, res.Rounds)
					}
					reached++
					queue = append(queue, u)
				}
			}
		}
	}
	if reached != n {
		t.Fatalf("partitions not internally connected: reached %d/%d", reached, n)
	}

	// The working graph must hold exactly the inter-partition directed
	// edges of the original graph, targets relabeled to component ids.
	wantCut := graph.InducedSubgraphCheck(g0, labels)
	var gotCut int64
	for v := 0; v < n; v++ {
		start := w.Offs[v]
		if int64(w.Deg[v]) > w.Offs[v+1]-start {
			t.Fatalf("Deg[%d]=%d exceeds segment", v, w.Deg[v])
		}
		for i := int64(0); i < int64(w.Deg[v]); i++ {
			e := w.Adj[start+i]
			if e < 0 || int(e) >= n || labels[e] != e || !centers[e] {
				t.Fatalf("kept edge of %d has target %d that is not a center", v, e)
			}
			if e == labels[v] {
				t.Fatalf("kept edge of %d points to its own component %d", v, e)
			}
			gotCut++
		}
	}
	if gotCut != wantCut {
		t.Fatalf("kept %d inter edges, induced cut is %d", gotCut, wantCut)
	}

	// Round stats, when collected, must be internally consistent.
	if rounds != nil {
		totalCenters := 0
		for _, r := range rounds {
			totalCenters += r.NewCenters
			if r.Frontier <= 0 {
				t.Fatalf("round %d has empty frontier", r.Round)
			}
		}
		if totalCenters != res.NumCenters {
			t.Fatalf("round stats count %d centers, result says %d", totalCenters, res.NumCenters)
		}
		if len(rounds) != res.Rounds {
			t.Fatalf("len(rounds)=%d, res.Rounds=%d", len(rounds), res.Rounds)
		}
	}
}

func TestDecomposeAllVariantsAllGraphs(t *testing.T) {
	for name, g := range testGraphs() {
		for _, variant := range variants {
			for _, beta := range []float64{0.05, 0.2, 0.5} {
				var rounds []RoundStat
				w := NewWGraph(g, 0)
				res, err := Decompose(w, variant, Options{Beta: beta, Seed: 42, Rounds: &rounds})
				if err != nil {
					t.Fatalf("%s/%v/beta=%v: %v", name, variant, beta, err)
				}
				checkDecomposition(t, g, w, res, rounds)
			}
		}
	}
}

func TestDecomposeProcsInvariantContract(t *testing.T) {
	// The decomposition contract must hold at every worker count.
	g := graph.RMat(10, graph.RMatOptions{EdgeFactor: 5, Seed: 9})
	for _, procs := range []int{1, 2, 8} {
		for _, variant := range variants {
			w := NewWGraph(g, procs)
			res, err := Decompose(w, variant, Options{Beta: 0.2, Seed: 1, Procs: procs})
			if err != nil {
				t.Fatal(err)
			}
			checkDecomposition(t, g, w, res, nil)
		}
	}
}

func TestDecompMinDeterministicAcrossProcs(t *testing.T) {
	// Decomp-Min's writeMin winner is the (shift, center) minimum — fully
	// deterministic for a fixed seed regardless of scheduling.
	g := graph.RMat(10, graph.RMatOptions{EdgeFactor: 5, Seed: 3})
	var want []int32
	for _, procs := range []int{1, 3, 8} {
		w := NewWGraph(g, procs)
		res, err := Decompose(w, Min, Options{Beta: 0.15, Seed: 5, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.Labels
			continue
		}
		for v := range want {
			if res.Labels[v] != want[v] {
				t.Fatalf("procs=%d: labels[%d]=%d, want %d", procs, v, res.Labels[v], want[v])
			}
		}
	}
}

func TestDecomposeBetaEffect(t *testing.T) {
	// Larger beta means more centers and fewer rounds; smaller beta means
	// fewer, larger balls. Check the monotone trend on a grid.
	g := graph.Grid3D(12, 8)
	w1 := NewWGraph(g, 0)
	small, err := Decompose(w1, Arb, Options{Beta: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWGraph(g, 0)
	large, err := Decompose(w2, Arb, Options{Beta: 0.8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if small.NumCenters >= large.NumCenters {
		t.Fatalf("centers: beta=0.05 gives %d, beta=0.8 gives %d; want increase", small.NumCenters, large.NumCenters)
	}
	if small.Rounds <= large.Rounds {
		t.Fatalf("rounds: beta=0.05 gives %d, beta=0.8 gives %d; want decrease", small.Rounds, large.Rounds)
	}
}

func TestDecomposeCutFractionScalesWithBeta(t *testing.T) {
	// Theorem 2: expected inter-partition edges <= 2*beta*m. The bound is
	// on the expectation over the shift draws; it only concentrates when
	// partition boundaries are many independent local events, so measure on
	// the line and the 3D torus (on expander-like graphs a single top-two
	// shift tie cuts a Theta(m) Voronoi boundary, making small-sample means
	// meaningless). Mean over several seeds, 1.5x slack on 2*beta.
	for name, g := range map[string]*graph.Graph{
		"line":   graph.Line(20000, 2),
		"grid3d": graph.Grid3D(20, 2),
	} {
		m := float64(g.NumDirected())
		for _, beta := range []float64{0.05, 0.1, 0.2} {
			var sum float64
			const trials = 5
			for seed := uint64(0); seed < trials; seed++ {
				w := NewWGraph(g, 0)
				if _, err := Decompose(w, Arb, Options{Beta: beta, Seed: seed}); err != nil {
					t.Fatal(err)
				}
				sum += float64(w.LiveEdges(0)) / m
			}
			if mean := sum / trials; mean > 3*beta {
				t.Fatalf("%s beta=%v: mean cut fraction %.3f exceeds 1.5x the 2*beta bound", name, beta, mean)
			}
		}
	}
}

func TestDecompMinCutTighter(t *testing.T) {
	// Decomp-Min's bound is beta*m (vs 2*beta*m for Arb); allow 2x slack on
	// the concentrated line workload.
	g := graph.Line(20000, 2)
	m := float64(g.NumDirected())
	const beta = 0.1
	var sum float64
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		w := NewWGraph(g, 0)
		if _, err := Decompose(w, Min, Options{Beta: beta, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		sum += float64(w.LiveEdges(0)) / m
	}
	if mean := sum / trials; mean > 2*beta {
		t.Fatalf("mean cut fraction %.3f exceeds 2x the beta bound", mean)
	}
}

func TestHybridDenseAndSparseRoundsBothOccur(t *testing.T) {
	// A dense random graph's frontier explodes: the hybrid must take dense
	// rounds there. A line's frontier never exceeds a few vertices: all
	// rounds must stay sparse.
	var rounds []RoundStat
	g := graph.Random(5000, 5, 3)
	w := NewWGraph(g, 0)
	if _, err := Decompose(w, ArbHybrid, Options{Beta: 0.1, Seed: 1, Rounds: &rounds}); err != nil {
		t.Fatal(err)
	}
	anyDense := false
	for _, r := range rounds {
		if r.Dense {
			anyDense = true
		}
	}
	if !anyDense {
		t.Fatal("no dense rounds on a dense random graph")
	}

	rounds = rounds[:0]
	gl := graph.Line(5000, 4)
	wl := NewWGraph(gl, 0)
	if _, err := Decompose(wl, ArbHybrid, Options{Beta: 0.1, Seed: 1, Rounds: &rounds}); err != nil {
		t.Fatal(err)
	}
	for _, r := range rounds {
		if r.Dense {
			t.Fatal("dense round on a line graph")
		}
	}
}

func TestHybridForcedModes(t *testing.T) {
	// DenseFrac ~0 forces all-dense; DenseFrac 1 forces all-sparse. Both
	// must still satisfy the decomposition contract.
	g := graph.RMat(10, graph.RMatOptions{EdgeFactor: 8, Seed: 4})
	for _, frac := range []float64{1e-9, 1.0} {
		w := NewWGraph(g, 0)
		res, err := Decompose(w, ArbHybrid, Options{Beta: 0.2, Seed: 2, DenseFrac: frac})
		if err != nil {
			t.Fatal(err)
		}
		checkDecomposition(t, g, w, res, nil)
	}
}

func TestDecomposeIsolatedVerticesSingletons(t *testing.T) {
	g := graph.FromEdges(20, nil, graph.BuildOptions{})
	for _, variant := range variants {
		w := NewWGraph(g, 0)
		res, err := Decompose(w, variant, Options{Beta: 0.2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumCenters != 20 {
			t.Fatalf("%v: NumCenters=%d want 20", variant, res.NumCenters)
		}
		for v, l := range res.Labels {
			if l != int32(v) {
				t.Fatalf("%v: isolated vertex %d labeled %d", variant, v, l)
			}
		}
	}
}

func TestDecomposeRejectsBadOptions(t *testing.T) {
	g := graph.Line(10, 1)
	for _, beta := range []float64{-0.5, 1.0, 2.0} {
		w := NewWGraph(g, 0)
		if _, err := Decompose(w, Arb, Options{Beta: beta}); err == nil {
			t.Fatalf("beta=%v accepted", beta)
		}
	}
	w := NewWGraph(g, 0)
	if _, err := Decompose(w, Variant(99), Options{Beta: 0.2}); err == nil {
		t.Fatal("unknown variant accepted")
	}
	w2 := NewWGraph(g, 0)
	if _, err := Decompose(w2, ArbHybrid, Options{Beta: 0.2, DenseFrac: 2}); err == nil {
		t.Fatal("bad dense fraction accepted")
	}
}

func TestShiftsProperties(t *testing.T) {
	const n = 100000
	const beta = 0.1
	s := newShifts(n, beta, 42, 0, workspace.New())
	if len(s.order) != n {
		t.Fatalf("order length %d", len(s.order))
	}
	seen := make([]bool, n)
	for _, v := range s.order {
		if seen[v] {
			t.Fatalf("vertex %d appears twice in order", v)
		}
		seen[v] = true
	}
	prev := 0
	for r := 0; r < len(s.cum)+10; r++ {
		e := s.end(r)
		if e < prev {
			t.Fatalf("schedule not monotone at round %d", r)
		}
		if e > n {
			t.Fatalf("schedule exceeds n at round %d", r)
		}
		prev = e
	}
	if s.end(0) < 1 {
		t.Fatal("round 0 adds no centers")
	}
	// The first chunks must be tiny relative to n (the exponential head
	// start: the max-shift vertex starts alone or nearly so) and the total
	// number of rounds ~ln(n)/beta.
	if s.end(0) > n/100 {
		t.Fatalf("round 0 starts %d centers; schedule is flooding", s.end(0))
	}
	wantRounds := int(12 / beta) // ln(1e5) ~= 11.5
	if len(s.cum) > 3*wantRounds {
		t.Fatalf("%d rounds, expected on the order of %d", len(s.cum), wantRounds)
	}
	if s.end(len(s.cum)+5) != n {
		t.Fatal("schedule never reaches n")
	}
	if ff := s.fastForward(0, n-1); s.end(ff) != n {
		t.Fatal("fastForward did not reach a productive round")
	}
	// Chunk sizes grow roughly geometrically: the last chunk dwarfs the
	// first rounds' chunks.
	last := s.end(len(s.cum)-1) - s.end(len(s.cum)-2)
	if last < n/100 {
		t.Fatalf("final chunk %d too small for exponential growth", last)
	}
	// Determinism per seed.
	s2 := newShifts(n, beta, 42, 4, workspace.New())
	for i := range s.order {
		if s.order[i] != s2.order[i] {
			t.Fatalf("order differs at %d across proc counts", i)
		}
	}
}

func TestShiftsTinyN(t *testing.T) {
	for n := 0; n <= 3; n++ {
		s := newShifts(n, 0.5, 1, 1, workspace.New())
		if len(s.order) != n {
			t.Fatalf("n=%d: order length %d", n, len(s.order))
		}
		if n > 0 && s.end(1000) != n {
			t.Fatalf("n=%d: never reaches n", n)
		}
	}
	// With n=2 and large beta, across seeds the two vertices must sometimes
	// start in different rounds — this is what lets the CC recursion bottom
	// out on a stubborn 2-vertex remainder (see shifts doc comment).
	separated := false
	for seed := uint64(0); seed < 64 && !separated; seed++ {
		s := newShifts(2, 0.9, seed, 1, workspace.New())
		separated = s.end(0) == 1
	}
	if !separated {
		t.Fatal("n=2 vertices never start in different rounds")
	}
}

func TestPackPairOrdering(t *testing.T) {
	// Lexicographic packed comparison with signed c1.
	if packPair(-1, 5) >= packPair(0, 0) {
		t.Fatal("(-1,x) must be smaller than any non-negative mark")
	}
	if packPair(3, 7) >= packPair(4, 0) {
		t.Fatal("c1 must dominate")
	}
	if packPair(3, 7) >= packPair(3, 8) {
		t.Fatal("c2 must tie-break")
	}
	if pairC1(packPair(-1, 9)) != -1 || pairC2(packPair(-1, 9)) != 9 {
		t.Fatal("pack/unpack roundtrip failed")
	}
	if pairC1(packPair(minInf, minInf)) != minInf {
		t.Fatal("inf roundtrip failed")
	}
}

func TestWriteMin(t *testing.T) {
	v := packPair(minInf, minInf)
	if ok, _ := writeMin(&v, packPair(10, 3)); !ok {
		t.Fatal("writeMin to inf failed")
	}
	if ok, _ := writeMin(&v, packPair(10, 3)); ok {
		t.Fatal("writeMin of equal value succeeded")
	}
	if ok, lost := writeMin(&v, packPair(11, 0)); ok || lost != 0 {
		t.Fatal("writeMin of larger value succeeded")
	}
	if ok, _ := writeMin(&v, packPair(9, 100)); !ok {
		t.Fatal("writeMin of smaller value failed")
	}
	if pairC1(v) != 9 || pairC2(v) != 100 {
		t.Fatal("wrong final value")
	}
}

func TestWGraphLiveEdges(t *testing.T) {
	g := graph.Line(10, 1)
	w := NewWGraph(g, 0)
	if w.LiveEdges(0) != g.NumDirected() {
		t.Fatalf("LiveEdges=%d want %d", w.LiveEdges(0), g.NumDirected())
	}
	w.Deg[0] = 0
	if w.LiveEdges(0) != g.NumDirected()-int64(g.Degree(0)) {
		t.Fatal("LiveEdges does not track Deg")
	}
}

func TestPhaseTimesRecorded(t *testing.T) {
	g := graph.Random(3000, 5, 1)
	for _, variant := range variants {
		var pt PhaseTimes
		w := NewWGraph(g, 0)
		if _, err := Decompose(w, variant, Options{Beta: 0.2, Seed: 1, Phases: &pt}); err != nil {
			t.Fatal(err)
		}
		if pt.Total() <= 0 {
			t.Fatalf("%v: no phase time recorded", variant)
		}
		switch variant {
		case Min:
			if pt.BFSPhase1 <= 0 || pt.BFSPhase2 <= 0 || pt.BFSMain != 0 {
				t.Fatalf("%v: wrong phases populated: %+v", variant, pt)
			}
		case Arb:
			if pt.BFSMain <= 0 || pt.BFSPhase1 != 0 || pt.FilterEdges != 0 {
				t.Fatalf("%v: wrong phases populated: %+v", variant, pt)
			}
		case ArbHybrid:
			if pt.FilterEdges <= 0 || pt.BFSMain != 0 {
				t.Fatalf("%v: wrong phases populated: %+v", variant, pt)
			}
		}
	}
}

func TestVariantString(t *testing.T) {
	if Min.String() != "decomp-min" || Arb.String() != "decomp-arb" || ArbHybrid.String() != "decomp-arb-hybrid" {
		t.Fatal("variant names changed")
	}
	if Variant(42).String() == "" {
		t.Fatal("unknown variant has empty name")
	}
}
