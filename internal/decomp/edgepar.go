package decomp

import (
	"sync/atomic"

	"parconn/internal/parallel"
)

// processEdgesParallel handles one high-degree frontier vertex by scanning
// its live edge segment with a nested parallel loop, marking deleted edges
// with a sentinel, and packing the survivors — the optional optimization
// sketched at the end of §4. It implements exactly the semantics of the
// sequential Arb inner loop.
//
// The deletion sentinel is -1: surviving entries are component ids, which
// are always >= 0 at this point of the algorithm. Returns the number of
// surviving (inter-component) edges, which is v's final live degree.
func processEdgesParallel(g *WGraph, c, parents []int32, v, cv int32, nxt []int32, cursor *atomic.Int64, procs int) int64 {
	start := g.Offs[v]
	seg := g.Adj[start : start+int64(g.Deg[v])]
	parallel.Blocks(procs, len(seg), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w := seg[i]
			if atomic.LoadInt32(&c[w]) == unvisited &&
				atomic.CompareAndSwapInt32(&c[w], unvisited, cv) {
				if parents != nil {
					parents[w] = v
				}
				nxt[cursor.Add(1)-1] = w
				seg[i] = -1 // claimed: intra-component, delete
			} else if cw := atomic.LoadInt32(&c[w]); cw != cv {
				seg[i] = cw // inter-component: keep, relabeled
			} else {
				seg[i] = -1 // intra-component, delete
			}
		}
	})
	//parconn:allow hotalloc pack predicate closure is the documented per-call cost of the optional edge-parallel path
	kept := parallel.Pack(procs, seg, func(i int) bool { return seg[i] >= 0 })
	parallel.Copy(procs, seg[:len(kept)], kept)
	//parconn:allow conversioncheck kept is a subset of seg, whose length came from the int32 g.Deg[v]
	g.Deg[v] = int32(len(kept))
	return int64(len(kept))
}
