package decomp

import (
	"math"
	"sync/atomic"
	"time"

	"parconn/internal/obs"
	"parconn/internal/parallel"
	"parconn/internal/prand"
)

// Decomp-Min (Algorithm 2 of the paper) stores per vertex a pair
// (c1, c2): c1 is the conflict-resolution slot frontier vertices writeMin
// their center's fractional shift into, and c2 is the component id. The
// pair is packed into one int64 — the paper stores the pair contiguously
// for the same reason (one cache line, one atomic word):
//
//	c1 = int32(packed >> 32)    c2 = int32(packed)
//
// Signed comparison of packed values is lexicographic on (c1, c2), so a
// single CAS-loop writeMin on the packed word implements the paper's
// writeMin on the first component, with center id as a deterministic
// tiebreaker. c1 = -1 (pair < 0) marks a visited vertex and is smaller than
// every mark, so writeMin can never overwrite it.

const minInf = int32(math.MaxInt32)

// deltaFracBits sizes the range fractional shifts are drawn from; 2^30
// makes same-round ties between distinct centers vanishingly rare (§4
// "drawn from a large enough range").
const deltaFracBits = 30

func packPair(c1, c2 int32) int64 { return int64(c1)<<32 | int64(uint32(c2)) }
func pairC1(p int64) int32        { return int32(p >> 32) }
func pairC2(p int64) int32        { return int32(uint32(p)) }

// writeMin atomically lowers *loc to val if val is smaller; it reports
// whether it changed *loc (§2 of the paper) and how many CAS attempts were
// lost to concurrent writers along the way (the contention signal the
// observability layer surfaces per round).
func writeMin(loc *int64, val int64) (changed bool, lost int64) {
	for {
		cur := atomic.LoadInt64(loc)
		if val >= cur {
			return false, lost
		}
		if atomic.CompareAndSwapInt64(loc, cur, val) {
			return true, lost
		}
		lost++
	}
}

// minMachine is the original Miller et al. decomposition with deterministic
// smallest-shift tie-breaking; two passes over the frontier's edges per
// round (paper Algorithm 2). The loop bodies are bound once (see Scratch);
// per-round state flows through the fields, written only by the coordinator
// between parallel sections.
type minMachine struct {
	procs int
	g     *WGraph

	c               []int64
	deltaFrac       []int32
	perm, front     []int32
	cur, nxt        []int32
	base            int
	labels          []int32
	cursor          atomic.Int64
	retries         *obs.ShardedInt64
	liveOut         *obs.ShardedInt64
	fnPre, fnPhase1 func(lo, hi int)
	fnPhase2        func(lo, hi int)
	fnUnsign        func(lo, hi int)
	fnLabels        func(lo, hi int)
}

//parconn:allow hotalloc machine is constructed once per Scratch and recycled across levels and runs
func newMinMachine() *minMachine {
	m := &minMachine{retries: obs.NewShardedInt64(retryShards),
		liveOut: obs.NewShardedInt64(retryShards)}
	// bfsPre: start new BFS's from the permutation prefix whose simulated
	// shift falls below the current round.
	m.fnPre = func(lo, hi int) {
		perm, c, front := m.perm, m.c, m.front
		base := m.base
		cursor := &m.cursor
		for i := lo; i < hi; i++ {
			v := perm[base+i]
			// perm is a permutation, so only this iteration touches c[v];
			// CAS phases are barrier-separated from this plain-write pass.
			if pairC1(c[v]) != -1 {
				c[v] = packPair(-1, v)
				front[cursor.Add(1)-1] = v
			}
		}
	}
	// Phase 1 (paper lines 9-23): mark unvisited neighbors with writeMin;
	// edges to already-visited neighbors are classified now.
	// Lost writeMin races accumulate in a block-local counter flushed once
	// per claimed block — never a Recorder call from inside the section.
	m.fnPhase1 = func(lo, hi int) {
		g, c, deltaFrac, cur := m.g, m.c, m.deltaFrac, m.cur
		var casFail int64
		for fi := lo; fi < hi; fi++ {
			v := cur[fi]
			cv := pairC2(atomic.LoadInt64(&c[v]))
			mark := packPair(deltaFrac[cv], cv)
			start := g.Offs[v]
			d := int64(g.Deg[v])
			var k int64
			for i := int64(0); i < d; i++ {
				w := g.Adj[start+i]
				cw := atomic.LoadInt64(&c[w])
				if pairC1(cw) != -1 {
					// Not yet visited in a previous round: compete for
					// it, and keep the edge — its status is unknown
					// until all writeMins land.
					if mark < cw {
						_, lost := writeMin(&c[w], mark)
						casFail += lost
					}
					g.Adj[start+k] = w
					k++
				} else if cw2 := pairC2(cw); cw2 != cv {
					// Visited earlier, different component: keep as an
					// inter-component edge, relabeled, sign bit set so
					// phase 2 skips it (paper lines 20-22).
					g.Adj[start+k] = -cw2 - 1
					k++
				}
			}
			g.Deg[v] = int32(k)
		}
		m.retries.Add(retryShard(lo), casFail)
	}
	// Phase 2 (paper lines 24-39): the centers whose mark survived claim
	// their neighbors with a CAS; remaining edges are classified.
	m.fnPhase2 = func(lo, hi int) {
		g, c, deltaFrac, cur, nxt := m.g, m.c, m.deltaFrac, m.cur, m.nxt
		cursor := &m.cursor
		var casFail, kept int64
		for fi := lo; fi < hi; fi++ {
			v := cur[fi]
			cv := pairC2(atomic.LoadInt64(&c[v]))
			expected := packPair(deltaFrac[cv], cv)
			won := packPair(-1, cv)
			start := g.Offs[v]
			d := int64(g.Deg[v])
			var k int64
			for i := int64(0); i < d; i++ {
				w := g.Adj[start+i]
				if w < 0 {
					// Classified in phase 1; keep.
					g.Adj[start+k] = w
					k++
					continue
				}
				cw := atomic.LoadInt64(&c[w])
				if cw == expected {
					if atomic.CompareAndSwapInt64(&c[w], expected, won) {
						// v won w: add to the next frontier; the edge is
						// intra-component and deleted.
						nxt[cursor.Add(1)-1] = w
						continue
					}
					// A same-component peer got there first; the slot
					// now holds (-1, cv).
					casFail++
					cw = atomic.LoadInt64(&c[w])
				}
				if cw2 := pairC2(cw); cw2 != cv {
					g.Adj[start+k] = -cw2 - 1
					k++
				}
			}
			g.Deg[v] = int32(k)
			kept += k
		}
		sh := retryShard(lo)
		m.retries.Add(sh, casFail)
		// Phase 2 finalizes every frontier vertex's degree exactly once, so
		// these block-local sums add up to the surviving edge count.
		m.liveOut.Add(sh, kept)
	}
	// Unset the sign bits of the surviving (inter-component) edges so the
	// contraction phase sees plain component ids.
	m.fnUnsign = func(lo, hi int) {
		g := m.g
		for v := lo; v < hi; v++ {
			start := g.Offs[v]
			for i := int64(0); i < int64(g.Deg[v]); i++ {
				if e := g.Adj[start+i]; e < 0 {
					g.Adj[start+i] = -e - 1
				}
			}
		}
	}
	// Extract the component ids out of the packed pairs.
	m.fnLabels = func(lo, hi int) {
		c, labels := m.c, m.labels
		// Read-only extraction after the last phase's join barrier; no
		// writer is live.
		for v := lo; v < hi; v++ {
			labels[v] = pairC2(c[v])
		}
	}
	return m
}

func (m *minMachine) run(g *WGraph, opt Options) Result {
	n, procs := g.N, opt.Procs
	if n == 0 {
		//parconn:allow hotalloc empty-graph base case; a zero-length literal is the zerobase pointer, not a heap block
		return Result{Labels: []int32{}}
	}
	t0 := now()
	pool, ws := opt.resolve()
	tn := opt.Tuner
	// Procs is a bound; narrow it to the physical CPU count (DESIGN.md §12).
	procs = tn.Workers(procs)
	m.procs, m.g = procs, g
	// Per-round edge masses for the tuner are estimated as frontier ×
	// average degree; exact tracking costs a random Deg load per claim.
	avgDeg := g.Offs[n] / int64(n)
	if avgDeg < 1 {
		avgDeg = 1
	}
	rec := opt.Recorder
	m.retries.Reset()
	m.liveOut.Reset()

	c := ws.Int64(n)
	parallel.Fill(procs, c, packPair(minInf, minInf))
	// deltaFrac[v] simulates the fractional part of v's exponential shift;
	// only consulted for vertices that become centers.
	deltaFrac := ws.Int32(n)
	seed := opt.Seed
	parallel.Blocks(procs, n, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			deltaFrac[v] = int32(prand.Hash32(seed^uint64(v)<<1) & (1<<deltaFracBits - 1))
		}
	})
	m.c, m.deltaFrac = c, deltaFrac
	sh := newShifts(n, opt.Beta, opt.Seed, procs, ws)
	m.perm = sh.order
	var bufs [2][]int32
	bufs[0] = ws.Int32(n)
	bufs[1] = ws.Int32(n)
	curBuf, curN := 0, 0
	phInit := time.Since(t0)

	var phPre, phPhase1, phPhase2 time.Duration
	var prevRetries, retryDelta int64
	permPtr, visited, round := 0, 0, 0
	numCenters, workRounds := 0, 0
	for visited < n {
		tPre := now()
		if curN == 0 && permPtr < n {
			round = sh.fastForward(round, permPtr)
		}
		end := sh.end(round)
		added := 0
		if end > permPtr {
			m.cursor.Store(int64(curN))
			m.front = bufs[curBuf]
			m.base = permPtr
			pool.Blocks(procs, end-permPtr, 0, m.fnPre)
			permPtr = end
			added = int(m.cursor.Load()) - curN
			curN += added
			numCenters += added
		}
		dPre := time.Since(tPre)
		phPre += dPre
		if curN == 0 {
			if permPtr >= n {
				break // all vertices visited; loop condition ends next check
			}
			// The chunk just scanned was entirely already-visited; advance
			// to the next round that yields new centers.
			continue
		}
		m.cur = bufs[curBuf][:curN]
		m.nxt = bufs[1-curBuf]
		m.cursor.Store(0)

		// Re-tune at the round boundary; both phases sweep the same frontier
		// edge set, so they share one grain decision and the cost EWMA sees
		// the combined wall time over twice the edges.
		curEdges := int64(curN) * avgDeg
		grain := tn.FrontierGrain(procs, curN, curEdges, retryDelta)

		t1 := now()
		pool.Blocks(procs, curN, grain, m.fnPhase1)
		d1 := time.Since(t1)
		phPhase1 += d1

		t2 := now()
		pool.Blocks(procs, curN, grain, m.fnPhase2)
		d2 := time.Since(t2)
		phPhase2 += d2
		tn.Observe(2*curEdges, d1+d2)
		sum := m.retries.Sum()
		retryDelta, prevRetries = sum-prevRetries, sum
		if rec != nil {
			rec.Round(obs.Round{
				Level: opt.Level, Round: round, Frontier: curN, NewCenters: added,
				Duration: dPre + d1 + d2, CASRetries: retryDelta,
			})
		}
		// Count the frontier we just processed as visited (paper line 7);
		// counting at claim time instead would end the loop before the last
		// frontier's edges are classified.
		visited += curN
		curBuf = 1 - curBuf
		curN = int(m.cursor.Load())
		round++
		workRounds++
	}

	tEnd := now()
	pool.Blocks(procs, n, 0, m.fnUnsign)
	labels := ws.Int32(n)
	m.labels = labels
	pool.Blocks(procs, n, 0, m.fnLabels)
	phPhase2 += time.Since(tEnd)

	if rec != nil {
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseInit, Duration: phInit})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSPre, Duration: phPre})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSPhase1, Duration: phPhase1})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSPhase2, Duration: phPhase2})
	}

	// Release everything but the labels, whose ownership transfers to the
	// caller, and drop the machine's aliases so the arena's next owner of
	// these buffers is truly exclusive.
	sh.release(ws)
	ws.PutInt32(bufs[0])
	ws.PutInt32(bufs[1])
	ws.PutInt32(deltaFrac)
	ws.PutInt64(c)
	m.g, m.c, m.deltaFrac, m.perm, m.front, m.cur, m.nxt, m.labels = nil, nil, nil, nil, nil, nil, nil, nil
	//parconn:allow scratchlifetime Labels ownership transfers to the caller, who releases it after RELABELUP (see the comment above)
	return Result{Labels: labels, NumCenters: numCenters, Rounds: workRounds,
		CASRetries: m.retries.Sum(), EdgesOut: m.liveOut.Sum()}
}
