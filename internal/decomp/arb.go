package decomp

import (
	"sync/atomic"
	"time"

	"parconn/internal/obs"
	"parconn/internal/parallel"
)

// retryShard maps a block's low index to a shard of the per-machine
// sharded accumulators. The divisor is the baseline frontier grain (the
// tuner varies the actual grain per round; any spreading function works
// here, it only needs to keep concurrent blocks off one cache line).
func retryShard(lo int) int { return lo / parallel.FrontierGrain }

// retryShards sizes the per-machine sharded CAS-retry accumulator; block
// indices hash into it, so it only needs to cover plausible worker counts.
const retryShards = 64

// arbMachine runs Algorithm 3 of the paper: one pass per round over the
// frontier's edges; the first CAS to reach an unvisited vertex wins it. The
// loop bodies are bound once (see Scratch); per-round state flows through
// the fields, which only the coordinating goroutine writes, between
// parallel sections (the pool's fork/join establishes the ordering).
type arbMachine struct {
	pool  *parallel.Pool
	procs int
	g     *WGraph

	c, parents, perm []int32
	front, cur, nxt  []int32
	base             int
	edgeParallel     int
	cursor           atomic.Int64
	retries          *obs.ShardedInt64
	liveOut          *obs.ShardedInt64

	fnPre, fnMain func(lo, hi int)
}

//parconn:allow hotalloc machine is constructed once per Scratch and recycled across levels and runs
func newArbMachine() *arbMachine {
	m := &arbMachine{retries: obs.NewShardedInt64(retryShards),
		liveOut: obs.NewShardedInt64(retryShards)}
	// bfsPre: start new BFS's from the permutation prefix whose simulated
	// shift falls below the current round (paper lines 5-6).
	m.fnPre = func(lo, hi int) {
		perm, c, parents, front := m.perm, m.c, m.parents, m.front
		base := m.base
		cursor := &m.cursor
		for i := lo; i < hi; i++ {
			v := perm[base+i]
			// perm is a permutation, so only this iteration touches c[v];
			// CAS rounds are barrier-separated from this plain-write pass.
			if c[v] == unvisited {
				c[v] = v
				if parents != nil {
					parents[v] = v
				}
				front[cursor.Add(1)-1] = v
			}
		}
	}
	// bfsMain: single pass over the frontier's edges (paper lines 9-20).
	// Lost CAS races accumulate in a block-local counter flushed once per
	// claimed block — never a Recorder call from inside the section.
	m.fnMain = func(lo, hi int) {
		g, c, parents, cur, nxt := m.g, m.c, m.parents, m.cur, m.nxt
		procs := m.procs
		cursor := &m.cursor
		var casFail, kept int64
		for fi := lo; fi < hi; fi++ {
			v := cur[fi]
			cv := c[v] //parconn:allow mixedatomic c[v] was claimed by CAS in an earlier round; the join barrier publishes it
			start := g.Offs[v]
			d := int64(g.Deg[v])
			if edgePar := m.edgeParallel; edgePar > 0 && d >= int64(edgePar) {
				kept += processEdgesParallel(g, c, parents, v, cv, nxt, cursor, procs)
				continue
			}
			var k int64
			for i := int64(0); i < d; i++ {
				w := g.Adj[start+i]
				if atomic.LoadInt32(&c[w]) == unvisited {
					if atomic.CompareAndSwapInt32(&c[w], unvisited, cv) {
						if parents != nil {
							parents[w] = v
						}
						nxt[cursor.Add(1)-1] = w
						continue
					}
					casFail++ // raced for w and lost to another frontier vertex
				}
				if cw := atomic.LoadInt32(&c[w]); cw != cv {
					// Inter-component edge: keep it, relabeled to the
					// neighbor's component id (paper line 18).
					g.Adj[start+k] = cw
					k++
				}
			}
			g.Deg[v] = int32(k)
			kept += k
		}
		sh := retryShard(lo)
		m.retries.Add(sh, casFail)
		// Every vertex passes through exactly one fnMain as a frontier
		// member, and its degree is final afterwards, so these block-local
		// sums add up to the surviving (inter-component) edge count.
		m.liveOut.Add(sh, kept)
	}
	return m
}

func (m *arbMachine) run(g *WGraph, opt Options) Result {
	n, procs := g.N, opt.Procs
	if n == 0 {
		//parconn:allow hotalloc empty-graph base case; a zero-length literal is the zerobase pointer, not a heap block
		return Result{Labels: []int32{}}
	}
	t0 := now()
	pool, ws := opt.resolve()
	tn := opt.Tuner
	// Procs is a bound; narrow it to the physical CPU count (DESIGN.md §12).
	procs = tn.Workers(procs)
	m.pool, m.procs, m.g = pool, procs, g
	// liveEdges is the level's entering directed edge count (Offs is the
	// frozen CSR layout, so Offs[n] is exactly the live total at entry).
	// Per-round edge masses for the tuner are estimated as frontier ×
	// average degree; exact tracking costs a random Deg load per claim.
	liveEdges := g.Offs[n]
	avgDeg := liveEdges / int64(n)
	if avgDeg < 1 {
		avgDeg = 1
	}
	m.edgeParallel = opt.EdgeParallel
	if m.edgeParallel == 0 {
		m.edgeParallel = tn.EdgeParallelCutoff(procs, liveEdges)
	}
	rec := opt.Recorder
	m.retries.Reset()
	m.liveOut.Reset()

	c := ws.Int32(n)
	parallel.Fill(procs, c, unvisited)
	var parents []int32
	if opt.WantParents {
		// Parents are a rarely-requested result handed to the caller;
		// plain allocation keeps their ownership out of the arena.
		//parconn:allow hotalloc rarely-requested caller-owned result, deliberately outside the arena
		parents = make([]int32, n)
		parallel.Fill(procs, parents, unvisited)
	}
	m.c, m.parents = c, parents
	sh := newShifts(n, opt.Beta, opt.Seed, procs, ws)
	m.perm = sh.order
	// Double-buffered frontier: cur = bufs[curBuf][:curN]; the next frontier
	// accumulates in the other buffer through an atomic cursor.
	var bufs [2][]int32
	bufs[0] = ws.Int32(n)
	bufs[1] = ws.Int32(n)
	curBuf, curN := 0, 0
	phInit := time.Since(t0)

	var phPre, phMain time.Duration
	var prevRetries, retryDelta int64
	permPtr, visited, round := 0, 0, 0
	numCenters, workRounds := 0, 0
	for visited < n {
		tPre := now()
		if curN == 0 && permPtr < n {
			round = sh.fastForward(round, permPtr)
		}
		end := sh.end(round)
		added := 0
		if end > permPtr {
			m.cursor.Store(int64(curN))
			m.front = bufs[curBuf]
			m.base = permPtr
			pool.Blocks(procs, end-permPtr, 0, m.fnPre)
			permPtr = end
			added = int(m.cursor.Load()) - curN
			curN += added
			numCenters += added
		}
		dPre := time.Since(tPre)
		phPre += dPre
		if curN == 0 {
			if permPtr >= n {
				break // all vertices visited; loop condition ends next check
			}
			// The chunk just scanned was entirely already-visited; advance
			// to the next round that yields new centers.
			continue
		}

		tMain := now()
		m.cur = bufs[curBuf][:curN]
		m.nxt = bufs[1-curBuf]
		m.cursor.Store(0)
		// Re-tune at the round boundary: grain from the frontier's
		// estimated edge mass and the previous round's contention, then
		// feed the measured wall time back into the cost EWMA.
		curEdges := int64(curN) * avgDeg
		grain := tn.FrontierGrain(procs, curN, curEdges, retryDelta)
		pool.Blocks(procs, curN, grain, m.fnMain)
		dMain := time.Since(tMain)
		phMain += dMain
		tn.Observe(curEdges, dMain)
		sum := m.retries.Sum()
		retryDelta, prevRetries = sum-prevRetries, sum
		if rec != nil {
			rec.Round(obs.Round{
				Level: opt.Level, Round: round, Frontier: curN, NewCenters: added,
				Duration: dPre + dMain, CASRetries: retryDelta,
			})
		}
		// Count the frontier we just processed as visited (paper line 7);
		// counting at claim time instead would end the loop before the last
		// frontier's edges are classified.
		visited += curN
		curBuf = 1 - curBuf
		curN = int(m.cursor.Load())
		round++
		workRounds++
	}

	if rec != nil {
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseInit, Duration: phInit})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSPre, Duration: phPre})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSMain, Duration: phMain})
	}

	// Release everything but the labels, whose ownership transfers to the
	// caller, and drop the machine's aliases so the arena's next owner of
	// these buffers is truly exclusive.
	sh.release(ws)
	ws.PutInt32(bufs[0])
	ws.PutInt32(bufs[1])
	m.g, m.c, m.parents, m.perm, m.front, m.cur, m.nxt = nil, nil, nil, nil, nil, nil, nil
	//parconn:allow scratchlifetime Labels ownership transfers to the caller, who releases it after RELABELUP (see the comment above)
	return Result{Labels: c, NumCenters: numCenters, Rounds: workRounds, Parents: parents,
		CASRetries: m.retries.Sum(), EdgesOut: m.liveOut.Sum()}
}
