package decomp

import (
	"sync/atomic"
	"time"

	"parconn/internal/parallel"
)

// frontierGrain is the number of frontier vertices a worker claims at a
// time. It is small because per-vertex work is proportional to degree and
// degrees can be highly skewed.
const frontierGrain = 256

// decompArb is Algorithm 3 of the paper: one pass per round over the
// frontier's edges; the first CAS to reach an unvisited vertex wins it.
func decompArb(g *WGraph, opt Options) Result {
	n, procs := g.N, opt.Procs
	if n == 0 {
		return Result{Labels: []int32{}}
	}
	t0 := now()
	c := make([]int32, n)
	parallel.Fill(procs, c, unvisited)
	var parents []int32
	if opt.WantParents {
		parents = make([]int32, n)
		parallel.Fill(procs, parents, unvisited)
	}
	sh := newShifts(n, opt.Beta, opt.Seed, procs)
	perm := sh.order
	// Double-buffered frontier: cur = bufs[curBuf][:curN]; the next frontier
	// accumulates in the other buffer through an atomic cursor.
	var bufs [2][]int32
	bufs[0] = make([]int32, n)
	bufs[1] = make([]int32, n)
	curBuf, curN := 0, 0
	if opt.Phases != nil {
		opt.Phases.Init += time.Since(t0)
	}

	permPtr, visited, round := 0, 0, 0
	numCenters, workRounds := 0, 0
	var cursor atomic.Int64
	for visited < n {
		// bfsPre: start new BFS's from the permutation prefix whose
		// simulated shift falls below round+1 (paper lines 5-6).
		tPre := now()
		if curN == 0 && permPtr < n {
			round = sh.fastForward(round, permPtr)
		}
		end := sh.end(round)
		added := 0
		if end > permPtr {
			cursor.Store(int64(curN))
			front := bufs[curBuf]
			base := permPtr
			parallel.For(procs, end-permPtr, func(i int) {
				v := perm[base+i]
				//parconn:allow mixedatomic perm is a permutation, so only this iteration touches c[v]; CAS rounds are barrier-separated
				if c[v] == unvisited {
					c[v] = v //parconn:allow mixedatomic same: v is uniquely owned by this iteration
					if parents != nil {
						parents[v] = v
					}
					front[cursor.Add(1)-1] = v
				}
			})
			permPtr = end
			added = int(cursor.Load()) - curN
			curN += added
			numCenters += added
		}
		if opt.Phases != nil {
			opt.Phases.BFSPre += time.Since(tPre)
		}
		if curN == 0 {
			if permPtr >= n {
				break // all vertices visited; loop condition ends next check
			}
			// The chunk just scanned was entirely already-visited; advance
			// to the next round that yields new centers.
			continue
		}
		if opt.Rounds != nil {
			*opt.Rounds = append(*opt.Rounds, RoundStat{Round: round, Frontier: curN, NewCenters: added})
		}

		// bfsMain: single pass over the frontier's edges (paper lines 9-20).
		tMain := now()
		cur := bufs[curBuf][:curN]
		nxt := bufs[1-curBuf]
		cursor.Store(0)
		parallel.Blocks(procs, curN, frontierGrain, func(lo, hi int) {
			for fi := lo; fi < hi; fi++ {
				v := cur[fi]
				cv := c[v] //parconn:allow mixedatomic c[v] was claimed by CAS in an earlier round; the join barrier publishes it
				start := g.Offs[v]
				d := int64(g.Deg[v])
				if opt.EdgeParallel > 0 && d >= int64(opt.EdgeParallel) {
					processEdgesParallel(g, c, parents, v, cv, nxt, &cursor, procs)
					continue
				}
				var k int64
				for i := int64(0); i < d; i++ {
					w := g.Adj[start+i]
					if atomic.LoadInt32(&c[w]) == unvisited &&
						atomic.CompareAndSwapInt32(&c[w], unvisited, cv) {
						if parents != nil {
							parents[w] = v
						}
						nxt[cursor.Add(1)-1] = w
					} else if cw := atomic.LoadInt32(&c[w]); cw != cv {
						// Inter-component edge: keep it, relabeled to the
						// neighbor's component id (paper line 18).
						g.Adj[start+k] = cw
						k++
					}
				}
				g.Deg[v] = int32(k)
			}
		})
		if opt.Phases != nil {
			opt.Phases.BFSMain += time.Since(tMain)
		}
		// Count the frontier we just processed as visited (paper line 7);
		// counting at claim time instead would end the loop before the last
		// frontier's edges are classified.
		visited += curN
		curBuf = 1 - curBuf
		curN = int(cursor.Load())
		round++
		workRounds++
	}
	return Result{Labels: c, NumCenters: numCenters, Rounds: workRounds, Parents: parents}
}
