package decomp

import (
	"sync/atomic"
	"time"

	"parconn/internal/obs"
	"parconn/internal/parallel"
)

// hybridMachine is Decomp-Arb with Beamer-style direction optimization
// (§4, "Decomp-Arb-Hybrid"): when the frontier holds more than DenseFrac of
// the vertices, the round switches to a read-based pass in which every
// unvisited vertex scans its own neighbors for one on the frontier and
// adopts that neighbor's component — no atomics, early exit, cache-friendly.
//
// Unlike a plain BFS, connectivity must eventually classify every edge as
// intra- or inter-component; dense rounds skip that work, so a filterEdges
// post-pass classifies whatever the BFS did not touch. Sparse rounds mark
// the edges they already relabeled with the sign bit so filterEdges does not
// process them again (paper §4, last paragraph).
//
// The loop bodies are bound once (see Scratch); per-round state flows
// through the fields, written only by the coordinator between parallel
// sections.
type hybridMachine struct {
	procs int
	g     *WGraph

	c, frontRound, perm []int32
	front, cur, nxt     []int32
	base                int
	r32, r32next        int32
	cursor              atomic.Int64
	retries             *obs.ShardedInt64

	fnPre, fnDense, fnDenseFront, fnSparse, fnFilter func(lo, hi int)
}

//parconn:allow hotalloc machine is constructed once per Scratch and recycled across levels and runs
func newHybridMachine() *hybridMachine {
	m := &hybridMachine{retries: obs.NewShardedInt64(retryShards)}
	// bfsPre: start new BFS's from the permutation prefix whose simulated
	// shift falls below the current round (paper lines 5-6).
	m.fnPre = func(lo, hi int) {
		perm, c, frontRound, front := m.perm, m.c, m.frontRound, m.front
		base, r32 := m.base, m.r32
		cursor := &m.cursor
		for i := lo; i < hi; i++ {
			v := perm[base+i]
			// perm is a permutation, so only this iteration touches c[v];
			// CAS rounds are barrier-separated from this plain-write pass.
			if c[v] == unvisited {
				c[v] = v
				frontRound[v] = r32
				front[cursor.Add(1)-1] = v
			}
		}
	}
	// Read-based pass: every unvisited vertex looks for any neighbor on the
	// current frontier and adopts its component, exiting the scan early.
	// Edges are left unclassified for filterEdges.
	m.fnDense = func(lo, hi int) {
		g, c, frontRound, nxt := m.g, m.c, m.frontRound, m.nxt
		r32 := m.r32
		cursor := &m.cursor
		for w := lo; w < hi; w++ {
			// The dense pass is read/owner-write only (paper §4); CAS
			// rounds are barrier-separated from it.
			if c[w] != unvisited {
				continue
			}
			start := g.Offs[int32(w)]
			d := int64(g.Deg[w])
			for i := int64(0); i < d; i++ {
				u := g.Adj[start+i]
				if frontRound[u] == r32 {
					// Only w's own iteration writes c[w]; c[u] was fixed
					// before this round's fork barrier.
					c[w] = c[u]
					nxt[cursor.Add(1)-1] = int32(w)
					break
				}
			}
		}
	}
	// Stamp the dense round's new frontier with its join round.
	m.fnDenseFront = func(lo, hi int) {
		nxt, frontRound, r32next := m.nxt, m.frontRound, m.r32next
		for i := lo; i < hi; i++ {
			frontRound[nxt[i]] = r32next
		}
	}
	// Write-based pass: Decomp-Arb's single CAS pass, except that relabeled
	// inter-component edges get the sign bit set so the filterEdges pass can
	// tell them from untouched edges.
	// Lost CAS races accumulate in a block-local counter flushed once per
	// claimed block — never a Recorder call from inside the section.
	m.fnSparse = func(lo, hi int) {
		g, c, frontRound, cur, nxt := m.g, m.c, m.frontRound, m.cur, m.nxt
		r32next := m.r32next
		cursor := &m.cursor
		var casFail int64
		for fi := lo; fi < hi; fi++ {
			v := cur[fi]
			cv := c[v] //parconn:allow mixedatomic c[v] was claimed by CAS in an earlier round; the join barrier publishes it
			start := g.Offs[v]
			d := int64(g.Deg[v])
			var k int64
			for i := int64(0); i < d; i++ {
				w := g.Adj[start+i]
				if atomic.LoadInt32(&c[w]) == unvisited {
					if atomic.CompareAndSwapInt32(&c[w], unvisited, cv) {
						frontRound[w] = r32next
						nxt[cursor.Add(1)-1] = w
						continue
					}
					casFail++ // raced for w and lost to another frontier vertex
				}
				if cw := atomic.LoadInt32(&c[w]); cw != cv {
					g.Adj[start+k] = -cw - 1
					k++
				}
			}
			g.Deg[v] = int32(k)
		}
		m.retries.Add(lo/frontierGrain, casFail)
	}
	// filterEdges: classify every surviving edge. Vertices processed by
	// sparse rounds hold only sign-marked (already classified, relabeled)
	// entries; vertices visited during dense rounds hold their untouched
	// original lists.
	m.fnFilter = func(lo, hi int) {
		g, c := m.g, m.c
		for v := lo; v < hi; v++ {
			start := g.Offs[v]
			d := int64(g.Deg[v])
			// filterEdges runs after the last BFS join barrier; c is
			// read-only here.
			cv := c[v]
			var k int64
			for i := int64(0); i < d; i++ {
				e := g.Adj[start+i]
				if e < 0 {
					g.Adj[start+k] = -e - 1
					k++
				} else if cw := c[e]; cw != cv {
					g.Adj[start+k] = cw
					k++
				}
			}
			g.Deg[v] = int32(k)
		}
	}
	return m
}

func (m *hybridMachine) run(g *WGraph, opt Options) Result {
	n, procs := g.N, opt.Procs
	if n == 0 {
		//parconn:allow hotalloc empty-graph base case; a zero-length literal is the zerobase pointer, not a heap block
		return Result{Labels: []int32{}}
	}
	t0 := now()
	pool, ws := opt.resolve()
	m.procs, m.g = procs, g
	rec := opt.Recorder
	m.retries.Reset()

	c := ws.Int32(n)
	parallel.Fill(procs, c, unvisited)
	// frontRound[v] is the round at which v joined the frontier; the dense
	// pass tests membership with it instead of a bitmap (no per-round
	// clearing needed).
	frontRound := ws.Int32(n)
	parallel.Fill(procs, frontRound, int32(-1))
	m.c, m.frontRound = c, frontRound
	sh := newShifts(n, opt.Beta, opt.Seed, procs, ws)
	m.perm = sh.order
	var bufs [2][]int32
	bufs[0] = ws.Int32(n)
	bufs[1] = ws.Int32(n)
	curBuf, curN := 0, 0
	phInit := time.Since(t0)

	var phPre, phDense, phSparse time.Duration
	var prevRetries int64
	denseThreshold := int(opt.DenseFrac * float64(n))
	permPtr, visited, round := 0, 0, 0
	numCenters, workRounds := 0, 0
	for visited < n {
		tPre := now()
		if curN == 0 && permPtr < n {
			round = sh.fastForward(round, permPtr)
		}
		end := sh.end(round)
		added := 0
		if end > permPtr {
			m.cursor.Store(int64(curN))
			m.front = bufs[curBuf]
			m.base = permPtr
			m.r32 = int32(round)
			pool.Blocks(procs, end-permPtr, 0, m.fnPre)
			permPtr = end
			added = int(m.cursor.Load()) - curN
			curN += added
			numCenters += added
		}
		dPre := time.Since(tPre)
		phPre += dPre
		if curN == 0 {
			if permPtr >= n {
				break // all vertices visited; loop condition ends next check
			}
			// The chunk just scanned was entirely already-visited; advance
			// to the next round that yields new centers.
			continue
		}
		dense := curN > denseThreshold
		m.cur = bufs[curBuf][:curN]
		m.nxt = bufs[1-curBuf]
		m.cursor.Store(0)

		var dRound time.Duration
		if dense {
			tDense := now()
			m.r32 = int32(round)
			pool.Blocks(procs, n, 0, m.fnDense)
			newN := int(m.cursor.Load())
			m.r32next = int32(round + 1)
			pool.Blocks(procs, newN, 0, m.fnDenseFront)
			dRound = time.Since(tDense)
			phDense += dRound
		} else {
			tSparse := now()
			m.r32next = int32(round + 1)
			pool.Blocks(procs, curN, frontierGrain, m.fnSparse)
			dRound = time.Since(tSparse)
			phSparse += dRound
		}
		if rec != nil {
			sum := m.retries.Sum()
			rec.Round(obs.Round{
				Level: opt.Level, Round: round, Frontier: curN, NewCenters: added,
				Dense: dense, Duration: dPre + dRound, CASRetries: sum - prevRetries,
			})
			prevRetries = sum
		}
		// Count the frontier we just processed as visited (paper line 7);
		// counting at claim time instead would end the loop before the last
		// frontier's edges are classified.
		visited += curN
		curBuf = 1 - curBuf
		curN = int(m.cursor.Load())
		round++
		workRounds++
	}

	tFilter := now()
	pool.Blocks(procs, n, frontierGrain, m.fnFilter)
	dFilter := time.Since(tFilter)

	if rec != nil {
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseInit, Duration: phInit})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSPre, Duration: phPre})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSSparse, Duration: phSparse})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSDense, Duration: phDense})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseFilterEdges, Duration: dFilter})
	}

	// Release everything but the labels, whose ownership transfers to the
	// caller, and drop the machine's aliases so the arena's next owner of
	// these buffers is truly exclusive.
	sh.release(ws)
	ws.PutInt32(bufs[0])
	ws.PutInt32(bufs[1])
	ws.PutInt32(frontRound)
	m.g, m.c, m.frontRound, m.perm, m.front, m.cur, m.nxt = nil, nil, nil, nil, nil, nil, nil
	//parconn:allow scratchlifetime Labels ownership transfers to the caller, who releases it after RELABELUP (see the comment above)
	return Result{Labels: c, NumCenters: numCenters, Rounds: workRounds, CASRetries: m.retries.Sum()}
}
