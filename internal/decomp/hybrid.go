package decomp

import (
	"sync/atomic"
	"time"

	"parconn/internal/obs"
	"parconn/internal/parallel"
)

// hybridMachine is Decomp-Arb with Beamer-style direction optimization
// (§4, "Decomp-Arb-Hybrid"): when the frontier holds more than DenseFrac of
// the vertices, the round switches to a read-based pass in which every
// unvisited vertex scans its own neighbors for one on the frontier and
// adopts that neighbor's component — no atomics, early exit, cache-friendly.
//
// Unlike a plain BFS, connectivity must eventually classify every edge as
// intra- or inter-component; dense rounds skip that work, so a filterEdges
// post-pass classifies whatever the BFS did not touch. A sparse round
// classifies the whole list of every frontier vertex it processes, so it
// writes plain relabeled entries and stamps the vertex fullyClassified in
// frontRound; filterEdges skips such vertices entirely. (The paper's §4
// per-edge sign marks survive only for the fused dense pass, which leaves
// mixed classified/raw lists behind.)
//
// The loop bodies are bound once (see Scratch); per-round state flows
// through the fields, written only by the coordinator between parallel
// sections.

// fullyClassified is the frontRound stamp a sparse round leaves on a
// frontier vertex it has processed: the vertex's surviving entries are all
// plain relabeled component ids, so filterEdges skips it. It can never
// collide with a round number (>= 0) or the -1 "never on a frontier" fill.
const fullyClassified = int32(-2)

type hybridMachine struct {
	procs int
	g     *WGraph

	c, frontRound, perm []int32
	front, cur, nxt     []int32
	base                int
	r32, r32next        int32
	cursor              atomic.Int64
	retries             *obs.ShardedInt64
	liveOut             *obs.ShardedInt64

	fnPre, fnDense, fnDenseFront, fnSparse, fnFilter func(lo, hi int)
}

//parconn:allow hotalloc machine is constructed once per Scratch and recycled across levels and runs
func newHybridMachine() *hybridMachine {
	m := &hybridMachine{retries: obs.NewShardedInt64(retryShards),
		liveOut: obs.NewShardedInt64(retryShards)}
	// bfsPre: start new BFS's from the permutation prefix whose simulated
	// shift falls below the current round (paper lines 5-6).
	m.fnPre = func(lo, hi int) {
		perm, c, frontRound, front := m.perm, m.c, m.frontRound, m.front
		base, r32 := m.base, m.r32
		cursor := &m.cursor
		for i := lo; i < hi; i++ {
			v := perm[base+i]
			// perm is a permutation, so only this iteration touches c[v];
			// CAS rounds are barrier-separated from this plain-write pass.
			if c[v] == unvisited {
				c[v] = v
				frontRound[v] = r32
				front[cursor.Add(1)-1] = v
			}
		}
	}
	// Read-based pass with fused edge deletion: every unvisited vertex
	// looks for any neighbor on the current frontier and adopts its
	// component (early exit, as in the paper's §4); a vertex that adopts
	// then classifies its whole edge list in the same CSR pass —
	// same-component edges are deleted on the fly, known inter-component
	// edges are sign-marked like the sparse pass's, and edges to
	// still-unvisited neighbors stay raw for a later round or filterEdges.
	// On the dominant dense level-0 rounds this replaces the separate
	// decompose-then-filterEdges sweeps with one fused pass.
	m.fnDense = func(lo, hi int) {
		g, c, frontRound, nxt := m.g, m.c, m.frontRound, m.nxt
		r32 := m.r32
		cursor := &m.cursor
		for w := lo; w < hi; w++ {
			// Only w's own iteration writes c[w] during the dense pass, so
			// the plain read cannot tear against the owner store below.
			if c[w] != unvisited { //parconn:allow mixedatomic owner-slot read: no other iteration writes c[w] in this section
				continue
			}
			start := g.Offs[int32(w)]
			d := int64(g.Deg[w])
			cw := unvisited
			for i := int64(0); i < d; i++ {
				u := g.Adj[start+i]
				if frontRound[u] == r32 {
					// c[u] was fixed before this round's fork barrier.
					cw = c[u] //parconn:allow mixedatomic frontier labels were published by the previous round's join barrier
					break
				}
			}
			if cw == unvisited {
				continue
			}
			// Publish the adoption atomically: concurrent fused sweeps
			// read neighbors' slots, and they must observe either
			// unvisited or the final label.
			atomic.StoreInt32(&c[w], cw)
			nxt[cursor.Add(1)-1] = int32(w)
			var k int64
			for i := int64(0); i < d; i++ {
				u := g.Adj[start+i]
				// A racy read that still sees unvisited while u adopts
				// concurrently only defers the edge to filterEdges; any
				// label it does see is u's final one, so the
				// classification is exact either way (the advisory-stats
				// argument of DESIGN.md §12 does not even apply here).
				cu := atomic.LoadInt32(&c[u])
				switch {
				case cu == unvisited:
					g.Adj[start+k] = u // unknown yet: a later round or filterEdges classifies it
					k++
				case cu != cw:
					g.Adj[start+k] = -cu - 1 // inter-component: keep, marked classified
					k++
				}
				// cu == cw: intra-component, deleted on the fly.
			}
			g.Deg[w] = int32(k)
		}
	}
	// Stamp the dense round's new frontier with its join round.
	m.fnDenseFront = func(lo, hi int) {
		nxt, frontRound, r32next := m.nxt, m.frontRound, m.r32next
		for i := lo; i < hi; i++ {
			frontRound[nxt[i]] = r32next
		}
	}
	// Write-based pass: Decomp-Arb's single CAS pass. It classifies every
	// surviving edge of the frontier vertex it processes, so it writes plain
	// relabeled entries (unmarking any a fused dense round already
	// classified) and stamps the vertex fullyClassified — filterEdges skips
	// it, which on skewed graphs removes a whole post-pass over the hub
	// lists. Lost CAS races accumulate in a block-local counter flushed once
	// per claimed block — never a Recorder call from inside the section.
	m.fnSparse = func(lo, hi int) {
		g, c, frontRound, cur, nxt := m.g, m.c, m.frontRound, m.cur, m.nxt
		r32next := m.r32next
		cursor := &m.cursor
		var casFail, kept int64
		for fi := lo; fi < hi; fi++ {
			v := cur[fi]
			cv := c[v] //parconn:allow mixedatomic c[v] was claimed by CAS in an earlier round; the join barrier publishes it
			start := g.Offs[v]
			d := int64(g.Deg[v])
			var k int64
			for i := int64(0); i < d; i++ {
				w := g.Adj[start+i]
				if w < 0 {
					// Already classified by a fused dense round (v adopted
					// there and pre-filtered its list); unmark in place.
					g.Adj[start+k] = -w - 1
					k++
					continue
				}
				if atomic.LoadInt32(&c[w]) == unvisited {
					if atomic.CompareAndSwapInt32(&c[w], unvisited, cv) {
						frontRound[w] = r32next
						nxt[cursor.Add(1)-1] = w
						continue
					}
					casFail++ // raced for w and lost to another frontier vertex
				}
				if cw := atomic.LoadInt32(&c[w]); cw != cv {
					g.Adj[start+k] = cw
					k++
				}
			}
			g.Deg[v] = int32(k)
			kept += k
			// Only v's processing round writes frontRound[v]: claims in this
			// section write slots of still-unvisited vertices, and v is not
			// one. Dense membership probes run in other, barrier-separated
			// rounds and test equality with a round number, never -2.
			frontRound[v] = fullyClassified
		}
		sh := retryShard(lo)
		m.retries.Add(sh, casFail)
		// A fullyClassified vertex's degree is final here and filterEdges
		// skips it, so its surviving edges are counted in this block sum.
		m.liveOut.Add(sh, kept)
	}
	// filterEdges: classify every surviving edge the BFS did not. Vertices
	// stamped fullyClassified (processed by a sparse round) are skipped —
	// their lists already hold plain relabeled entries and were counted at
	// processing time. The rest hold raw original lists (claimed during a
	// round but never push-processed) or the mixed marked/raw lists a fused
	// dense adoption leaves behind.
	m.fnFilter = func(lo, hi int) {
		g, c, frontRound := m.g, m.c, m.frontRound
		var kept int64
		for v := lo; v < hi; v++ {
			if frontRound[v] == fullyClassified {
				continue
			}
			start := g.Offs[v]
			d := int64(g.Deg[v])
			// filterEdges runs after the last BFS join barrier; c is
			// read-only here.
			cv := c[v]
			var k int64
			for i := int64(0); i < d; i++ {
				e := g.Adj[start+i]
				if e < 0 {
					g.Adj[start+k] = -e - 1
					k++
				} else if cw := c[e]; cw != cv {
					g.Adj[start+k] = cw
					k++
				}
			}
			g.Deg[v] = int32(k)
			kept += k
		}
		// Every vertex's degree is finalized exactly once — here, or in the
		// sparse round that stamped it fullyClassified — and counted into
		// liveOut by whichever pass did it, so the sums stay exact.
		m.liveOut.Add(retryShard(lo), kept)
	}
	return m
}

func (m *hybridMachine) run(g *WGraph, opt Options) Result {
	n, procs := g.N, opt.Procs
	if n == 0 {
		//parconn:allow hotalloc empty-graph base case; a zero-length literal is the zerobase pointer, not a heap block
		return Result{Labels: []int32{}}
	}
	t0 := now()
	pool, ws := opt.resolve()
	tn := opt.Tuner
	// Procs is a bound; narrow it to the physical CPU count (DESIGN.md §12).
	procs = tn.Workers(procs)
	m.procs, m.g = procs, g
	// Level-entry edge count (Offs is the frozen CSR layout). Per-round edge
	// masses for the tuner are estimated as frontier × average degree: exact
	// tracking (summing claimed vertices' degrees) was measured to cost more
	// than it buys — one extra random Deg load per claimed vertex, a cache
	// miss each — and the grain decision only needs the magnitude.
	liveEdges := g.Offs[n]
	avgDeg := liveEdges / int64(n)
	if avgDeg < 1 {
		avgDeg = 1
	}
	rec := opt.Recorder
	m.retries.Reset()
	m.liveOut.Reset()

	c := ws.Int32(n)
	parallel.Fill(procs, c, unvisited)
	// frontRound[v] is the round at which v joined the frontier; the dense
	// pass tests membership with it instead of a bitmap (no per-round
	// clearing needed).
	frontRound := ws.Int32(n)
	parallel.Fill(procs, frontRound, int32(-1))
	m.c, m.frontRound = c, frontRound
	sh := newShifts(n, opt.Beta, opt.Seed, procs, ws)
	m.perm = sh.order
	var bufs [2][]int32
	bufs[0] = ws.Int32(n)
	bufs[1] = ws.Int32(n)
	curBuf, curN := 0, 0
	phInit := time.Since(t0)

	var phPre, phDense, phSparse time.Duration
	var prevRetries, retryDelta int64
	// explored estimates the edge mass of frontiers already processed, so
	// liveEdges-explored bounds the edges a dense pass could still touch.
	var explored int64
	denseThreshold := int(opt.DenseFrac * float64(n))
	permPtr, visited, round := 0, 0, 0
	numCenters, workRounds := 0, 0
	for visited < n {
		tPre := now()
		if curN == 0 && permPtr < n {
			round = sh.fastForward(round, permPtr)
		}
		end := sh.end(round)
		added := 0
		if end > permPtr {
			m.cursor.Store(int64(curN))
			m.front = bufs[curBuf]
			m.base = permPtr
			m.r32 = int32(round)
			pool.Blocks(procs, end-permPtr, 0, m.fnPre)
			permPtr = end
			added = int(m.cursor.Load()) - curN
			curN += added
			numCenters += added
		}
		dPre := time.Since(tPre)
		phPre += dPre
		if curN == 0 {
			if permPtr >= n {
				break // all vertices visited; loop condition ends next check
			}
			// The chunk just scanned was entirely already-visited; advance
			// to the next round that yields new centers.
			continue
		}
		// Direction choice stays the paper's vertex-fraction rule. (An
		// edge-mass rule — go dense when few frontier vertices own most
		// edges — was tried and measured slower on skewed graphs: with a
		// small frontier the read pass loses its early exit and scans
		// nearly every unexplored list to the end.)
		curEdges := int64(curN) * avgDeg
		unexplored := liveEdges - explored
		if unexplored < 0 {
			unexplored = 0
		}
		dense := curN > denseThreshold
		m.cur = bufs[curBuf][:curN]
		m.nxt = bufs[1-curBuf]
		m.cursor.Store(0)

		// Re-tune at the round boundary: estimated edge work for this round
		// (the sparse pass scans the frontier's edge mass, the dense pass
		// at worst the unexplored lists), previous round's contention, and
		// the measured wall time fed back into the cost EWMA.
		var dRound time.Duration
		var roundEdges int64
		if dense {
			tDense := now()
			m.r32 = int32(round)
			roundEdges = unexplored
			pool.Blocks(procs, n, tn.FrontierGrain(procs, n, int64(n)+roundEdges, 0), m.fnDense)
			newN := int(m.cursor.Load())
			m.r32next = int32(round + 1)
			pool.Blocks(procs, newN, 0, m.fnDenseFront)
			dRound = time.Since(tDense)
			phDense += dRound
		} else {
			tSparse := now()
			m.r32next = int32(round + 1)
			roundEdges = curEdges
			pool.Blocks(procs, curN, tn.FrontierGrain(procs, curN, roundEdges, retryDelta), m.fnSparse)
			dRound = time.Since(tSparse)
			phSparse += dRound
		}
		tn.Observe(roundEdges, dRound)
		sum := m.retries.Sum()
		retryDelta, prevRetries = sum-prevRetries, sum
		if rec != nil {
			rec.Round(obs.Round{
				Level: opt.Level, Round: round, Frontier: curN, NewCenters: added,
				Dense: dense, Duration: dPre + dRound, CASRetries: retryDelta,
			})
		}
		// Count the frontier we just processed as visited (paper line 7);
		// counting at claim time instead would end the loop before the last
		// frontier's edges are classified.
		visited += curN
		explored += curEdges
		curBuf = 1 - curBuf
		curN = int(m.cursor.Load())
		round++
		workRounds++
	}

	tFilter := now()
	pool.Blocks(procs, n, tn.FrontierGrain(procs, n, liveEdges, 0), m.fnFilter)
	dFilter := time.Since(tFilter)

	if rec != nil {
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseInit, Duration: phInit})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSPre, Duration: phPre})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSSparse, Duration: phSparse})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseBFSDense, Duration: phDense})
		rec.Phase(obs.Phase{Level: opt.Level, Name: obs.PhaseFilterEdges, Duration: dFilter})
	}

	// Release everything but the labels, whose ownership transfers to the
	// caller, and drop the machine's aliases so the arena's next owner of
	// these buffers is truly exclusive.
	sh.release(ws)
	ws.PutInt32(bufs[0])
	ws.PutInt32(bufs[1])
	ws.PutInt32(frontRound)
	m.g, m.c, m.frontRound, m.perm, m.front, m.cur, m.nxt = nil, nil, nil, nil, nil, nil, nil
	//parconn:allow scratchlifetime Labels ownership transfers to the caller, who releases it after RELABELUP (see the comment above)
	return Result{Labels: c, NumCenters: numCenters, Rounds: workRounds,
		CASRetries: m.retries.Sum(), EdgesOut: m.liveOut.Sum()}
}
