package decomp

import (
	"sync/atomic"
	"time"

	"parconn/internal/parallel"
)

// decompArbHybrid is Decomp-Arb with Beamer-style direction optimization
// (§4, "Decomp-Arb-Hybrid"): when the frontier holds more than DenseFrac of
// the vertices, the round switches to a read-based pass in which every
// unvisited vertex scans its own neighbors for one on the frontier and
// adopts that neighbor's component — no atomics, early exit, cache-friendly.
//
// Unlike a plain BFS, connectivity must eventually classify every edge as
// intra- or inter-component; dense rounds skip that work, so a filterEdges
// post-pass classifies whatever the BFS did not touch. Sparse rounds mark
// the edges they already relabeled with the sign bit so filterEdges does not
// process them again (paper §4, last paragraph).
func decompArbHybrid(g *WGraph, opt Options) Result {
	n, procs := g.N, opt.Procs
	if n == 0 {
		return Result{Labels: []int32{}}
	}
	t0 := now()
	c := make([]int32, n)
	parallel.Fill(procs, c, unvisited)
	// frontRound[v] is the round at which v joined the frontier; the dense
	// pass tests membership with it instead of a bitmap (no per-round
	// clearing needed).
	frontRound := make([]int32, n)
	parallel.Fill(procs, frontRound, int32(-1))
	sh := newShifts(n, opt.Beta, opt.Seed, procs)
	perm := sh.order
	var bufs [2][]int32
	bufs[0] = make([]int32, n)
	bufs[1] = make([]int32, n)
	curBuf, curN := 0, 0
	if opt.Phases != nil {
		opt.Phases.Init += time.Since(t0)
	}

	denseThreshold := int(opt.DenseFrac * float64(n))
	permPtr, visited, round := 0, 0, 0
	numCenters, workRounds := 0, 0
	var cursor atomic.Int64
	for visited < n {
		tPre := now()
		if curN == 0 && permPtr < n {
			round = sh.fastForward(round, permPtr)
		}
		end := sh.end(round)
		added := 0
		if end > permPtr {
			cursor.Store(int64(curN))
			front := bufs[curBuf]
			base := permPtr
			r32 := int32(round)
			parallel.For(procs, end-permPtr, func(i int) {
				v := perm[base+i]
				//parconn:allow mixedatomic perm is a permutation, so only this iteration touches c[v]; CAS rounds are barrier-separated
				if c[v] == unvisited {
					c[v] = v //parconn:allow mixedatomic same: v is uniquely owned by this iteration
					frontRound[v] = r32
					front[cursor.Add(1)-1] = v
				}
			})
			permPtr = end
			added = int(cursor.Load()) - curN
			curN += added
			numCenters += added
		}
		if opt.Phases != nil {
			opt.Phases.BFSPre += time.Since(tPre)
		}
		if curN == 0 {
			if permPtr >= n {
				break // all vertices visited; loop condition ends next check
			}
			// The chunk just scanned was entirely already-visited; advance
			// to the next round that yields new centers.
			continue
		}
		dense := curN > denseThreshold
		if opt.Rounds != nil {
			*opt.Rounds = append(*opt.Rounds, RoundStat{Round: round, Frontier: curN, NewCenters: added, Dense: dense})
		}
		cur := bufs[curBuf][:curN]
		nxt := bufs[1-curBuf]
		cursor.Store(0)

		if dense {
			// Read-based pass: every unvisited vertex looks for any
			// neighbor on the current frontier and adopts its component,
			// exiting the scan early. Edges are left unclassified for
			// filterEdges.
			tDense := now()
			r32 := int32(round)
			parallel.Blocks(procs, n, 0, func(lo, hi int) {
				for w := lo; w < hi; w++ {
					//parconn:allow mixedatomic dense pass is read/owner-write only (paper §4); CAS rounds are barrier-separated
					if c[w] != unvisited {
						continue
					}
					start := g.Offs[int32(w)]
					d := int64(g.Deg[w])
					for i := int64(0); i < d; i++ {
						u := g.Adj[start+i]
						if frontRound[u] == r32 {
							//parconn:allow mixedatomic only w's own iteration writes c[w]; c[u] was fixed before this round's fork barrier
							c[w] = c[u]
							nxt[cursor.Add(1)-1] = int32(w)
							break
						}
					}
				}
			})
			newN := int(cursor.Load())
			r32next := int32(round + 1)
			parallel.For(procs, newN, func(i int) { frontRound[nxt[i]] = r32next })
			if opt.Phases != nil {
				opt.Phases.BFSDense += time.Since(tDense)
			}
		} else {
			// Write-based pass: Decomp-Arb's single CAS pass, except that
			// relabeled inter-component edges get the sign bit set so the
			// filterEdges pass can tell them from untouched edges.
			tSparse := now()
			r32next := int32(round + 1)
			parallel.Blocks(procs, curN, frontierGrain, func(lo, hi int) {
				for fi := lo; fi < hi; fi++ {
					v := cur[fi]
					cv := c[v] //parconn:allow mixedatomic c[v] was claimed by CAS in an earlier round; the join barrier publishes it
					start := g.Offs[v]
					d := int64(g.Deg[v])
					var k int64
					for i := int64(0); i < d; i++ {
						w := g.Adj[start+i]
						if atomic.LoadInt32(&c[w]) == unvisited &&
							atomic.CompareAndSwapInt32(&c[w], unvisited, cv) {
							frontRound[w] = r32next
							nxt[cursor.Add(1)-1] = w
						} else if cw := atomic.LoadInt32(&c[w]); cw != cv {
							g.Adj[start+k] = -cw - 1
							k++
						}
					}
					g.Deg[v] = int32(k)
				}
			})
			if opt.Phases != nil {
				opt.Phases.BFSSparse += time.Since(tSparse)
			}
		}
		// Count the frontier we just processed as visited (paper line 7);
		// counting at claim time instead would end the loop before the last
		// frontier's edges are classified.
		visited += curN
		curBuf = 1 - curBuf
		curN = int(cursor.Load())
		round++
		workRounds++
	}

	// filterEdges: classify every surviving edge. Vertices processed by
	// sparse rounds hold only sign-marked (already classified, relabeled)
	// entries; vertices visited during dense rounds hold their untouched
	// original lists.
	tFilter := now()
	parallel.Blocks(procs, n, frontierGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			start := g.Offs[v]
			d := int64(g.Deg[v])
			cv := c[v] //parconn:allow mixedatomic filterEdges runs after the last BFS join barrier; c is read-only here
			var k int64
			for i := int64(0); i < d; i++ {
				e := g.Adj[start+i]
				if e < 0 {
					g.Adj[start+k] = -e - 1
					k++
					//parconn:allow mixedatomic same: post-barrier read-only phase
				} else if cw := c[e]; cw != cv {
					g.Adj[start+k] = cw
					k++
				}
			}
			g.Deg[v] = int32(k)
		}
	})
	if opt.Phases != nil {
		opt.Phases.FilterEdges += time.Since(tFilter)
	}
	return Result{Labels: c, NumCenters: numCenters, Rounds: workRounds}
}
