package decomp

import (
	"time"

	"parconn/internal/obs"
)

// This file is the compatibility bridge between the legacy PhaseTimes /
// RoundStat telemetry and the obs event stream. The machines emit only obs
// events; Decompose (and core.CC for the Contract bucket) compose these
// adapter sinks in front of any caller-supplied sinks, so the old fields on
// Options keep working as thin views over the stream.

// Add accumulates d into the bucket matching the obs phase name. The setup
// phase (the connectivity driver's working-graph copy) folds into Init,
// which predates it. Unknown names are dropped.
func (p *PhaseTimes) Add(name string, d time.Duration) {
	switch name {
	case obs.PhaseInit, obs.PhaseSetup:
		p.Init += d
	case obs.PhaseBFSPre:
		p.BFSPre += d
	case obs.PhaseBFSPhase1:
		p.BFSPhase1 += d
	case obs.PhaseBFSPhase2:
		p.BFSPhase2 += d
	case obs.PhaseBFSMain:
		p.BFSMain += d
	case obs.PhaseBFSSparse:
		p.BFSSparse += d
	case obs.PhaseBFSDense:
		p.BFSDense += d
	case obs.PhaseFilterEdges:
		p.FilterEdges += d
	case obs.PhaseContract:
		p.Contract += d
	}
}

// PhaseTimesFrom rebuilds the legacy per-phase breakdown from a trace's
// Phase events.
func PhaseTimesFrom(phases []obs.Phase) PhaseTimes {
	var p PhaseTimes
	for _, e := range phases {
		p.Add(e.Name, e.Duration)
	}
	return p
}

// phasesSink accumulates Phase events into a legacy PhaseTimes.
type phasesSink struct {
	obs.Nop
	p *PhaseTimes
}

func (s *phasesSink) Phase(e obs.Phase) { s.p.Add(e.Name, e.Duration) }

// PhasesRecorder returns a Recorder that accumulates Phase events into p,
// or nil when p is nil.
func PhasesRecorder(p *PhaseTimes) obs.Recorder {
	if p == nil {
		return nil
	}
	//parconn:allow hotalloc sink is built once per Decompose call, and only when phase recording is requested
	return &phasesSink{p: p}
}

// roundsSink appends Round events to a legacy RoundStat slice.
type roundsSink struct {
	obs.Nop
	rs *[]RoundStat
}

func (s *roundsSink) Round(e obs.Round) {
	*s.rs = append(*s.rs, RoundStat{
		Round:      e.Round,
		Frontier:   e.Frontier,
		NewCenters: e.NewCenters,
		Dense:      e.Dense,
	})
}

// RoundsRecorder returns a Recorder that appends Round events to rs, or nil
// when rs is nil.
func RoundsRecorder(rs *[]RoundStat) obs.Recorder {
	if rs == nil {
		return nil
	}
	//parconn:allow hotalloc sink is built once per Decompose call, and only when round recording is requested
	return &roundsSink{rs: rs}
}
