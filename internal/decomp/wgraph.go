package decomp

import (
	"parconn/internal/graph"
	"parconn/internal/parallel"
)

// WGraph is the mutable working graph the decomposition runs on: the
// paper's V/E/D representation (§4). Offs are fixed for the lifetime of one
// decomposition call; Adj entries are overwritten in place as intra-component
// edges are deleted and inter-component targets relabeled; Deg[v] tracks how
// many live edges remain at the front of v's segment.
type WGraph struct {
	N    int
	Offs []int64 // length N+1, frozen
	Adj  []int32 // mutated in place
	Deg  []int32 // live-edge counts; Deg[v] <= Offs[v+1]-Offs[v]
}

// NewWGraph copies g into a fresh working graph.
func NewWGraph(g *graph.Graph, procs int) *WGraph {
	w := &WGraph{
		N:    g.N,
		Offs: g.Offs, // offsets are never mutated; share them
		Adj:  make([]int32, len(g.Adj)),
		Deg:  make([]int32, g.N),
	}
	parallel.Copy(procs, w.Adj, g.Adj)
	parallel.For(procs, g.N, func(v int) {
		w.Deg[v] = int32(g.Offs[v+1] - g.Offs[v])
	})
	return w
}

// LiveEdges returns the current number of live directed edges (sum of Deg).
func (w *WGraph) LiveEdges(procs int) int64 {
	return parallel.MapReduce(procs, w.N, func(v int) int64 { return int64(w.Deg[v]) })
}
