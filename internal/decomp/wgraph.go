package decomp

import (
	"parconn/internal/graph"
	"parconn/internal/parallel"
	"parconn/internal/workspace"
)

// WGraph is the mutable working graph the decomposition runs on: the
// paper's V/E/D representation (§4). Offs are fixed for the lifetime of one
// decomposition call; Adj entries are overwritten in place as intra-component
// edges are deleted and inter-component targets relabeled; Deg[v] tracks how
// many live edges remain at the front of v's segment.
type WGraph struct {
	N    int
	Offs []int64 // length N+1, frozen
	Adj  []int32 // mutated in place
	Deg  []int32 // live-edge counts; Deg[v] <= Offs[v+1]-Offs[v]
}

// NewWGraph copies g into a fresh working graph.
func NewWGraph(g *graph.Graph, procs int) *WGraph {
	w := &WGraph{N: g.N}
	w.init(g, procs, make([]int32, len(g.Adj)), make([]int32, g.N))
	return w
}

// InitFrom fills w as a working copy of g with Adj/Deg acquired from ws —
// the recycling variant of NewWGraph. Offs is shared with g (it is frozen),
// so when releasing w only Adj and Deg go back to the arena.
func (w *WGraph) InitFrom(ws *workspace.Arena, g *graph.Graph, procs int) {
	w.N = g.N
	w.init(g, procs, ws.Int32(len(g.Adj)), ws.Int32(g.N))
}

func (w *WGraph) init(g *graph.Graph, procs int, adj, deg []int32) {
	w.Offs = g.Offs // offsets are never mutated; share them
	w.Adj = adj
	w.Deg = deg
	parallel.Copy(procs, w.Adj, g.Adj)
	if parallel.Procs(procs) == 1 || g.N < parallel.DefaultGrain {
		for v := 0; v < g.N; v++ {
			w.Deg[v] = int32(g.Offs[v+1] - g.Offs[v])
		}
		return
	}
	parallel.For(procs, g.N, func(v int) {
		w.Deg[v] = int32(g.Offs[v+1] - g.Offs[v])
	})
}

// LiveEdges returns the current number of live directed edges (sum of Deg).
// CC no longer calls this per level (the decomposition machines report
// Result.EdgesOut from their classification passes instead); the remaining
// callers are cold-path consumers like the spanner and CutEdges stats.
func (w *WGraph) LiveEdges(procs int) int64 {
	if parallel.Procs(procs) == 1 || w.N < parallel.DefaultGrain {
		var total int64
		for _, d := range w.Deg {
			total += int64(d)
		}
		return total
	}
	return parallel.MapReduce(procs, w.N, func(v int) int64 { return int64(w.Deg[v]) })
}
