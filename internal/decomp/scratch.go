package decomp

import "parconn/internal/parallel"

// Scratch caches the per-variant "machines" — structs whose parallel loop
// bodies are closures bound once at construction and re-aimed at each call's
// data through machine fields. Per-round closure literals were the dominant
// steady-state allocation in the BFS loop (Go's escape analysis is
// path-insensitive: any closure handed to the scheduler heap-allocates at
// every creation, once per round per phase), so the machines hoist them to
// one-time cost.
//
// A Scratch is exclusively owned: the connectivity recursion threads one
// through all of its levels via Options.Scratch, and concurrent Decompose
// calls must each bring their own (or leave Options.Scratch nil for a
// transient one).
type Scratch struct {
	arb    *arbMachine
	hybrid *hybridMachine
	min    *minMachine
	// tuner is the fallback adaptive scheduler for callers that do not
	// thread their own through Options.Tuner; its cost EWMA then persists
	// across this Scratch's Decompose calls.
	tuner parallel.Tuner
}

func (s *Scratch) arbM() *arbMachine {
	if s.arb == nil {
		s.arb = newArbMachine()
	}
	return s.arb
}

func (s *Scratch) hybridM() *hybridMachine {
	if s.hybrid == nil {
		s.hybrid = newHybridMachine()
	}
	return s.hybrid
}

func (s *Scratch) minM() *minMachine {
	if s.min == nil {
		s.min = newMinMachine()
	}
	return s.min
}
