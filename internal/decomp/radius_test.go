package decomp

import (
	"math"
	"testing"

	"parconn/internal/graph"
)

// TestBallRadiusBound checks the decomposition's headline guarantee: every
// partition's radius (from its center, within the partition) is
// O(log n / beta) w.h.p. The BFS round count upper-bounds every radius, so
// it suffices to check Rounds <= c * (ln n / beta) with a small constant
// and additive slack.
func TestBallRadiusBound(t *testing.T) {
	type tc struct {
		name string
		g    *graph.Graph
		beta float64
	}
	cases := []tc{
		{"line-0.05", graph.Line(50000, 1), 0.05},
		{"line-0.2", graph.Line(50000, 2), 0.2},
		{"grid-0.1", graph.Grid3D(30, 3), 0.1},
		{"rmat-0.1", graph.RMat(13, graph.RMatOptions{EdgeFactor: 5, Seed: 4}), 0.1},
	}
	// The low-beta line cases dominate runtime (rounds scale with 1/beta);
	// one seed suffices for the race-detector -short lane.
	seeds := uint64(3)
	if testing.Short() {
		seeds = 1
	}
	for _, c := range cases {
		lnN := math.Log(float64(c.g.N))
		bound := int(4*lnN/c.beta) + 20
		for seed := uint64(0); seed < seeds; seed++ {
			for _, variant := range variants {
				w := NewWGraph(c.g, 0)
				res, err := Decompose(w, variant, Options{Beta: c.beta, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if res.Rounds > bound {
					t.Fatalf("%s/%v seed=%d: %d rounds exceeds 4*ln(n)/beta+20 = %d",
						c.name, variant, seed, res.Rounds, bound)
				}
			}
		}
	}
}

// TestDecompositionRefinesComponents: partitions never join vertices from
// different components, for every variant on a many-component graph.
func TestDecompositionRefinesComponents(t *testing.T) {
	g := graph.Components(
		graph.Line(500, 1), graph.Grid3D(6, 2), graph.Star(100),
		graph.RMat(8, graph.RMatOptions{EdgeFactor: 4, Seed: 3}),
	)
	ref := graph.RefCC(g)
	for _, variant := range variants {
		w := NewWGraph(g, 0)
		res, err := Decompose(w, variant, Options{Beta: 0.1, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		for v, l := range res.Labels {
			if ref[v] != ref[l] {
				t.Fatalf("%v: vertex %d grouped with center %d from another component", variant, v, l)
			}
		}
	}
}
