package baseline

import (
	"sync/atomic"

	"parconn/internal/graph"
	"parconn/internal/parallel"
)

// bfsState carries the reusable scratch of the direction-optimizing BFS so
// that hybrid-BFS-CC can run one BFS per component without reallocating or
// clearing arrays between components: frontier-membership is tested with a
// global monotonically increasing round stamp.
type bfsState struct {
	frontRound []int32 // round at which a vertex was last on a frontier
	round      int32
	bufA, bufB []int32
	// denseFrac is the frontier fraction of n above which a level switches
	// to the read-based (bottom-up) pass.
	denseFrac float64
}

func newBFSState(n int, denseFrac float64) *bfsState {
	if denseFrac <= 0 {
		denseFrac = 0.05
	}
	st := &bfsState{
		frontRound: make([]int32, n),
		bufA:       make([]int32, n),
		bufB:       make([]int32, n),
		denseFrac:  denseFrac,
	}
	for i := range st.frontRound {
		st.frontRound[i] = -1
	}
	return st
}

// run visits the connected component of src, setting labels[w] = label for
// every vertex reached (labels must hold -1 for unvisited vertices), and
// returns the number of vertices visited. It is the direction-optimizing
// BFS of Beamer et al. as used by Ligra: write-based (top-down) levels with
// CAS claiming while the frontier is sparse, read-based (bottom-up) levels
// once it is dense.
func (st *bfsState) run(g *graph.Graph, labels []int32, src, label int32, procs int) int {
	n := g.N
	//parconn:allow mixedatomic sequential seed write before any worker is forked; the Blocks fork publishes it
	labels[src] = label
	st.round++
	st.frontRound[src] = st.round
	cur := st.bufA
	cur[0] = src
	curN := 1
	nxt := st.bufB
	visited := 1
	threshold := int(st.denseFrac * float64(n))
	var cursor atomic.Int64
	for curN > 0 {
		r := st.round
		cursor.Store(0)
		if curN > threshold {
			// Bottom-up: every unvisited vertex scans for a neighbor on
			// the frontier and stops at the first hit.
			parallel.Blocks(procs, n, 0, func(lo, hi int) {
				for w := lo; w < hi; w++ {
					//parconn:allow mixedatomic bottom-up levels are read/owner-write only (Beamer); rounds are separated by fork-join barriers
					if labels[w] != -1 {
						continue
					}
					for _, u := range g.Neighbors(int32(w)) {
						if st.frontRound[u] == r {
							//parconn:allow mixedatomic only w's own iteration writes labels[w] in a bottom-up level
							labels[w] = label
							nxt[cursor.Add(1)-1] = int32(w)
							break
						}
					}
				}
			})
			newN := int(cursor.Load())
			parallel.For(procs, newN, func(i int) { st.frontRound[nxt[i]] = r + 1 })
		} else {
			// Top-down: frontier vertices claim unvisited neighbors.
			front := cur[:curN]
			parallel.Blocks(procs, curN, 256, func(lo, hi int) {
				for fi := lo; fi < hi; fi++ {
					v := front[fi]
					for _, w := range g.Neighbors(v) {
						if atomic.LoadInt32(&labels[w]) == -1 &&
							atomic.CompareAndSwapInt32(&labels[w], -1, label) {
							st.frontRound[w] = r + 1
							nxt[cursor.Add(1)-1] = w
						}
					}
				}
			})
		}
		curN = int(cursor.Load())
		visited += curN
		cur, nxt = nxt, cur
		st.round++
	}
	st.bufA, st.bufB = cur, nxt
	return visited
}

// HybridBFSCC labels components by running one direction-optimizing BFS per
// component, visiting components one at a time (the paper's hybrid-BFS-CC,
// built from Ligra's BFS). Work-efficient, but its depth is the sum of the
// component diameters — it degrades on graphs with many components and on
// high-diameter graphs, exactly as Table 2 shows.
func HybridBFSCC(g *graph.Graph, procs int) []int32 {
	labels := make([]int32, g.N)
	parallel.Fill(procs, labels, int32(-1))
	st := newBFSState(g.N, 0.05)
	for s := 0; s < g.N; s++ {
		if labels[s] == -1 {
			st.run(g, labels, int32(s), int32(s), procs)
		}
	}
	return labels
}
