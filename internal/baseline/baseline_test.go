package baseline

import (
	"testing"

	"parconn/internal/graph"
	"parconn/internal/unionfind"
)

type ccFunc func(*graph.Graph, int) []int32

func algorithms() map[string]ccFunc {
	return map[string]ccFunc{
		"serial-SF":          func(g *graph.Graph, _ int) []int32 { return SerialSF(g) },
		"parallel-SF-PBBS":   ParallelSFPBBS,
		"parallel-SF-PRM":    ParallelSFPRM,
		"hybrid-BFS-CC":      HybridBFSCC,
		"multistep-CC":       MultistepCC,
		"labelprop-CC":       LabelPropCC,
		"sv-CC":              ShiloachVishkinCC,
		"randmate-CC":        func(g *graph.Graph, procs int) []int32 { return RandomMateCC(g, procs, 7) },
		"parallel-SF-verify": ParallelSFVerify,
	}
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"random":     graph.Random(3000, 5, 1),
		"rmat":       graph.RMat(11, graph.RMatOptions{EdgeFactor: 5, Seed: 2}),
		"grid3d":     graph.Grid3D(9, 3),
		"line":       graph.Line(3000, 4),
		"star":       graph.Star(500),
		"isolated":   graph.FromEdges(40, nil, graph.BuildOptions{}),
		"empty":      graph.FromEdges(0, nil, graph.BuildOptions{}),
		"single":     graph.FromEdges(1, nil, graph.BuildOptions{}),
		"many-comps": graph.Components(graph.Line(300, 5), graph.Grid3D(5, 6), graph.Star(40), graph.FromEdges(25, nil, graph.BuildOptions{}), graph.Random(200, 3, 9)),
		"dense":      graph.RMat(8, graph.RMatOptions{EdgeFactor: 40, Seed: 7}),
	}
}

func checkLabels(t *testing.T, name, alg string, g *graph.Graph, labels []int32) {
	t.Helper()
	if len(labels) != g.N {
		t.Fatalf("%s/%s: labels length %d != n %d", name, alg, len(labels), g.N)
	}
	for v, l := range labels {
		if l < 0 || int(l) >= g.N {
			t.Fatalf("%s/%s: labels[%d]=%d out of range", name, alg, v, l)
		}
		if labels[l] != l {
			t.Fatalf("%s/%s: label %d not canonical", name, alg, l)
		}
	}
	if ref := graph.RefCC(g); !graph.SamePartition(ref, labels) {
		t.Fatalf("%s/%s: partition mismatch (got %d comps want %d)",
			name, alg, graph.NumComponentsOf(labels), graph.NumComponentsOf(ref))
	}
}

func TestAllBaselinesAllGraphs(t *testing.T) {
	for gname, g := range testGraphs() {
		for aname, fn := range algorithms() {
			labels := fn(g, 0)
			checkLabels(t, gname, aname, g, labels)
		}
	}
}

func TestBaselinesAcrossProcs(t *testing.T) {
	g := graph.Components(graph.RMat(10, graph.RMatOptions{EdgeFactor: 5, Seed: 4}), graph.Line(500, 1))
	for _, procs := range []int{1, 2, 8} {
		for aname, fn := range algorithms() {
			labels := fn(g, procs)
			checkLabels(t, "mixed", aname, g, labels)
		}
	}
}

func TestSpanningForestProperties(t *testing.T) {
	for gname, g := range testGraphs() {
		forest := SpanningForest(g, 0)
		ref := graph.RefCC(g)
		comps := graph.NumComponentsOf(ref)
		if len(forest) != g.N-comps {
			t.Fatalf("%s: forest has %d edges, want n-#comps = %d", gname, len(forest), g.N-comps)
		}
		// The forest edges must be real edges and must reconnect exactly the
		// same partition (acyclicity follows from the edge count).
		u := unionfind.NewSerial(g.N)
		for _, e := range forest {
			found := false
			for _, w := range g.Neighbors(e.U) {
				if w == e.V {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: forest edge (%d,%d) not in graph", gname, e.U, e.V)
			}
			if !u.Union(e.U, e.V) {
				t.Fatalf("%s: forest edge (%d,%d) creates a cycle", gname, e.U, e.V)
			}
		}
		labels := make([]int32, g.N)
		for v := range labels {
			labels[v] = u.Find(int32(v))
		}
		if !graph.SamePartition(ref, labels) {
			t.Fatalf("%s: forest does not span the components", gname)
		}
	}
}

func TestHybridBFSVisitsEveryComponent(t *testing.T) {
	// 100 tiny components force 100 sequential BFS invocations.
	parts := make([]*graph.Graph, 100)
	for i := range parts {
		parts[i] = graph.Line(5, uint64(i))
	}
	g := graph.Components(parts...)
	labels := HybridBFSCC(g, 0)
	checkLabels(t, "100comps", "hybrid-BFS-CC", g, labels)
	if got := graph.NumComponentsOf(labels); got != 100 {
		t.Fatalf("components=%d want 100", got)
	}
}

func TestMultistepPicksGiantComponent(t *testing.T) {
	// One giant component plus residue; the BFS seed must land in the giant
	// one (max degree) and label prop must finish the rest.
	g := graph.Components(graph.RMat(10, graph.RMatOptions{EdgeFactor: 8, Seed: 1}), graph.Line(50, 2), graph.Star(20))
	labels := MultistepCC(g, 0)
	checkLabels(t, "giant+residue", "multistep-CC", g, labels)
}

func TestLabelPropConvergesToMin(t *testing.T) {
	g := graph.Line(100, 3)
	labels := LabelPropCC(g, 0)
	// Pure label propagation converges to the minimum vertex id per
	// component.
	min := int32(0)
	for v := 1; v < g.N; v++ {
		if labels[v] != labels[0] {
			t.Fatalf("line not single-labeled")
		}
	}
	for _, l := range labels {
		if l < min {
			t.Fatal("label below minimum id")
		}
	}
	if labels[0] != 0 && graph.NumComponentsOf(labels) == 1 {
		// the component contains vertex 0, so its min id is 0
		t.Fatalf("converged label %d, want 0", labels[0])
	}
}

func TestSVWorstCaseLine(t *testing.T) {
	// A long path is SV's slow case (many pointer-jumping rounds) but must
	// stay correct.
	g := graph.Line(10000, 9)
	labels := ShiloachVishkinCC(g, 0)
	checkLabels(t, "line10k", "sv-CC", g, labels)
}

func BenchmarkBaselinesRandom(b *testing.B) {
	g := graph.Random(100000, 5, 1)
	for name, fn := range algorithms() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn(g, 0)
			}
		})
	}
}

func TestSampledSFAllGraphs(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, k := range []int{1, 2, 8} {
			labels := SampledSF(g, 0, k)
			checkLabels(t, gname, "sampled-SF", g, labels)
		}
	}
}

func TestSampledSFAdversarial(t *testing.T) {
	// A graph whose giant-component guess is wrong-ish: many equal-size
	// components; sampling must not corrupt correctness.
	parts := make([]*graph.Graph, 20)
	for i := range parts {
		parts[i] = graph.Random(200, 4, uint64(i))
	}
	g := graph.Components(parts...)
	labels := SampledSF(g, 0, 2)
	checkLabels(t, "20xrandom", "sampled-SF", g, labels)
}

func TestLDDSampledAllGraphs(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, beta := range []float64{0.05, 0.2, 0.5} {
			labels, err := LDDSampledCC(g, 0, beta, 11)
			if err != nil {
				t.Fatalf("%s/beta=%v: %v", gname, beta, err)
			}
			checkLabels(t, gname, "ldd-uf-CC", g, labels)
		}
	}
}
