package baseline

import (
	"sync/atomic"

	"parconn/internal/graph"
	"parconn/internal/parallel"
)

// MultistepCC is the algorithm of Slota, Rajamanickam, Madduri (IPDPS'14)
// as described in the paper's §5: a direction-optimizing BFS computes the
// component of a highest-degree vertex (on most inputs, the giant
// component), then label propagation finishes the remaining vertices. In
// the worst case the label propagation is quadratic work and linear depth.
func MultistepCC(g *graph.Graph, procs int) []int32 {
	n := g.N
	labels := make([]int32, n)
	parallel.Fill(procs, labels, int32(-1))
	if n == 0 {
		return labels
	}
	// Seed the BFS from a maximum-degree vertex: the cheapest reliable
	// guess at the giant component.
	seed := int32(0)
	for v := 1; v < n; v++ {
		if g.Degree(int32(v)) > g.Degree(seed) {
			seed = int32(v)
		}
	}
	st := newBFSState(n, 0.05)
	st.run(g, labels, seed, seed, procs)

	// Remaining vertices: label propagation restricted to the residue (no
	// vertex in the residue can be adjacent to the BFS'd component, or the
	// BFS would have claimed it).
	active := parallel.PackIndex(procs, n, func(v int) bool { return labels[v] == -1 })
	parallel.For(procs, len(active), func(i int) { labels[active[i]] = active[i] })
	labelProp(g, labels, active, procs)
	return labels
}

// LabelPropCC is pure label propagation over the whole graph — the
// connectivity algorithm in the graph-processing systems the paper cites
// (Pegasus, GraphChi, Ligra's example, ...). Depth is proportional to
// component diameter and the work is not linear; it is here as the
// graph-systems baseline.
func LabelPropCC(g *graph.Graph, procs int) []int32 {
	labels := make([]int32, g.N)
	parallel.Iota(procs, labels)
	active := make([]int32, g.N)
	parallel.Iota(procs, active)
	labelProp(g, labels, active, procs)
	return labels
}

// labelProp runs push-based min-label propagation until a fixpoint: each
// round, every active vertex writeMins its label onto its neighbors;
// vertices whose label dropped become active in the next round. At the
// fixpoint every component carries its minimum vertex id.
func labelProp(g *graph.Graph, labels []int32, active []int32, procs int) {
	n := g.N
	if len(active) == 0 {
		return
	}
	nxt := make([]int32, n)
	stamp := make([]int32, n) // round at which a vertex was last activated
	parallel.Fill(procs, stamp, int32(-1))
	var cursor atomic.Int64
	for round := int32(0); len(active) > 0; round++ {
		cursor.Store(0)
		parallel.Blocks(procs, len(active), 256, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				lv := atomic.LoadInt32(&labels[v])
				for _, w := range g.Neighbors(v) {
					if writeMin32(&labels[w], lv) {
						// w's label dropped: schedule it, once per round.
						if atomic.LoadInt32(&stamp[w]) != round &&
							atomic.SwapInt32(&stamp[w], round) != round {
							nxt[cursor.Add(1)-1] = w
						}
					}
				}
			}
		})
		k := int(cursor.Load())
		active = active[:0]
		if cap(active) < k {
			active = make([]int32, 0, k)
		}
		active = append(active, nxt[:k]...)
	}
}
