// Package baseline implements the comparison connectivity algorithms from
// the paper's evaluation (§5):
//
//	serial-SF          sequential spanning-forest connectivity via union-find
//	parallel-SF-PBBS   CAS-based concurrent union-find spanning forest
//	                   (stand-in for the PBBS implementation; see DESIGN.md)
//	parallel-SF-PRM    lock-based spanning forest in the style of Patwary,
//	                   Refsnes, Manne (IPDPS'12)
//	hybrid-BFS-CC      direction-optimizing BFS (Beamer et al.) run on each
//	                   component one-by-one, as in Ligra
//	multistep-CC       Slota, Rajamanickam, Madduri (IPDPS'14): one BFS for
//	                   the (presumed) largest component, then label
//	                   propagation for the rest
//	labelprop-CC       pure label propagation, the algorithm in most graph
//	                   processing systems the paper cites
//	sv-CC              Shiloach-Vishkin hooking + pointer jumping, the
//	                   classic O(m log n) PRAM algorithm (related work)
//
// None of these are linear-work AND polylogarithmic-depth — that gap is the
// paper's motivation. All return labelings in the library's canonical form:
// labels[v] is a vertex id in v's component with labels[labels[v]] ==
// labels[v].
package baseline

import (
	"sync/atomic"

	"parconn/internal/graph"
	"parconn/internal/parallel"
	"parconn/internal/unionfind"
)

// SerialSF is the paper's sequential baseline: a spanning-forest
// connectivity using union-find with union by rank and path halving,
// followed by the root-finding pass the paper includes in its timings.
func SerialSF(g *graph.Graph) []int32 {
	u := unionfind.NewSerial(g.N)
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(int32(v)) {
			if w > int32(v) { // each undirected edge once
				u.Union(int32(v), w)
			}
		}
	}
	labels := make([]int32, g.N)
	for v := range labels {
		labels[v] = u.Find(int32(v))
	}
	return labels
}

// ParallelSFPBBS is the CAS-based concurrent spanning-forest connectivity
// standing in for the PBBS implementation.
func ParallelSFPBBS(g *graph.Graph, procs int) []int32 {
	u := unionfind.NewConcurrent(g.N)
	unionAllEdges(g, procs, u.Union)
	return findAll(g.N, procs, u.Find)
}

// ParallelSFPRM is the lock-based concurrent spanning-forest connectivity
// in the style of Patwary, Refsnes, Manne.
func ParallelSFPRM(g *graph.Graph, procs int) []int32 {
	u := unionfind.NewLocked(g.N)
	unionAllEdges(g, procs, u.Union)
	return findAll(g.N, procs, u.Find)
}

func unionAllEdges(g *graph.Graph, procs int, union func(int32, int32) bool) {
	parallel.Blocks(procs, g.N, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			for _, w := range g.Neighbors(int32(v)) {
				if w > int32(v) {
					union(int32(v), w)
				}
			}
		}
	})
}

func findAll(n, procs int, find func(int32) int32) []int32 {
	labels := make([]int32, n)
	parallel.For(procs, n, func(v int) { labels[v] = find(int32(v)) })
	return labels
}

// SpanningForest returns the edges of a spanning forest of g, computed with
// the concurrent union-find (one edge per successful union). The forest has
// exactly n - #components edges.
func SpanningForest(g *graph.Graph, procs int) []graph.Edge {
	u := unionfind.NewConcurrent(g.N)
	procs = parallel.Procs(procs)
	bufs := make([][]graph.Edge, procs)
	parallel.WorkerBlocks(procs, g.N, func(worker, lo, hi int) {
		var local []graph.Edge
		for v := lo; v < hi; v++ {
			for _, w := range g.Neighbors(int32(v)) {
				if w > int32(v) && u.Union(int32(v), w) {
					local = append(local, graph.Edge{U: int32(v), V: w})
				}
			}
		}
		bufs[worker] = local
	})
	return parallel.ConcatInto(procs, bufs)
}

// writeMin32 atomically lowers *loc to val if val is smaller, reporting
// whether it changed *loc.
func writeMin32(loc *int32, val int32) bool {
	for {
		cur := atomic.LoadInt32(loc)
		if val >= cur {
			return false
		}
		if atomic.CompareAndSwapInt32(loc, cur, val) {
			return true
		}
	}
}
