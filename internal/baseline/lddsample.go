package baseline

import (
	"parconn/internal/decomp"
	"parconn/internal/graph"
	"parconn/internal/parallel"
	"parconn/internal/unionfind"
)

// LDDSampledCC combines one round of the paper's low-diameter decomposition
// with a union-find finish, instead of recursing on the contracted graph:
// the decomposition clusters the graph and leaves exactly the
// inter-cluster edges behind (2*beta*m expected), and a concurrent
// union-find merges clusters across those — no contraction, relabeling, or
// recursion. This is the "LDD sampling + finish" point in the design space
// that the ConnectIt framework (by the paper's authors' group) later showed
// to be among the fastest practical schemes; it inherits the
// decomposition's linear-work sampling phase while the finish touches only
// the cut.
func LDDSampledCC(g *graph.Graph, procs int, beta float64, seed uint64) ([]int32, error) {
	if beta == 0 {
		beta = 0.2
	}
	w := decomp.NewWGraph(g, procs)
	res, err := decomp.Decompose(w, decomp.Arb, decomp.Options{Beta: beta, Seed: seed, Procs: procs})
	if err != nil {
		return nil, err
	}
	clusters := res.Labels
	u := unionfind.NewConcurrent(g.N)
	// Merge every vertex into its cluster...
	parallel.Blocks(procs, g.N, 512, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if c := clusters[v]; c != int32(v) {
				u.Union(int32(v), c)
			}
		}
	})
	// ...then merge clusters across the surviving inter-cluster edges
	// (targets were relabeled to cluster centers by the decomposition).
	parallel.Blocks(procs, g.N, 512, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := w.Offs[v]
			for i := int64(0); i < int64(w.Deg[v]); i++ {
				u.Union(int32(v), w.Adj[base+i])
			}
		}
	})
	return findAll(g.N, procs, u.Find), nil
}
