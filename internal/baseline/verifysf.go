package baseline

import (
	"sync/atomic"

	"parconn/internal/graph"
	"parconn/internal/parallel"
)

// ParallelSFVerify is the verification-based spanning-forest connectivity
// of Patwary, Refsnes, Manne — the paper's §5 mentions it alongside the
// lock-based variant but uses the latter because the original
// verification-based code "sometimes fails to terminate". This
// implementation keeps the verification structure (lock-free speculative
// unions, then re-verification of edges that may have been lost) but links
// strictly from higher root to lower root with plain atomic stores, which
// makes parent values monotonically decreasing: cycles are impossible and
// termination is guaranteed — every round either unites at least two trees
// or certifies that no crossing edges remain.
func ParallelSFVerify(g *graph.Graph, procs int) []int32 {
	n := g.N
	parent := make([]int32, n)
	parallel.Iota(procs, parent)
	find := func(x int32) int32 {
		for {
			p := atomic.LoadInt32(&parent[x])
			if p == x {
				return x
			}
			gp := atomic.LoadInt32(&parent[p])
			if gp != p {
				atomic.CompareAndSwapInt32(&parent[x], p, gp)
			}
			x = p
		}
	}
	// The work list holds the directed edges still possibly crossing trees,
	// packed as (u<<32 | w). Rounds: speculative union pass (races may lose
	// some links), then a verification pass keeps only the edges whose
	// endpoints still differ.
	work := make([]uint64, 0, g.NumDirected()/2)
	for u := 0; u < g.N; u++ {
		for _, w := range g.Neighbors(int32(u)) {
			if w > int32(u) {
				work = append(work, uint64(uint32(u))<<32|uint64(uint32(w)))
			}
		}
	}
	for len(work) > 0 {
		// Speculative pass: plain store of the link. Concurrent stores to
		// the same root can overwrite each other (that is the "lost
		// update" the verification pass repairs), but because every store
		// writes a strictly smaller value into a root slot, the parent
		// forest stays acyclic and find() always terminates.
		parallel.Blocks(procs, len(work), 512, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				u := int32(work[i] >> 32)
				w := int32(uint32(work[i]))
				ru, rw := find(u), find(w)
				if ru == rw {
					continue
				}
				if ru < rw {
					ru, rw = rw, ru
				}
				// Re-check ru is still a root, then link high under low.
				if atomic.LoadInt32(&parent[ru]) == ru {
					atomic.StoreInt32(&parent[ru], rw)
				}
			}
		})
		// Verification pass: drop edges whose endpoints merged; whatever
		// survives is retried. Progress argument: consider the minimum
		// surviving edge's two roots; some store to the higher root
		// happened (plain stores always land), and stores only write
		// strictly smaller roots, so the total root count drops every
		// round in which work is non-empty.
		work = parallel.Pack(procs, work, func(i int) bool {
			u := int32(work[i] >> 32)
			w := int32(uint32(work[i]))
			return find(u) != find(w)
		})
	}
	return findAll(n, procs, find)
}
