package baseline

import (
	"sync/atomic"

	"parconn/internal/graph"
	"parconn/internal/parallel"
	"parconn/internal/prand"
)

// RandomMateCC is the random-mate contraction algorithm (Reif 1985;
// Phillips 1989), the other classic super-linear-work family the paper's
// introduction contrasts against: each round every current root flips a
// coin; tails hook onto adjacent heads, eliminating a constant fraction of
// the roots in expectation, so O(log n) rounds w.h.p. — but every round
// rescans all m edges, for O(m log n) expected work.
func RandomMateCC(g *graph.Graph, procs int, seed uint64) []int32 {
	n := g.N
	p := make([]int32, n)
	parallel.Iota(procs, p)
	if n == 0 {
		return p
	}
	var hooked atomic.Bool
	for round := uint64(1); ; round++ {
		// coin(v): true = head. Derived from (seed, round, root id) so the
		// run is reproducible and roots flip independently each round.
		coin := func(v int32) bool {
			return prand.Hash64(seed^round<<32^uint64(uint32(v)))&1 == 0
		}
		hooked.Store(false)
		// Hook: tails link onto adjacent heads. p is flat at the top of
		// each round, so p[v] is v's root; heads never move this round, so
		// a single CAS per tail-root suffices and no chains can form.
		parallel.Blocks(procs, n, 256, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				rv := atomic.LoadInt32(&p[v])
				if coin(rv) { // head roots do not hook
					continue
				}
				for _, w := range g.Neighbors(int32(v)) {
					rw := atomic.LoadInt32(&p[w])
					if rw != rv && coin(rw) {
						if atomic.CompareAndSwapInt32(&p[rv], rv, rw) {
							hooked.Store(true)
						}
						break // rv is no longer a root either way
					}
				}
			}
		})
		if !hooked.Load() {
			// No tail found a head neighbor. Either all components are
			// fully contracted (every edge internal), or this round's coins
			// were unlucky; distinguish by scanning for a crossing edge.
			if !anyCrossingEdge(g, p, procs) {
				break
			}
			continue
		}
		// Flatten: pointer-jump until every vertex points at its root.
		for {
			var jumped atomic.Bool
			parallel.Blocks(procs, n, 0, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					pv := atomic.LoadInt32(&p[v])
					gp := atomic.LoadInt32(&p[pv])
					if gp != pv {
						atomic.StoreInt32(&p[v], gp)
						jumped.Store(true)
					}
				}
			})
			if !jumped.Load() {
				break
			}
		}
	}
	// Canonicalize: roots are arbitrary vertices; relabel every component
	// to its root id (already true — p is flat and constant per component).
	return p
}

// anyCrossingEdge reports whether some edge joins two different trees.
func anyCrossingEdge(g *graph.Graph, p []int32, procs int) bool {
	var found atomic.Bool
	parallel.Blocks(procs, g.N, 1024, func(lo, hi int) {
		if found.Load() {
			return
		}
		for v := lo; v < hi; v++ {
			pv := p[v]
			for _, w := range g.Neighbors(int32(v)) {
				if p[w] != pv {
					found.Store(true)
					return
				}
			}
		}
	})
	return found.Load()
}
