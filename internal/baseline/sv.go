package baseline

import (
	"sync/atomic"

	"parconn/internal/graph"
	"parconn/internal/parallel"
)

// ShiloachVishkinCC is the classic PRAM connectivity algorithm (Shiloach &
// Vishkin 1982) in its practical min-hooking form: alternate (1) hooking —
// every edge tries to lower the parent of its endpoint's root to the other
// endpoint's parent with a writeMin — and (2) pointer jumping until the
// parent forest is flat. The number of trees at least halves per round, so
// there are O(log n) rounds, but every round touches all m edges: O(m log n)
// work — the super-linear bound the paper's introduction contrasts against.
func ShiloachVishkinCC(g *graph.Graph, procs int) []int32 {
	n := g.N
	p := make([]int32, n)
	parallel.Iota(procs, p)
	if n == 0 {
		return p
	}
	var changed atomic.Bool
	for {
		changed.Store(false)
		// Hook: for every directed edge (v,w), try to lower the parent of
		// v's parent to w's parent. Monotone writeMin cannot create cycles
		// (values strictly decrease), and hooking through p[v] rather than
		// the true root is safe — pointer jumping repairs any chains.
		parallel.Blocks(procs, n, 256, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				pv := atomic.LoadInt32(&p[v])
				for _, w := range g.Neighbors(int32(v)) {
					pw := atomic.LoadInt32(&p[w])
					if pw < pv {
						if writeMin32(&p[pv], pw) {
							changed.Store(true)
						}
					}
				}
			}
		})
		// Shortcut: pointer-jump until the forest is flat.
		for {
			var jumped atomic.Bool
			parallel.Blocks(procs, n, 0, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					pv := atomic.LoadInt32(&p[v])
					gp := atomic.LoadInt32(&p[pv])
					if gp != pv {
						atomic.StoreInt32(&p[v], gp)
						jumped.Store(true)
					}
				}
			})
			if !jumped.Load() {
				break
			}
		}
		if !changed.Load() {
			break
		}
	}
	return p
}
