package baseline

import (
	"parconn/internal/graph"
	"parconn/internal/parallel"
	"parconn/internal/unionfind"
)

// SampledSF is a two-phase sampling accelerator over the CAS union-find
// spanning forest, in the spirit of the sampling-based work-efficient
// algorithms the paper cites (Gazit; Halperin-Zwick) and of the later
// ConnectIt framework (Dhulipala et al.): most real graphs have a giant
// component, so
//
//  1. union a small sample of edges (the first k out-edges of every
//     vertex), find the most frequent root — w.h.p. the giant component —
//  2. then process only the edges not already internal to it.
//
// Phase 2 skips the vast majority of edges on giant-component graphs while
// remaining exactly correct on adversarial ones (every edge is either
// sampled, skipped-as-internal, or processed).
func SampledSF(g *graph.Graph, procs, sampleK int) []int32 {
	n := g.N
	if sampleK < 1 {
		sampleK = 2
	}
	u := unionfind.NewConcurrent(n)
	// Phase 1: sample the first sampleK out-edges per vertex.
	parallel.Blocks(procs, n, 512, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nbrs := g.Neighbors(int32(v))
			if len(nbrs) > sampleK {
				nbrs = nbrs[:sampleK]
			}
			for _, w := range nbrs {
				u.Union(int32(v), w)
			}
		}
	})
	// Identify the plurality root by counting a fixed-size random probe
	// (exact counting would cost O(n); a 1024-vertex probe finds a
	// component holding >= a few percent of vertices w.h.p.).
	probe := 1024
	if probe > n {
		probe = n
	}
	counts := make(map[int32]int, probe)
	step := 1
	if n > probe {
		step = n / probe
	}
	giant, best := int32(-1), 0
	for v := 0; v < n; v += step {
		r := u.Find(int32(v))
		counts[r]++
		if counts[r] > best {
			giant, best = r, counts[r]
		}
	}
	// Phase 2: process the remaining edges, skipping vertices already in
	// the giant component (their sampled edges either stayed internal or
	// will be seen from the other endpoint if it is outside).
	parallel.Blocks(procs, n, 512, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nbrs := g.Neighbors(int32(v))
			if len(nbrs) <= sampleK {
				continue // fully covered by the sample
			}
			if u.Find(int32(v)) == giant {
				// Skip iff v is already in the giant component AND all of
				// v's remaining neighbors can still reach it through their
				// own scans — which requires the symmetric edge, and this
				// library stores both directions, so skipping here is safe:
				// an outside neighbor w scans (w, v) itself.
				continue
			}
			for _, w := range nbrs[sampleK:] {
				u.Union(int32(v), w)
			}
		}
	})
	return findAll(n, procs, u.Find)
}
