package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// AppendRecord appends one JSONL record for (kind, event) to dst and returns
// the extended slice. The record is the event's JSON object with an "ev"
// kind tag spliced in as the first field, terminated by a newline:
//
//	{"ev":"round","level":0,"round":3,...}
func AppendRecord(dst []byte, kind string, event any) ([]byte, error) {
	body, err := json.Marshal(event)
	if err != nil {
		return dst, err
	}
	if len(body) < 2 || body[0] != '{' {
		return dst, fmt.Errorf("obs: event %T marshals to non-object %q", event, body)
	}
	dst = append(dst, `{"ev":`...)
	dst = append(dst, '"')
	dst = append(dst, kind...)
	dst = append(dst, '"')
	if body[1] != '}' { // non-empty object: splice the remaining fields
		dst = append(dst, ',')
	}
	dst = append(dst, body[1:]...)
	dst = append(dst, '\n')
	return dst, nil
}

// JSONLWriter is a Recorder that streams events to w as JSON lines. The
// first event is preceded by a "meta" header record carrying the capture
// environment (see Meta), so every trace file identifies where it was
// recorded. Errors are sticky: the first write failure is kept, subsequent
// events are dropped, and Flush reports it. Safe for use by concurrent runs.
type JSONLWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	buf    []byte
	count  int64
	err    error
	tool   string
	headed bool
}

// NewJSONLWriter returns a JSONLWriter streaming to w. Call Flush before
// closing the underlying writer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriter(w)}
}

// SetTool names the writing program in the trace header (e.g.
// "cmd/connect"). It has no effect once the header is out.
func (j *JSONLWriter) SetTool(tool string) {
	j.mu.Lock()
	j.tool = tool
	j.mu.Unlock()
}

// writeLocked appends one record to the stream; callers hold j.mu.
func (j *JSONLWriter) writeLocked(kind string, event any) {
	j.buf, j.err = AppendRecord(j.buf[:0], kind, event)
	if j.err != nil {
		return
	}
	if _, err := j.bw.Write(j.buf); err != nil {
		j.err = err
	}
}

func (j *JSONLWriter) emit(kind string, event any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if !j.headed {
		j.headed = true
		j.writeLocked(KindMeta, Meta{Tool: j.tool, Env: CaptureEnv()})
		if j.err != nil {
			return
		}
	}
	j.writeLocked(kind, event)
	if j.err != nil {
		return
	}
	j.count++
}

func (j *JSONLWriter) RunStart(e RunStart)     { j.emit(KindRunStart, e) }
func (j *JSONLWriter) RunEnd(e RunEnd)         { j.emit(KindRunEnd, e) }
func (j *JSONLWriter) LevelStart(e LevelStart) { j.emit(KindLevelStart, e) }
func (j *JSONLWriter) LevelEnd(e LevelEnd)     { j.emit(KindLevelEnd, e) }
func (j *JSONLWriter) Round(e Round)           { j.emit(KindRound, e) }
func (j *JSONLWriter) Phase(e Phase)           { j.emit(KindPhase, e) }
func (j *JSONLWriter) Counter(e Counter)       { j.emit(KindCounter, e) }

// Count reports the number of records successfully written so far.
func (j *JSONLWriter) Count() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// Flush drains the buffer and returns the first error seen, if any.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// ParseJSONL decodes a stream of JSONL trace records back into typed events.
// Unknown "ev" kinds and malformed lines are errors; blank lines are skipped.
func ParseJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var tag struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(line, &tag); err != nil {
			return out, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		var (
			v   any
			err error
		)
		switch tag.Ev {
		case KindMeta:
			var e Meta
			err = json.Unmarshal(line, &e)
			v = e
		case KindRunStart:
			var e RunStart
			err = json.Unmarshal(line, &e)
			v = e
		case KindRunEnd:
			var e RunEnd
			err = json.Unmarshal(line, &e)
			v = e
		case KindLevelStart:
			var e LevelStart
			err = json.Unmarshal(line, &e)
			v = e
		case KindLevelEnd:
			var e LevelEnd
			err = json.Unmarshal(line, &e)
			v = e
		case KindRound:
			var e Round
			err = json.Unmarshal(line, &e)
			v = e
		case KindPhase:
			var e Phase
			err = json.Unmarshal(line, &e)
			v = e
		case KindCounter:
			var e Counter
			err = json.Unmarshal(line, &e)
			v = e
		case KindSpan:
			var e Span
			err = json.Unmarshal(line, &e)
			v = e
		case "":
			return out, fmt.Errorf("obs: line %d: missing \"ev\" kind tag", lineNo)
		default:
			return out, fmt.Errorf("obs: line %d: unknown event kind %q", lineNo, tag.Ev)
		}
		if err != nil {
			return out, fmt.Errorf("obs: line %d (%s): %w", lineNo, tag.Ev, err)
		}
		out = append(out, Event{Kind: tag.Ev, V: v})
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: line %d: %w", lineNo+1, err)
	}
	return out, nil
}

// Summary aggregates a validated trace for human-readable reporting.
type Summary struct {
	Runs     int
	Levels   int // LevelEnd events seen
	Rounds   int
	Phases   int
	Counters int
	Spans    int // sampled request spans (request plane, outside run bracketing rules)
	Metas    int // trace header records
	Events   int
}

// Validate checks the structural invariants of a trace event stream:
//
//   - every RunEnd closes an open RunStart, runs do not nest;
//   - level_start/level_end pairs match by level number; within a run,
//     level numbers start at 0 and each new level is at most one deeper
//     than the previous (the contraction recursion is a path, not a tree);
//   - per level, edges_out <= edges_in and cut/round/retry counts are
//     non-negative; successive levels' edges_in never increase (the
//     paper's geometric-decay direction);
//   - durations are non-negative and phase names/counters are known.
//
// It returns a Summary of what was seen alongside the first violation.
func Validate(events []Event) (Summary, error) {
	var s Summary
	s.Events = len(events)
	knownPhases := map[string]bool{
		PhaseSetup: true, PhaseInit: true, PhaseBFSPre: true,
		PhaseBFSPhase1: true, PhaseBFSPhase2: true, PhaseBFSMain: true,
		PhaseBFSSparse: true, PhaseBFSDense: true, PhaseFilterEdges: true,
		PhaseContract: true, PhaseMeasure: true,
	}
	inRun := false
	openLevel := -1 // level number of the unmatched LevelStart, -1 when none
	prevEdgesIn := int64(-1)
	maxLevel := -1
	for i, ev := range events {
		switch e := ev.V.(type) {
		case Meta:
			// Headers describe the recording, not the computation; they may
			// appear wherever streams were concatenated, but never inside a
			// run's bracketing.
			if inRun {
				return s, fmt.Errorf("event %d: meta header inside an open run", i)
			}
			s.Metas++
		case RunStart:
			if inRun {
				return s, fmt.Errorf("event %d: run_start while a run is open", i)
			}
			inRun = true
			s.Runs++
			openLevel, prevEdgesIn, maxLevel = -1, -1, -1
			if e.Vertices < 0 || e.Edges < 0 {
				return s, fmt.Errorf("event %d: run_start with negative sizes", i)
			}
		case RunEnd:
			if !inRun {
				return s, fmt.Errorf("event %d: run_end without run_start", i)
			}
			if openLevel >= 0 {
				return s, fmt.Errorf("event %d: run_end with level %d still open", i, openLevel)
			}
			if e.Duration < 0 {
				return s, fmt.Errorf("event %d: run_end with negative duration", i)
			}
			inRun = false
		case LevelStart:
			if openLevel >= 0 {
				return s, fmt.Errorf("event %d: level_start %d while level %d is open", i, e.Level, openLevel)
			}
			if e.Level < 0 || e.Level > maxLevel+1 {
				return s, fmt.Errorf("event %d: level_start %d skips levels (deepest so far %d)", i, e.Level, maxLevel)
			}
			if e.Level == 0 {
				prevEdgesIn = -1 // a fresh recursion (standalone runs may repeat level 0)
			}
			if prevEdgesIn >= 0 && e.EdgesIn > prevEdgesIn {
				return s, fmt.Errorf("event %d: level %d edges_in %d exceeds previous level's %d",
					i, e.Level, e.EdgesIn, prevEdgesIn)
			}
			prevEdgesIn = e.EdgesIn
			maxLevel = max(maxLevel, e.Level)
			openLevel = e.Level
		case LevelEnd:
			if openLevel != e.Level {
				return s, fmt.Errorf("event %d: level_end %d does not match open level %d", i, e.Level, openLevel)
			}
			if e.EdgesOut > e.EdgesIn {
				return s, fmt.Errorf("event %d: level %d edges_out %d exceeds edges_in %d",
					i, e.Level, e.EdgesOut, e.EdgesIn)
			}
			if e.EdgesCut < 0 || e.EdgesOut < 0 || e.Rounds < 0 || e.CASRetries < 0 {
				return s, fmt.Errorf("event %d: level %d has negative counts", i, e.Level)
			}
			openLevel = -1
			s.Levels++
		case Round:
			if e.Frontier < 0 || e.NewCenters < 0 || e.CASRetries < 0 || e.Duration < 0 {
				return s, fmt.Errorf("event %d: round with negative fields", i)
			}
			s.Rounds++
		case Phase:
			if !knownPhases[e.Name] {
				return s, fmt.Errorf("event %d: unknown phase %q", i, e.Name)
			}
			if e.Duration < 0 {
				return s, fmt.Errorf("event %d: phase %s with negative duration", i, e.Name)
			}
			s.Phases++
		case Counter:
			switch e.Name {
			case CounterArenaReused, CounterArenaAlloc, CounterPoolJoins:
			default:
				return s, fmt.Errorf("event %d: unknown counter %q", i, e.Name)
			}
			if e.Value < 0 {
				return s, fmt.Errorf("event %d: counter %s negative", i, e.Name)
			}
			s.Counters++
		case Span:
			// Spans come from the request plane, which runs concurrently with
			// (and independently of) the engine's run bracketing, so they may
			// appear anywhere in the stream.
			if e.Endpoint == "" {
				return s, fmt.Errorf("event %d: span without endpoint", i)
			}
			if e.Status < 100 || e.Status > 599 {
				return s, fmt.Errorf("event %d: span with status %d outside [100, 599]", i, e.Status)
			}
			if e.Duration < 0 {
				return s, fmt.Errorf("event %d: span with negative duration", i)
			}
			s.Spans++
		default:
			return s, fmt.Errorf("event %d: unknown event type %T", i, ev.V)
		}
	}
	if inRun {
		return s, fmt.Errorf("trace ends with a run still open")
	}
	if openLevel >= 0 {
		return s, fmt.Errorf("trace ends with level %d still open", openLevel)
	}
	return s, nil
}

// ValidateJSONL parses and validates a JSONL trace stream in one call.
func ValidateJSONL(r io.Reader) (Summary, error) {
	events, err := ParseJSONL(r)
	if err != nil {
		return Summary{Events: len(events)}, err
	}
	return Validate(events)
}
