package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock lets tests step the rolling clock deterministically.
type fixedClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fixedClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fixedClock) set(ns int64) {
	c.mu.Lock()
	c.ns = ns
	c.mu.Unlock()
}

func newTestRolling(window time.Duration, windows int) (*RollingHistogram, *fixedClock) {
	r := NewRollingHistogram(window, windows)
	c := &fixedClock{ns: int64(100 * window)} // start far from zero, like wall time
	r.now = c.now
	return r, c
}

func TestRollingEmpty(t *testing.T) {
	r, _ := newTestRolling(time.Second, 4)
	snap := r.Snapshot()
	if snap.Count != 0 {
		t.Fatalf("empty rolling count = %d, want 0", snap.Count)
	}
	if q := r.Quantile(0.99); q != 0 {
		t.Fatalf("empty rolling P99 = %d, want 0", q)
	}
}

func TestRollingDefaults(t *testing.T) {
	r := NewRollingHistogram(0, 0)
	if r.Window() != time.Second || r.Windows() != 60 || r.Span() != time.Minute {
		t.Fatalf("defaults = (%v, %d, %v), want (1s, 60, 1m)", r.Window(), r.Windows(), r.Span())
	}
}

func TestRollingMergesLiveWindows(t *testing.T) {
	r, c := newTestRolling(time.Second, 4)
	base := c.now()
	r.Record(100)
	c.set(base + int64(time.Second))
	r.Record(200)
	r.Record(200)
	c.set(base + int64(2*time.Second))
	r.Record(400)

	if got := r.Snapshot().Count; got != 4 {
		t.Fatalf("live count = %d, want 4 (all three windows inside span)", got)
	}
}

func TestRollingWindowExpiry(t *testing.T) {
	r, c := newTestRolling(time.Second, 4)
	base := c.now()
	r.Record(100)

	// Advance just inside the span: the sample's window is still live.
	c.set(base + int64(3*time.Second))
	if got := r.Snapshot().Count; got != 1 {
		t.Fatalf("count before expiry = %d, want 1", got)
	}

	// One more window and it ages out, even though no Record reused the slot.
	c.set(base + int64(4*time.Second))
	if got := r.Snapshot().Count; got != 0 {
		t.Fatalf("count after expiry = %d, want 0", got)
	}
}

func TestRollingSlotReuseResetsOldCounts(t *testing.T) {
	r, c := newTestRolling(time.Second, 2)
	base := c.now()
	r.Record(100)
	r.Record(100)

	// Two intervals later the same slot index comes around; its first record
	// must not inherit the expired window's two samples.
	c.set(base + int64(2*time.Second))
	r.Record(700)
	snap := r.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count after slot reuse = %d, want 1", snap.Count)
	}
	if q := snap.Quantile(0.5); q < 512 {
		t.Fatalf("median after reuse = %d, want the new sample's bucket (>= 512)", q)
	}
}

func TestRollingClockStepForward(t *testing.T) {
	r, c := newTestRolling(time.Second, 4)
	base := c.now()
	r.Record(100)

	// A large forward step lands far beyond the span: old data invisible,
	// new records work immediately.
	c.set(base + int64(time.Hour))
	if got := r.Snapshot().Count; got != 0 {
		t.Fatalf("count after forward step = %d, want 0", got)
	}
	r.Record(900)
	if got := r.Snapshot().Count; got != 1 {
		t.Fatalf("count after recording post-step = %d, want 1", got)
	}
}

func TestRollingClockStepBackward(t *testing.T) {
	r, c := newTestRolling(time.Second, 4)
	base := c.now()
	c.set(base + int64(3*time.Second))
	r.Record(100)

	// Step the clock back: records target windows older than what their slot
	// holds and are dropped rather than corrupting a newer window.
	c.set(base + int64(3*time.Second) - int64(4*time.Second))
	r.Record(999)
	c.set(base + int64(3*time.Second))
	if got := r.Snapshot().Count; got != 1 {
		t.Fatalf("count after backward step = %d, want 1 (stale record dropped)", got)
	}
}

func TestRollingSingleSampleWindows(t *testing.T) {
	r, c := newTestRolling(time.Second, 8)
	base := c.now()
	for i := 0; i < 5; i++ {
		c.set(base + int64(i)*int64(time.Second))
		r.Record(int64(1) << uint(i+4)) // 16, 32, ..., 256: one sample per window
	}
	snap := r.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if q := snap.Quantile(1.0); q < 256 {
		t.Fatalf("max quantile = %d, want >= 256", q)
	}
	if q := snap.Quantile(0.0); q > 16 {
		t.Fatalf("min quantile = %d, want <= 16 bucket bound", q)
	}
}

func TestRollingConcurrentRecordAcrossRotation(t *testing.T) {
	r, c := newTestRolling(time.Millisecond, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.Record(50)
					r.Snapshot()
				}
			}
		}()
	}
	// Drive the clock through many rotations while recorders run.
	base := c.now()
	for i := 0; i < 200; i++ {
		c.set(base + int64(i)*int64(time.Millisecond))
	}
	close(stop)
	wg.Wait()
	// No assertion on exact counts (boundary samples may be dropped by
	// design); the run must simply be race- and panic-free, and the final
	// snapshot well-formed.
	snap := r.Snapshot()
	if snap.Count < 0 || snap.Sum < 0 {
		t.Fatalf("corrupt snapshot after rotation churn: %+v", snap)
	}
}

func TestRollingQuantilesNSExposition(t *testing.T) {
	reg := New()
	r, c := newTestRolling(time.Second, 4)
	base := c.now()
	for i := 0; i < 100; i++ {
		r.Record(int64(i+1) * int64(time.Millisecond) / 10) // 0.1ms..10ms
	}
	reg.RollingQuantilesNS("roll_latency_seconds", "rolling latency", L("endpoint", "same"), r, 0.5, 0.99)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	p50 := parsed[`roll_latency_seconds{endpoint="same",quantile="0.5"}`]
	p99 := parsed[`roll_latency_seconds{endpoint="same",quantile="0.99"}`]
	if p50 <= 0 || p99 <= 0 {
		t.Fatalf("rolling quantile gauges missing or zero: p50=%v p99=%v in %v", p50, p99, parsed)
	}
	if p99 < p50 {
		t.Fatalf("p99 (%v) < p50 (%v)", p99, p50)
	}
	// After the span passes with no traffic the gauges roll back to zero.
	c.set(base + int64(time.Hour))
	b.Reset()
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err = ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v := parsed[`roll_latency_seconds{endpoint="same",quantile="0.99"}`]; v != 0 {
		t.Fatalf("idle rolling p99 = %v, want 0", v)
	}
}
