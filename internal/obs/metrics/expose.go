package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// ContentType is the Content-Type of the text exposition format served by
// Handler, including the format version.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText writes every registered family in the Prometheus text format,
// families sorted by name and series by label signature, so consecutive
// scrapes diff cleanly.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			writeSeries(bw, f.name, s)
		}
	}
	return bw.Flush()
}

// writeSeries emits the exposition lines of one series: a single sample for
// counters and gauges, the cumulative bucket expansion for histograms.
func writeSeries(w *bufio.Writer, name string, s *series) {
	switch {
	case s.counter != nil:
		writeSample(w, name, s.labels, float64(s.counter.Value()))
	case s.gauge != nil:
		writeSample(w, name, s.labels, s.gauge.Value())
	case s.fn != nil:
		writeSample(w, name, s.labels, s.fn())
	case s.hist != nil:
		snap := s.hist()
		cum := int64(0)
		for _, b := range snap.Buckets {
			cum += b.Count
			writeSample(w, name+"_bucket", joinLabels(s.labels, `le="`+formatFloat(float64(b.Hi)*s.scale)+`"`), float64(cum))
		}
		writeSample(w, name+"_bucket", joinLabels(s.labels, `le="+Inf"`), float64(snap.Count))
		writeSample(w, name+"_sum", s.labels, float64(snap.Sum)*s.scale)
		writeSample(w, name+"_count", s.labels, float64(snap.Count))
	}
}

// joinLabels appends one rendered pair to an already-rendered label string.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

func writeSample(w *bufio.Writer, name, labels string, v float64) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders a sample value: integral values without an exponent
// or trailing zeros (the common case for counters), shortest round-trip
// form otherwise.
func formatFloat(v float64) string {
	// The int64 conversion is defined only inside the int64 range; huge
	// bucket bounds (the top log2 bucket) take the float path.
	if v >= -9.2e18 && v <= 9.2e18 && v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics (any path; mount it where
// convenient).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		r.WriteText(w)
	})
}
