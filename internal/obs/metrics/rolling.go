package metrics

import (
	"sync/atomic"
	"time"

	"parconn/internal/obs"
)

// rollingSlotEmpty marks a slot that has never held a window. Real window
// indices are derived from wall-clock nanoseconds and are far above zero.
const rollingSlotEmpty = -1

// RollingHistogram is a ring of per-interval obs.Histogram windows: Record
// lands in the window covering "now", Snapshot merges the windows of the
// last Windows()*Window() span, so quantiles reflect recent traffic instead
// of process lifetime. This is what turns a latency histogram into an SLO
// signal — "P99 over the last minute", not "P99 since boot".
//
// Recording is wait-free in the steady state: the slot for the current
// window is found by index arithmetic and fed through obs.Histogram's
// atomic record path. Window rotation (the first record of a new interval
// reusing an expired slot) is a CAS whose winner resets the slot; a sample
// racing that reset can be lost, and a straggler from the previous interval
// can land in the new window. Both misplace single samples at window
// boundaries — noise at the resolution quantile estimation already has —
// and never corrupt counts within a settled window.
//
// A backwards clock step makes Record drop samples (their window is older
// than what the slot holds) until the clock catches up to the newest
// recorded window; Snapshot keeps working throughout, merging only windows
// inside [now - span, now].
type RollingHistogram struct {
	interval int64 // window length, ns
	slots    []rollingSlot
	now      func() int64 // wall clock, UnixNano; swappable for tests
}

type rollingSlot struct {
	tick atomic.Int64 // window index (unixNano / interval) the slot holds
	hist obs.Histogram
}

// NewRollingHistogram returns a rolling histogram of `windows` windows of
// `window` length each (defaults: 1s windows, 60 of them).
func NewRollingHistogram(window time.Duration, windows int) *RollingHistogram {
	if window <= 0 {
		window = time.Second
	}
	if windows <= 0 {
		windows = 60
	}
	r := &RollingHistogram{
		interval: int64(window),
		slots:    make([]rollingSlot, windows),
		now: func() int64 {
			return time.Now().UnixNano() //parconn:allow norand rolling-window clock; no algorithmic randomness
		},
	}
	for i := range r.slots {
		r.slots[i].tick.Store(rollingSlotEmpty)
	}
	return r
}

// Window returns the per-window length.
func (r *RollingHistogram) Window() time.Duration { return time.Duration(r.interval) }

// Windows returns the number of ring windows.
func (r *RollingHistogram) Windows() int { return len(r.slots) }

// Span returns the total rolling span Snapshot covers.
func (r *RollingHistogram) Span() time.Duration {
	return time.Duration(r.interval * int64(len(r.slots)))
}

// Record adds one sample to the current window.
func (r *RollingHistogram) Record(v int64) {
	tick := r.now() / r.interval
	slot := &r.slots[int(tick%int64(len(r.slots)))]
	for {
		cur := slot.tick.Load()
		if cur == tick {
			break
		}
		if cur > tick {
			// The slot already holds a newer window (backwards clock step);
			// this sample's window is gone.
			return
		}
		if slot.tick.CompareAndSwap(cur, tick) {
			// This goroutine rotated the slot: clear the expired window's
			// counts before the first sample of the new one.
			slot.hist.Reset()
			break
		}
	}
	slot.hist.Record(v)
}

// Snapshot merges every live window — those covering (now - span, now] —
// into one point-in-time histogram copy. Expired and never-used windows
// contribute nothing; an idle histogram rolls to empty after span elapses.
func (r *RollingHistogram) Snapshot() obs.HistogramSnapshot {
	cur := r.now() / r.interval
	minTick := cur - int64(len(r.slots)) + 1
	var m obs.Histogram
	for i := range r.slots {
		t := r.slots[i].tick.Load()
		if t >= minTick && t <= cur {
			m.Merge(&r.slots[i].hist)
		}
	}
	return m.Snapshot()
}

// Quantile estimates the q-quantile over the rolling span (0 when no live
// window holds samples).
func (r *RollingHistogram) Quantile(q float64) int64 {
	return r.Snapshot().Quantile(q)
}
