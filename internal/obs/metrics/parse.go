package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText reads a Prometheus text exposition back into a flat
// series-to-value map, keyed exactly as written ("name" or
// `name{label="value",...}`). Comment and blank lines are skipped; a
// malformed sample line is an error. It is the inverse this package's
// WriteText needs for self-checks, the serveload SLO scraper, and the
// metrics-smoke CI lane — not a full openmetrics parser (no timestamps, no
// exemplars).
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The series key may contain spaces inside quoted label values, so
		// split at the last space instead of the first.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return out, fmt.Errorf("metrics: line %d: no value on sample line %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:sp])
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return out, fmt.Errorf("metrics: line %d: bad value in %q: %v", lineNo, line, err)
		}
		if key == "" {
			return out, fmt.Errorf("metrics: line %d: empty series key", lineNo)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("metrics: line %d: %w", lineNo+1, err)
	}
	return out, nil
}

// Series renders the lookup key of (name, labels) as ParseText produces it,
// so scrapers can query the map without string-formatting by hand:
// Series("parconn_http_requests_total", L("endpoint", "same")).
func Series(name string, ls Labels) string {
	rendered := ls.render()
	if rendered == "" {
		return name
	}
	return name + "{" + rendered + "}"
}
