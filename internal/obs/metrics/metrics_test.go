package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"parconn/internal/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "help", nil)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("test_total", "help", nil); again != c {
		t.Fatal("re-registering the same counter series returned a different handle")
	}
	g := r.Gauge("test_gauge", "help", L("k", "v"))
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestCounterAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Counter.Add(-1) did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestRegisterTypeConflictPanics(t *testing.T) {
	r := New()
	r.Counter("dual", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as counter and gauge did not panic")
		}
	}()
	r.Gauge("dual", "", nil)
}

func TestInvalidNamePanics(t *testing.T) {
	r := New()
	for _, bad := range []string{"", "1abc", "a-b", "a b", "a{b}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := New()
	r.Counter("rt_requests_total", "requests", L("endpoint", "same")).Add(7)
	r.Counter("rt_requests_total", "requests", L("endpoint", "component")).Add(3)
	r.Gauge("rt_temperature", "temp", nil).Set(36.75)
	r.GaugeFunc("rt_fn", "fn", nil, func() float64 { return 2.5 })
	var h obs.Histogram
	h.Record(100)
	h.Record(100)
	h.Record(5000)
	r.HistogramNS("rt_latency_seconds", "latency", L("endpoint", "same"), &h)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE rt_requests_total counter",
		"# HELP rt_requests_total requests",
		`rt_requests_total{endpoint="component"} 3`,
		`rt_requests_total{endpoint="same"} 7`,
		"rt_temperature 36.75",
		"rt_fn 2.5",
		"# TYPE rt_latency_seconds histogram",
		`rt_latency_seconds_bucket{endpoint="same",le="+Inf"} 3`,
		`rt_latency_seconds_count{endpoint="same"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// component sorts before same within the family.
	if strings.Index(text, `endpoint="component"`) > strings.Index(text, `rt_requests_total{endpoint="same"}`) {
		t.Errorf("series not sorted by label signature:\n%s", text)
	}

	parsed, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		Series("rt_requests_total", L("endpoint", "same")):      7,
		Series("rt_requests_total", L("endpoint", "component")): 3,
		"rt_temperature": 36.75,
		"rt_fn":          2.5,
		`rt_latency_seconds_count{endpoint="same"}`: 3,
		`rt_latency_seconds_sum{endpoint="same"}`:   5200e-9,
	}
	for key, want := range checks {
		got, ok := parsed[key]
		if !ok {
			t.Errorf("parsed exposition missing %s", key)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := New()
	var h obs.Histogram
	for _, v := range []int64{1, 2, 2, 4, 4, 4} {
		h.Record(v)
	}
	r.HistogramFunc("cum", "", nil, 1, h.Snapshot)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Buckets [1,2) -> le=2 holds 1; [2,4) -> le=4 holds 1+2; [4,8) -> le=8
	// holds 1+2+3. Cumulative counts must be non-decreasing and end at count.
	if parsed[`cum_bucket{le="2"}`] != 1 || parsed[`cum_bucket{le="4"}`] != 3 || parsed[`cum_bucket{le="8"}`] != 6 {
		t.Errorf("cumulative buckets wrong: %v", parsed)
	}
	if parsed[`cum_bucket{le="+Inf"}`] != 6 || parsed["cum_count"] != 6 || parsed["cum_sum"] != 17 {
		t.Errorf("histogram terminals wrong: %v", parsed)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("esc_total", "", L("path", `a\b"c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\\b\"c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q missing in:\n%s", want, b.String())
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := New()
	r.Counter("h_total", "", nil).Add(5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content-type = %q, want %q", ct, ContentType)
	}
	parsed, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if parsed["h_total"] != 5 {
		t.Fatalf("h_total = %v, want 5", parsed["h_total"])
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestRegisterRuntimeSeriesPresent(t *testing.T) {
	r := New()
	RegisterRuntime(r)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"parconn_goroutines", "parconn_gomaxprocs", "parconn_heap_inuse_bytes",
		"parconn_heap_alloc_bytes", "parconn_sys_bytes", "parconn_gc_pause_seconds_total",
		"parconn_gc_cycles_total", "parconn_alloc_bytes_total",
	} {
		if _, ok := parsed[name]; !ok {
			t.Errorf("runtime metric %s missing", name)
		}
	}
	if parsed["parconn_goroutines"] < 1 {
		t.Errorf("parconn_goroutines = %v, want >= 1", parsed["parconn_goroutines"])
	}
	if parsed["parconn_heap_alloc_bytes"] <= 0 {
		t.Errorf("parconn_heap_alloc_bytes = %v, want > 0", parsed["parconn_heap_alloc_bytes"])
	}
}

func TestConcurrentRegistrationAndScrape(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("conc_total", "", L("worker", string(rune('a'+i)))).Inc()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				if err := r.WriteText(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for k, v := range parsed {
		if strings.HasPrefix(k, "conc_total{") {
			total += v
		}
	}
	if total != 800 {
		t.Fatalf("summed conc_total = %v, want 800", total)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"name_without_value",
		"name abc",
	} {
		if _, err := ParseText(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ParseText(%q) did not fail", bad)
		}
	}
	got, err := ParseText(strings.NewReader("# comment\n\nok 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["ok"] != 1 {
		t.Fatalf("ok = %v, want 1", got["ok"])
	}
}
