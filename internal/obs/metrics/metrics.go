// Package metrics is the request-plane metrics layer of the observability
// stack: a zero-dependency registry of counters, gauges, and histogram
// views with Prometheus text exposition, built for the serving path
// (internal/serve, cmd/connserve) and inherited by anything else that wants
// a /metrics endpoint (cmd/connect, cmd/bench via obshttp).
//
// Design constraints, in order:
//
//   - Recording must be wait-free. Counters and gauges are single atomics;
//     histograms reuse obs.Histogram's wait-free record path; the rolling
//     histogram's window rotation is a CAS, not a lock. A request goroutine
//     never blocks on another request's measurement.
//   - Registration is locked and therefore forbidden on hot paths: register
//     once at wiring time, hold the *Counter/*Gauge, record forever. The
//     parconnvet obsrecorder check enforces that no Registry method is
//     called from inside a parallel section.
//   - Exposition is a point-in-time read of the atomics — scrapes never
//     pause recording.
//
// The exposition format is the Prometheus text format (version 0.0.4):
// `# HELP`/`# TYPE` headers per family, one `name{labels} value` line per
// series, histogram families expanded into cumulative `_bucket{le=...}`
// plus `_sum`/`_count`. ParseText reads the same format back, which is what
// the serveload SLO scraper and the metrics-smoke CI lane build on.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"parconn/internal/obs"
)

// Family types, as printed by `# TYPE`.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// A Counter is a monotonically non-decreasing count. The zero value is
// ready; Add and Inc are wait-free and safe from any goroutine.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a value that can go up and down. The zero value is ready;
// Set is wait-free, Add is a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one name="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set. Order is preserved in exposition; two
// registrations with the same pairs in a different order are different
// series (keep call sites consistent).
type Labels []Label

// L builds a label set from alternating key, value strings:
// L("endpoint", "same", "class", "4xx").
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("metrics: L with odd argument count")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// render writes the label set in exposition syntax (no braces), with the
// extra pairs appended (used for histogram le and quantile labels).
func (ls Labels) render(extra ...Label) string {
	all := append(append(make(Labels, 0, len(ls)+len(extra)), ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the text-format escapes for label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// validName reports whether s is a legal metric name ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// validLabelKey reports whether s is a legal label name ([a-zA-Z_][a-zA-Z0-9_]*).
func validLabelKey(s string) bool {
	return validName(s) && !strings.Contains(s, ":")
}

// series is one exposable time series inside a family. Exactly one of the
// value sources is set.
type series struct {
	labels  string // rendered label pairs, "" for the bare series
	counter *Counter
	gauge   *Gauge
	fn      func() float64               // counter/gauge function source
	hist    func() obs.HistogramSnapshot // histogram source
	scale   float64                      // histogram sample unit -> exposed unit
}

// family is every series sharing one metric name, help string, and type.
type family struct {
	name, help, typ string
	series          map[string]*series // keyed by rendered labels
}

// Registry holds the metric families one process exposes. Registration
// locks; use the returned handles on hot paths. The zero value is not
// usable — construct with New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register resolves (name, labels) inside the family of the given type,
// creating family and series as needed. A name reused with a different type
// or a series registered twice with conflicting sources panics: both are
// wiring bugs, not runtime conditions.
func (r *Registry) register(name, help, typ string, ls Labels) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range ls {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q on %s", l.Key, name))
		}
	}
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, fam.typ, typ))
	}
	key := ls.render()
	s := fam.series[key]
	if s == nil {
		s = &series{labels: key}
		fam.series[key] = s
	}
	return s
}

// Counter returns the counter series (name, labels), creating it on first
// registration. Re-registering the same series returns the same *Counter.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, TypeCounter, ls)
	if s.counter == nil {
		if s.fn != nil {
			panic(fmt.Sprintf("metrics: %s{%s} already registered as a function", name, s.labels))
		}
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge series (name, labels), creating it on first
// registration. Re-registering the same series returns the same *Gauge.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, TypeGauge, ls)
	if s.gauge == nil {
		if s.fn != nil {
			panic(fmt.Sprintf("metrics: %s{%s} already registered as a function", name, s.labels))
		}
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read by calling fn at scrape
// time (runtime stats, derived quantiles). fn must be safe for concurrent
// calls and must not block.
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, TypeGauge, ls)
	if s.gauge != nil || s.fn != nil {
		panic(fmt.Sprintf("metrics: %s{%s} registered twice", name, s.labels))
	}
	s.fn = fn
}

// CounterFunc registers a counter whose value is read by calling fn at
// scrape time (process-lifetime totals owned by the runtime). fn must be
// monotonically non-decreasing, concurrency-safe, and non-blocking.
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, TypeCounter, ls)
	if s.counter != nil || s.fn != nil {
		panic(fmt.Sprintf("metrics: %s{%s} registered twice", name, s.labels))
	}
	s.fn = fn
}

// HistogramNS exposes an existing wait-free obs.Histogram of nanosecond
// samples as a Prometheus histogram in seconds. The histogram stays owned
// by the caller — recording into it is unaffected by registration.
func (r *Registry) HistogramNS(name, help string, ls Labels, h *obs.Histogram) {
	r.HistogramFunc(name, help, ls, 1e-9, h.Snapshot)
}

// HistogramFunc exposes a histogram whose snapshot is produced by fn at
// scrape time; scale converts sample units to the exposed unit (1e-9 for
// nanoseconds to seconds, 1 for dimensionless counts).
func (r *Registry) HistogramFunc(name, help string, ls Labels, scale float64, fn func() obs.HistogramSnapshot) {
	if scale <= 0 {
		panic("metrics: HistogramFunc with non-positive scale")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.register(name, help, TypeHistogram, ls)
	if s.hist != nil {
		panic(fmt.Sprintf("metrics: %s{%s} registered twice", name, s.labels))
	}
	s.hist = fn
	s.scale = scale
}

// RollingQuantilesNS exposes rolling latency quantiles of rh as gauges in
// seconds, one series per q with a quantile label appended to ls. One
// snapshot is taken per gauge read; the rolling window advances with the
// histogram's own clock.
func (r *Registry) RollingQuantilesNS(name, help string, ls Labels, rh *RollingHistogram, qs ...float64) {
	for _, q := range qs {
		q := q
		r.GaugeFunc(name, help, append(append(Labels{}, ls...), Label{Key: "quantile", Value: trimFloat(q)}),
			func() float64 { return float64(rh.Quantile(q)) * 1e-9 })
	}
}

// trimFloat formats a quantile label value ("0.99", not "0.990000").
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", f), "0"), ".")
}

// QuantileLabel renders q exactly as RollingQuantilesNS writes the quantile
// label value, so scrapers can reconstruct the series key.
func QuantileLabel(q float64) string { return trimFloat(q) }

// exposedFamily is the lock-free view exposition iterates: family metadata
// plus its series sorted by label signature. The *series values are stable
// pointers whose atomics are read outside the lock.
type exposedFamily struct {
	name, help, typ string
	series          []*series
}

// snapshotFamilies copies the family/series structure under the lock so
// exposition can read values outside it. The handles inside series are
// stable pointers; only the maps need the lock.
func (r *Registry) snapshotFamilies() []exposedFamily {
	r.mu.Lock()
	fams := make([]exposedFamily, 0, len(r.families))
	for _, f := range r.families {
		ef := exposedFamily{name: f.name, help: f.help, typ: f.typ,
			series: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			ef.series = append(ef.series, s)
		}
		sort.Slice(ef.series, func(i, j int) bool { return ef.series[i].labels < ef.series[j].labels })
		fams = append(fams, ef)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
