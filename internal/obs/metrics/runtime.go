package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memStatsTTL bounds how often a scrape re-reads runtime.MemStats: one read
// serves every memory gauge of one exposition pass (and any scrapes landing
// within the window), since ReadMemStats briefly stops the world.
const memStatsTTL = 250 * time.Millisecond

// memStatsCache shares one runtime.MemStats read across the memory-backed
// gauge functions.
type memStatsCache struct {
	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
}

func (c *memStatsCache) get() runtime.MemStats {
	now := time.Now() //parconn:allow norand memstats refresh stopwatch; no algorithmic randomness
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last.IsZero() || now.Sub(c.last) > memStatsTTL {
		runtime.ReadMemStats(&c.ms)
		c.last = now
	}
	return c.ms
}

// RegisterRuntime registers process-health metrics — scheduler, memory, and
// GC — so a /metrics scrape covers the process, not just request counters:
//
//	parconn_goroutines               current goroutine count
//	parconn_heap_inuse_bytes         bytes in in-use heap spans
//	parconn_heap_alloc_bytes         bytes of live allocated heap objects
//	parconn_sys_bytes                total bytes obtained from the OS
//	parconn_gc_pause_seconds_total   cumulative stop-the-world pause time
//	parconn_gc_cycles_total          completed GC cycles
//	parconn_alloc_bytes_total        cumulative bytes allocated on the heap
//	parconn_gomaxprocs               effective GOMAXPROCS
//
// Memory and GC gauges share one cached MemStats read (refreshed at most
// every 250ms) so one scrape stops the world at most once.
func RegisterRuntime(r *Registry) {
	cache := &memStatsCache{}
	r.GaugeFunc("parconn_goroutines", "Current number of goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("parconn_gomaxprocs", "Effective GOMAXPROCS.", nil,
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("parconn_heap_inuse_bytes", "Bytes in in-use heap spans.", nil,
		func() float64 { return float64(cache.get().HeapInuse) })
	r.GaugeFunc("parconn_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 { return float64(cache.get().HeapAlloc) })
	r.GaugeFunc("parconn_sys_bytes", "Total bytes of memory obtained from the OS.", nil,
		func() float64 { return float64(cache.get().Sys) })
	r.CounterFunc("parconn_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", nil,
		func() float64 { return float64(cache.get().PauseTotalNs) / 1e9 })
	r.CounterFunc("parconn_gc_cycles_total", "Completed GC cycles.", nil,
		func() float64 { return float64(cache.get().NumGC) })
	r.CounterFunc("parconn_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", nil,
		func() float64 { return float64(cache.get().TotalAlloc) })
}
