package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestFlightRecorderRetainsTail(t *testing.T) {
	fr := NewFlightRecorder(4)
	want := emitAll(fr) // 12 events through a 4-slot ring
	events, dropped := fr.Snapshot()
	if len(events) != 4 {
		t.Fatalf("retained %d events want 4", len(events))
	}
	if dropped != int64(len(want)-4) {
		t.Fatalf("dropped %d want %d", dropped, len(want)-4)
	}
	for i, ev := range events {
		if ev != want[len(want)-4+i] {
			t.Fatalf("event %d = %+v want %+v", i, ev, want[len(want)-4+i])
		}
	}
	if fr.Total() != int64(len(want)) {
		t.Fatalf("Total %d want %d", fr.Total(), len(want))
	}
	// The most recent event is the run_end.
	if _, ok := events[3].V.(RunEnd); !ok {
		t.Fatalf("newest event %+v is not the run_end", events[3])
	}

	fr.Reset()
	if events, dropped := fr.Snapshot(); len(events) != 0 || dropped != 0 {
		t.Fatalf("after Reset: %d events, %d dropped", len(events), dropped)
	}
}

func TestFlightRecorderUnderfilled(t *testing.T) {
	fr := NewFlightRecorder(0) // default capacity, far above one run
	want := emitAll(fr)
	events, dropped := fr.Snapshot()
	if dropped != 0 || len(events) != len(want) {
		t.Fatalf("got %d events (%d dropped) want %d (0)", len(events), dropped, len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestFlightRecorderConcurrentRuns(t *testing.T) {
	// Two runs sharing one recorder, per the sink contract; snapshots taken
	// mid-flight must stay internally consistent (no torn events).
	fr := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				emitAll(fr)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			events, _ := fr.Snapshot()
			for _, ev := range events {
				if ev.Kind == "" || ev.V == nil {
					t.Error("torn event in snapshot")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if fr.Total() != 2*50*12 {
		t.Fatalf("Total %d want %d", fr.Total(), 2*50*12)
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := NewProgress()
	if s := p.Snapshot(); s.Running || s.RunsStarted != 0 {
		t.Fatalf("fresh progress %+v", s)
	}
	p.RunStart(RunStart{Algorithm: "decomp-arb", Vertices: 10, Edges: 18, Procs: 4})
	p.LevelStart(LevelStart{Level: 2, Vertices: 5, EdgesIn: 9})
	p.Round(Round{Level: 2, Round: 3, Frontier: 4})
	p.Phase(Phase{Level: 2, Name: PhaseBFSSparse})
	s := p.Snapshot()
	if !s.Running || s.Algorithm != "decomp-arb" || s.Level != 2 || s.Round != 3 ||
		s.Frontier != 4 || s.Phase != PhaseBFSSparse || s.LevelEdges != 9 {
		t.Fatalf("mid-run snapshot %+v", s)
	}
	p.RunEnd(RunEnd{Components: 3, Duration: 10})
	s = p.Snapshot()
	if s.Running || s.RunsDone != 1 || s.Components != 3 || s.LastRunNS != 10 {
		t.Fatalf("post-run snapshot %+v", s)
	}

	// A failed run surfaces its error and the error count.
	p.RunStart(RunStart{Algorithm: "decomp-min"})
	p.RunEnd(RunEnd{Err: "boom"})
	s = p.Snapshot()
	if s.Errors != 1 || s.LastErr != "boom" {
		t.Fatalf("error snapshot %+v", s)
	}

	// Unknown phase names still display (allocating is fine off the hot set).
	p.Phase(Phase{Name: "custom_phase"})
	if s := p.Snapshot(); s.Phase != "custom_phase" {
		t.Fatalf("unknown phase snapshot %+v", s)
	}
}

func TestProgressConcurrentReaders(t *testing.T) {
	p := NewProgress()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			emitAll(p)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := p.Snapshot()
				if s.RunsDone > s.RunsStarted {
					t.Error("runs_done overtook runs_started")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestFlightRecorderWraparoundConcurrentWriters hammers a small ring from
// many writers so every slot is overwritten hundreds of times, and checks
// the invariants wraparound must preserve: accounting (dropped + retained
// equals the total at snapshot time), no torn events, per-writer arrival
// order inside every snapshot, and a full ring holding exactly the last
// cap events once the writers stop.
func TestFlightRecorderWraparoundConcurrentWriters(t *testing.T) {
	const (
		cap       = 8
		writers   = 4
		perWriter = 500
	)
	fr := NewFlightRecorder(cap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; seq < perWriter; seq++ {
				// Writer and sequence ride in one payload, so a snapshot can
				// prove both integrity and per-writer order. Alternate the
				// Recorder path with the Span path: both share the ring.
				if seq%2 == 0 {
					fr.Counter(Counter{Name: "writer", Value: int64(w*perWriter + seq)})
				} else {
					fr.Span(Span{Endpoint: "writer", Status: w*perWriter + seq})
				}
			}
		}(w)
	}

	snapErrs := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			events, dropped := fr.Snapshot()
			if len(events) > cap {
				snapErrs <- fmt.Errorf("snapshot holds %d events, ring cap %d", len(events), cap)
				return
			}
			lastSeq := make(map[int]int)
			for _, ev := range events {
				w, seq, err := decodeWraparoundEvent(ev)
				if err != nil {
					snapErrs <- err
					return
				}
				if prev, ok := lastSeq[w]; ok && seq <= prev {
					snapErrs <- fmt.Errorf("writer %d out of order: %d after %d", w, seq, prev)
					return
				}
				lastSeq[w] = seq
			}
			if dropped < 0 {
				snapErrs <- fmt.Errorf("negative dropped count %d", dropped)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	select {
	case err := <-snapErrs:
		t.Fatal(err)
	default:
	}

	total := int64(writers * perWriter)
	if fr.Total() != total {
		t.Fatalf("Total %d want %d", fr.Total(), total)
	}
	events, dropped := fr.Snapshot()
	if int64(len(events)) != cap || dropped != total-cap {
		t.Fatalf("final snapshot: %d events (%d dropped), want %d (%d)", len(events), dropped, cap, total-cap)
	}
	for _, ev := range events {
		if _, _, err := decodeWraparoundEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
}

// decodeWraparoundEvent recovers (writer, seq) from an event emitted by the
// wraparound test, failing on torn or foreign payloads.
func decodeWraparoundEvent(ev Event) (writer, seq int, err error) {
	var packed int
	switch v := ev.V.(type) {
	case Counter:
		if ev.Kind != KindCounter || v.Name != "writer" {
			return 0, 0, fmt.Errorf("torn counter event %+v", ev)
		}
		packed = int(v.Value)
	case Span:
		if ev.Kind != KindSpan || v.Endpoint != "writer" {
			return 0, 0, fmt.Errorf("torn span event %+v", ev)
		}
		packed = v.Status
	default:
		return 0, 0, fmt.Errorf("foreign event %+v in ring", ev)
	}
	return packed / 500, packed % 500, nil
}
