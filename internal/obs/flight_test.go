package obs

import (
	"sync"
	"testing"
)

func TestFlightRecorderRetainsTail(t *testing.T) {
	fr := NewFlightRecorder(4)
	want := emitAll(fr) // 12 events through a 4-slot ring
	events, dropped := fr.Snapshot()
	if len(events) != 4 {
		t.Fatalf("retained %d events want 4", len(events))
	}
	if dropped != int64(len(want)-4) {
		t.Fatalf("dropped %d want %d", dropped, len(want)-4)
	}
	for i, ev := range events {
		if ev != want[len(want)-4+i] {
			t.Fatalf("event %d = %+v want %+v", i, ev, want[len(want)-4+i])
		}
	}
	if fr.Total() != int64(len(want)) {
		t.Fatalf("Total %d want %d", fr.Total(), len(want))
	}
	// The most recent event is the run_end.
	if _, ok := events[3].V.(RunEnd); !ok {
		t.Fatalf("newest event %+v is not the run_end", events[3])
	}

	fr.Reset()
	if events, dropped := fr.Snapshot(); len(events) != 0 || dropped != 0 {
		t.Fatalf("after Reset: %d events, %d dropped", len(events), dropped)
	}
}

func TestFlightRecorderUnderfilled(t *testing.T) {
	fr := NewFlightRecorder(0) // default capacity, far above one run
	want := emitAll(fr)
	events, dropped := fr.Snapshot()
	if dropped != 0 || len(events) != len(want) {
		t.Fatalf("got %d events (%d dropped) want %d (0)", len(events), dropped, len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestFlightRecorderConcurrentRuns(t *testing.T) {
	// Two runs sharing one recorder, per the sink contract; snapshots taken
	// mid-flight must stay internally consistent (no torn events).
	fr := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				emitAll(fr)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			events, _ := fr.Snapshot()
			for _, ev := range events {
				if ev.Kind == "" || ev.V == nil {
					t.Error("torn event in snapshot")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if fr.Total() != 2*50*12 {
		t.Fatalf("Total %d want %d", fr.Total(), 2*50*12)
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := NewProgress()
	if s := p.Snapshot(); s.Running || s.RunsStarted != 0 {
		t.Fatalf("fresh progress %+v", s)
	}
	p.RunStart(RunStart{Algorithm: "decomp-arb", Vertices: 10, Edges: 18, Procs: 4})
	p.LevelStart(LevelStart{Level: 2, Vertices: 5, EdgesIn: 9})
	p.Round(Round{Level: 2, Round: 3, Frontier: 4})
	p.Phase(Phase{Level: 2, Name: PhaseBFSSparse})
	s := p.Snapshot()
	if !s.Running || s.Algorithm != "decomp-arb" || s.Level != 2 || s.Round != 3 ||
		s.Frontier != 4 || s.Phase != PhaseBFSSparse || s.LevelEdges != 9 {
		t.Fatalf("mid-run snapshot %+v", s)
	}
	p.RunEnd(RunEnd{Components: 3, Duration: 10})
	s = p.Snapshot()
	if s.Running || s.RunsDone != 1 || s.Components != 3 || s.LastRunNS != 10 {
		t.Fatalf("post-run snapshot %+v", s)
	}

	// A failed run surfaces its error and the error count.
	p.RunStart(RunStart{Algorithm: "decomp-min"})
	p.RunEnd(RunEnd{Err: "boom"})
	s = p.Snapshot()
	if s.Errors != 1 || s.LastErr != "boom" {
		t.Fatalf("error snapshot %+v", s)
	}

	// Unknown phase names still display (allocating is fine off the hot set).
	p.Phase(Phase{Name: "custom_phase"})
	if s := p.Snapshot(); s.Phase != "custom_phase" {
		t.Fatalf("unknown phase snapshot %+v", s)
	}
}

func TestProgressConcurrentReaders(t *testing.T) {
	p := NewProgress()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			emitAll(p)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := p.Snapshot()
				if s.RunsDone > s.RunsStarted {
					t.Error("runs_done overtook runs_started")
					return
				}
			}
		}()
	}
	wg.Wait()
}
