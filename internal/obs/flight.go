package obs

import "sync"

// defaultFlightCap is the ring size when NewFlightRecorder is given a
// non-positive capacity: enough for several full levels of round and phase
// events without holding a long run's whole history.
const defaultFlightCap = 256

// FlightRecorder is a Recorder keeping the most recent events in a bounded
// ring, so a debug endpoint (or a post-mortem) can show what the engine was
// doing just now without accumulating a multi-hour run's full trace the way
// Trace would. Snapshot returns a consistent copy: events in arrival order
// plus the count of older events that have been overwritten.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Event
	total int64 // events ever recorded
}

// NewFlightRecorder returns a recorder retaining the last n events
// (defaultFlightCap when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = defaultFlightCap
	}
	return &FlightRecorder{ring: make([]Event, n)}
}

func (f *FlightRecorder) add(kind string, v any) {
	f.mu.Lock()
	f.ring[f.total%int64(len(f.ring))] = Event{Kind: kind, V: v}
	f.total++
	f.mu.Unlock()
}

func (f *FlightRecorder) RunStart(e RunStart)     { f.add(KindRunStart, e) }
func (f *FlightRecorder) RunEnd(e RunEnd)         { f.add(KindRunEnd, e) }
func (f *FlightRecorder) LevelStart(e LevelStart) { f.add(KindLevelStart, e) }
func (f *FlightRecorder) LevelEnd(e LevelEnd)     { f.add(KindLevelEnd, e) }
func (f *FlightRecorder) Round(e Round)           { f.add(KindRound, e) }
func (f *FlightRecorder) Phase(e Phase)           { f.add(KindPhase, e) }
func (f *FlightRecorder) Counter(e Counter)       { f.add(KindCounter, e) }

// Snapshot returns the retained events oldest-first and the number of
// earlier events the ring has dropped.
func (f *FlightRecorder) Snapshot() (events []Event, dropped int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := int64(len(f.ring))
	kept := min(f.total, n)
	events = make([]Event, 0, kept)
	for i := f.total - kept; i < f.total; i++ {
		events = append(events, f.ring[i%n])
	}
	return events, f.total - kept
}

// Total reports the number of events ever recorded.
func (f *FlightRecorder) Total() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Reset discards all retained events.
func (f *FlightRecorder) Reset() {
	f.mu.Lock()
	clear(f.ring)
	f.total = 0
	f.mu.Unlock()
}
