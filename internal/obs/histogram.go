package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// HistogramBuckets is the number of log-spaced buckets in a Histogram:
// bucket 0 holds the value 0 and bucket i (1..64) holds values in
// [2^(i-1), 2^i). Base-2 spacing gives ~±50% resolution at every magnitude,
// which is enough to tell a 2x tail regression apart from noise while
// keeping the record path a single shift-free bits.Len64.
const HistogramBuckets = 65

// A Histogram counts non-negative int64 samples (durations in nanoseconds,
// frontier sizes) in fixed log2-spaced buckets. The zero value is ready to
// use. Record is wait-free, allocation-free, and safe from any goroutine —
// the histogram itself is not a Recorder, so it may legally be fed from
// inside parallel sections — and Snapshot/Merge may run concurrently with
// recording (they see a near-consistent view: bucket counts are read one
// atomic load at a time, so a snapshot taken mid-record can be off by the
// in-flight sample).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	minPlus atomic.Int64 // min+1; 0 means "no samples yet" so the zero value works
	buckets [HistogramBuckets]atomic.Int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the half-open sample range [lo, hi) of bucket i.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 1
	}
	if i >= 63 {
		return 1 << 62, math.MaxInt64
	}
	return 1 << (i - 1), 1 << i
}

// Record adds one sample. Negative samples are clamped to zero (durations
// from a non-monotonic clock step; they are noise, not data), and MaxInt64
// is clamped one below so the min tracker's v+1 encoding cannot overflow.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if v == math.MaxInt64 {
		v--
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.minPlus.Load()
		if (cur != 0 && v+1 >= cur) || h.minPlus.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// Merge adds o's counts into h. Both histograms may be live.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if v := o.max.Load(); v > 0 {
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	if mp := o.minPlus.Load(); mp != 0 {
		for {
			cur := h.minPlus.Load()
			if (cur != 0 && mp >= cur) || h.minPlus.CompareAndSwap(cur, mp) {
				break
			}
		}
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.minPlus.Store(0)
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the total of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramBucket is one non-empty bucket of a snapshot: Count samples in
// [Lo, Hi).
type HistogramBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram, carrying only
// the non-empty buckets. It is the JSON shape served by /debug/parconn and
// the aggregation unit cmd/tracestat builds its tables from.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if mp := h.minPlus.Load(); mp > 0 {
		s.Min = mp - 1
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			lo, hi := BucketBounds(i)
			s.Buckets = append(s.Buckets, HistogramBucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}

// Mean returns the average sample, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts,
// interpolating geometrically inside the holding bucket and clamping to the
// bucket's half-open range and then to the observed min/max. Log-spaced
// buckets make the estimate exact to within a factor of 2, which is the
// histogram's design resolution; a single-sample snapshot and a
// single-bucket snapshot whose bucket holds both Min and Max collapse to
// exact answers through the clamps.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var seen float64
	for _, b := range s.Buckets {
		seen += float64(b.Count)
		if seen < rank {
			continue
		}
		// The zero bucket holds only the value 0; interpolation on
		// [max(Lo,1), Hi) would invent a 1.
		if b.Lo == 0 {
			return max(int64(0), s.Min)
		}
		// Geometric midpoint-ish interpolation: position within the
		// bucket by remaining rank fraction, on a log scale.
		frac := 1 - (seen-rank)/float64(b.Count)
		lo, hi := float64(b.Lo), float64(b.Hi)
		f := lo * math.Pow(hi/lo, frac)
		// Keep the estimate inside the half-open bucket: frac == 1 (q
		// landing exactly on the bucket's cumulative boundary) otherwise
		// yields the exclusive bound Hi, and in the top bucket the float
		// result can exceed MaxInt64, making the int64 conversion
		// undefined. Compare in float before converting.
		v := b.Hi - 1
		if f < float64(b.Hi) {
			v = max(int64(f), b.Lo)
		}
		return min(max(v, s.Min), s.Max)
	}
	return s.Max
}

// phaseKey identifies one per-level phase histogram.
type phaseKey struct {
	level int
	name  string
}

// HistogramSet is a Recorder aggregating the event stream into histograms:
// one per (level, phase name) over phase durations, one over per-round
// frontier sizes, and one over per-round durations. The record path is
// allocation-free in the steady state (a histogram allocates once when its
// (level, phase) key first appears); sinks shared by concurrent runs are
// safe, per the Recorder contract.
type HistogramSet struct {
	Nop

	mu     sync.RWMutex
	phases map[phaseKey]*Histogram

	frontier Histogram // Round.Frontier samples
	roundNS  Histogram // Round.Duration samples, nanoseconds
}

// NewHistogramSet returns an empty set.
func NewHistogramSet() *HistogramSet {
	return &HistogramSet{phases: make(map[phaseKey]*Histogram)}
}

// phaseHist returns the histogram for (level, name), creating it on first
// use. Steady-state lookups take only the read lock and do not allocate.
func (s *HistogramSet) phaseHist(level int, name string) *Histogram {
	k := phaseKey{level: level, name: name}
	s.mu.RLock()
	h := s.phases[k]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	if h = s.phases[k]; h == nil {
		h = &Histogram{}
		s.phases[k] = h
	}
	s.mu.Unlock()
	return h
}

// Phase records the duration into the (level, name) histogram.
func (s *HistogramSet) Phase(e Phase) {
	s.phaseHist(e.Level, e.Name).Record(int64(e.Duration))
}

// Round records the frontier size and round duration.
func (s *HistogramSet) Round(e Round) {
	s.frontier.Record(int64(e.Frontier))
	s.roundNS.Record(int64(e.Duration))
}

// Frontier exposes the frontier-size histogram (samples are vertex counts).
func (s *HistogramSet) Frontier() *Histogram { return &s.frontier }

// RoundNS exposes the per-round duration histogram (nanoseconds).
func (s *HistogramSet) RoundNS() *Histogram { return &s.roundNS }

// PhaseHistogram is one (level, phase) histogram in a snapshot.
type PhaseHistogram struct {
	Level int               `json:"level"`
	Name  string            `json:"name"`
	Hist  HistogramSnapshot `json:"hist"`
}

// HistogramSetSnapshot is the JSON shape of a HistogramSet.
type HistogramSetSnapshot struct {
	Phases   []PhaseHistogram  `json:"phases,omitempty"`
	Frontier HistogramSnapshot `json:"frontier"`
	RoundNS  HistogramSnapshot `json:"round_ns"`
}

// Snapshot copies every histogram, phases sorted by (level, name).
func (s *HistogramSet) Snapshot() HistogramSetSnapshot {
	s.mu.RLock()
	keys := make([]phaseKey, 0, len(s.phases))
	for k := range s.phases {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].name < keys[j].name
	})
	out := HistogramSetSnapshot{
		Frontier: s.frontier.Snapshot(),
		RoundNS:  s.roundNS.Snapshot(),
	}
	for _, k := range keys {
		s.mu.RLock()
		h := s.phases[k]
		s.mu.RUnlock()
		out.Phases = append(out.Phases, PhaseHistogram{
			Level: k.level, Name: k.name, Hist: h.Snapshot(),
		})
	}
	return out
}

// String summarizes the histogram for debug output.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("count=%d sum=%d min=%d p50=%d p90=%d max=%d",
		s.Count, s.Sum, s.Min, s.Quantile(0.5), s.Quantile(0.9), s.Max)
}
