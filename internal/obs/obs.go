// Package obs is the structured observability layer of the connectivity
// engine: a Recorder interface receiving per-run, per-level, per-round, and
// per-phase events from the decomposition recursion, plus three concrete
// sinks (an in-memory Trace, a JSON-lines writer, and an expvar counter
// set). The paper's whole evaluation (§5, Figures 3-7) is built on exactly
// these measurements — frontier sizes, cut fractions, phase breakdowns,
// geometric edge decay across contraction levels — so the event stream is
// both the bench harness's data source and the production debugging surface.
//
// Contract. A nil Recorder means "disabled" and every instrumentation site
// guards with one pointer comparison, so observability costs nothing when
// off (BenchmarkCCAllocs guards the allocation budget of the nil path).
// Recorder methods are invoked only by the coordinating goroutine of a run,
// between parallel sections — never from inside a parallel loop body. Code
// that wants per-worker measurements (CAS retry counts, for example)
// accumulates them in a ShardedInt64 and emits the total from the
// coordinator; cmd/parconnvet's obsrecorder check enforces this. Sinks
// therefore need no internal locking for correctness within one run, but
// the provided sinks lock anyway so distinct concurrent runs may share one.
//
// The package is zero-dependency (stdlib only) and deliberately knows
// nothing about graphs: events carry plain counts and durations, and the
// compatibility bridges to the legacy PhaseTimes/LevelStat/RoundStat types
// live next to those types in internal/decomp and internal/core.
package obs

import "time"

// A Recorder receives the event stream of connectivity runs. Implementations
// must tolerate events arriving without a surrounding RunStart/RunEnd pair
// (a standalone decomposition emits only rounds and phases). Methods are
// called from one goroutine per run; a Recorder shared by concurrent runs
// must serialize internally (the sinks in this package do).
type Recorder interface {
	// RunStart opens one connectivity run.
	RunStart(RunStart)
	// RunEnd closes the run opened by the last RunStart.
	RunEnd(RunEnd)
	// LevelStart opens one level of the contraction recursion.
	LevelStart(LevelStart)
	// LevelEnd closes a level's own work (decomposition + contraction; the
	// deeper levels' events arrive after it, relabeling is charged to the
	// level's contract phase).
	LevelEnd(LevelEnd)
	// Round reports one completed BFS round of a decomposition.
	Round(Round)
	// Phase reports one timed phase section; durations for the same
	// (level, name) accumulate across rounds.
	Phase(Phase)
	// Counter reports a named cumulative count (arena bytes, pool joins).
	Counter(Counter)
}

// Event kind names, as written to the "ev" field of the JSONL encoding.
const (
	KindMeta       = "meta"
	KindRunStart   = "run_start"
	KindRunEnd     = "run_end"
	KindLevelStart = "level_start"
	KindLevelEnd   = "level_end"
	KindRound      = "round"
	KindPhase      = "phase"
	KindCounter    = "counter"
)

// Phase names emitted by the engine, matching the paper's Figures 5-7
// breakdown categories (see decomp.PhaseTimes for the legacy accumulator).
const (
	PhaseSetup       = "setup"        // working-graph copy before level 0
	PhaseInit        = "init"         // permutations, shifts, array init
	PhaseBFSPre      = "bfs_pre"      // adding new centers to the frontier
	PhaseBFSPhase1   = "bfs_phase1"   // Decomp-Min writeMin marking pass
	PhaseBFSPhase2   = "bfs_phase2"   // Decomp-Min CAS claiming pass
	PhaseBFSMain     = "bfs_main"     // Decomp-Arb single pass
	PhaseBFSSparse   = "bfs_sparse"   // ArbHybrid write-based rounds
	PhaseBFSDense    = "bfs_dense"    // ArbHybrid read-based rounds
	PhaseFilterEdges = "filter_edges" // ArbHybrid edge classification pass
	PhaseContract    = "contract"     // contraction + relabeling
	PhaseMeasure     = "measure"      // per-level edge reductions done only for observability
)

// Counter names emitted by the engine at the end of a run.
const (
	CounterArenaReused = "arena_reused_bytes" // scratch bytes served from the arena free lists
	CounterArenaAlloc  = "arena_alloc_bytes"  // scratch bytes freshly allocated
	CounterPoolJoins   = "pool_worker_joins"  // pool helpers that joined parallel sections
)

// RunStart describes a connectivity run about to execute.
type RunStart struct {
	Algorithm string  `json:"algorithm"`
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"` // directed edge count (2x undirected)
	Procs     int     `json:"procs"`
	Seed      uint64  `json:"seed"`
	Beta      float64 `json:"beta,omitempty"` // effective beta; 0 for non-decomposition algorithms
	Env       *Env    `json:"env,omitempty"`  // capture environment; nil in minimal emissions
}

// RunEnd closes a run.
type RunEnd struct {
	Components int           `json:"components"` // number of labels; 0 when the run failed
	Duration   time.Duration `json:"duration_ns"`
	Err        string        `json:"err,omitempty"`
}

// LevelStart describes one recursion level about to decompose.
type LevelStart struct {
	Level    int   `json:"level"`
	Vertices int   `json:"vertices"`
	EdgesIn  int64 `json:"edges_in"` // directed live edges entering the level
}

// LevelEnd describes a completed recursion level (the paper's Figure 4 rows).
type LevelEnd struct {
	Level      int   `json:"level"`
	Vertices   int   `json:"vertices"`
	EdgesIn    int64 `json:"edges_in"`
	EdgesCut   int64 `json:"edges_cut"`   // directed inter-partition edges after decomposition
	EdgesOut   int64 `json:"edges_out"`   // directed edges passed to the next level (post dedup)
	Components int   `json:"components"`  // partitions produced by the decomposition
	Rounds     int   `json:"rounds"`      // BFS rounds executed
	CASRetries int64 `json:"cas_retries"` // lost CAS/writeMin races during the decomposition
}

// Round describes one completed BFS round of a decomposition.
type Round struct {
	Level      int           `json:"level"`
	Round      int           `json:"round"` // shift-schedule round number (idle rounds are skipped)
	Frontier   int           `json:"frontier"`
	NewCenters int           `json:"new_centers"`
	Dense      bool          `json:"dense,omitempty"` // ArbHybrid chose the read-based pass
	Duration   time.Duration `json:"duration_ns"`
	CASRetries int64         `json:"cas_retries"`
}

// Phase is one timed section of the engine.
type Phase struct {
	Level    int           `json:"level"`
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Counter is a named count accumulated over a run.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Nop is a Recorder that ignores every event. Embed it to implement only
// the methods a sink cares about.
type Nop struct{}

func (Nop) RunStart(RunStart)     {}
func (Nop) RunEnd(RunEnd)         {}
func (Nop) LevelStart(LevelStart) {}
func (Nop) LevelEnd(LevelEnd)     {}
func (Nop) Round(Round)           {}
func (Nop) Phase(Phase)           {}
func (Nop) Counter(Counter)       {}

// Multi fans events out to every non-nil recorder in recs, in order. It
// returns nil when all are nil and the single recorder when only one is
// non-nil, preserving the nil fast path and avoiding indirection for the
// common single-sink case.
//
//parconn:allow hotalloc recorder fan-out is built once per run setup, and only when observability is enabled
func Multi(recs ...Recorder) Recorder {
	live := make(multi, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multi []Recorder

func (m multi) RunStart(e RunStart) {
	for _, r := range m {
		r.RunStart(e)
	}
}

func (m multi) RunEnd(e RunEnd) {
	for _, r := range m {
		r.RunEnd(e)
	}
}

func (m multi) LevelStart(e LevelStart) {
	for _, r := range m {
		r.LevelStart(e)
	}
}

func (m multi) LevelEnd(e LevelEnd) {
	for _, r := range m {
		r.LevelEnd(e)
	}
}

func (m multi) Round(e Round) {
	for _, r := range m {
		r.Round(e)
	}
}

func (m multi) Phase(e Phase) {
	for _, r := range m {
		r.Phase(e)
	}
}

func (m multi) Counter(e Counter) {
	for _, r := range m {
		r.Counter(e)
	}
}
