package obs

import (
	"io"
	"sync"
)

// Event is one recorded event with its kind tag, as stored by Trace.
// V holds the concrete event struct (RunStart, Round, ...) by value.
type Event struct {
	Kind string
	V    any
}

// Trace is an in-memory Recorder that stores every event in arrival order.
// It subsumes the legacy PhaseTimes/LevelStat/RoundStat accumulators: the
// compatibility constructors in internal/decomp and internal/core rebuild
// those views from a Trace's event slice.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty Trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) add(kind string, v any) {
	t.mu.Lock()
	t.events = append(t.events, Event{Kind: kind, V: v})
	t.mu.Unlock()
}

func (t *Trace) RunStart(e RunStart)     { t.add(KindRunStart, e) }
func (t *Trace) RunEnd(e RunEnd)         { t.add(KindRunEnd, e) }
func (t *Trace) LevelStart(e LevelStart) { t.add(KindLevelStart, e) }
func (t *Trace) LevelEnd(e LevelEnd)     { t.add(KindLevelEnd, e) }
func (t *Trace) Round(e Round)           { t.add(KindRound, e) }
func (t *Trace) Phase(e Phase)           { t.add(KindPhase, e) }
func (t *Trace) Counter(e Counter)       { t.add(KindCounter, e) }

// Events returns a copy of the recorded events in arrival order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len reports the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset discards all recorded events, keeping the backing storage.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// Runs returns the RunStart events in order.
func (t *Trace) Runs() []RunStart {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []RunStart
	for _, ev := range t.events {
		if e, ok := ev.V.(RunStart); ok {
			out = append(out, e)
		}
	}
	return out
}

// LevelEnds returns the LevelEnd events in order.
func (t *Trace) LevelEnds() []LevelEnd {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []LevelEnd
	for _, ev := range t.events {
		if e, ok := ev.V.(LevelEnd); ok {
			out = append(out, e)
		}
	}
	return out
}

// Rounds returns the Round events in order.
func (t *Trace) Rounds() []Round {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Round
	for _, ev := range t.events {
		if e, ok := ev.V.(Round); ok {
			out = append(out, e)
		}
	}
	return out
}

// Phases returns the Phase events in order.
func (t *Trace) Phases() []Phase {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Phase
	for _, ev := range t.events {
		if e, ok := ev.V.(Phase); ok {
			out = append(out, e)
		}
	}
	return out
}

// Counters returns the Counter events in order.
func (t *Trace) Counters() []Counter {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Counter
	for _, ev := range t.events {
		if e, ok := ev.V.(Counter); ok {
			out = append(out, e)
		}
	}
	return out
}

// Replay dispatches already-parsed events back into a Recorder, so offline
// tools can push a stored trace through the same sinks live runs use (e.g.
// HistogramSet aggregation in cmd/tracestat). Meta headers carry no run
// state and are skipped; a nil Recorder is a no-op.
func Replay(rec Recorder, events []Event) {
	if rec == nil {
		return
	}
	for _, ev := range events {
		switch v := ev.V.(type) {
		case RunStart:
			rec.RunStart(v)
		case RunEnd:
			rec.RunEnd(v)
		case LevelStart:
			rec.LevelStart(v)
		case LevelEnd:
			rec.LevelEnd(v)
		case Round:
			rec.Round(v)
		case Phase:
			rec.Phase(v)
		case Counter:
			rec.Counter(v)
		}
	}
}

// WriteJSONL re-emits the recorded events as JSON lines to w, in the same
// encoding the live JSONLWriter produces.
func (t *Trace) WriteJSONL(w io.Writer) error {
	var buf []byte
	for _, ev := range t.Events() {
		var err error
		buf, err = AppendRecord(buf[:0], ev.Kind, ev.V)
		if err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
