package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := map[int64]int{
		-5: 0, 0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4,
		1023: 10, 1024: 11, math.MaxInt64: 63,
	}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d want %d", v, got, want)
		}
	}
	for i := 0; i < HistogramBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo >= hi && i < 64 {
			t.Errorf("bucket %d bounds [%d, %d) empty", i, lo, hi)
		}
		if i > 0 && i < 64 {
			if bucketOf(lo) != i || bucketOf(hi-1) != i {
				t.Errorf("bucket %d bounds [%d, %d) disagree with bucketOf", i, lo, hi)
			}
		}
	}
}

func TestHistogramRecordSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 5, 5, 100, 1000, -3} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("Count %d want 7", s.Count)
	}
	if s.Sum != 1111 {
		t.Fatalf("Sum %d want 1111", s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("Min/Max %d/%d want 0/1000", s.Min, s.Max)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("p0 %d want 0", got)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Fatalf("p100 %d want 1000", got)
	}
	// The median sample is 5; log-spaced buckets place p50 in [4, 8).
	if got := s.Quantile(0.5); got < 4 || got >= 8 {
		t.Fatalf("p50 %d outside the median's bucket [4, 8)", got)
	}
	if m := s.Mean(); math.Abs(m-1111.0/7) > 1e-9 {
		t.Fatalf("Mean %v", m)
	}

	// An all-zero histogram must survive quantiles and JSON encoding.
	var empty Histogram
	es := empty.Snapshot()
	if es.Count != 0 || es.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot %+v", es)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMinTracksSmallest(t *testing.T) {
	var h Histogram
	h.Record(100)
	h.Record(7)
	h.Record(50)
	if s := h.Snapshot(); s.Min != 7 {
		t.Fatalf("Min %d want 7", s.Min)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	var a, b Histogram
	a.Record(2)
	a.Record(1000)
	b.Record(1)
	b.Record(8)
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 4 || s.Sum != 1011 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("merged snapshot %+v", s)
	}
	a.Reset()
	if s := a.Snapshot(); s.Count != 0 || s.Sum != 0 || len(s.Buckets) != 0 {
		t.Fatalf("reset snapshot %+v", s)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count %d want %d", s.Count, workers*per)
	}
	const n = int64(workers * per)
	if s.Sum != n*(n-1)/2 {
		t.Fatalf("Sum %d want %d", s.Sum, n*(n-1)/2)
	}
	if s.Min != 0 || s.Max != n-1 {
		t.Fatalf("Min/Max %d/%d", s.Min, s.Max)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramSet(t *testing.T) {
	hs := NewHistogramSet()
	emitAll(hs)
	snap := hs.Snapshot()
	// emitAll produces phases init, bfs_main, contract — all level 0.
	want := map[string]int64{PhaseInit: 1, PhaseBFSMain: 1, PhaseContract: 1}
	if len(snap.Phases) != len(want) {
		t.Fatalf("phases %+v want %v", snap.Phases, want)
	}
	for _, ph := range snap.Phases {
		if ph.Level != 0 {
			t.Errorf("phase %s at level %d want 0", ph.Name, ph.Level)
		}
		if ph.Hist.Count != want[ph.Name] {
			t.Errorf("phase %s count %d want %d", ph.Name, ph.Hist.Count, want[ph.Name])
		}
	}
	if snap.Frontier.Count != 1 || snap.Frontier.Max != 2 {
		t.Fatalf("frontier %+v", snap.Frontier)
	}
	if snap.RoundNS.Count != 1 || snap.RoundNS.Sum != int64(time.Microsecond) {
		t.Fatalf("round_ns %+v", snap.RoundNS)
	}

	// A second identical run doubles the counts in place.
	emitAll(hs)
	if got := hs.Snapshot().Phases[0].Hist.Count; got != 2 {
		t.Fatalf("second run: phase count %d want 2", got)
	}
	if _, err := json.Marshal(hs.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestEnvMismatch(t *testing.T) {
	here := CaptureEnv()
	if here.IsZero() || here.GoVersion == "" || here.NumCPU < 1 {
		t.Fatalf("CaptureEnv %+v", here)
	}
	if diffs := here.Mismatch(here); len(diffs) != 0 {
		t.Fatalf("self-mismatch: %v", diffs)
	}
	// Unknown (zero) fields on one side never count as differences.
	if diffs := here.Mismatch(Env{}); len(diffs) != 0 {
		t.Fatalf("zero-env mismatch: %v", diffs)
	}
	other := here
	other.GoMaxProcs = here.GoMaxProcs + 7
	other.OS = "plan9"
	diffs := here.Mismatch(other)
	if len(diffs) != 2 {
		t.Fatalf("mismatch %v want gomaxprocs and os/arch entries", diffs)
	}
}

// TestQuantileEdgeCases pins exact values for the snapshot quantile
// estimator on the configurations that used to go wrong: single-sample
// snapshots, all mass in one bucket, ranks landing exactly on a bucket
// boundary, the zero bucket, the top bucket, and min/max clamping on
// merged histograms. These quantiles are the gated P95/P99 numbers of the
// serving benchmark, so the expectations are exact, not approximate.
func TestQuantileEdgeCases(t *testing.T) {
	record := func(vs ...int64) HistogramSnapshot {
		var h Histogram
		for _, v := range vs {
			h.Record(v)
		}
		return h.Snapshot()
	}
	cases := []struct {
		name string
		snap HistogramSnapshot
		q    float64
		want int64
	}{
		// A single sample is exact at every q.
		{"single-q0", record(100), 0, 100},
		{"single-q50", record(100), 0.5, 100},
		{"single-q99", record(100), 0.99, 100},
		{"single-q1", record(100), 1, 100},
		// All mass in one bucket: clamped to the observed [min, max].
		{"one-bucket-low", record(9, 9, 9, 9), 0.25, 9},
		{"one-bucket-minmax", record(9, 15), 0.25, 9},
		{"one-bucket-minmax-high", record(9, 15), 0.99, 15},
		// q landing exactly on a bucket's cumulative boundary must not
		// return the bucket's exclusive upper bound. Samples 4 and 16 live
		// in buckets [4,8) and [16,32); q=0.5 has rank exactly 1.0 at the
		// end of the first bucket, so the estimate is the bucket's largest
		// member, 7 — inside [4,8), never the exclusive bound 8.
		{"boundary-rank", record(4, 16), 0.5, 7},
		{"boundary-rank-above", record(4, 16), 0.75, 16},
		// The zero bucket holds only the value 0; the old interpolation
		// invented a 1 here.
		{"zero-bucket", record(0, 0, 0, 100), 0.5, 0},
		// rank 3.6 interpolates inside [64,128): 64*2^0.6 = 97.
		{"zero-bucket-tail", record(0, 0, 0, 100), 0.9, 97},
		{"all-zero", record(0, 0), 0.5, 0},
		// Top bucket: interpolation in [2^62, MaxInt64) used to overflow
		// the float64 -> int64 conversion near frac = 1, and recording
		// MaxInt64 itself used to wrap the min tracker's v+1 encoding
		// (leaving Min = 0); both now clamp to MaxInt64 - 1.
		{"top-bucket", record(math.MaxInt64, math.MaxInt64), 0.999, math.MaxInt64 - 1},
		{"top-bucket-min", record(math.MaxInt64, math.MaxInt64), 0, math.MaxInt64 - 1},
		// Empty snapshot.
		{"empty", HistogramSnapshot{}, 0.5, 0},
	}
	for _, tc := range cases {
		if got := tc.snap.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d want %d (snapshot %+v)", tc.name, tc.q, got, tc.want, tc.snap)
		}
	}
}

// TestQuantileAfterMerge checks min/max clamping when buckets were merged:
// the merged snapshot's Min/Max span both sources, and quantiles landing in
// either source's bucket stay within the observed range.
func TestQuantileAfterMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Record(5) // bucket [4,8)
	}
	b.Record(1000) // bucket [512,1024)
	a.Merge(&b)
	s := a.Snapshot()
	if s.Min != 5 || s.Max != 1000 || s.Count != 11 {
		t.Fatalf("merged snapshot %+v", s)
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("merged p50 = %d want 5", got)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Errorf("merged p100 = %d want 1000", got)
	}
	// The tail quantile lands in b's bucket; geometric interpolation must
	// not exceed the observed max even though the bucket reaches 1024.
	if got := s.Quantile(0.99); got < 512 || got > 1000 {
		t.Errorf("merged p99 = %d want within [512, 1000]", got)
	}
	// Quantiles are monotone in q on the merged snapshot.
	prev := int64(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %d < previous %d (not monotone)", q, v, prev)
		}
		prev = v
	}
}
