package obs

import (
	"fmt"
	"runtime"
	"strings"
)

// Env records the execution environment a trace was captured in. Phase
// durations from different environments are not comparable — a trace
// captured at GOMAXPROCS=1 has no parallel rounds at all — so RunStart
// events and JSONL trace headers carry an Env, and cmd/tracestat warns
// before diffing across mismatched ones.
type Env struct {
	GoVersion  string `json:"go_version,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	OS         string `json:"os,omitempty"`
	Arch       string `json:"arch,omitempty"`
}

// CaptureEnv reads the current process environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// IsZero reports whether no environment was recorded (traces from before
// the field existed).
func (e Env) IsZero() bool { return e == Env{} }

// String renders the environment on one line.
func (e Env) String() string {
	return fmt.Sprintf("%s %s/%s gomaxprocs=%d numcpu=%d",
		e.GoVersion, e.OS, e.Arch, e.GoMaxProcs, e.NumCPU)
}

// Mismatch lists the fields on which e and o differ, in "field: a vs b"
// form, empty when the environments agree. Zero-valued fields on either
// side are skipped: an absent recording is unknown, not different.
func (e Env) Mismatch(o Env) []string {
	var out []string
	diff := func(field, a, b string) {
		if a != "" && b != "" && a != b {
			out = append(out, fmt.Sprintf("%s: %s vs %s", field, a, b))
		}
	}
	diffInt := func(field string, a, b int) {
		if a != 0 && b != 0 && a != b {
			out = append(out, fmt.Sprintf("%s: %d vs %d", field, a, b))
		}
	}
	diff("go_version", e.GoVersion, o.GoVersion)
	diffInt("gomaxprocs", e.GoMaxProcs, o.GoMaxProcs)
	diffInt("num_cpu", e.NumCPU, o.NumCPU)
	diff("os/arch", joinOSArch(e), joinOSArch(o))
	return out
}

func joinOSArch(e Env) string {
	if e.OS == "" && e.Arch == "" {
		return ""
	}
	return strings.TrimSuffix(e.OS+"/"+e.Arch, "/")
}

// Meta is the trace header record: the first line a JSONLWriter emits, so a
// trace file identifies its capture environment even before the first run.
// It is written by the sink itself, not delivered through the Recorder
// interface (it describes the recording, not the computation).
type Meta struct {
	Tool string `json:"tool,omitempty"` // writing program, e.g. "cmd/connect"
	Env  Env    `json:"env"`
}

// EnvOf extracts the capture environment of a parsed trace: the first
// non-zero Env found in a meta header or RunStart event, zero when the
// trace predates environment recording.
func EnvOf(events []Event) Env {
	for _, ev := range events {
		switch e := ev.V.(type) {
		case Meta:
			if !e.Env.IsZero() {
				return e.Env
			}
		case RunStart:
			if e.Env != nil && !e.Env.IsZero() {
				return *e.Env
			}
		}
	}
	return Env{}
}
