package obs

import "sync/atomic"

// internedPhases maps each known phase name to a stable *string so Progress
// can publish the current phase with one pointer store, no allocation.
var internedPhases = func() map[string]*string {
	names := []string{
		PhaseSetup, PhaseInit, PhaseBFSPre, PhaseBFSPhase1, PhaseBFSPhase2,
		PhaseBFSMain, PhaseBFSSparse, PhaseBFSDense, PhaseFilterEdges,
		PhaseContract, PhaseMeasure,
	}
	m := make(map[string]*string, len(names))
	for _, n := range names {
		s := n
		m[n] = &s
	}
	return m
}()

// Progress is a Recorder exposing the engine's current position — run,
// level, round, phase — through plain atomics, so a concurrent reader (the
// /debug/parconn handler) never takes a lock the coordinator could be
// holding and never blocks an event emission. Individual fields are each
// consistent; a Snapshot taken mid-level may pair a new level with the
// previous phase, which is fine for a liveness display.
type Progress struct {
	runsStarted atomic.Int64
	runsDone    atomic.Int64
	errors      atomic.Int64

	algorithm atomic.Pointer[string]
	vertices  atomic.Int64
	edges     atomic.Int64
	procs     atomic.Int64

	level         atomic.Int64
	levelVertices atomic.Int64
	levelEdges    atomic.Int64
	round         atomic.Int64
	frontier      atomic.Int64
	phase         atomic.Pointer[string]

	components atomic.Int64 // of the last completed run
	lastRunNS  atomic.Int64
	lastErr    atomic.Pointer[string]
}

// NewProgress returns an empty Progress sink.
func NewProgress() *Progress { return &Progress{} }

func (p *Progress) RunStart(e RunStart) {
	p.runsStarted.Add(1)
	alg := e.Algorithm
	p.algorithm.Store(&alg)
	p.vertices.Store(int64(e.Vertices))
	p.edges.Store(e.Edges)
	p.procs.Store(int64(e.Procs))
	p.level.Store(-1)
	p.round.Store(-1)
	p.frontier.Store(0)
	p.phase.Store(nil)
}

func (p *Progress) RunEnd(e RunEnd) {
	p.runsDone.Add(1)
	p.components.Store(int64(e.Components))
	p.lastRunNS.Store(int64(e.Duration))
	if e.Err != "" {
		p.errors.Add(1)
		msg := e.Err
		p.lastErr.Store(&msg)
	}
}

func (p *Progress) LevelStart(e LevelStart) {
	p.level.Store(int64(e.Level))
	p.levelVertices.Store(int64(e.Vertices))
	p.levelEdges.Store(e.EdgesIn)
	p.round.Store(-1)
}

func (p *Progress) LevelEnd(e LevelEnd) {
	// RELABELUP returns through the levels in reverse; report the level the
	// coordinator is actually at.
	p.level.Store(int64(e.Level))
}

func (p *Progress) Round(e Round) {
	p.round.Store(int64(e.Round))
	p.frontier.Store(int64(e.Frontier))
}

func (p *Progress) Phase(e Phase) {
	if s := internedPhases[e.Name]; s != nil {
		p.phase.Store(s)
		return
	}
	name := e.Name
	p.phase.Store(&name)
}

func (p *Progress) Counter(Counter) {}

// ProgressSnapshot is the JSON shape of a Progress read.
type ProgressSnapshot struct {
	RunsStarted int64  `json:"runs_started"`
	RunsDone    int64  `json:"runs_done"`
	Running     bool   `json:"running"`
	Errors      int64  `json:"errors,omitempty"`
	Algorithm   string `json:"algorithm,omitempty"`
	Vertices    int64  `json:"vertices,omitempty"`
	Edges       int64  `json:"edges,omitempty"`
	Procs       int64  `json:"procs,omitempty"`
	Level       int64  `json:"level"`          // -1 before the first level
	LevelVerts  int64  `json:"level_vertices"` // vertices entering the level
	LevelEdges  int64  `json:"level_edges"`    // directed edges entering the level
	Round       int64  `json:"round"`          // -1 before the first round of the level
	Frontier    int64  `json:"frontier"`
	Phase       string `json:"phase,omitempty"` // last completed phase section
	Components  int64  `json:"components,omitempty"`
	LastRunNS   int64  `json:"last_run_ns,omitempty"`
	LastErr     string `json:"last_err,omitempty"`
}

// Snapshot reads the current position. Safe to call at any time from any
// goroutine; never blocks the coordinator.
func (p *Progress) Snapshot() ProgressSnapshot {
	s := ProgressSnapshot{
		RunsStarted: p.runsStarted.Load(),
		RunsDone:    p.runsDone.Load(),
		Errors:      p.errors.Load(),
		Vertices:    p.vertices.Load(),
		Edges:       p.edges.Load(),
		Procs:       p.procs.Load(),
		Level:       p.level.Load(),
		LevelVerts:  p.levelVertices.Load(),
		LevelEdges:  p.levelEdges.Load(),
		Round:       p.round.Load(),
		Frontier:    p.frontier.Load(),
		Components:  p.components.Load(),
		LastRunNS:   p.lastRunNS.Load(),
	}
	s.Running = s.RunsStarted > s.RunsDone
	if a := p.algorithm.Load(); a != nil {
		s.Algorithm = *a
	}
	if ph := p.phase.Load(); ph != nil {
		s.Phase = *ph
	}
	if e := p.lastErr.Load(); e != nil {
		s.LastErr = *e
	}
	return s
}
