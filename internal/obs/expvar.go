package obs

import (
	"expvar"
	"sync"
)

// ExpvarSink is a Recorder that aggregates the event stream into
// expvar-published counters, for long-running embedders that already expose
// /debug/vars. Published variables (all prefixed, default "parconn_"):
//
//	<p>runs, <p>components, <p>levels, <p>rounds, <p>cas_retries,
//	<p>run_ns, <p>phase_ns_<name>, <p>arena_reused_bytes,
//	<p>arena_alloc_bytes, <p>pool_worker_joins, <p>errors
//
// Counters are cumulative across runs and survive for the process lifetime;
// expvar registration is permanent, so creating a second sink with the same
// prefix reuses the existing variables instead of panicking.
type ExpvarSink struct {
	Nop
	prefix string

	runs       *expvar.Int
	errors     *expvar.Int
	components *expvar.Int
	levels     *expvar.Int
	rounds     *expvar.Int
	casRetries *expvar.Int
	runNS      *expvar.Int

	mu       sync.Mutex
	phaseNS  map[string]*expvar.Int
	counters map[string]*expvar.Int
}

// publishedInt returns the expvar.Int registered under name, publishing a
// new one if needed. Reusing an existing registration keeps repeated sink
// construction (tests, multiple pools) from hitting expvar's re-registration
// panic.
func publishedInt(name string) *expvar.Int {
	if v := expvar.Get(name); v != nil {
		if iv, ok := v.(*expvar.Int); ok {
			return iv
		}
		// Name taken by a foreign type: fall back to an unpublished counter
		// rather than panicking mid-run.
		return new(expvar.Int)
	}
	iv := new(expvar.Int)
	expvar.Publish(name, iv)
	return iv
}

// NewExpvar returns an ExpvarSink whose variables are registered under
// prefix (default "parconn_" when empty).
func NewExpvar(prefix string) *ExpvarSink {
	if prefix == "" {
		prefix = "parconn_"
	}
	return &ExpvarSink{
		prefix:     prefix,
		runs:       publishedInt(prefix + "runs"),
		errors:     publishedInt(prefix + "errors"),
		components: publishedInt(prefix + "components"),
		levels:     publishedInt(prefix + "levels"),
		rounds:     publishedInt(prefix + "rounds"),
		casRetries: publishedInt(prefix + "cas_retries"),
		runNS:      publishedInt(prefix + "run_ns"),
		phaseNS:    make(map[string]*expvar.Int),
		counters:   make(map[string]*expvar.Int),
	}
}

func (s *ExpvarSink) RunStart(RunStart) { s.runs.Add(1) }

func (s *ExpvarSink) RunEnd(e RunEnd) {
	if e.Err != "" {
		s.errors.Add(1)
	}
	s.components.Set(int64(e.Components))
	s.runNS.Add(int64(e.Duration))
}

func (s *ExpvarSink) LevelEnd(e LevelEnd) {
	s.levels.Add(1)
	s.casRetries.Add(e.CASRetries)
}

func (s *ExpvarSink) Round(Round) { s.rounds.Add(1) }

func (s *ExpvarSink) Phase(e Phase) {
	s.mu.Lock()
	v, ok := s.phaseNS[e.Name]
	if !ok {
		v = publishedInt(s.prefix + "phase_ns_" + e.Name)
		s.phaseNS[e.Name] = v
	}
	s.mu.Unlock()
	v.Add(int64(e.Duration))
}

func (s *ExpvarSink) Counter(e Counter) {
	s.mu.Lock()
	v, ok := s.counters[e.Name]
	if !ok {
		v = publishedInt(s.prefix + e.Name)
		s.counters[e.Name] = v
	}
	s.mu.Unlock()
	v.Add(e.Value)
}
