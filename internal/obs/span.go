package obs

import "time"

// KindSpan is the JSONL kind tag of request spans. Spans are request-plane
// events (one HTTP request through the serving stack), not run-plane events,
// so they are not part of the Recorder interface: emitters call the
// SpanRecorder extension directly on sinks that support it.
const KindSpan = "span"

// Span is one sampled request through the serving stack: which endpoint,
// which trace ID the client did (or did not) send, how it ended, and how
// long it took. Insert spans additionally carry the epoch the request
// published, tying a mutation in the traffic stream to the incremental
// snapshot the /v1 read endpoints serve afterwards.
type Span struct {
	TraceID  string        `json:"trace_id"`
	Endpoint string        `json:"endpoint"`
	Status   int           `json:"status"`
	Duration time.Duration `json:"duration_ns"`
	Batch    int           `json:"batch,omitempty"` // pairs/edges in the request body (batch, insert)
	Epoch    uint64        `json:"epoch,omitempty"` // incremental epoch published (insert only)
}

// SpanRecorder is the sink extension for request spans. JSONLWriter and
// FlightRecorder implement it; run-plane-only sinks do not need to. Like
// Recorder sinks, implementations must serialize internally — spans arrive
// from concurrent request goroutines.
type SpanRecorder interface {
	Span(Span)
}

// Span streams one request span record, headed like every other event.
func (j *JSONLWriter) Span(e Span) { j.emit(KindSpan, e) }

// Span retains one request span in the ring, so the debug snapshot's flight
// tail interleaves recent traffic with recent engine events.
func (f *FlightRecorder) Span(e Span) { f.add(KindSpan, e) }

// MultiSpan fans spans out to every non-nil sink, mirroring Multi for the
// request plane. It returns nil when all are nil and the single sink when
// only one is non-nil.
func MultiSpan(sinks ...SpanRecorder) SpanRecorder {
	live := make(multiSpan, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiSpan []SpanRecorder

func (m multiSpan) Span(e Span) {
	for _, s := range m {
		s.Span(e)
	}
}
