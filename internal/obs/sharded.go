package obs

import "sync/atomic"

// cacheLine padding keeps each shard's counter on its own cache line so
// concurrent workers flushing into distinct shards never false-share.
const cacheLine = 64

type paddedInt64 struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// ShardedInt64 is a contention-free accumulator for per-worker measurements
// taken inside parallel sections (CAS retry counts, for example). Workers
// Add into a shard derived from their block index; the coordinating
// goroutine Sums between sections and emits a single Recorder event. This is
// the buffered per-worker path the obsrecorder vet check directs parallel
// code to — Recorder methods themselves must never be called from inside a
// parallel loop body.
type ShardedInt64 struct {
	shards []paddedInt64
	mask   int
}

// NewShardedInt64 returns an accumulator with at least n shards, rounded up
// to a power of two (minimum 1) so shard selection is a mask.
//
//parconn:allow hotalloc sharded counters are allocated at machine construction and recycled with the machine
func NewShardedInt64(n int) *ShardedInt64 {
	size := 1
	for size < n {
		size <<= 1
	}
	return &ShardedInt64{shards: make([]paddedInt64, size), mask: size - 1}
}

// Add accumulates d into the shard selected by key (any block or worker
// index; it is masked down to the shard count). Safe for concurrent use.
func (s *ShardedInt64) Add(key int, d int64) {
	if d == 0 {
		return
	}
	s.shards[key&s.mask].v.Add(d)
}

// Sum returns the total across all shards. Call it from the coordinator
// between parallel sections for an exact total.
func (s *ShardedInt64) Sum() int64 {
	var total int64
	for i := range s.shards {
		total += s.shards[i].v.Load()
	}
	return total
}

// Reset zeroes all shards.
func (s *ShardedInt64) Reset() {
	for i := range s.shards {
		s.shards[i].v.Store(0)
	}
}
