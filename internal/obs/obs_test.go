package obs

import (
	"bytes"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

// emitAll drives one well-formed run through a Recorder and returns the
// events in emission order for comparison.
func emitAll(r Recorder) []Event {
	seq := []Event{
		{KindRunStart, RunStart{Algorithm: "decomp-arb", Vertices: 10, Edges: 18, Procs: 4, Seed: 42, Beta: 0.2}},
		{KindLevelStart, LevelStart{Level: 0, Vertices: 10, EdgesIn: 18}},
		{KindRound, Round{Level: 0, Round: 0, Frontier: 2, NewCenters: 2, Duration: time.Microsecond, CASRetries: 1}},
		{KindPhase, Phase{Level: 0, Name: PhaseInit, Duration: time.Microsecond}},
		{KindPhase, Phase{Level: 0, Name: PhaseBFSMain, Duration: 2 * time.Microsecond}},
		{KindLevelEnd, LevelEnd{Level: 0, Vertices: 10, EdgesIn: 18, EdgesCut: 6, EdgesOut: 4, Components: 3, Rounds: 1, CASRetries: 1}},
		{KindPhase, Phase{Level: 0, Name: PhaseContract, Duration: time.Microsecond}},
		{KindLevelStart, LevelStart{Level: 1, Vertices: 3, EdgesIn: 4}},
		{KindLevelEnd, LevelEnd{Level: 1, Vertices: 3, EdgesIn: 4, Components: 3, Rounds: 1}},
		{KindCounter, Counter{Name: CounterArenaReused, Value: 4096}},
		{KindCounter, Counter{Name: CounterPoolJoins, Value: 3}},
		{KindRunEnd, RunEnd{Components: 3, Duration: 10 * time.Microsecond}},
	}
	for _, ev := range seq {
		switch e := ev.V.(type) {
		case RunStart:
			r.RunStart(e)
		case RunEnd:
			r.RunEnd(e)
		case LevelStart:
			r.LevelStart(e)
		case LevelEnd:
			r.LevelEnd(e)
		case Round:
			r.Round(e)
		case Phase:
			r.Phase(e)
		case Counter:
			r.Counter(e)
		}
	}
	return seq
}

func TestTraceOrderingAndFilters(t *testing.T) {
	tr := NewTrace()
	want := emitAll(tr)
	got := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("event count %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v want %+v", i, got[i], want[i])
		}
	}
	if n := tr.Len(); n != len(want) {
		t.Fatalf("Len %d want %d", n, len(want))
	}
	if rs := tr.Runs(); len(rs) != 1 || rs[0].Seed != 42 {
		t.Fatalf("Runs: %+v", rs)
	}
	if le := tr.LevelEnds(); len(le) != 2 || le[0].EdgesOut != 4 {
		t.Fatalf("LevelEnds: %+v", le)
	}
	if ph := tr.Phases(); len(ph) != 3 || ph[2].Name != PhaseContract {
		t.Fatalf("Phases: %+v", ph)
	}
	if cs := tr.Counters(); len(cs) != 2 || cs[0].Value != 4096 {
		t.Fatalf("Counters: %+v", cs)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset left events behind")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTrace()
	want := emitAll(tr)

	// Trace re-emission path.
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// Live writer path: identical bytes after its meta header line.
	var live bytes.Buffer
	jw := NewJSONLWriter(&live)
	jw.SetTool("obs_test")
	emitAll(jw)
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if jw.Count() != int64(len(want)) {
		t.Fatalf("Count %d want %d", jw.Count(), len(want))
	}
	header, rest, found := bytes.Cut(live.Bytes(), []byte("\n"))
	if !found || !bytes.HasPrefix(header, []byte(`{"ev":"meta",`)) {
		t.Fatalf("live stream does not open with a meta header: %q", header)
	}
	if !bytes.Contains(header, []byte(`"tool":"obs_test"`)) {
		t.Fatalf("header %q missing tool name", header)
	}
	if !bytes.Equal(buf.Bytes(), rest) {
		t.Fatalf("trace and live encodings differ:\n%s\n---\n%s", buf.Bytes(), rest)
	}

	parsedLive, err := ParseJSONL(bytes.NewReader(live.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsedLive) != len(want)+1 {
		t.Fatalf("parsed %d live events want %d", len(parsedLive), len(want)+1)
	}
	meta, ok := parsedLive[0].V.(Meta)
	if !ok || meta.Env.IsZero() || meta.Tool != "obs_test" {
		t.Fatalf("live header parsed as %+v", parsedLive[0])
	}
	if got := EnvOf(parsedLive); got != CaptureEnv() {
		t.Fatalf("EnvOf = %+v want current env", got)
	}
	sum, err := Validate(parsedLive)
	if err != nil {
		t.Fatalf("live trace invalid: %v", err)
	}
	if sum.Metas != 1 {
		t.Fatalf("summary %+v: want 1 meta", sum)
	}

	got, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v want %+v", i, got[i], want[i])
		}
	}
	if _, err := Validate(got); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
}

func TestAppendRecordEmptyAndTagged(t *testing.T) {
	rec, err := AppendRecord(nil, "counter", Counter{Name: CounterPoolJoins, Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ev":"counter","name":"pool_worker_joins","value":7}` + "\n"
	if string(rec) != want {
		t.Fatalf("got %q want %q", rec, want)
	}
	// Event kinds with omitempty zeros must still keep the meaningful
	// zero-valued numeric fields (level 0, round 0).
	rec, err = AppendRecord(nil, "round", Round{})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"level":0`, `"round":0`, `"frontier":0`} {
		if !strings.Contains(string(rec), field) {
			t.Fatalf("record %q missing %s", rec, field)
		}
	}
	if _, err := AppendRecord(nil, "x", 42); err == nil {
		t.Fatal("non-object event accepted")
	}
}

func TestParseJSONLErrors(t *testing.T) {
	for name, in := range map[string]string{
		"garbage":      "not json\n",
		"missing-kind": `{"level":0}` + "\n",
		"unknown-kind": `{"ev":"bogus"}` + "\n",
		"bad-field":    `{"ev":"round","level":"zero"}` + "\n",
	} {
		if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Blank lines are fine.
	evs, err := ParseJSONL(strings.NewReader("\n\n" + `{"ev":"counter","name":"pool_worker_joins","value":1}` + "\n\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("blank-line handling: %v %v", evs, err)
	}
}

func TestValidateRejects(t *testing.T) {
	run := RunStart{Vertices: 4, Edges: 6}
	for name, evs := range map[string][]Event{
		"nested-run":      {{KindRunStart, run}, {KindRunStart, run}},
		"end-no-start":    {{KindRunEnd, RunEnd{}}},
		"open-run":        {{KindRunStart, run}},
		"open-level":      {{KindRunStart, run}, {KindLevelStart, LevelStart{Level: 0}}, {KindRunEnd, RunEnd{}}},
		"level-skip":      {{KindRunStart, run}, {KindLevelStart, LevelStart{Level: 1}}},
		"mismatched-end":  {{KindRunStart, run}, {KindLevelStart, LevelStart{Level: 0}}, {KindLevelEnd, LevelEnd{Level: 1}}},
		"edges-grow":      {{KindRunStart, run}, {KindLevelStart, LevelStart{Level: 0, EdgesIn: 4}}, {KindLevelEnd, LevelEnd{Level: 0, EdgesIn: 4}}, {KindLevelStart, LevelStart{Level: 1, EdgesIn: 9}}},
		"out-exceeds-in":  {{KindRunStart, run}, {KindLevelStart, LevelStart{Level: 0, EdgesIn: 4}}, {KindLevelEnd, LevelEnd{Level: 0, EdgesIn: 4, EdgesOut: 5}}},
		"meta-in-run":     {{KindRunStart, run}, {KindMeta, Meta{}}, {KindRunEnd, RunEnd{}}},
		"unknown-phase":   {{KindPhase, Phase{Name: "warp_drive"}}},
		"unknown-counter": {{KindCounter, Counter{Name: "bogus"}}},
		"negative-round":  {{KindRound, Round{Frontier: -1}}},
	} {
		if _, err := Validate(evs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateRepeatedRuns(t *testing.T) {
	// Back-to-back runs each restarting at level 0 must validate even when
	// the second run's graph is larger (prevEdgesIn resets per recursion).
	tr := NewTrace()
	emitAll(tr)
	emitAll(tr)
	s, err := Validate(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 2 || s.Levels != 4 || s.Counters != 4 {
		t.Fatalf("summary %+v", s)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("all-nil Multi must collapse to nil")
	}
	tr := NewTrace()
	if got := Multi(nil, tr, nil); got != Recorder(tr) {
		t.Fatal("single survivor must be returned unwrapped")
	}
	a, b := NewTrace(), NewTrace()
	m := Multi(a, nil, b)
	emitAll(m)
	if a.Len() == 0 || a.Len() != b.Len() {
		t.Fatalf("fan-out mismatch: %d vs %d", a.Len(), b.Len())
	}
}

func TestNopAndNilRecorder(t *testing.T) {
	var r Recorder = Nop{}
	emitAll(r) // must not panic or record anything
}

func TestShardedInt64(t *testing.T) {
	s := NewShardedInt64(5) // rounds up to 8
	s.Add(0, 3)
	s.Add(8, 4) // masks onto shard 0
	s.Add(3, 0) // zero deltas are skipped
	if got := s.Sum(); got != 7 {
		t.Fatalf("Sum %d want 7", got)
	}
	s.Reset()
	if got := s.Sum(); got != 0 {
		t.Fatalf("Sum after Reset %d want 0", got)
	}

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Sum(); got != workers*perWorker {
		t.Fatalf("concurrent Sum %d want %d", got, workers*perWorker)
	}
}

// TestExpvarSinkConcurrentRuns drives two concurrent runs through one
// shared sink — the documented sharing contract — and checks the cumulative
// counters sum both runs exactly (the race detector guards the rest).
func TestExpvarSinkConcurrentRuns(t *testing.T) {
	s := NewExpvar("obsconc_")
	const runsPerWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runsPerWorker; i++ {
				emitAll(s)
			}
		}()
	}
	wg.Wait()
	get := func(name string) int64 {
		v, ok := expvar.Get("obsconc_" + name).(*expvar.Int)
		if !ok {
			t.Fatalf("variable %s not published", name)
		}
		return v.Value()
	}
	// emitAll: 1 run, 2 levels, 1 round, 3 phases with 4us total, 1 CAS retry.
	if got := get("runs"); got != 2*runsPerWorker {
		t.Fatalf("runs %d want %d", got, 2*runsPerWorker)
	}
	if got := get("levels"); got != 2*runsPerWorker*2 {
		t.Fatalf("levels %d want %d", got, 2*runsPerWorker*2)
	}
	if got := get("rounds"); got != 2*runsPerWorker {
		t.Fatalf("rounds %d want %d", got, 2*runsPerWorker)
	}
	if got := get("cas_retries"); got != 2*runsPerWorker {
		t.Fatalf("cas_retries %d want %d", got, 2*runsPerWorker)
	}
	wantPhaseNS := int64(2*runsPerWorker) * int64(4*time.Microsecond)
	phaseNS := get("phase_ns_init") + get("phase_ns_bfs_main") + get("phase_ns_contract")
	if phaseNS != wantPhaseNS {
		t.Fatalf("phase ns %d want %d", phaseNS, wantPhaseNS)
	}
}

// TestShardedInt64SharedBetweenRuns mirrors the engine pattern of two
// concurrent coordinators flushing worker counts through one accumulator.
func TestShardedInt64SharedBetweenRuns(t *testing.T) {
	s := NewShardedInt64(4)
	var wg sync.WaitGroup
	const perRun = 10_000
	for run := 0; run < 2; run++ {
		wg.Add(1)
		go func(run int) {
			defer wg.Done()
			var inner sync.WaitGroup
			for w := 0; w < 4; w++ {
				inner.Add(1)
				go func(w int) {
					defer inner.Done()
					for i := 0; i < perRun; i++ {
						s.Add(run*4+w, 1)
					}
				}(w)
			}
			inner.Wait()
		}(run)
	}
	wg.Wait()
	if got := s.Sum(); got != 2*4*perRun {
		t.Fatalf("Sum %d want %d", got, 2*4*perRun)
	}
}

func TestExpvarSink(t *testing.T) {
	s := NewExpvar("obstest_")
	emitAll(s)
	// Reconstruction with the same prefix must reuse registrations, not panic.
	s2 := NewExpvar("obstest_")
	emitAll(s2)
	get := func(name string) int64 {
		v, ok := expvar.Get("obstest_" + name).(*expvar.Int)
		if !ok {
			t.Fatalf("variable %s not published", name)
		}
		return v.Value()
	}
	if got := get("runs"); got != 2 {
		t.Fatalf("runs %d want 2", got)
	}
	if got := get("levels"); got != 4 {
		t.Fatalf("levels %d want 4", got)
	}
	if got := get("components"); got != 3 {
		t.Fatalf("components %d want 3", got)
	}
	if got := get("pool_worker_joins"); got != 6 {
		t.Fatalf("pool_worker_joins %d want 6", got)
	}
	if get("phase_ns_contract") <= 0 {
		t.Fatal("phase_ns_contract not accumulated")
	}
}
