package obshttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"parconn/internal/obs"
)

// drive pushes one small well-formed run through the state's recorder.
func drive(rec obs.Recorder) {
	rec.RunStart(obs.RunStart{Algorithm: "decomp-arb-hybrid-CC", Vertices: 100, Edges: 400, Procs: 2, Seed: 7, Beta: 0.2})
	rec.LevelStart(obs.LevelStart{Level: 0, Vertices: 100, EdgesIn: 400})
	rec.Round(obs.Round{Level: 0, Round: 0, Frontier: 10, NewCenters: 10, Duration: 3 * time.Microsecond})
	rec.Phase(obs.Phase{Level: 0, Name: obs.PhaseBFSSparse, Duration: 5 * time.Microsecond})
	rec.LevelEnd(obs.LevelEnd{Level: 0, Vertices: 100, EdgesIn: 400, EdgesCut: 40, EdgesOut: 20, Components: 30, Rounds: 1})
	rec.Phase(obs.Phase{Level: 0, Name: obs.PhaseContract, Duration: 2 * time.Microsecond})
	rec.RunEnd(obs.RunEnd{Components: 3, Duration: 20 * time.Microsecond})
}

func TestDebugParconnEndpoint(t *testing.T) {
	state := NewState("obshttp_test", 8)
	drive(state.Recorder())

	srv := httptest.NewServer(state.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/parconn")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Tool != "obshttp_test" || snap.Env.IsZero() {
		t.Fatalf("snapshot header %+v %+v", snap.Tool, snap.Env)
	}
	if snap.Progress.RunsDone != 1 || snap.Progress.Components != 3 {
		t.Fatalf("progress %+v", snap.Progress)
	}
	if len(snap.Hist.Phases) != 2 {
		t.Fatalf("phase histograms %+v", snap.Hist.Phases)
	}
	if snap.Hist.Frontier.Count != 1 || snap.Hist.Frontier.Max != 10 {
		t.Fatalf("frontier histogram %+v", snap.Hist.Frontier)
	}
	if snap.Flight.Dropped != 0 || len(snap.Flight.Events) != 7 {
		t.Fatalf("flight %d dropped, %d events", snap.Flight.Dropped, len(snap.Flight.Events))
	}
	// Flight events reuse the JSONL encoding, kind-tagged (re-indented by
	// the snapshot's MarshalIndent).
	var tag struct {
		Ev string `json:"ev"`
	}
	if err := json.Unmarshal(snap.Flight.Events[0], &tag); err != nil || tag.Ev != "run_start" {
		t.Fatalf("flight event %s: tag %q err %v", snap.Flight.Events[0], tag.Ev, err)
	}
}

func TestDebugVarsAndPprofMounted(t *testing.T) {
	state := NewState("obshttp_test", 0)
	drive(state.Recorder())
	srv := httptest.NewServer(state.Handler())
	defer srv.Close()

	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d", resp.StatusCode)
	}
}

func TestServeBindsAndAnswers(t *testing.T) {
	state := NewState("obshttp_test", 0)
	srv, err := Serve("127.0.0.1:0", state)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	drive(state.Recorder())
	resp, err := http.Get("http://" + srv.Addr().String() + "/debug/parconn")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Progress.RunsStarted != 1 {
		t.Fatalf("progress %+v", snap.Progress)
	}
}

func TestSnapshotDuringLiveRun(t *testing.T) {
	// A snapshot taken mid-run (between coordinator emissions) must show the
	// in-flight position without waiting for the run to finish.
	state := NewState("obshttp_test", 0)
	rec := state.Recorder()
	rec.RunStart(obs.RunStart{Algorithm: "decomp-arb-CC", Vertices: 10, Edges: 20})
	rec.LevelStart(obs.LevelStart{Level: 0, Vertices: 10, EdgesIn: 20})
	rec.Round(obs.Round{Level: 0, Round: 2, Frontier: 5})

	snap, err := state.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Progress.Running || snap.Progress.Level != 0 || snap.Progress.Round != 2 || snap.Progress.Frontier != 5 {
		t.Fatalf("mid-run progress %+v", snap.Progress)
	}
}

// TestShutdownDrainsInFlight starts a request that blocks inside its
// handler, initiates Shutdown concurrently, and checks that (a) the
// in-flight request completes with its full body, (b) Shutdown does not
// return before the handler finishes, and (c) new connections are refused
// once shutdown has begun.
func TestShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var inFlightDone atomic.Bool
	srv, err := ServeHandler("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		inFlightDone.Store(true)
		io.WriteString(w, "drained")
	}))
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr().String()

	type getResult struct {
		body string
		err  error
	}
	got := make(chan getResult, 1)
	go func() {
		resp, err := http.Get(base + "/")
		if err != nil {
			got <- getResult{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- getResult{body: string(b), err: err}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must block while the request is in flight.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !inFlightDone.Load() {
		t.Fatal("Shutdown returned before the in-flight handler finished")
	}
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request: body %q err %v", r.body, r.err)
	}
	// The listener is gone: a fresh connection must fail.
	c := &http.Client{Timeout: time.Second}
	if resp, err := c.Get(base + "/"); err == nil {
		resp.Body.Close()
		t.Fatal("request after Shutdown succeeded")
	}
}

// TestServeTimeoutsSet guards the slowloris fix: the server obshttp starts
// must carry header and idle timeouts.
func TestServeTimeoutsSet(t *testing.T) {
	srv, err := ServeHandler("127.0.0.1:0", http.NotFoundHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if srv.srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set")
	}
	if srv.srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout not set")
	}
}
