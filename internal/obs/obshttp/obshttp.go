// Package obshttp is the live read side of the observability layer: a
// debug HTTP server exposing the engine's current position, phase
// histograms, and flight-recorder tail while a run executes, alongside the
// stdlib's pprof and expvar endpoints. Attach a State's Recorder to a run
// (Options.Recorder) and mount its Handler:
//
//	state := obshttp.NewState("cmd/connect", 0)
//	srv, err := obshttp.Serve(":6060", state)
//	...
//	parconn.ConnectedComponents(g, parconn.Options{Recorder: state.Recorder()})
//
// Endpoints:
//
//	/debug/parconn  JSON snapshot: progress, per-(level, phase) histograms,
//	                frontier/round histograms, recent events (flight tail)
//	/debug/vars     expvar counters (cumulative across runs, parconn_* keys)
//	/debug/pprof/   CPU/heap/goroutine profiles; decomposition levels run
//	                under parconn_level/parconn_phase pprof labels
//
// Everything here reads through atomics or sink-internal locks, so a
// snapshot request never blocks the run's coordinating goroutine.
package obshttp

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"

	"parconn/internal/obs"
)

// State bundles the read-side sinks one process exposes: live progress,
// histograms, the flight-recorder tail, and cumulative expvar counters.
// One State serves any number of sequential or concurrent runs.
type State struct {
	Progress *obs.Progress
	Hists    *obs.HistogramSet
	Flight   *obs.FlightRecorder

	tool string
	env  obs.Env
	rec  obs.Recorder
}

// NewState builds the sink bundle. tool names the embedding program in the
// snapshot; flightCap bounds the flight-recorder ring (0 means the default).
func NewState(tool string, flightCap int) *State {
	s := &State{
		Progress: obs.NewProgress(),
		Hists:    obs.NewHistogramSet(),
		Flight:   obs.NewFlightRecorder(flightCap),
		tool:     tool,
		env:      obs.CaptureEnv(),
	}
	s.rec = obs.Multi(s.Progress, s.Hists, s.Flight, obs.NewExpvar(""))
	return s
}

// Recorder returns the Recorder that feeds every sink in the bundle. Pass
// it (possibly through obs.Multi with other sinks) as the run's Recorder.
func (s *State) Recorder() obs.Recorder { return s.rec }

// Snapshot is the JSON document served at /debug/parconn.
type Snapshot struct {
	Tool     string                   `json:"tool,omitempty"`
	Env      obs.Env                  `json:"env"`
	Progress obs.ProgressSnapshot     `json:"progress"`
	Hist     obs.HistogramSetSnapshot `json:"histograms"`
	Flight   FlightSnapshot           `json:"flight"`
}

// FlightSnapshot is the flight-recorder tail in JSONL event encoding.
type FlightSnapshot struct {
	Dropped int64             `json:"dropped"` // events older than the ring
	Events  []json.RawMessage `json:"events,omitempty"`
}

// Snapshot collects the current state of every sink.
func (s *State) Snapshot() (Snapshot, error) {
	events, dropped := s.Flight.Snapshot()
	fs := FlightSnapshot{Dropped: dropped, Events: make([]json.RawMessage, 0, len(events))}
	var buf []byte
	for _, ev := range events {
		var err error
		buf, err = obs.AppendRecord(nil, ev.Kind, ev.V)
		if err != nil {
			return Snapshot{}, err
		}
		// AppendRecord terminates with a newline; RawMessage wants bare JSON.
		fs.Events = append(fs.Events, json.RawMessage(buf[:len(buf)-1]))
	}
	return Snapshot{
		Tool:     s.tool,
		Env:      s.env,
		Progress: s.Progress.Snapshot(),
		Hist:     s.Hists.Snapshot(),
		Flight:   fs,
	}, nil
}

// serveSnapshot handles GET /debug/parconn.
func (s *State) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// Handler returns the debug mux: /debug/parconn, /debug/vars, /debug/pprof.
func (s *State) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/parconn", s.serveSnapshot)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("parconn debug server\n\n/debug/parconn\n/debug/vars\n/debug/pprof/\n"))
	})
	return mux
}

// Serve listens on addr and serves the debug handler in a background
// goroutine, returning the bound listener address (useful with ":0").
// The server lives until the process exits; debug servers have no graceful
// shutdown story worth the plumbing in the CLI tools this backs.
func Serve(addr string, s *State) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return ln.Addr(), nil
}
