// Package obshttp is the live read side of the observability layer: a
// debug HTTP server exposing the engine's current position, phase
// histograms, and flight-recorder tail while a run executes, alongside the
// stdlib's pprof and expvar endpoints. Attach a State's Recorder to a run
// (Options.Recorder) and mount its Handler:
//
//	state := obshttp.NewState("cmd/connect", 0)
//	srv, err := obshttp.Serve(":6060", state)
//	...
//	parconn.ConnectedComponents(g, parconn.Options{Recorder: state.Recorder()})
//
// Endpoints:
//
//	/metrics        Prometheus text exposition of the State's metrics
//	                registry (runtime series plus whatever the command adds)
//	/debug/parconn  JSON snapshot: progress, per-(level, phase) histograms,
//	                frontier/round histograms, recent events (flight tail)
//	/debug/vars     expvar counters (cumulative across runs, parconn_* keys)
//	/debug/pprof/   CPU/heap/goroutine profiles; decomposition levels run
//	                under parconn_level/parconn_phase pprof labels
//
// Everything here reads through atomics or sink-internal locks, so a
// snapshot request never blocks the run's coordinating goroutine.
package obshttp

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"parconn/internal/obs"
	"parconn/internal/obs/metrics"
)

// State bundles the read-side sinks one process exposes: live progress,
// histograms, the flight-recorder tail, cumulative expvar counters, and the
// Prometheus-text metrics registry served at /metrics. One State serves any
// number of sequential or concurrent runs.
type State struct {
	Progress *obs.Progress
	Hists    *obs.HistogramSet
	Flight   *obs.FlightRecorder
	// Metrics is the process metrics registry, pre-seeded with runtime
	// series (goroutines, heap, GC) and exposed at /metrics on Handler's
	// mux. Embedding commands register their own series in it (e.g.
	// serve.NewObserver for the request plane).
	Metrics *metrics.Registry

	tool string
	env  obs.Env
	rec  obs.Recorder
}

// NewState builds the sink bundle. tool names the embedding program in the
// snapshot; flightCap bounds the flight-recorder ring (0 means the default).
func NewState(tool string, flightCap int) *State {
	s := &State{
		Progress: obs.NewProgress(),
		Hists:    obs.NewHistogramSet(),
		Flight:   obs.NewFlightRecorder(flightCap),
		Metrics:  metrics.New(),
		tool:     tool,
		env:      obs.CaptureEnv(),
	}
	metrics.RegisterRuntime(s.Metrics)
	s.rec = obs.Multi(s.Progress, s.Hists, s.Flight, obs.NewExpvar(""))
	return s
}

// Recorder returns the Recorder that feeds every sink in the bundle. Pass
// it (possibly through obs.Multi with other sinks) as the run's Recorder.
func (s *State) Recorder() obs.Recorder { return s.rec }

// Snapshot is the JSON document served at /debug/parconn.
type Snapshot struct {
	Tool     string                   `json:"tool,omitempty"`
	Env      obs.Env                  `json:"env"`
	Progress obs.ProgressSnapshot     `json:"progress"`
	Hist     obs.HistogramSetSnapshot `json:"histograms"`
	Flight   FlightSnapshot           `json:"flight"`
}

// FlightSnapshot is the flight-recorder tail in JSONL event encoding.
type FlightSnapshot struct {
	Dropped int64             `json:"dropped"` // events older than the ring
	Events  []json.RawMessage `json:"events,omitempty"`
}

// Snapshot collects the current state of every sink.
func (s *State) Snapshot() (Snapshot, error) {
	events, dropped := s.Flight.Snapshot()
	fs := FlightSnapshot{Dropped: dropped, Events: make([]json.RawMessage, 0, len(events))}
	var buf []byte
	for _, ev := range events {
		var err error
		buf, err = obs.AppendRecord(nil, ev.Kind, ev.V)
		if err != nil {
			return Snapshot{}, err
		}
		// AppendRecord terminates with a newline; RawMessage wants bare JSON.
		fs.Events = append(fs.Events, json.RawMessage(buf[:len(buf)-1]))
	}
	return Snapshot{
		Tool:     s.tool,
		Env:      s.env,
		Progress: s.Progress.Snapshot(),
		Hist:     s.Hists.Snapshot(),
		Flight:   fs,
	}, nil
}

// serveSnapshot handles GET /debug/parconn.
func (s *State) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// Handler returns the debug mux: /metrics, /debug/parconn, /debug/vars,
// /debug/pprof.
func (s *State) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.Metrics.Handler())
	mux.HandleFunc("/debug/parconn", s.serveSnapshot)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("parconn debug server\n\n/metrics\n/debug/parconn\n/debug/vars\n/debug/pprof/\n"))
	})
	return mux
}

// Server is a handle on a running HTTP server started by Serve or
// ServeHandler: the bound address (useful with ":0") and a graceful
// shutdown path. The embedding command is expected to call Shutdown (or
// Close) before exiting so in-flight requests drain instead of being cut
// mid-response.
type Server struct {
	addr net.Addr
	srv  *http.Server
	done chan struct{} // closed when the serve loop returns
}

// Addr returns the listener's bound address.
func (s *Server) Addr() net.Addr { return s.addr }

// Shutdown stops accepting new connections and waits for in-flight
// requests to complete, up to ctx's deadline. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	return err
}

// Close drops the listener and every active connection immediately. Prefer
// Shutdown; Close is the abandon-ship path.
func (s *Server) Close() error { return s.srv.Close() }

// ServeHandler listens on addr and serves h in a background goroutine.
// The server carries header/idle timeouts so an idle or slow-header client
// (slowloris) cannot pin a connection forever; there is no ReadTimeout or
// WriteTimeout because the debug endpoints legitimately stream for long
// windows (/debug/pprof/profile, /debug/pprof/trace).
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	s := &Server{addr: ln.Addr(), srv: srv, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		srv.Serve(ln)
	}()
	return s, nil
}

// Serve listens on addr and serves the debug handler in a background
// goroutine.
func Serve(addr string, s *State) (*Server, error) {
	return ServeHandler(addr, s.Handler())
}
