package prand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	for i := uint64(0); i < 100; i++ {
		if Hash64(i) != Hash64(i) {
			t.Fatalf("Hash64(%d) not deterministic", i)
		}
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Hash64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Hash64(%d) == Hash64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestHash32Distribution(t *testing.T) {
	// Count bits set across many hashes; should be ~16 per value on average.
	var total int
	const trials = 10000
	for i := uint64(0); i < trials; i++ {
		v := Hash32(i)
		for v != 0 {
			total += int(v & 1)
			v >>= 1
		}
	}
	mean := float64(total) / trials
	if mean < 15.5 || mean > 16.5 {
		t.Fatalf("mean bits set = %.3f, want ~16", mean)
	}
}

func TestSourceDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestReseedResets(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("Reseed did not reproduce stream at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt31nRange(t *testing.T) {
	s := New(4)
	for _, n := range []int32{1, 5, 1000, math.MaxInt32} {
		for i := 0; i < 200; i++ {
			v := s.Int31n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int31n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	// Chi-squared-ish sanity: 8 buckets, 80k draws, each bucket within 5%.
	s := New(11)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := draws / n
	for b, c := range counts {
		if c < want*95/100 || c > want*105/100 {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestExpMean(t *testing.T) {
	// Mean of Exp(lambda) is 1/lambda; with 200k samples the sample mean
	// should be within 2% for lambda in a practical range.
	for _, lambda := range []float64{0.1, 0.5, 1, 2} {
		s := New(99)
		const trials = 200000
		var sum float64
		for i := 0; i < trials; i++ {
			v := s.Exp(lambda)
			if v < 0 {
				t.Fatalf("Exp(%v) produced negative %v", lambda, v)
			}
			sum += v
		}
		mean := sum / trials
		want := 1 / lambda
		if math.Abs(mean-want)/want > 0.02 {
			t.Fatalf("Exp(%v) sample mean %.4f, want %.4f +/-2%%", lambda, mean, want)
		}
	}
}

func TestExpPanicsOnBadLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestExpFromUniformMatchesDistribution(t *testing.T) {
	// Empirical CDF at the median: P(X < ln2/lambda) should be ~0.5.
	const lambda = 0.2
	median := math.Ln2 / lambda
	below := 0
	const trials = 100000
	for i := uint64(0); i < trials; i++ {
		if ExpFromUniform(Hash64(i), lambda) < median {
			below++
		}
	}
	frac := float64(below) / trials
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("fraction below median = %.4f, want ~0.5", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(123)
	a := root.Split(0)
	b := root.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams shared %d outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split(9)
	b := New(5).Split(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split not deterministic at step %d", i)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	// mul64 must agree with big-number multiplication modulo 2^64 and on
	// the high word via the identity (a*b)>>64 computed by four-way split.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSourceUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Hash64(uint64(i))
	}
	_ = sink
}

func TestSourceUint32(t *testing.T) {
	s := New(8)
	var or uint32
	for i := 0; i < 100; i++ {
		or |= s.Uint32()
	}
	// 100 draws must collectively touch high and low bits.
	if or>>28 == 0 || or&0xF == 0 {
		t.Fatalf("Uint32 outputs look degenerate: %x", or)
	}
}

func TestFastLogAccuracy(t *testing.T) {
	// fastLog backs the exponential shift draws; verify it tracks math.Log
	// to well under the documented 1e-7 relative error across the full
	// range of inputs ExpFromUniform can produce, including the extremes.
	check := func(x float64) {
		got, want := fastLog(x), math.Log(x)
		if x == 1 {
			if got != 0 {
				t.Fatalf("fastLog(1) = %v, want 0", got)
			}
			return
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-7 {
			t.Fatalf("fastLog(%v) = %v, math.Log = %v, rel err %v", x, got, want, rel)
		}
	}
	check(1)
	check(1 - float64((uint64(1)<<53-1)>>11)/(1<<53)) // smallest 1-f
	for i := uint64(0); i < 200000; i++ {
		f := float64(Hash64(i)>>11) / (1 << 53)
		check(1 - f)
	}
}
