package prand

import "testing"

func TestPermutationIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000} {
		p := Permutation(n, 42)
		if len(p) != n {
			t.Fatalf("n=%d: len=%d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n {
				t.Fatalf("n=%d: out of range value %d", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a := Permutation(500, 7)
	b := Permutation(500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	a := Permutation(500, 1)
	b := Permutation(500, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	// Expect about 1 fixed coincidence; 50+ identical positions would mean
	// the seeds are not being used.
	if same > 50 {
		t.Fatalf("different seeds agree on %d/500 positions", same)
	}
}

func TestPermutationUniformFirstElement(t *testing.T) {
	// The first element should be roughly uniform over [0,n).
	const n, trials = 10, 20000
	var counts [n]int
	for s := uint64(0); s < trials; s++ {
		counts[Permutation(n, s)[0]]++
	}
	want := trials / n
	for v, c := range counts {
		if c < want*90/100 || c > want*110/100 {
			t.Fatalf("value %d appeared first %d times, want ~%d", v, c, want)
		}
	}
}
