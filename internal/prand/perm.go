package prand

// Permutation returns a uniformly random permutation of 0..n-1 as int32
// values, generated deterministically from seed with a Fisher-Yates shuffle.
//
// The paper generates this permutation in parallel; a sequential shuffle is
// used here because it is a one-time O(n) setup cost that is a tiny fraction
// of a connectivity run, and it keeps the permutation independent of the
// worker count (stronger determinism than a parallel shuffle would give).
func Permutation(n int, seed uint64) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	s := New(seed)
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
