// Package prand provides deterministic, splittable pseudo-random number
// generation for parallel algorithms.
//
// Every randomized component of the library (exponential start-time shifts,
// random permutations, graph generators, hash functions) draws from this
// package so that a fixed seed reproduces an identical run regardless of the
// number of workers. The generators are cheap value types: a parallel loop
// typically derives an independent stream per index with Hash64 or per block
// with Split, rather than sharing one stream under a lock.
package prand

import "math"

// splitmix64 advances x by the splitmix64 increment and returns the mixed
// output. It is the standard seeding/stream-splitting function from
// Steele, Lea, Flood (OOPSLA'14) and is also a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes x to a uniform 64-bit value. It is stateless: Hash64(i) for
// i = 0, 1, 2, ... is a standard way to get per-index randomness inside a
// parallel loop without any shared state.
func Hash64(x uint64) uint64 {
	return splitmix64(x)
}

// Hash32 mixes x to a uniform 32-bit value.
func Hash32(x uint64) uint32 {
	return uint32(splitmix64(x) >> 32)
}

// Source is a small, fast xoshiro256++ PRNG. The zero value is not a valid
// generator; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed resets the generator state from seed.
func (s *Source) Reseed(seed uint64) {
	x := seed
	x += 0x9e3779b97f4a7c15
	s.s0 = splitmix64(x)
	x += 0x9e3779b97f4a7c15
	s.s1 = splitmix64(x)
	x += 0x9e3779b97f4a7c15
	s.s2 = splitmix64(x)
	x += 0x9e3779b97f4a7c15
	s.s3 = splitmix64(x)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s0+s.s3, 23) + s.s0
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Uint32 returns a uniform 32-bit value.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prand: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (s *Source) Int31n(n int32) int32 {
	if n <= 0 {
		panic("prand: Int31n called with n <= 0")
	}
	return int32(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prand: Uint64n called with n == 0")
	}
	// Lemire (2019): multiply-and-shift with rejection of the biased zone.
	hi, lo := mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(s.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	c0 := a0 * b0
	t := a1*b0 + c0>>32
	c1 := t & mask32
	c2 := t >> 32
	c1 += a0 * b1
	hi = a1*b1 + c2 + c1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with rate lambda
// (mean 1/lambda) by inversion. It panics if lambda <= 0.
//
// The low-diameter decomposition assigns each vertex a start-time shift
// drawn from this distribution with lambda = beta (Miller et al. SPAA'13).
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("prand: Exp called with lambda <= 0")
	}
	// 1-Float64() is in (0,1], so Log never sees 0.
	return -math.Log(1-s.Float64()) / lambda
}

// Split returns a new Source whose stream is independent of s for all
// practical purposes, derived from s's stream and the given index. Parallel
// workers split one root source per block so results do not depend on the
// number of workers.
func (s *Source) Split(index uint64) *Source {
	return New(splitmix64(s.s0^rotl(s.s3, 13)) ^ splitmix64(index+0x632be59bd9b4e019))
}

// ExpFromUniform converts a uniform 64-bit value to an exponential draw with
// rate lambda. Combined with Hash64 it gives per-index exponential shifts
// inside a parallel loop with no shared state:
//
//	delta := prand.ExpFromUniform(prand.Hash64(seed^uint64(v)), beta)
//
// The logarithm is fastLog rather than math.Log: the draw is the per-vertex
// inner loop of the decomposition's init phase, and the polynomial's ~1e-7
// relative error is far below the distribution tolerances anything downstream
// depends on. The draws are still exactly deterministic per (u, lambda).
func ExpFromUniform(u uint64, lambda float64) float64 {
	f := float64(u>>11) / (1 << 53) // [0,1)
	return -fastLog(1-f) / lambda
}

// fastLog returns ln(x) for x in (0, 1] to ~1e-7 relative accuracy. It
// splits x into exponent and mantissa from the float bits, folds the
// mantissa into [sqrt2/2, sqrt2), and evaluates the odd atanh series
// ln(m) = 2(s + s³/3 + s⁵/5 + s⁷/7) with s = (m-1)/(m+1), |s| < 0.1716.
// The truncation error is under s⁹/9 ≈ 1.3e-8. Pure float arithmetic in a
// fixed order, so results are identical across platforms and builds.
func fastLog(x float64) float64 {
	bits := math.Float64bits(x)
	e := float64(int64(bits>>52) - 1023)
	m := math.Float64frombits(bits&0x000FFFFFFFFFFFFF | 0x3FF0000000000000) // [1,2)
	if m > math.Sqrt2 {
		m *= 0.5
		e++
	}
	s := (m - 1) / (m + 1)
	s2 := s * s
	ln := 2 * s * (1 + s2*(1.0/3+s2*(1.0/5+s2*(1.0/7))))
	return e*math.Ln2 + ln
}
