package hashtable

import (
	"sort"
	"sync"
	"testing"

	"parconn/internal/prand"
)

func TestInsertAndContains(t *testing.T) {
	s := NewSet(1, 100)
	for i := uint64(0); i < 100; i++ {
		if !s.Insert(i * 7) {
			t.Fatalf("Insert(%d) reported duplicate on first insert", i*7)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len=%d want 100", s.Len())
	}
	for i := uint64(0); i < 100; i++ {
		if !s.Contains(i * 7) {
			t.Fatalf("Contains(%d) = false", i*7)
		}
		if s.Contains(i*7 + 1) {
			t.Fatalf("Contains(%d) = true for absent key", i*7+1)
		}
	}
}

func TestInsertDuplicates(t *testing.T) {
	s := NewSet(1, 10)
	if !s.Insert(5) || s.Insert(5) || s.Insert(5) {
		t.Fatal("duplicate insert not detected")
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d want 1", s.Len())
	}
}

func TestInsertZeroKey(t *testing.T) {
	s := NewSet(1, 4)
	if !s.Insert(0) {
		t.Fatal("Insert(0) failed")
	}
	if !s.Contains(0) {
		t.Fatal("Contains(0) false")
	}
}

func TestInsertEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSet(1, 4).Insert(Empty)
}

func TestElementsMatchInserted(t *testing.T) {
	s := NewSet(1, 1000)
	want := make([]uint64, 0, 1000)
	src := prand.New(9)
	seen := map[uint64]bool{}
	for len(want) < 1000 {
		k := src.Uint64() >> 1
		if !seen[k] {
			seen[k] = true
			want = append(want, k)
			s.Insert(k)
		}
	}
	got := s.Elements(2)
	if len(got) != len(want) {
		t.Fatalf("Elements len=%d want %d", len(got), len(want))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element mismatch at %d", i)
		}
	}
}

func TestConcurrentInsertExactlyOnce(t *testing.T) {
	// Many goroutines insert overlapping key ranges; each key must be
	// reported newly-inserted exactly once and the final set must be exact.
	const keys = 20000
	const workers = 8
	s := NewSet(0, keys)
	newCount := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := 0
			// Each worker inserts all keys, in a different order.
			for i := 0; i < keys; i++ {
				k := uint64((i*(w+3))%keys) * 1315423911
				if s.Insert(k) {
					c++
				}
			}
			newCount[w] = c
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range newCount {
		total += c
	}
	if total != keys {
		t.Fatalf("total new inserts = %d, want %d", total, keys)
	}
	if s.Len() != keys {
		t.Fatalf("Len=%d want %d", s.Len(), keys)
	}
	if len(s.Elements(0)) != keys {
		t.Fatalf("Elements len=%d want %d", len(s.Elements(0)), keys)
	}
}

func TestNearCapacity(t *testing.T) {
	// Fill to the declared capacity; must not panic and must keep all keys.
	const n = 5000
	s := NewSet(1, n)
	for i := uint64(1); i <= n; i++ {
		s.Insert(i * 2654435761)
	}
	if s.Len() != n {
		t.Fatalf("Len=%d want %d", s.Len(), n)
	}
}

func TestTinyCapacity(t *testing.T) {
	s := NewSet(1, 0)
	s.Insert(1)
	s.Insert(2)
	if s.Len() != 2 {
		t.Fatalf("Len=%d", s.Len())
	}
}

func TestContainsEmptyKeyFalse(t *testing.T) {
	s := NewSet(1, 4)
	if s.Contains(Empty) {
		t.Fatal("Contains(Empty) = true")
	}
}

func BenchmarkInsert1M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSet(0, 1<<20)
		for k := uint64(0); k < 1<<20; k++ {
			s.Insert(k*0x9e3779b97f4a7c15 + 1)
		}
	}
}
