// Package hashtable implements a phase-concurrent hash set in the style of
// Shun and Blelloch (SPAA'14): during an insert phase any number of workers
// may insert concurrently with CAS-claimed linear-probe slots; reads of the
// element set happen in a separate phase after all inserts complete.
//
// The connectivity algorithm uses it to remove duplicate edges between
// contracted components: each remaining inter-component edge (u, v) is packed
// into a uint64 and inserted; the surviving set is the deduplicated edge
// list.
package hashtable

import (
	"sync/atomic"

	"parconn/internal/parallel"
	"parconn/internal/prand"
)

// Empty is the reserved slot value; it may not be inserted as a key.
const Empty = ^uint64(0)

// Set is a fixed-capacity concurrent-insert hash set of uint64 keys.
type Set struct {
	slots []uint64
	mask  uint64
	count atomic.Int64
}

// SizeFor returns the slot-array length used for a set of the given
// capacity: the next power of two above 1.5x capacity, keeping probe
// sequences short.
func SizeFor(capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	size := 16
	for size < capacity+capacity/2 {
		size <<= 1
	}
	return size
}

// NewSet returns a set able to hold at least capacity keys.
func NewSet(procs, capacity int) *Set {
	s := &Set{}
	s.Reset(procs, make([]uint64, SizeFor(capacity)))
	return s
}

// Reset re-initializes s as an empty set backed by slots, whose length must
// be a power of two (use SizeFor). It exists so a long-lived Set can be
// re-aimed at recycled scratch memory each contraction level instead of
// allocating a fresh table; the previous backing array is abandoned
// (callers recycling it must release it before or after Reset themselves).
func (s *Set) Reset(procs int, slots []uint64) {
	size := len(slots)
	if size == 0 || size&(size-1) != 0 {
		panic("hashtable: Reset slots length must be a nonzero power of two")
	}
	s.slots = slots
	s.mask = uint64(size - 1)
	s.count.Store(0)
	parallel.Blocks(procs, size, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			//parconn:allow mixedatomic pre-publication init; the Blocks join barrier publishes slots before any Insert
			s.slots[i] = Empty
		}
	})
}

// Insert adds key to the set; it reports whether the key was newly inserted.
// Safe for concurrent use during the insert phase. It panics if key == Empty
// or the table fills up (the library always sizes tables to their maximum
// possible occupancy, so a full table indicates a bug).
func (s *Set) Insert(key uint64) bool {
	if key == Empty {
		panic("hashtable: cannot insert reserved Empty key")
	}
	i := prand.Hash64(key) & s.mask
	for probes := uint64(0); probes <= s.mask; probes++ {
		cur := atomic.LoadUint64(&s.slots[i])
		if cur == key {
			return false
		}
		if cur == Empty {
			if atomic.CompareAndSwapUint64(&s.slots[i], Empty, key) {
				s.count.Add(1)
				return true
			}
			// Lost the race; re-examine the same slot (it now holds some
			// key, possibly ours).
			probes--
			continue
		}
		i = (i + 1) & s.mask
	}
	panic("hashtable: table full")
}

// Contains reports whether key is in the set. It must not run concurrently
// with Insert (phase-concurrency contract).
func (s *Set) Contains(key uint64) bool {
	if key == Empty {
		return false
	}
	i := prand.Hash64(key) & s.mask
	for probes := uint64(0); probes <= s.mask; probes++ {
		cur := s.slots[i] //parconn:allow mixedatomic Contains must not overlap Insert (phase-concurrency contract above)
		if cur == key {
			return true
		}
		if cur == Empty {
			return false
		}
		i = (i + 1) & s.mask
	}
	return false
}

// Drop releases the Set's reference to its backing slot array (so the array
// can be recycled without the Set pinning or aliasing it) and empties the
// set. The Set is unusable until the next Reset.
func (s *Set) Drop() {
	s.slots = nil
	s.mask = 0
	s.count.Store(0)
}

// Len returns the number of keys inserted so far.
func (s *Set) Len() int { return int(s.count.Load()) }

// Elements returns the set's keys in table order (arbitrary but
// deterministic for a fixed insert set and table size... note: slot layout
// depends on insert interleaving only when distinct keys race for one slot's
// probe chain, so ordering may vary across runs; callers sort afterwards if
// they need a canonical order). Must not run concurrently with Insert.
func (s *Set) Elements(procs int) []uint64 {
	//parconn:allow mixedatomic Elements must not overlap Insert (phase-concurrency contract above)
	return parallel.Pack(procs, s.slots, func(i int) bool { return s.slots[i] != Empty })
}

// ElementsInto writes the set's keys into dst (which must hold at least
// Len() elements; dst must not alias the backing slots) and returns the
// number written. Ordering matches Elements. Must not run concurrently with
// Insert.
func (s *Set) ElementsInto(procs int, dst []uint64) int {
	//parconn:allow mixedatomic ElementsInto must not overlap Insert (phase-concurrency contract above)
	//parconn:allow hotalloc one pack-predicate closure per compaction, inside the steady-state budget
	return parallel.PackInto(procs, dst, s.slots, func(i int) bool { return s.slots[i] != Empty })
}
