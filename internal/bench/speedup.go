package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"parconn"
)

// SpeedupPoint is one procs setting of a speedup sweep. Speedup is relative
// to the procs=1 point of the same series; Efficiency divides that by the
// workers the run can actually use — min(procs, NumCPU), mirroring the
// tuner's Workers cap — so the number stays meaningful on hosts with fewer
// cores than the sweep's widest setting.
type SpeedupPoint struct {
	Procs            int     `json:"procs"`
	EffectiveWorkers int     `json:"effective_workers"`
	Iterations       int     `json:"iterations"`
	NsPerOp          float64 `json:"ns_per_op"`
	Speedup          float64 `json:"speedup"`
	Efficiency       float64 `json:"efficiency"`
}

// SpeedupSeries is the sweep of one (input, algorithm) pair.
type SpeedupSeries struct {
	Input     string         `json:"input"`
	Algorithm string         `json:"algorithm"`
	Points    []SpeedupPoint `json:"points"`
}

// SpeedupReport is the schema of BENCH_speedup.json: parallel efficiency as
// a committed, regression-gated number (cmd/tracestat's speedup subcommand
// is the gate's read side).
type SpeedupReport struct {
	GoVersion string          `json:"go_version"`
	Env       parconn.Env     `json:"env"`
	Scale     float64         `json:"scale"`
	Seed      uint64          `json:"seed"`
	Results   []SpeedupSeries `json:"results"`
}

// speedupAlgorithms is the sweep's algorithm set: the three decomposition
// variants plus both spanning-forest baselines the paper compares against
// (serial-SF sweeps flat by construction — it is the reference line).
var speedupAlgorithms = []parconn.Algorithm{
	parconn.DecompArbHybrid,
	parconn.DecompArb,
	parconn.DecompMin,
	parconn.SerialSF,
	parconn.ParallelSFPBBS,
}

// speedupInput pins the sweep to the skewed rMat family, the input the
// headline ns/op target is stated on.
const speedupInput = "rMat"

// SpeedupSweep measures every algorithm in the sweep set at each procs
// setting and derives speedup/efficiency against the first setting, which
// must therefore be 1 for the numbers to mean "vs serial".
func SpeedupSweep(cfg Config, procsList []int) (SpeedupReport, error) {
	cfg = cfg.withDefaults()
	if len(procsList) == 0 {
		for p := 1; p < cfg.Procs; p *= 2 {
			procsList = append(procsList, p)
		}
		procsList = append(procsList, cfg.Procs)
	}
	rep := SpeedupReport{
		GoVersion: runtime.Version(),
		Env:       parconn.CaptureEnv(),
		Scale:     cfg.Scale,
		Seed:      cfg.Seed,
	}
	in, err := InputByName(speedupInput)
	if err != nil {
		return rep, err
	}
	g := in.Make(cfg.Scale)
	ncpu := runtime.NumCPU()
	for _, alg := range speedupAlgorithms {
		series := SpeedupSeries{Input: speedupInput, Algorithm: alg.String()}
		var base float64
		for _, p := range procsList {
			r := benchOne(g, alg, p, cfg.Seed)
			pt := SpeedupPoint{
				Procs:            p,
				EffectiveWorkers: min(p, ncpu),
				Iterations:       r.N,
				NsPerOp:          float64(r.NsPerOp()),
			}
			if base == 0 {
				base = pt.NsPerOp
			}
			if pt.NsPerOp > 0 {
				pt.Speedup = base / pt.NsPerOp
				pt.Efficiency = pt.Speedup / float64(pt.EffectiveWorkers)
			}
			series.Points = append(series.Points, pt)
		}
		rep.Results = append(rep.Results, series)
	}
	return rep, nil
}

// WriteSpeedup runs the sweep and writes the report to path, echoing one
// summary line per point to cfg.Out.
func WriteSpeedup(cfg Config, procsList []int, path string) error {
	cfg = cfg.withDefaults()
	rep, err := SpeedupSweep(cfg, procsList)
	if err != nil {
		return err
	}
	for _, s := range rep.Results {
		for _, p := range s.Points {
			fmt.Fprintf(cfg.Out, "%-10s %-22s procs=%-3d %12.0f ns/op  speedup %.2fx  efficiency %.2f\n",
				s.Input, s.Algorithm, p.Procs, p.NsPerOp, p.Speedup, p.Efficiency)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	fmt.Fprintf(cfg.Out, "wrote %s (%d series)\n", path, len(rep.Results))
	return nil
}
