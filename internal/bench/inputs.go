// Package bench provides the shared machinery of the benchmark harness that
// regenerates the paper's tables and figures: the input-graph families of
// Table 1 at configurable scale, median-of-trials timing (the paper reports
// the median of three), and plain-text table/series printers.
package bench

import (
	"fmt"
	"math"

	"parconn"
)

// Input is one of the paper's benchmark graphs, constructible at a size
// scaled down from the paper's (DESIGN.md §3: sizes are reduced ~100x so
// every experiment finishes in minutes on one host; shapes, not absolute
// numbers, are the reproduction target).
type Input struct {
	Name string
	// PaperN / PaperM describe the size used in the paper (Table 1).
	PaperN, PaperM string
	// Make builds the graph at the given scale factor (1.0 = the harness
	// default size, not the paper size).
	Make func(scale float64) *parconn.Graph
}

// Inputs returns the paper's six benchmark graphs (Table 1) in paper order.
// scale 1.0 gives the harness defaults below; pass e.g. 0.1 for a quick
// smoke run or 10 for a long one.
//
//	random     n=1,000,000  m=5n        (paper: n=10^8, m=5x10^8)
//	rMat       n=2^20       m~5n        (paper: n=2^27, m=5x10^8)
//	rMat2      n=2^14       m~200n      (paper: n=2^20, m=4.2x10^8)
//	3D-grid    n=100^3      m=3n        (paper: n=10^8, m=3x10^8)
//	line       n=2,000,000  m=n-1       (paper: n=5x10^8)
//	com-Orkut  n=2^17       m~30n       (paper's SNAP graph, substituted by
//	                                     a same-density rMat; DESIGN.md §3)
func Inputs() []Input {
	return []Input{
		{
			Name: "random", PaperN: "10^8", PaperM: "5x10^8",
			Make: func(s float64) *parconn.Graph {
				return parconn.RandomGraph(scaled(1_000_000, s), 5, 0xABCD01)
			},
		},
		{
			Name: "rMat", PaperN: "2^27", PaperM: "5x10^8",
			Make: func(s float64) *parconn.Graph {
				return parconn.RMatGraph(logScaled(20, s), parconn.RMatOptions{EdgeFactor: 5, Seed: 0xABCD02, KeepDuplicates: true})
			},
		},
		{
			Name: "rMat2", PaperN: "2^20", PaperM: "4.2x10^8",
			Make: func(s float64) *parconn.Graph {
				return parconn.RMatGraph(logScaled(14, s), parconn.RMatOptions{EdgeFactor: 200, Seed: 0xABCD03, KeepDuplicates: true})
			},
		},
		{
			Name: "3D-grid", PaperN: "10^8", PaperM: "3x10^8",
			Make: func(s float64) *parconn.Graph {
				side := int(math.Round(100 * math.Cbrt(s)))
				if side < 2 {
					side = 2
				}
				return parconn.Grid3DGraph(side, 0xABCD04)
			},
		},
		{
			Name: "line", PaperN: "5x10^8", PaperM: "5x10^8",
			Make: func(s float64) *parconn.Graph {
				return parconn.LineGraph(scaled(2_000_000, s), 0xABCD05)
			},
		},
		{
			Name: "com-Orkut", PaperN: "3,072,627", PaperM: "117,185,083",
			Make: func(s float64) *parconn.Graph {
				return parconn.SocialGraph(logScaled(17, s), 0xABCD06)
			},
		},
	}
}

// InputByName returns the named input or an error listing the options.
func InputByName(name string) (Input, error) {
	for _, in := range Inputs() {
		if in.Name == name {
			return in, nil
		}
	}
	return Input{}, fmt.Errorf("bench: unknown input %q (want one of random, rMat, rMat2, 3D-grid, line, com-Orkut)", name)
}

func scaled(base int, s float64) int {
	n := int(float64(base) * s)
	if n < 16 {
		n = 16
	}
	return n
}

// logScaled adjusts a 2^k size: scale 1 -> k, scale 8 -> k+3, scale 1/8 ->
// k-3, rounding to the nearest power of two.
func logScaled(k int, s float64) int {
	k += int(math.Round(math.Log2(s)))
	if k < 4 {
		k = 4
	}
	return k
}
