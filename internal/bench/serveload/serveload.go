// Package serveload is the workload generator for the connectivity service
// (internal/serve, cmd/connserve): it drives an already-running server over
// HTTP with a configurable mix of point, pair, batch, and skewed queries
// and reports throughput and latency quantiles.
//
// Key generation is deterministic: each worker derives its own prand stream
// by splitting the run seed with the worker index, so a given (seed,
// concurrency, workload) triple replays the identical request sequence —
// the same discipline the rest of the benchmark harness uses for graph
// generation.
package serveload

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parconn/internal/obs"
	"parconn/internal/obs/metrics"
	"parconn/internal/prand"
)

// Workloads lists the read-only workload names in reporting order (the set
// the static "serve" benchmark sweeps). WorkloadChurn is deliberately not
// in the list: it mutates server state via /v1/insert and is driven by its
// own "churn" benchmark against an EnableIncremental server.
var Workloads = []string{WorkloadPoint, WorkloadPair, WorkloadBatch, WorkloadHot}

const (
	// WorkloadPoint issues GET /v1/component with uniform random vertices.
	WorkloadPoint = "point"
	// WorkloadPair issues GET /v1/same with uniform random vertex pairs.
	WorkloadPair = "pair"
	// WorkloadBatch issues POST /v1/batch with BatchSize random pairs.
	WorkloadBatch = "batch"
	// WorkloadHot issues GET /v1/component with a skewed distribution:
	// HotFraction of requests hit a small hot vertex set (cache-friendly,
	// contended), the rest are uniform.
	WorkloadHot = "hot"
	// WorkloadChurn interleaves mutation with reads: each operation is a
	// POST /v1/insert of InsertBatch random edges with probability
	// InsertFraction, otherwise an even mix of point and pair queries.
	// Inserts and queries are recorded into separate histograms so the
	// report carries insert-batch latency alongside query QPS.
	WorkloadChurn = "churn"
)

// Config drives one load run against a serving endpoint.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workload is one of the Workload* names.
	Workload string
	// Concurrency is the number of closed-loop workers (0 = 1).
	Concurrency int
	// Warmup runs the workload without recording first (0 = none): connection
	// pools fill and the server JIT-warms before measurement starts.
	Warmup time.Duration
	// Duration is the measured window (0 = 1s).
	Duration time.Duration
	// Vertices is the server's vertex count; generated keys are in [0, Vertices).
	Vertices int
	// BatchSize is pairs per batch request (0 = 64); batch workload only.
	BatchSize int
	// HotFraction is the share of hot-set requests (0 = 0.9); hot workload only.
	HotFraction float64
	// HotSet is the hot-set size (0 = 16); hot workload only.
	HotSet int
	// InsertFraction is the share of operations that are /v1/insert batches
	// (0 = 0.1); churn workload only.
	InsertFraction float64
	// InsertBatch is edges per insert request (0 = 32); churn workload only.
	InsertBatch int
	// Seed drives key generation; worker i uses the stream Split(i).
	Seed uint64
	// Client, when non-nil, overrides the pooled HTTP client.
	Client *http.Client

	// MetricsURL, together with SLOTargetP99, enables SLO tracking: the
	// run scrapes this Prometheus-text endpoint (the server's /metrics)
	// throughout the measured window and grades each scrape interval
	// against the target. Empty disables tracking.
	MetricsURL string
	// SLOTargetP99 is the rolling-P99 latency bound a scrape window must
	// meet (on every primary endpoint of the workload) to count as good.
	SLOTargetP99 time.Duration
	// SLOScrapeInterval is the grading window length (0 = Duration/8,
	// floored at 10ms).
	SLOScrapeInterval time.Duration
}

// Result is the measured outcome of one load run, JSON-shaped for
// BENCH_serve.json and BENCH_churn.json. Requests/QPS and the latency
// quantiles cover read queries only; the Insert* fields (churn workload
// only) carry the mutation side, so "query QPS under churn" and
// "insert-batch P95" are separately gateable numbers.
type Result struct {
	Workload    string  `json:"workload"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	QPS         float64 `json:"qps"`
	MeanNS      int64   `json:"mean_ns"`
	P50NS       int64   `json:"p50_ns"`
	P95NS       int64   `json:"p95_ns"`
	P99NS       int64   `json:"p99_ns"`
	MaxNS       int64   `json:"max_ns"`

	// Churn workload only.
	InsertFraction float64 `json:"insert_fraction,omitempty"`
	InsertBatch    int     `json:"insert_batch,omitempty"`
	Inserts        int64   `json:"inserts,omitempty"`
	InsertErrors   int64   `json:"insert_errors,omitempty"`
	InsertQPS      float64 `json:"insert_qps,omitempty"`
	InsertP50NS    int64   `json:"insert_p50_ns,omitempty"`
	InsertP95NS    int64   `json:"insert_p95_ns,omitempty"`
	InsertP99NS    int64   `json:"insert_p99_ns,omitempty"`

	// SLO tracking (MetricsURL + SLOTargetP99 set). SLOWindows is the
	// number of scrape windows graded; SLOAttainment is the fraction whose
	// rolling P99 met the target on every primary endpoint. A row without
	// these fields (SLOWindows == 0) was run without tracking.
	SLOTargetNS    int64   `json:"slo_target_ns,omitempty"`
	SLOWindows     int     `json:"slo_windows,omitempty"`
	SLOGoodWindows int     `json:"slo_good_windows,omitempty"`
	SLOAttainment  float64 `json:"slo_attainment,omitempty"`
}

// PrimaryEndpoints returns the serve endpoints whose rolling latency the
// SLO grade of a workload is computed over: the endpoint(s) the workload's
// read queries actually hit.
func PrimaryEndpoints(workload string) []string {
	switch workload {
	case WorkloadPair:
		return []string{"same"}
	case WorkloadBatch:
		return []string{"batch"}
	case WorkloadChurn:
		return []string{"component", "same"}
	default: // point, hot
		return []string{"component"}
	}
}

func (c Config) withDefaults() (Config, error) {
	ok := c.Workload == WorkloadChurn
	for _, w := range Workloads {
		if c.Workload == w {
			ok = true
			break
		}
	}
	if !ok {
		return c, fmt.Errorf("serveload: unknown workload %q (have %v and %q)", c.Workload, Workloads, WorkloadChurn)
	}
	if c.BaseURL == "" {
		return c, fmt.Errorf("serveload: Config.BaseURL is empty")
	}
	if c.Vertices <= 0 {
		return c, fmt.Errorf("serveload: Config.Vertices must be positive")
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.9
	}
	if c.HotSet <= 0 {
		c.HotSet = 16
	}
	if c.HotSet > c.Vertices {
		c.HotSet = c.Vertices
	}
	if c.InsertFraction <= 0 || c.InsertFraction >= 1 {
		c.InsertFraction = 0.1
	}
	if c.InsertBatch <= 0 {
		c.InsertBatch = 32
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        c.Concurrency + 4,
				MaxIdleConnsPerHost: c.Concurrency + 4,
				IdleConnTimeout:     30 * time.Second,
			},
			Timeout: 30 * time.Second,
		}
	}
	return c, nil
}

// worker is one closed-loop load generator: it owns a prand stream and a
// scratch buffer and issues requests back-to-back until told to stop.
type worker struct {
	cfg        Config
	src        *prand.Source
	buf        bytes.Buffer
	hist       *obs.Histogram // query latency; shared, wait-free
	insertHist *obs.Histogram // insert latency (churn only); shared, wait-free
}

// pairBody fills the scratch buffer with a JSON [[u,v],...] array of count
// uniform random pairs — the shared body shape of /v1/batch and /v1/insert.
func (w *worker) pairBody(count int) *bytes.Reader {
	w.buf.Reset()
	w.buf.WriteByte('[')
	for i := 0; i < count; i++ {
		if i > 0 {
			w.buf.WriteByte(',')
		}
		fmt.Fprintf(&w.buf, "[%d,%d]", w.src.Intn(w.cfg.Vertices), w.src.Intn(w.cfg.Vertices))
	}
	w.buf.WriteByte(']')
	return bytes.NewReader(w.buf.Bytes())
}

// op issues one request, reporting whether it was an insert (vs a read
// query) and whether it succeeded (2xx).
func (w *worker) op() (insert, ok bool) {
	var (
		resp *http.Response
		err  error
	)
	switch w.cfg.Workload {
	case WorkloadPoint:
		resp, err = w.cfg.Client.Get(w.cfg.BaseURL + "/v1/component?v=" + strconv.Itoa(w.src.Intn(w.cfg.Vertices)))
	case WorkloadPair:
		u, v := w.src.Intn(w.cfg.Vertices), w.src.Intn(w.cfg.Vertices)
		resp, err = w.cfg.Client.Get(w.cfg.BaseURL + "/v1/same?u=" + strconv.Itoa(u) + "&v=" + strconv.Itoa(v))
	case WorkloadBatch:
		resp, err = w.cfg.Client.Post(w.cfg.BaseURL+"/v1/batch", "application/json", w.pairBody(w.cfg.BatchSize))
	case WorkloadHot:
		v := w.src.Intn(w.cfg.Vertices)
		if w.src.Float64() < w.cfg.HotFraction {
			// The hot set is the first HotSet vertices hashed through the
			// seed so it is stable per run but not always {0..15}.
			v = int(prand.Hash64(w.cfg.Seed+uint64(w.src.Intn(w.cfg.HotSet))) % uint64(w.cfg.Vertices))
		}
		resp, err = w.cfg.Client.Get(w.cfg.BaseURL + "/v1/component?v=" + strconv.Itoa(v))
	case WorkloadChurn:
		if w.src.Float64() < w.cfg.InsertFraction {
			insert = true
			resp, err = w.cfg.Client.Post(w.cfg.BaseURL+"/v1/insert", "application/json", w.pairBody(w.cfg.InsertBatch))
		} else if w.src.Float64() < 0.5 {
			resp, err = w.cfg.Client.Get(w.cfg.BaseURL + "/v1/component?v=" + strconv.Itoa(w.src.Intn(w.cfg.Vertices)))
		} else {
			u, v := w.src.Intn(w.cfg.Vertices), w.src.Intn(w.cfg.Vertices)
			resp, err = w.cfg.Client.Get(w.cfg.BaseURL + "/v1/same?u=" + strconv.Itoa(u) + "&v=" + strconv.Itoa(v))
		}
	}
	if err != nil {
		return insert, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return insert, resp.StatusCode >= 200 && resp.StatusCode < 300
}

// sloWatch occupies the measured window: it sleeps cfg.Duration in scrape
// intervals and, when SLO tracking is enabled (MetricsURL + SLOTargetP99),
// grades each interval by scraping the server's rolling P99 gauges for the
// workload's primary endpoints. A window is good when every primary
// endpoint's P99 meets the target; a failed or key-missing scrape counts as
// a bad window (an unobservable server cannot demonstrate attainment).
// With tracking disabled it is exactly time.Sleep(cfg.Duration).
func sloWatch(cfg Config, measureStart time.Time) (windows, good int) {
	if cfg.MetricsURL == "" || cfg.SLOTargetP99 <= 0 {
		time.Sleep(cfg.Duration)
		return 0, 0
	}
	interval := cfg.SLOScrapeInterval
	if interval <= 0 {
		interval = cfg.Duration / 8
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	endpoints := PrimaryEndpoints(cfg.Workload)
	end := measureStart.Add(cfg.Duration)
	for {
		now := time.Now()
		if !now.Before(end) {
			return windows, good
		}
		sleep := interval
		if rest := end.Sub(now); rest < sleep {
			sleep = rest
		}
		time.Sleep(sleep)
		windows++
		if scrapeMeetsTarget(cfg.Client, cfg.MetricsURL, endpoints, cfg.SLOTargetP99) {
			good++
		}
	}
}

// scrapeMeetsTarget scrapes one exposition and checks every endpoint's
// rolling P99 gauge against the target.
func scrapeMeetsTarget(client *http.Client, url string, endpoints []string, target time.Duration) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	parsed, err := metrics.ParseText(resp.Body)
	if err != nil {
		return false
	}
	for _, ep := range endpoints {
		key := metrics.Series("parconn_http_rolling_latency_seconds",
			metrics.L("endpoint", ep, "quantile", metrics.QuantileLabel(0.99)))
		p99, ok := parsed[key]
		if !ok {
			return false
		}
		if time.Duration(p99*1e9) > target {
			return false
		}
	}
	return true
}

// Run executes the configured workload and reports throughput and latency.
// Warmup requests are issued but not recorded: an op counts toward QPS and
// the quantiles iff it started inside the measured window, uniformly across
// the point, pair, batch, hot, and churn workloads.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}

	var (
		hist         obs.Histogram
		insertHist   obs.Histogram
		requests     atomic.Int64
		errors       atomic.Int64
		inserts      atomic.Int64
		insertErrors atomic.Int64
		recording    atomic.Bool
		stop         atomic.Bool
		wg           sync.WaitGroup
	)
	root := prand.New(cfg.Seed)
	for i := 0; i < cfg.Concurrency; i++ {
		w := &worker{cfg: cfg, src: root.Split(uint64(i)), hist: &hist, insertHist: &insertHist}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Capture the recording flag before issuing the op: an op
				// is measured iff it STARTED inside the window. Checking
				// after completion would let requests that started during
				// warmup leak into the quantiles (their latency reflects
				// cold connections) while ops straddling the window's end
				// silently vanished from the counts.
				rec := recording.Load()
				start := time.Now()
				insert, ok := w.op()
				if !rec {
					continue
				}
				switch {
				case ok && insert:
					inserts.Add(1)
					w.insertHist.Record(time.Since(start).Nanoseconds())
				case ok:
					requests.Add(1)
					w.hist.Record(time.Since(start).Nanoseconds())
				case insert:
					insertErrors.Add(1)
				default:
					errors.Add(1)
				}
			}
		}()
	}

	if cfg.Warmup > 0 {
		time.Sleep(cfg.Warmup)
	}
	measureStart := time.Now()
	recording.Store(true)
	sloWindows, sloGood := sloWatch(cfg, measureStart)
	recording.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()
	cfg.Client.CloseIdleConnections()

	snap := hist.Snapshot()
	res := Result{
		Workload:    cfg.Workload,
		Concurrency: cfg.Concurrency,
		DurationSec: elapsed.Seconds(),
		Requests:    requests.Load(),
		Errors:      errors.Load(),
		QPS:         float64(requests.Load()) / elapsed.Seconds(),
		MeanNS:      int64(snap.Mean()),
		P50NS:       snap.Quantile(0.50),
		P95NS:       snap.Quantile(0.95),
		P99NS:       snap.Quantile(0.99),
		MaxNS:       snap.Max,
	}
	if sloWindows > 0 {
		res.SLOTargetNS = cfg.SLOTargetP99.Nanoseconds()
		res.SLOWindows = sloWindows
		res.SLOGoodWindows = sloGood
		res.SLOAttainment = float64(sloGood) / float64(sloWindows)
	}
	if cfg.Workload == WorkloadChurn {
		isnap := insertHist.Snapshot()
		res.InsertFraction = cfg.InsertFraction
		res.InsertBatch = cfg.InsertBatch
		res.Inserts = inserts.Load()
		res.InsertErrors = insertErrors.Load()
		res.InsertQPS = float64(inserts.Load()) / elapsed.Seconds()
		res.InsertP50NS = isnap.Quantile(0.50)
		res.InsertP95NS = isnap.Quantile(0.95)
		res.InsertP99NS = isnap.Quantile(0.99)
	}
	if res.Requests == 0 && res.Errors > 0 {
		return res, fmt.Errorf("serveload: %s: all %d requests failed", cfg.Workload, res.Errors)
	}
	if res.Inserts == 0 && res.InsertErrors > 0 {
		return res, fmt.Errorf("serveload: %s: all %d inserts failed", cfg.Workload, res.InsertErrors)
	}
	return res, nil
}
