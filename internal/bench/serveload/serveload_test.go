package serveload

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parconn/internal/prand"
	"parconn/internal/serve"
)

// testServer publishes a 100-vertex two-component labeling behind a real
// HTTP listener, the same stack serveload targets in production.
func testServer(t *testing.T) (*httptest.Server, int) {
	t.Helper()
	const n = 100
	labels := make([]int32, n)
	for i := range labels {
		if i >= n/2 {
			labels[i] = n / 2
		}
	}
	sv := serve.New(serve.Config{})
	sv.Publish(serve.Labeling{Labels: labels, Edges: int64(n) - 2, Algorithm: "test", Source: "test"})
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, n
}

func TestRunEveryWorkload(t *testing.T) {
	ts, n := testServer(t)
	for _, w := range Workloads {
		res, err := Run(Config{
			BaseURL:     ts.URL,
			Workload:    w,
			Concurrency: 4,
			Warmup:      20 * time.Millisecond,
			Duration:    100 * time.Millisecond,
			Vertices:    n,
			BatchSize:   8,
			Seed:        7,
		})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if res.Workload != w || res.Concurrency != 4 {
			t.Fatalf("%s: result meta %+v", w, res)
		}
		if res.Requests == 0 {
			t.Fatalf("%s: no requests completed", w)
		}
		if res.Errors != 0 {
			t.Fatalf("%s: %d errors", w, res.Errors)
		}
		if res.QPS <= 0 || res.DurationSec <= 0 {
			t.Fatalf("%s: qps %.1f duration %.3f", w, res.QPS, res.DurationSec)
		}
		if res.P50NS <= 0 || res.P95NS < res.P50NS || res.P99NS < res.P95NS || res.MaxNS < res.P99NS {
			t.Fatalf("%s: non-monotone quantiles %+v", w, res)
		}
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://x", Workload: "bogus", Vertices: 10}); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("bogus workload: %v", err)
	}
	if _, err := Run(Config{Workload: WorkloadPoint, Vertices: 10}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	if _, err := Run(Config{BaseURL: "http://x", Workload: WorkloadPoint}); err == nil {
		t.Fatal("zero Vertices accepted")
	}
}

// TestRunAllErrors checks that a dead endpoint is an error, not a report of
// zero QPS.
func TestRunAllErrors(t *testing.T) {
	ts, n := testServer(t)
	url := ts.URL
	ts.Close()
	_, err := Run(Config{
		BaseURL:  url,
		Workload: WorkloadPoint,
		Duration: 50 * time.Millisecond,
		Vertices: n,
		Seed:     1,
	})
	if err == nil || !strings.Contains(err.Error(), "requests failed") {
		t.Fatalf("dead endpoint: %v", err)
	}
}

// TestDeterministicKeys pins the split-stream discipline Run relies on:
// worker i's stream is Split(i) of the run seed, so the same seed replays
// the same per-worker key sequence and different seeds diverge.
func TestDeterministicKeys(t *testing.T) {
	for i := uint64(0); i < 4; i++ {
		a := prand.New(42).Split(i).Uint64()
		b := prand.New(42).Split(i).Uint64()
		c := prand.New(43).Split(i).Uint64()
		if a != b {
			t.Fatalf("worker %d: same seed diverged: %d vs %d", i, a, b)
		}
		if a == c {
			t.Fatalf("worker %d: different seeds collided", i)
		}
	}
}
