package serveload

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parconn"
	"parconn/internal/obs/metrics"
	"parconn/internal/prand"
	"parconn/internal/serve"
)

// testServer publishes a 100-vertex two-component labeling behind a real
// HTTP listener, the same stack serveload targets in production.
func testServer(t *testing.T) (*httptest.Server, int) {
	t.Helper()
	const n = 100
	labels := make([]int32, n)
	for i := range labels {
		if i >= n/2 {
			labels[i] = n / 2
		}
	}
	sv := serve.New(serve.Config{})
	sv.Publish(serve.Labeling{Labels: labels, Edges: int64(n) - 2, Algorithm: "test", Source: "test"})
	inc, err := parconn.NewIncrementalFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	sv.EnableIncremental(inc)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, n
}

func TestRunEveryWorkload(t *testing.T) {
	ts, n := testServer(t)
	for _, w := range Workloads {
		res, err := Run(Config{
			BaseURL:     ts.URL,
			Workload:    w,
			Concurrency: 4,
			Warmup:      20 * time.Millisecond,
			Duration:    100 * time.Millisecond,
			Vertices:    n,
			BatchSize:   8,
			Seed:        7,
		})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if res.Workload != w || res.Concurrency != 4 {
			t.Fatalf("%s: result meta %+v", w, res)
		}
		if res.Requests == 0 {
			t.Fatalf("%s: no requests completed", w)
		}
		if res.Errors != 0 {
			t.Fatalf("%s: %d errors", w, res.Errors)
		}
		if res.QPS <= 0 || res.DurationSec <= 0 {
			t.Fatalf("%s: qps %.1f duration %.3f", w, res.QPS, res.DurationSec)
		}
		if res.P50NS <= 0 || res.P95NS < res.P50NS || res.P99NS < res.P95NS || res.MaxNS < res.P99NS {
			t.Fatalf("%s: non-monotone quantiles %+v", w, res)
		}
	}
}

// TestRunChurn drives the mutating workload against a server with the
// incremental layer enabled and checks both halves of the result: query
// metrics and insert metrics, with no failures on either path.
func TestRunChurn(t *testing.T) {
	ts, n := testServer(t)
	res, err := Run(Config{
		BaseURL:        ts.URL,
		Workload:       WorkloadChurn,
		Concurrency:    4,
		Warmup:         20 * time.Millisecond,
		Duration:       150 * time.Millisecond,
		Vertices:       n,
		InsertFraction: 0.5, // high share so the short window still inserts
		InsertBatch:    4,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != WorkloadChurn || res.InsertFraction != 0.5 || res.InsertBatch != 4 {
		t.Fatalf("result meta %+v", res)
	}
	if res.Requests == 0 || res.Inserts == 0 {
		t.Fatalf("no traffic on one path: %d queries, %d inserts", res.Requests, res.Inserts)
	}
	if res.Errors != 0 || res.InsertErrors != 0 {
		t.Fatalf("errors: %d query, %d insert", res.Errors, res.InsertErrors)
	}
	if res.InsertQPS <= 0 || res.InsertP50NS <= 0 || res.InsertP95NS < res.InsertP50NS || res.InsertP99NS < res.InsertP95NS {
		t.Fatalf("insert metrics inconsistent: %+v", res)
	}
}

// TestRunChurnWithoutIncremental pins the failure mode when the target
// server has no incremental layer: every insert 501s, and Run reports it as
// an error rather than a silent zero.
func TestRunChurnWithoutIncremental(t *testing.T) {
	const n = 50
	labels := make([]int32, n)
	sv := serve.New(serve.Config{})
	sv.Publish(serve.Labeling{Labels: labels, Edges: 0, Algorithm: "test", Source: "test"})
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	res, err := Run(Config{
		BaseURL:        ts.URL,
		Workload:       WorkloadChurn,
		Duration:       100 * time.Millisecond,
		Vertices:       n,
		InsertFraction: 0.9,
		Seed:           3,
	})
	if err == nil || !strings.Contains(err.Error(), "inserts failed") {
		t.Fatalf("disabled incremental layer: err=%v res=%+v", err, res)
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://x", Workload: "bogus", Vertices: 10}); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("bogus workload: %v", err)
	}
	if _, err := Run(Config{Workload: WorkloadPoint, Vertices: 10}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	if _, err := Run(Config{BaseURL: "http://x", Workload: WorkloadPoint}); err == nil {
		t.Fatal("zero Vertices accepted")
	}
}

// TestRunAllErrors checks that a dead endpoint is an error, not a report of
// zero QPS.
func TestRunAllErrors(t *testing.T) {
	ts, n := testServer(t)
	url := ts.URL
	ts.Close()
	_, err := Run(Config{
		BaseURL:  url,
		Workload: WorkloadPoint,
		Duration: 50 * time.Millisecond,
		Vertices: n,
		Seed:     1,
	})
	if err == nil || !strings.Contains(err.Error(), "requests failed") {
		t.Fatalf("dead endpoint: %v", err)
	}
}

// TestDeterministicKeys pins the split-stream discipline Run relies on:
// worker i's stream is Split(i) of the run seed, so the same seed replays
// the same per-worker key sequence and different seeds diverge.
func TestDeterministicKeys(t *testing.T) {
	for i := uint64(0); i < 4; i++ {
		a := prand.New(42).Split(i).Uint64()
		b := prand.New(42).Split(i).Uint64()
		c := prand.New(43).Split(i).Uint64()
		if a != b {
			t.Fatalf("worker %d: same seed diverged: %d vs %d", i, a, b)
		}
		if a == c {
			t.Fatalf("worker %d: different seeds collided", i)
		}
	}
}

// observedTestServer is testServer plus the request-plane Observer and a
// /metrics endpoint on the same listener — the full production wiring the
// SLO scraper targets.
func observedTestServer(t *testing.T) (*httptest.Server, int) {
	t.Helper()
	const n = 100
	labels := make([]int32, n)
	for i := range labels {
		if i >= n/2 {
			labels[i] = n / 2
		}
	}
	reg := metrics.New()
	o := serve.NewObserver(serve.ObserverConfig{Metrics: reg})
	sv := serve.New(serve.Config{Observer: o, Metrics: reg})
	sv.Publish(serve.Labeling{Labels: labels, Edges: int64(n) - 2, Algorithm: "test", Source: "test"})
	inc, err := parconn.NewIncrementalFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	sv.EnableIncremental(inc)
	mux := http.NewServeMux()
	mux.Handle("/v1/", sv.Handler())
	mux.Handle("/metrics", reg.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, n
}

// TestWarmupExcludedFromQuantiles pins the warmup accounting across every
// workload: an op is measured iff it STARTED inside the window. The server
// is slow only during (a prefix of) the warmup, so any slow sample in the
// quantiles means a warmup-started op leaked into the measurement.
func TestWarmupExcludedFromQuantiles(t *testing.T) {
	const (
		slowFor  = 200 * time.Millisecond // server sleeps `slow` before this elapsed time
		slow     = 150 * time.Millisecond
		warmup   = 250 * time.Millisecond // slow period ends strictly inside warmup
		duration = 300 * time.Millisecond
	)
	for _, w := range append(append([]string{}, Workloads...), WorkloadChurn) {
		t.Run(w, func(t *testing.T) {
			start := time.Now()
			ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
				if time.Since(start) < slowFor {
					time.Sleep(slow)
				}
				rw.WriteHeader(http.StatusOK)
			}))
			defer ts.Close()
			res, err := Run(Config{
				BaseURL:     ts.URL,
				Workload:    w,
				Concurrency: 4,
				Warmup:      warmup,
				Duration:    duration,
				Vertices:    100,
				BatchSize:   4,
				InsertBatch: 4,
				Seed:        11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests == 0 {
				t.Fatal("no requests measured")
			}
			// Slow ops take >= 150ms and can only start during warmup; a
			// measured MaxNS anywhere near `slow` means one was recorded.
			if res.MaxNS >= slow.Nanoseconds() {
				t.Errorf("MaxNS = %v: a warmup-started request leaked into the quantiles", time.Duration(res.MaxNS))
			}
			if w == WorkloadChurn && res.Inserts > 0 {
				// The same start-in-window rule governs the insert histogram.
				if p99 := res.InsertP99NS; p99 >= slow.Nanoseconds() {
					t.Errorf("InsertP99NS = %v: warmup insert leaked", time.Duration(p99))
				}
			}
		})
	}
}

// TestSLOAttainmentAgainstLiveServer runs the full loop: observed server,
// real /metrics exposition, scraper grading windows. With a generous target
// every window must pass; with an impossible one every window must fail.
func TestSLOAttainmentAgainstLiveServer(t *testing.T) {
	ts, n := observedTestServer(t)
	base := Config{
		BaseURL:           ts.URL,
		Workload:          WorkloadPoint,
		Concurrency:       2,
		Duration:          200 * time.Millisecond,
		Vertices:          n,
		Seed:              3,
		MetricsURL:        ts.URL + "/metrics",
		SLOScrapeInterval: 25 * time.Millisecond,
	}

	cfg := base
	cfg.SLOTargetP99 = time.Second // local point queries are far below 1s
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOWindows < 2 {
		t.Fatalf("SLOWindows = %d, want >= 2", res.SLOWindows)
	}
	if res.SLOAttainment != 1.0 || res.SLOGoodWindows != res.SLOWindows {
		t.Fatalf("generous target: attainment %v (%d/%d), want 1.0",
			res.SLOAttainment, res.SLOGoodWindows, res.SLOWindows)
	}
	if res.SLOTargetNS != time.Second.Nanoseconds() {
		t.Fatalf("SLOTargetNS = %d", res.SLOTargetNS)
	}

	cfg = base
	cfg.Seed = 4
	cfg.SLOTargetP99 = time.Nanosecond // nothing meets 1ns
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOWindows < 2 || res.SLOGoodWindows != 0 || res.SLOAttainment != 0 {
		t.Fatalf("impossible target: %d/%d good, attainment %v, want 0",
			res.SLOGoodWindows, res.SLOWindows, res.SLOAttainment)
	}
}

// TestSLOMissingSeriesCountsBad pins the conservative grading: a metrics
// endpoint that exposes nothing (or fails) can never demonstrate
// attainment, so every window grades bad instead of silently passing.
func TestSLOMissingSeriesCountsBad(t *testing.T) {
	ts, n := testServer(t) // no Observer: /metrics-less server
	empty := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", metrics.ContentType)
		rw.Write([]byte("# TYPE unrelated counter\nunrelated 1\n"))
	}))
	defer empty.Close()
	res, err := Run(Config{
		BaseURL:           ts.URL,
		Workload:          WorkloadPoint,
		Concurrency:       1,
		Duration:          100 * time.Millisecond,
		Vertices:          n,
		Seed:              5,
		MetricsURL:        empty.URL,
		SLOTargetP99:      time.Second,
		SLOScrapeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOWindows == 0 {
		t.Fatal("no windows graded")
	}
	if res.SLOGoodWindows != 0 || res.SLOAttainment != 0 {
		t.Fatalf("missing series graded good: %d/%d", res.SLOGoodWindows, res.SLOWindows)
	}
}

// TestSLODisabledLeavesFieldsZero pins that runs without MetricsURL carry
// no SLO fields, the sentinel tracestat slo keys presence off of.
func TestSLODisabledLeavesFieldsZero(t *testing.T) {
	ts, n := testServer(t)
	res, err := Run(Config{
		BaseURL:     ts.URL,
		Workload:    WorkloadPoint,
		Concurrency: 1,
		Duration:    50 * time.Millisecond,
		Vertices:    n,
		Seed:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOWindows != 0 || res.SLOTargetNS != 0 || res.SLOAttainment != 0 {
		t.Fatalf("SLO fields set without tracking: %+v", res)
	}
}

// TestPrimaryEndpoints pins the workload -> endpoint mapping the SLO grade
// is computed over.
func TestPrimaryEndpoints(t *testing.T) {
	cases := map[string][]string{
		WorkloadPoint: {"component"},
		WorkloadHot:   {"component"},
		WorkloadPair:  {"same"},
		WorkloadBatch: {"batch"},
		WorkloadChurn: {"component", "same"},
	}
	for w, want := range cases {
		got := PrimaryEndpoints(w)
		if len(got) != len(want) {
			t.Fatalf("%s: %v, want %v", w, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: %v, want %v", w, got, want)
			}
		}
	}
}
