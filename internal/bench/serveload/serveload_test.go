package serveload

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parconn"
	"parconn/internal/prand"
	"parconn/internal/serve"
)

// testServer publishes a 100-vertex two-component labeling behind a real
// HTTP listener, the same stack serveload targets in production.
func testServer(t *testing.T) (*httptest.Server, int) {
	t.Helper()
	const n = 100
	labels := make([]int32, n)
	for i := range labels {
		if i >= n/2 {
			labels[i] = n / 2
		}
	}
	sv := serve.New(serve.Config{})
	sv.Publish(serve.Labeling{Labels: labels, Edges: int64(n) - 2, Algorithm: "test", Source: "test"})
	inc, err := parconn.NewIncrementalFromLabels(labels)
	if err != nil {
		t.Fatal(err)
	}
	sv.EnableIncremental(inc)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, n
}

func TestRunEveryWorkload(t *testing.T) {
	ts, n := testServer(t)
	for _, w := range Workloads {
		res, err := Run(Config{
			BaseURL:     ts.URL,
			Workload:    w,
			Concurrency: 4,
			Warmup:      20 * time.Millisecond,
			Duration:    100 * time.Millisecond,
			Vertices:    n,
			BatchSize:   8,
			Seed:        7,
		})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if res.Workload != w || res.Concurrency != 4 {
			t.Fatalf("%s: result meta %+v", w, res)
		}
		if res.Requests == 0 {
			t.Fatalf("%s: no requests completed", w)
		}
		if res.Errors != 0 {
			t.Fatalf("%s: %d errors", w, res.Errors)
		}
		if res.QPS <= 0 || res.DurationSec <= 0 {
			t.Fatalf("%s: qps %.1f duration %.3f", w, res.QPS, res.DurationSec)
		}
		if res.P50NS <= 0 || res.P95NS < res.P50NS || res.P99NS < res.P95NS || res.MaxNS < res.P99NS {
			t.Fatalf("%s: non-monotone quantiles %+v", w, res)
		}
	}
}

// TestRunChurn drives the mutating workload against a server with the
// incremental layer enabled and checks both halves of the result: query
// metrics and insert metrics, with no failures on either path.
func TestRunChurn(t *testing.T) {
	ts, n := testServer(t)
	res, err := Run(Config{
		BaseURL:        ts.URL,
		Workload:       WorkloadChurn,
		Concurrency:    4,
		Warmup:         20 * time.Millisecond,
		Duration:       150 * time.Millisecond,
		Vertices:       n,
		InsertFraction: 0.5, // high share so the short window still inserts
		InsertBatch:    4,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != WorkloadChurn || res.InsertFraction != 0.5 || res.InsertBatch != 4 {
		t.Fatalf("result meta %+v", res)
	}
	if res.Requests == 0 || res.Inserts == 0 {
		t.Fatalf("no traffic on one path: %d queries, %d inserts", res.Requests, res.Inserts)
	}
	if res.Errors != 0 || res.InsertErrors != 0 {
		t.Fatalf("errors: %d query, %d insert", res.Errors, res.InsertErrors)
	}
	if res.InsertQPS <= 0 || res.InsertP50NS <= 0 || res.InsertP95NS < res.InsertP50NS || res.InsertP99NS < res.InsertP95NS {
		t.Fatalf("insert metrics inconsistent: %+v", res)
	}
}

// TestRunChurnWithoutIncremental pins the failure mode when the target
// server has no incremental layer: every insert 501s, and Run reports it as
// an error rather than a silent zero.
func TestRunChurnWithoutIncremental(t *testing.T) {
	const n = 50
	labels := make([]int32, n)
	sv := serve.New(serve.Config{})
	sv.Publish(serve.Labeling{Labels: labels, Edges: 0, Algorithm: "test", Source: "test"})
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	res, err := Run(Config{
		BaseURL:        ts.URL,
		Workload:       WorkloadChurn,
		Duration:       100 * time.Millisecond,
		Vertices:       n,
		InsertFraction: 0.9,
		Seed:           3,
	})
	if err == nil || !strings.Contains(err.Error(), "inserts failed") {
		t.Fatalf("disabled incremental layer: err=%v res=%+v", err, res)
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://x", Workload: "bogus", Vertices: 10}); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("bogus workload: %v", err)
	}
	if _, err := Run(Config{Workload: WorkloadPoint, Vertices: 10}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	if _, err := Run(Config{BaseURL: "http://x", Workload: WorkloadPoint}); err == nil {
		t.Fatal("zero Vertices accepted")
	}
}

// TestRunAllErrors checks that a dead endpoint is an error, not a report of
// zero QPS.
func TestRunAllErrors(t *testing.T) {
	ts, n := testServer(t)
	url := ts.URL
	ts.Close()
	_, err := Run(Config{
		BaseURL:  url,
		Workload: WorkloadPoint,
		Duration: 50 * time.Millisecond,
		Vertices: n,
		Seed:     1,
	})
	if err == nil || !strings.Contains(err.Error(), "requests failed") {
		t.Fatalf("dead endpoint: %v", err)
	}
}

// TestDeterministicKeys pins the split-stream discipline Run relies on:
// worker i's stream is Split(i) of the run seed, so the same seed replays
// the same per-worker key sequence and different seeds diverge.
func TestDeterministicKeys(t *testing.T) {
	for i := uint64(0); i < 4; i++ {
		a := prand.New(42).Split(i).Uint64()
		b := prand.New(42).Split(i).Uint64()
		c := prand.New(43).Split(i).Uint64()
		if a != b {
			t.Fatalf("worker %d: same seed diverged: %d vs %d", i, a, b)
		}
		if a == c {
			t.Fatalf("worker %d: different seeds collided", i)
		}
	}
}
