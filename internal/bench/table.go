package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells and prints them column-aligned —
// enough to render every table and figure-series of the paper as text.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Addf appends a row of formatted cells (each argument rendered with %v).
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprintf("%v", c))
	}
	t.Add(row...)
}

// Print writes the table, column-aligned, with a rule under the header.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	printRow(rule)
	for _, row := range t.rows {
		printRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
