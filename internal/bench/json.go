package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"parconn"
)

// BenchResult is one benchmarked (input, algorithm) cell in machine-readable
// form: the same three numbers `go test -bench -benchmem` prints, so CI and
// regression tooling can diff runs without parsing table text.
type BenchResult struct {
	Input       string  `json:"input"`
	Algorithm   string  `json:"algorithm"`
	Procs       int     `json:"procs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the top-level schema of BENCH_parconn.json. GoVersion and
// GoMaxProcs predate the richer Env block and are kept for readers of old
// reports; Env is what cmd/tracestat compares against a trace's capture
// environment.
type BenchReport struct {
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Env        parconn.Env   `json:"env"`
	Scale      float64       `json:"scale"`
	Seed       uint64        `json:"seed"`
	Results    []BenchResult `json:"results"`
}

// jsonInputs and jsonAlgorithms pick the report's grid: two input families
// with different degree structure (uniform-random and skewed rMat) crossed
// with the three decomposition variants plus two union-find baselines for
// reference.
var jsonInputs = []string{"rMat", "random"}

var jsonAlgorithms = []parconn.Algorithm{
	parconn.DecompArbHybrid,
	parconn.DecompArb,
	parconn.DecompMin,
	parconn.SerialSF,
	parconn.ParallelSFPBBS,
}

// benchOne measures one (graph, algorithm) pair with the testing package's
// benchmark driver. One untimed warm-up run first populates the scheduler's
// worker pool and the workspace arena's free lists so the measurement sees
// the steady state rather than first-call growth.
func benchOne(g *parconn.Graph, alg parconn.Algorithm, procs int, seed uint64) testing.BenchmarkResult {
	opt := parconn.Options{Algorithm: alg, Procs: procs, Seed: seed}
	if _, err := parconn.ConnectedComponents(g, opt); err != nil {
		panic(err)
	}
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parconn.ConnectedComponents(g, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// JSONReport runs the benchmark grid and collects the report.
func JSONReport(cfg Config) BenchReport {
	cfg = cfg.withDefaults()
	rep := BenchReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Env:        parconn.CaptureEnv(),
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
	}
	for _, name := range jsonInputs {
		in, err := InputByName(name)
		if err != nil {
			panic(err)
		}
		g := in.Make(cfg.Scale)
		for _, alg := range jsonAlgorithms {
			r := benchOne(g, alg, cfg.Procs, cfg.Seed)
			rep.Results = append(rep.Results, BenchResult{
				Input:       name,
				Algorithm:   alg.String(),
				Procs:       cfg.Procs,
				Iterations:  r.N,
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			})
		}
	}
	return rep
}

// WriteJSON runs JSONReport and writes it to path, also echoing a short
// summary line per cell to cfg.Out.
func WriteJSON(cfg Config, path string) error {
	cfg = cfg.withDefaults()
	rep := JSONReport(cfg)
	for _, r := range rep.Results {
		fmt.Fprintf(cfg.Out, "%-10s %-22s %12.0f ns/op %10d B/op %6d allocs/op\n",
			r.Input, r.Algorithm, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	fmt.Fprintf(cfg.Out, "wrote %s (%d results)\n", path, len(rep.Results))
	return nil
}
