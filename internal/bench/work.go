package bench

import (
	"fmt"

	"parconn"
)

// Work reports machine-independent work metrics for the decomposition
// algorithm: the total number of directed edges processed across all
// recursion levels (sum of per-level edge counts — each live edge is
// scanned once per level) divided by m. Theorem 1 says this ratio is O(1)
// in expectation (the geometric series sum(beta'^i) with beta' the
// effective per-level shrink); measuring it flat across graph sizes is the
// host-independent witness of the linear-work claim that 1-core timing
// cannot provide.
func Work(cfg Config) {
	cfg = cfg.withDefaults()

	// Per-input work ratios at the default beta.
	t := NewTable("Input", "m (directed)", "levels", "edges processed", "work/m")
	for _, in := range Inputs() {
		g := in.Make(cfg.Scale)
		levels, processed := workOf(g, 0.2, cfg)
		m := 2 * g.NumEdges()
		t.Addf(in.Name, m, levels, processed, ratio(processed, m))
	}
	emit(cfg, t, "work1", "Work 1. Total decomposition work vs m, decomp-arb-hybrid-CC, beta=0.2 (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintln(cfg.Out)

	// Work ratio versus problem size: linear work means a flat column.
	t2 := NewTable("m (directed)", "levels", "edges processed", "work/m")
	maxEdges := int(5_000_000 * cfg.Scale)
	for frac := 1; frac <= 10; frac += 3 {
		mReq := maxEdges * frac / 10
		n := mReq / 5
		if n < 16 {
			continue
		}
		g := parconn.RandomGraph(n, 5, cfg.Seed+uint64(frac))
		levels, processed := workOf(g, 0.2, cfg)
		m := 2 * g.NumEdges()
		t2.Addf(m, levels, processed, ratio(processed, m))
	}
	emit(cfg, t2, "work2", "Work 2. Work ratio vs size, random graphs (flat column = linear work)\n")
	fmt.Fprintln(cfg.Out)

	// Work ratio versus beta: larger beta keeps more edges per level, so
	// the geometric series converges more slowly.
	t3 := NewTable("beta", "levels", "edges processed", "work/m")
	in, err := InputByName("line")
	if err != nil {
		panic(err)
	}
	g := in.Make(cfg.Scale)
	m := 2 * g.NumEdges()
	for _, beta := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		levels, processed := workOf(g, beta, cfg)
		t3.Addf(fmt.Sprintf("%.2f", beta), levels, processed, ratio(processed, m))
	}
	emit(cfg, t3, "work3", "Work 3. Work ratio vs beta on line (no duplicate edges: the pure geometric series)\n")
}

func workOf(g *parconn.Graph, beta float64, cfg Config) (levels int, processed int64) {
	var stats []parconn.LevelStat
	if _, err := parconn.ConnectedComponents(g, parconn.Options{
		Algorithm: parconn.DecompArbHybrid, Beta: beta, Procs: cfg.Procs, Seed: cfg.Seed, Levels: &stats,
	}); err != nil {
		panic(err)
	}
	for _, ls := range stats {
		processed += ls.EdgesIn
	}
	return len(stats), processed
}

func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", float64(a)/float64(b))
}
