package bench

import (
	"fmt"
	"io"
	"time"

	"parconn"
)

// Config drives the experiment harness.
type Config struct {
	// Scale multiplies the default (already paper-scaled-down) input sizes.
	Scale float64
	// Trials per measurement; the median is reported (paper: 3).
	Trials int
	// Procs is the worker count for "parallel" columns; <= 0 means all.
	Procs int
	// Threads lists the worker counts swept by Figure 2; empty means
	// {1, 2, 4, ..., Procs}.
	Threads []int
	// ProcsList lists the worker counts swept by the "speedup" experiment
	// (a comma list passed to cmd/bench -procs); empty means the Threads
	// default. The first entry should be 1 so speedups read "vs serial".
	ProcsList []int
	// Seed drives all randomized algorithms.
	Seed uint64
	// Out receives the rendered tables.
	Out io.Writer
	// CSVDir, when non-empty, additionally writes each table as a CSV file
	// into this directory (created if needed).
	CSVDir string
	// JSONPath is where the "json" experiment writes its benchmark report;
	// empty means BENCH_parconn.json in the working directory.
	JSONPath string
	// Recorder, if non-nil, receives the observability event stream of
	// every timed connectivity run (one run_start/run_end pair per trial).
	// Attaching a sink perturbs the timings slightly; leave nil for
	// publication numbers.
	Recorder parconn.Recorder
	// SLOTargetP99 is the rolling-P99 latency target the serve and churn
	// benchmarks grade scrape windows against (0 = 25ms). The resulting
	// attainment fraction lands in BENCH_serve.json / BENCH_churn.json and
	// is gated by `tracestat slo`.
	SLOTargetP99 time.Duration
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Trials < 1 {
		c.Trials = 3
	}
	c.Procs = parconn.Procs(c.Procs)
	if len(c.Threads) == 0 {
		for t := 1; t < c.Procs; t *= 2 {
			c.Threads = append(c.Threads, t)
		}
		c.Threads = append(c.Threads, c.Procs)
	}
	if c.Out == nil {
		panic("bench: Config.Out is nil")
	}
	if c.SLOTargetP99 <= 0 {
		c.SLOTargetP99 = 25 * time.Millisecond
	}
	return c
}

// table2Algorithms is the paper's Table 2 row order, followed by the two
// extra baselines this library adds.
var table2Algorithms = []parconn.Algorithm{
	parconn.SerialSF,
	parconn.DecompArb,
	parconn.DecompArbHybrid,
	parconn.DecompMin,
	parconn.ParallelSFPBBS,
	parconn.ParallelSFPRM,
	parconn.HybridBFS,
	parconn.Multistep,
	parconn.LabelProp,
	parconn.ShiloachVishkin,
	parconn.RandomMate,
	parconn.LDDUnionFind,
}

// runCC runs one labeled measurement and returns the median duration.
func runCC(g *parconn.Graph, alg parconn.Algorithm, procs, trials int, seed uint64, rec parconn.Recorder) time.Duration {
	return Median(trials, func() {
		if _, err := parconn.ConnectedComponents(g, parconn.Options{Algorithm: alg, Procs: procs, Seed: seed, Recorder: rec}); err != nil {
			panic(err)
		}
	})
}

// Table1 regenerates the paper's Table 1: the input graphs and their sizes
// (at harness scale, with the paper's sizes alongside).
func Table1(cfg Config) {
	cfg = cfg.withDefaults()
	t := NewTable("Input Graph", "Num. Vertices", "Num. Edges", "Paper N", "Paper M")
	for _, in := range Inputs() {
		g := in.Make(cfg.Scale)
		t.Addf(in.Name, g.NumVertices(), g.NumEdges(), in.PaperN, in.PaperM)
	}
	emit(cfg, t, "table1", "Table 1. Input graphs (scale=%.3g; paper sizes for reference)\n", cfg.Scale)
}

// Table2 regenerates the paper's Table 2: serial (1 worker) and parallel
// (Procs workers) connected-components times for every implementation on
// every input.
func Table2(cfg Config) {
	cfg = cfg.withDefaults()
	header := []string{"Implementation"}
	for _, in := range Inputs() {
		header = append(header, in.Name+" (1)", fmt.Sprintf("%s (%dp)", in.Name, cfg.Procs))
	}
	t := NewTable(header...)
	graphs := make([]*parconn.Graph, 0, 6)
	for _, in := range Inputs() {
		graphs = append(graphs, in.Make(cfg.Scale))
	}
	for _, alg := range table2Algorithms {
		row := []string{alg.String()}
		for _, g := range graphs {
			serial := runCC(g, alg, 1, cfg.Trials, cfg.Seed, cfg.Recorder)
			var par time.Duration
			switch {
			case alg == parconn.SerialSF:
				// The paper reports no parallel column for serial-SF.
				par = 0
			case cfg.Procs == 1:
				par = serial // identical configuration; don't re-measure
			default:
				par = runCC(g, alg, cfg.Procs, cfg.Trials, cfg.Seed, cfg.Recorder)
			}
			row = append(row, Seconds(serial), dashIfZero(par))
		}
		t.Add(row...)
	}
	emit(cfg, t, "table2", "Table 2. Connected-components times in seconds (median of %d; scale=%.3g; procs=%d)\n", cfg.Trials, cfg.Scale, cfg.Procs)
}

func dashIfZero(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return Seconds(d)
}

// Fig2 regenerates Figure 2: running time versus worker count for every
// implementation on every input graph.
func Fig2(cfg Config) {
	cfg = cfg.withDefaults()
	for _, in := range Inputs() {
		g := in.Make(cfg.Scale)
		header := []string{"Implementation"}
		for _, th := range cfg.Threads {
			header = append(header, fmt.Sprintf("p=%d", th))
		}
		t := NewTable(header...)
		for _, alg := range table2Algorithms {
			if alg == parconn.SerialSF {
				// Sequential: a single column repeated for reference.
				row := []string{alg.String()}
				d := runCC(g, alg, 1, cfg.Trials, cfg.Seed, cfg.Recorder)
				for range cfg.Threads {
					row = append(row, Seconds(d))
				}
				t.Add(row...)
				continue
			}
			row := []string{alg.String()}
			for _, th := range cfg.Threads {
				row = append(row, Seconds(runCC(g, alg, th, cfg.Trials, cfg.Seed, cfg.Recorder)))
			}
			t.Add(row...)
		}
		emit(cfg, t, "fig2-"+in.Name, "Figure 2 (%s). Time (s) vs workers (scale=%.3g)\n", in.Name, cfg.Scale)
		fmt.Fprintln(cfg.Out)
	}
}

// fig3Betas is the paper's Figure 3 x-axis (0 to 1, coarser here).
var fig3Betas = []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}

// fig3Inputs are the graphs Figure 3 shows: random, rMat, 3D-grid, line.
var figSweepInputs = []string{"random", "rMat", "3D-grid", "line"}

// Fig3 regenerates Figure 3: running time versus beta for the three
// decomposition-based implementations.
func Fig3(cfg Config) {
	cfg = cfg.withDefaults()
	algs := []parconn.Algorithm{parconn.DecompArb, parconn.DecompArbHybrid, parconn.DecompMin}
	for _, name := range figSweepInputs {
		in, err := InputByName(name)
		if err != nil {
			panic(err)
		}
		g := in.Make(cfg.Scale)
		header := []string{"beta"}
		for _, a := range algs {
			header = append(header, a.String())
		}
		t := NewTable(header...)
		for _, beta := range fig3Betas {
			row := []string{fmt.Sprintf("%.2f", beta)}
			for _, alg := range algs {
				d := Median(cfg.Trials, func() {
					if _, err := parconn.ConnectedComponents(g, parconn.Options{
						Algorithm: alg, Beta: beta, Procs: cfg.Procs, Seed: cfg.Seed,
					}); err != nil {
						panic(err)
					}
				})
				row = append(row, Seconds(d))
			}
			t.Add(row...)
		}
		emit(cfg, t, "fig3-"+in.Name, "Figure 3 (%s). Time (s) vs beta (procs=%d, scale=%.3g)\n", in.Name, cfg.Procs, cfg.Scale)
		fmt.Fprintln(cfg.Out)
	}
}

// fig4Betas mirrors the paper: one beta set for most graphs, a finer
// low-beta set for the line graph.
var fig4Betas = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
var fig4BetasLine = []float64{0.003, 0.008, 0.02, 0.04, 0.06, 0.08, 0.1, 0.2}

// Fig4 regenerates Figure 4: the number of remaining edges per iteration of
// decomp-arb-hybrid-CC as a function of beta.
func Fig4(cfg Config) {
	cfg = cfg.withDefaults()
	for _, name := range figSweepInputs {
		in, err := InputByName(name)
		if err != nil {
			panic(err)
		}
		g := in.Make(cfg.Scale)
		betas := fig4Betas
		if name == "line" {
			betas = fig4BetasLine
		}
		// Column per beta, row per iteration.
		header := []string{"iteration"}
		for _, b := range betas {
			header = append(header, fmt.Sprintf("beta=%.3g", b))
		}
		series := make([][]int64, len(betas))
		maxLen := 0
		for i, beta := range betas {
			var levels []parconn.LevelStat
			if _, err := parconn.ConnectedComponents(g, parconn.Options{
				Algorithm: parconn.DecompArbHybrid, Beta: beta, Procs: cfg.Procs, Seed: cfg.Seed, Levels: &levels,
			}); err != nil {
				panic(err)
			}
			s := make([]int64, 0, len(levels)+1)
			if len(levels) > 0 {
				s = append(s, levels[0].EdgesIn)
			}
			for _, ls := range levels {
				s = append(s, ls.EdgesOut)
			}
			series[i] = s
			if len(s) > maxLen {
				maxLen = len(s)
			}
		}
		t := NewTable(header...)
		for it := 0; it < maxLen; it++ {
			row := []string{fmt.Sprintf("%d", it)}
			for _, s := range series {
				if it < len(s) {
					row = append(row, fmt.Sprintf("%d", s[it]))
				} else {
					row = append(row, "")
				}
			}
			t.Add(row...)
		}
		emit(cfg, t, "fig4-"+in.Name, "Figure 4 (%s). Remaining directed edges per iteration, decomp-arb-hybrid-CC (scale=%.3g)\n", in.Name, cfg.Scale)
		fmt.Fprintln(cfg.Out)
	}
}

// breakdown runs one decomposition CC and prints its phase breakdown for
// the graphs Figures 5-7 use.
func breakdown(cfg Config, alg parconn.Algorithm, figure string, phases []string, get func(*parconn.PhaseTimes) []time.Duration) {
	cfg = cfg.withDefaults()
	header := append([]string{"Input"}, phases...)
	header = append(header, "total")
	t := NewTable(header...)
	for _, name := range figSweepInputs {
		in, err := InputByName(name)
		if err != nil {
			panic(err)
		}
		g := in.Make(cfg.Scale)
		var pt parconn.PhaseTimes
		// One warm run, then the measured run (breakdowns are shown for a
		// single run in the paper, not medians).
		if _, err := parconn.ConnectedComponents(g, parconn.Options{Algorithm: alg, Procs: cfg.Procs, Seed: cfg.Seed}); err != nil {
			panic(err)
		}
		if _, err := parconn.ConnectedComponents(g, parconn.Options{Algorithm: alg, Procs: cfg.Procs, Seed: cfg.Seed, Phases: &pt}); err != nil {
			panic(err)
		}
		row := []string{name}
		var total time.Duration
		for _, d := range get(&pt) {
			row = append(row, Seconds(d))
			total += d
		}
		row = append(row, Seconds(total))
		t.Add(row...)
	}
	emit(cfg, t, figure+"-"+alg.String(), "%s. Phase breakdown (s) for %s (procs=%d, scale=%.3g)\n", figure, alg, cfg.Procs, cfg.Scale)
	fmt.Fprintln(cfg.Out)
}

// Fig5 regenerates Figure 5: decomp-min-CC phase breakdown.
func Fig5(cfg Config) {
	breakdown(cfg, parconn.DecompMin, "Figure 5",
		[]string{"init", "bfsPre", "bfsPhase1", "bfsPhase2", "contractGraph"},
		func(p *parconn.PhaseTimes) []time.Duration {
			return []time.Duration{p.Init, p.BFSPre, p.BFSPhase1, p.BFSPhase2, p.Contract}
		})
}

// Fig6 regenerates Figure 6: decomp-arb-CC phase breakdown.
func Fig6(cfg Config) {
	breakdown(cfg, parconn.DecompArb, "Figure 6",
		[]string{"init", "bfsPre", "bfsMain", "contractGraph"},
		func(p *parconn.PhaseTimes) []time.Duration {
			return []time.Duration{p.Init, p.BFSPre, p.BFSMain, p.Contract}
		})
}

// Fig7 regenerates Figure 7: decomp-arb-hybrid-CC phase breakdown.
func Fig7(cfg Config) {
	breakdown(cfg, parconn.DecompArbHybrid, "Figure 7",
		[]string{"init", "bfsPre", "bfsSparse", "bfsDense", "filterEdges", "contractGraph"},
		func(p *parconn.PhaseTimes) []time.Duration {
			return []time.Duration{p.Init, p.BFSPre, p.BFSSparse, p.BFSDense, p.FilterEdges, p.Contract}
		})
}

// Fig8 regenerates Figure 8: decomp-arb-hybrid-CC time versus problem size
// on random graphs (m from 10% to 100% of the scaled maximum, n = m/5).
func Fig8(cfg Config) {
	cfg = cfg.withDefaults()
	t := NewTable("num edges", "num vertices", "time (s)")
	maxEdges := int(5_000_000 * cfg.Scale)
	for frac := 1; frac <= 10; frac++ {
		m := maxEdges * frac / 10
		n := m / 5
		if n < 16 {
			continue
		}
		g := parconn.RandomGraph(n, 5, cfg.Seed+uint64(frac))
		d := runCC(g, parconn.DecompArbHybrid, cfg.Procs, cfg.Trials, cfg.Seed, cfg.Recorder)
		t.Addf(m, n, Seconds(d))
	}
	emit(cfg, t, "fig8", "Figure 8. decomp-arb-hybrid-CC time vs problem size, random graphs (procs=%d, scale=%.3g)\n", cfg.Procs, cfg.Scale)
}

// Experiments maps experiment names to their runners, in paper order.
var Experiments = []struct {
	Name string
	Run  func(Config)
}{
	{"table1", Table1},
	{"table2", Table2},
	{"fig2", Fig2},
	{"fig3", Fig3},
	{"fig4", Fig4},
	{"fig5", Fig5},
	{"fig6", Fig6},
	{"fig7", Fig7},
	{"fig8", Fig8},
	{"ablation", Ablation},
	{"work", Work},
}

// ExperimentNames returns every name Run accepts, in display order: the
// paper experiments, then the file-writing experiments and "all".
func ExperimentNames() []string {
	names := make([]string, 0, len(Experiments)+4)
	for _, e := range Experiments {
		names = append(names, e.Name)
	}
	return append(names, "json", "speedup", "serve", "churn", "all")
}

// Run executes the named experiment ("all" runs every one in order; "json",
// "speedup", "serve", and "churn" run the machine-readable benchmarks, which
// are kept out of "all" because they write files next to the tables).
func Run(name string, cfg Config) error {
	if name == "serve" {
		path := cfg.JSONPath
		if path == "" {
			path = "BENCH_serve.json"
		}
		return WriteServe(cfg, path)
	}
	if name == "churn" {
		path := cfg.JSONPath
		if path == "" {
			path = "BENCH_churn.json"
		}
		return WriteChurn(cfg, path)
	}
	if name == "json" {
		path := cfg.JSONPath
		if path == "" {
			path = "BENCH_parconn.json"
		}
		return WriteJSON(cfg, path)
	}
	if name == "speedup" {
		path := cfg.JSONPath
		if path == "" {
			path = "BENCH_speedup.json"
		}
		return WriteSpeedup(cfg, cfg.ProcsList, path)
	}
	if name == "all" {
		for _, e := range Experiments {
			e.Run(cfg)
			fmt.Fprintln(cfg.Out)
		}
		return nil
	}
	for _, e := range Experiments {
		if e.Name == name {
			e.Run(cfg)
			return nil
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", name)
}
