package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"parconn"
	"parconn/internal/bench/serveload"
	"parconn/internal/obs/obshttp"
	"parconn/internal/serve"
)

// churnFractions are the insert shares the churn benchmark sweeps: a
// read-mostly mix and a write-heavy one, so both the query path under light
// mutation and the republish cost under heavy mutation are gated numbers.
var churnFractions = []float64{0.05, 0.25}

// ChurnInsertBatch is the edges-per-insert request of the churn benchmark.
const ChurnInsertBatch = 32

// ChurnReport is the top-level schema of BENCH_churn.json: query throughput
// and insert-batch latency of the incremental serving stack under an
// interleaved insert/query workload, one result row per insert fraction.
type ChurnReport struct {
	GoVersion   string             `json:"go_version"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Env         parconn.Env        `json:"env"`
	Scale       float64            `json:"scale"`
	Seed        uint64             `json:"seed"`
	Vertices    int                `json:"vertices"`
	Edges       int64              `json:"edges"`
	Algorithm   string             `json:"algorithm"`
	Concurrency int                `json:"concurrency"`
	InsertBatch int                `json:"insert_batch"`
	Results     []serveload.Result `json:"results"`
}

// ChurnLoadReport boots the connectivity service in-process with the
// incremental layer enabled, labels the harness's random input, and drives
// the churn workload against it at each insert fraction. Inserted edges
// accumulate across fractions (the server state mutates — that is the
// point), so rows are comparable only to the same row of another report.
func ChurnLoadReport(cfg Config) (ChurnReport, error) {
	cfg = cfg.withDefaults()
	in, err := InputByName("random")
	if err != nil {
		return ChurnReport{}, err
	}
	g := in.Make(cfg.Scale)
	alg := parconn.DecompArbHybrid
	labelStart := time.Now()
	labels, err := parconn.ConnectedComponents(g, parconn.Options{
		Algorithm: alg, Procs: cfg.Procs, Seed: cfg.Seed, Recorder: cfg.Recorder,
	})
	if err != nil {
		return ChurnReport{}, err
	}
	labelTime := time.Since(labelStart)

	warmup, duration := serveWindows(cfg.Scale)
	reg, observer := benchObserver(duration)
	sv := serve.New(serve.Config{Observer: observer, Metrics: reg})
	sv.Publish(serve.Labeling{
		Labels:    labels,
		Edges:     int64(g.NumEdges()),
		Algorithm: alg.String(),
		Source:    fmt.Sprintf("bench:random(scale=%.3g)", cfg.Scale),
		LabelTime: labelTime,
	})
	inc, err := parconn.NewIncrementalFromLabels(labels)
	if err != nil {
		return ChurnReport{}, err
	}
	sv.EnableIncremental(inc)
	mux := http.NewServeMux()
	mux.Handle("/v1/", sv.Handler())
	mux.Handle("/metrics", reg.Handler())
	srv, err := obshttp.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		return ChurnReport{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	rep := ChurnReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Env:         parconn.CaptureEnv(),
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		Vertices:    g.NumVertices(),
		Edges:       int64(g.NumEdges()),
		Algorithm:   alg.String(),
		Concurrency: cfg.Procs,
		InsertBatch: ChurnInsertBatch,
	}
	for _, frac := range churnFractions {
		res, err := serveload.Run(serveload.Config{
			BaseURL:        "http://" + srv.Addr().String(),
			Workload:       serveload.WorkloadChurn,
			Concurrency:    cfg.Procs,
			Warmup:         warmup,
			Duration:       duration,
			Vertices:       g.NumVertices(),
			InsertFraction: frac,
			InsertBatch:    ChurnInsertBatch,
			Seed:           cfg.Seed,
			MetricsURL:     "http://" + srv.Addr().String() + "/metrics",
			SLOTargetP99:   cfg.SLOTargetP99,
		})
		if err != nil {
			return ChurnReport{}, err
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// WriteChurn runs ChurnLoadReport, echoes one summary line per insert
// fraction to cfg.Out, and writes the report to path.
func WriteChurn(cfg Config, path string) error {
	cfg = cfg.withDefaults()
	rep, err := ChurnLoadReport(cfg)
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Fprintf(cfg.Out, "churn f=%.2f c=%-3d %9.0f query qps (p95 %8s)   %7.0f insert qps (p95 %8s)  (%d queries, %d inserts, %d errs)%s\n",
			r.InsertFraction, r.Concurrency,
			r.QPS, time.Duration(r.P95NS),
			r.InsertQPS, time.Duration(r.InsertP95NS),
			r.Requests, r.Inserts, r.Errors+r.InsertErrors, sloSummary(r))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	fmt.Fprintf(cfg.Out, "wrote %s (%d insert fractions)\n", path, len(rep.Results))
	return nil
}
