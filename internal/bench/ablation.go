package bench

import (
	"fmt"

	"parconn"
)

// Ablation runs the design-choice ablations DESIGN.md calls out, beyond the
// paper's own figures:
//
//  1. duplicate-edge removal during contraction: hash (paper's choice) vs
//     sort vs none (the paper notes correctness is preserved without
//     dedup; this quantifies the cost),
//  2. the direction-optimizing threshold of decomp-arb-hybrid (paper: 20%),
//  3. the §4 high-degree edge-parallel inner loop, off (paper's final
//     choice) vs on, on a hub-heavy graph.
func Ablation(cfg Config) {
	cfg = cfg.withDefaults()

	// 1. Dedup mode, on the duplicate-heavy inputs (rMat2 keeps duplicates;
	// the random graph generates them naturally).
	{
		t := NewTable("Input", "dedup=hash", "dedup=sort", "dedup=none")
		for _, name := range []string{"random", "rMat2"} {
			in, err := InputByName(name)
			if err != nil {
				panic(err)
			}
			g := in.Make(cfg.Scale)
			row := []string{name}
			for _, mode := range []parconn.DedupMode{parconn.DedupHash, parconn.DedupSort, parconn.DedupNone} {
				d := Median(cfg.Trials, func() {
					if _, err := parconn.ConnectedComponents(g, parconn.Options{
						Algorithm: parconn.DecompArb, Dedup: mode, Procs: cfg.Procs, Seed: cfg.Seed,
					}); err != nil {
						panic(err)
					}
				})
				row = append(row, Seconds(d))
			}
			t.Add(row...)
		}
		emit(cfg, t, "ablation1-dedup", "Ablation 1. Contraction duplicate removal, decomp-arb-CC (s; scale=%.3g)\n", cfg.Scale)
		fmt.Fprintln(cfg.Out)
	}

	// 2. Dense-round threshold for the hybrid.
	{
		fracs := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.0}
		header := []string{"Input"}
		for _, f := range fracs {
			header = append(header, fmt.Sprintf("dense>%.0f%%", 100*f))
		}
		t := NewTable(header...)
		for _, name := range []string{"random", "rMat", "3D-grid"} {
			in, err := InputByName(name)
			if err != nil {
				panic(err)
			}
			g := in.Make(cfg.Scale)
			row := []string{name}
			for _, f := range fracs {
				d := Median(cfg.Trials, func() {
					if _, err := parconn.ConnectedComponents(g, parconn.Options{
						Algorithm: parconn.DecompArbHybrid, DenseFrac: f, Procs: cfg.Procs, Seed: cfg.Seed,
					}); err != nil {
						panic(err)
					}
				})
				row = append(row, Seconds(d))
			}
			t.Add(row...)
		}
		emit(cfg, t, "ablation2-densefrac", "Ablation 2. Direction-optimizing threshold, decomp-arb-hybrid-CC (s; paper uses 20%%; dense>100%% = never dense = decomp-arb)\n")
		fmt.Fprintln(cfg.Out)
	}

	// 3. High-degree edge-parallel inner loop on a hub-heavy graph.
	{
		g := parconn.RMatGraph(logScaled(16, cfg.Scale), parconn.RMatOptions{EdgeFactor: 30, Seed: cfg.Seed})
		t := NewTable("Config", "time (s)")
		for _, thr := range []int{0, 1 << 12, 1 << 10, 1 << 8} {
			label := "off (paper default)"
			if thr > 0 {
				label = fmt.Sprintf("threshold=%d", thr)
			}
			d := Median(cfg.Trials, func() {
				if _, err := parconn.ConnectedComponents(g, parconn.Options{
					Algorithm: parconn.DecompArb, EdgeParallel: thr, Procs: cfg.Procs, Seed: cfg.Seed,
				}); err != nil {
					panic(err)
				}
			})
			t.Add(label, Seconds(d))
		}
		emit(cfg, t, "ablation3-edgepar", "Ablation 3. High-degree edge-parallel inner loop, decomp-arb-CC on rMat ef=30 (max degree %d)\n", g.MaxDegree())
	}
}
