package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"parconn"
	"parconn/internal/bench/serveload"
	"parconn/internal/obs/metrics"
	"parconn/internal/obs/obshttp"
	"parconn/internal/serve"
)

// ServeReport is the top-level schema of BENCH_serve.json: the serving
// stack's throughput and latency quantiles per workload, over real loopback
// HTTP. Env lets cmd/tracestat flag cross-machine comparisons.
type ServeReport struct {
	GoVersion   string             `json:"go_version"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Env         parconn.Env        `json:"env"`
	Scale       float64            `json:"scale"`
	Seed        uint64             `json:"seed"`
	Vertices    int                `json:"vertices"`
	Edges       int64              `json:"edges"`
	Algorithm   string             `json:"algorithm"`
	Concurrency int                `json:"concurrency"`
	Results     []serveload.Result `json:"results"`
}

// benchObserver builds the metrics registry and request Observer the serve
// and churn benchmarks attach to their in-process server: rolling windows
// sized to the measurement duration so the SLO scraper grades recent
// traffic even at smoke scales, and no span sampling (spans would perturb
// the numbers being measured).
func benchObserver(duration time.Duration) (*metrics.Registry, *serve.Observer) {
	reg := metrics.New()
	window := duration / 8
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	o := serve.NewObserver(serve.ObserverConfig{
		Metrics:        reg,
		RollingWindow:  window,
		RollingWindows: 16,
	})
	return reg, o
}

// sloSummary renders the per-result SLO attainment fragment of the summary
// line, empty when SLO tracking was disabled for the run.
func sloSummary(r serveload.Result) string {
	if r.SLOWindows == 0 {
		return ""
	}
	return fmt.Sprintf("  slo[p99<=%s] %3.0f%% (%d/%d windows)",
		time.Duration(r.SLOTargetNS), r.SLOAttainment*100, r.SLOGoodWindows, r.SLOWindows)
}

// serveWindows derives the measurement windows from the harness scale: long
// enough at scale 1 for stable quantiles, short enough at smoke scales that
// CI stays fast.
func serveWindows(scale float64) (warmup, duration time.Duration) {
	duration = time.Duration(float64(time.Second) * scale)
	if duration < 150*time.Millisecond {
		duration = 150 * time.Millisecond
	}
	if duration > 5*time.Second {
		duration = 5 * time.Second
	}
	warmup = duration / 5
	return warmup, duration
}

// ServeLoadReport boots the connectivity service in-process on a loopback
// port, labels the harness's random input, and drives every serveload
// workload against it.
func ServeLoadReport(cfg Config) (ServeReport, error) {
	cfg = cfg.withDefaults()
	in, err := InputByName("random")
	if err != nil {
		return ServeReport{}, err
	}
	g := in.Make(cfg.Scale)
	alg := parconn.DecompArbHybrid
	labelStart := time.Now()
	labels, err := parconn.ConnectedComponents(g, parconn.Options{
		Algorithm: alg, Procs: cfg.Procs, Seed: cfg.Seed, Recorder: cfg.Recorder,
	})
	if err != nil {
		return ServeReport{}, err
	}
	labelTime := time.Since(labelStart)

	warmup, duration := serveWindows(cfg.Scale)
	reg, observer := benchObserver(duration)
	sv := serve.New(serve.Config{Observer: observer, Metrics: reg})
	sv.Publish(serve.Labeling{
		Labels:    labels,
		Edges:     int64(g.NumEdges()),
		Algorithm: alg.String(),
		Source:    fmt.Sprintf("bench:random(scale=%.3g)", cfg.Scale),
		LabelTime: labelTime,
	})
	mux := http.NewServeMux()
	mux.Handle("/v1/", sv.Handler())
	mux.Handle("/metrics", reg.Handler())
	srv, err := obshttp.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		return ServeReport{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	rep := ServeReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Env:         parconn.CaptureEnv(),
		Scale:       cfg.Scale,
		Seed:        cfg.Seed,
		Vertices:    g.NumVertices(),
		Edges:       int64(g.NumEdges()),
		Algorithm:   alg.String(),
		Concurrency: cfg.Procs,
	}
	for _, w := range serveload.Workloads {
		res, err := serveload.Run(serveload.Config{
			BaseURL:      "http://" + srv.Addr().String(),
			Workload:     w,
			Concurrency:  cfg.Procs,
			Warmup:       warmup,
			Duration:     duration,
			Vertices:     g.NumVertices(),
			Seed:         cfg.Seed,
			MetricsURL:   "http://" + srv.Addr().String() + "/metrics",
			SLOTargetP99: cfg.SLOTargetP99,
		})
		if err != nil {
			return ServeReport{}, err
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// WriteServe runs ServeLoadReport, echoes one summary line per workload to
// cfg.Out, and writes the report to path.
func WriteServe(cfg Config, path string) error {
	cfg = cfg.withDefaults()
	rep, err := ServeLoadReport(cfg)
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Fprintf(cfg.Out, "%-6s c=%-3d %9.0f qps   p50 %8s  p95 %8s  p99 %8s  (%d reqs, %d errs)%s\n",
			r.Workload, r.Concurrency, r.QPS,
			time.Duration(r.P50NS), time.Duration(r.P95NS), time.Duration(r.P99NS),
			r.Requests, r.Errors, sloSummary(r))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	fmt.Fprintf(cfg.Out, "wrote %s (%d workloads)\n", path, len(rep.Results))
	return nil
}
