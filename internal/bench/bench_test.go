package bench

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestInputsCoverPaperTable1(t *testing.T) {
	want := []string{"random", "rMat", "rMat2", "3D-grid", "line", "com-Orkut"}
	ins := Inputs()
	if len(ins) != len(want) {
		t.Fatalf("%d inputs, want %d", len(ins), len(want))
	}
	for i, name := range want {
		if ins[i].Name != name {
			t.Fatalf("input %d is %q, want %q", i, ins[i].Name, name)
		}
	}
}

func TestInputsBuildAtTinyScale(t *testing.T) {
	for _, in := range Inputs() {
		g := in.Make(0.001)
		if g.NumVertices() < 1 {
			t.Fatalf("%s: empty graph at tiny scale", in.Name)
		}
	}
}

func TestInputByName(t *testing.T) {
	if _, err := InputByName("random"); err != nil {
		t.Fatal(err)
	}
	if _, err := InputByName("nope"); err == nil {
		t.Fatal("unknown input accepted")
	}
}

func TestMedian(t *testing.T) {
	calls := 0
	d := Median(3, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 3 {
		t.Fatalf("calls=%d", calls)
	}
	if d < time.Millisecond {
		t.Fatalf("median %v too small", d)
	}
	if Median(0, func() {}) < 0 {
		t.Fatal("trials=0 mishandled")
	}
}

func TestSecondsFormat(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		1500 * time.Millisecond: "1.50",
		123 * time.Millisecond:  "0.123",
		15 * time.Second:        "15.0",
		150 * time.Second:       "150",
	}
	for d, want := range cases {
		if got := Seconds(d); got != want {
			t.Fatalf("Seconds(%v)=%q want %q", d, got, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable("a", "bbbb")
	tab.Add("xxx", "y")
	tab.Addf(12, 3.5)
	tab.Print(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "a    bbbb") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
	if !strings.Contains(lines[3], "12") || !strings.Contains(lines[3], "3.5") {
		t.Fatalf("Addf row wrong: %q", lines[3])
	}
}

// TestExperimentsSmoke runs every experiment at minuscule scale to ensure
// the whole harness executes end-to-end.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	var buf bytes.Buffer
	cfg := Config{Scale: 0.002, Trials: 1, Out: &buf, Seed: 1, Threads: []int{1, 2}}
	if err := Run("all", cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, marker := range []string{"Table 1", "Table 2", "Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("output missing %q", marker)
		}
	}
	for _, alg := range []string{"decomp-arb-hybrid-CC", "serial-SF", "multistep-CC"} {
		if !strings.Contains(out, alg) {
			t.Fatalf("output missing algorithm %q", alg)
		}
	}
	if err := Run("nope", cfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestWriteChurnSmoke runs the churn benchmark end to end at minuscule
// scale: boot a server with the incremental layer, drive the mutating
// workload at each insert fraction, and write a parseable report.
func TestWriteChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("churn smoke test drives a live HTTP server")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "churn.json")
	var buf bytes.Buffer
	if err := Run("churn", Config{Scale: 0.002, Trials: 1, Procs: 2, Out: &buf, Seed: 1, JSONPath: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep ChurnReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(churnFractions) {
		t.Fatalf("report has %d rows, want %d", len(rep.Results), len(churnFractions))
	}
	for i, r := range rep.Results {
		if r.InsertFraction != churnFractions[i] || r.InsertBatch != ChurnInsertBatch {
			t.Fatalf("row %d meta: %+v", i, r)
		}
		if r.Requests == 0 || r.Inserts == 0 {
			t.Fatalf("row %d saw no traffic on one path: %d queries, %d inserts", i, r.Requests, r.Inserts)
		}
		if r.Errors != 0 || r.InsertErrors != 0 {
			t.Fatalf("row %d errors: %d query, %d insert", i, r.Errors, r.InsertErrors)
		}
		if r.InsertP95NS <= 0 || r.QPS <= 0 {
			t.Fatalf("row %d metrics: %+v", i, r)
		}
	}
	if !strings.Contains(buf.String(), "wrote "+path) {
		t.Fatalf("summary output wrong:\n%s", buf.String())
	}
}

func TestCSVEmission(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{Scale: 0.002, Trials: 1, Out: &buf, Seed: 1, CSVDir: dir}
	Table1(cfg)
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // header + 6 inputs
		t.Fatalf("csv has %d rows", len(rows))
	}
	if rows[0][0] != "Input Graph" || rows[1][0] != "random" {
		t.Fatalf("csv content wrong: %v", rows[:2])
	}
}

func TestSlugify(t *testing.T) {
	if slugify("Figure 5-decomp-min-CC") != "figure-5-decomp-min-cc" {
		t.Fatalf("got %q", slugify("Figure 5-decomp-min-CC"))
	}
}
