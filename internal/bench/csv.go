package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV writes the table as RFC-4180 CSV (header row first).
func (t *Table) WriteCSV(w *csv.Writer) error {
	if err := w.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// emit prints the table to cfg.Out under the given title and, when
// cfg.CSVDir is set, also writes it to <CSVDir>/<slug>.csv for plotting.
func emit(cfg Config, t *Table, slug, titleFormat string, args ...interface{}) {
	fmt.Fprintf(cfg.Out, titleFormat, args...)
	t.Print(cfg.Out)
	if cfg.CSVDir == "" {
		return
	}
	if err := os.MkdirAll(cfg.CSVDir, 0o755); err != nil {
		panic(fmt.Sprintf("bench: csv dir: %v", err))
	}
	path := filepath.Join(cfg.CSVDir, slugify(slug)+".csv")
	f, err := os.Create(path)
	if err != nil {
		panic(fmt.Sprintf("bench: csv file: %v", err))
	}
	defer f.Close()
	if err := t.WriteCSV(csv.NewWriter(f)); err != nil {
		panic(fmt.Sprintf("bench: csv write: %v", err))
	}
}

func slugify(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == '-' || r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
