package bench

import (
	"fmt"
	"sort"
	"time"
)

// Median times fn over trials runs and returns the median duration — the
// paper's measurement protocol ("median of three trials", §5).
func Median(trials int, fn func()) time.Duration {
	if trials < 1 {
		trials = 1
	}
	times := make([]time.Duration, trials)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[trials/2]
}

// Seconds formats a duration the way the paper's tables do: seconds with
// three significant digits.
func Seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s == 0:
		return "0"
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 10:
		return fmt.Sprintf("%.1f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}
