// Package core implements the paper's primary contribution: the
// decomposition-based linear-work parallel connectivity algorithm
// (Algorithm 1 of Shun, Dhulipala, Blelloch, SPAA'14).
//
// CC recursively (1) runs a low-diameter decomposition with a constant beta,
// (2) contracts every partition to a single vertex, dropping intra-partition
// and (optionally) duplicate edges, and (3) recurses on the contracted graph
// until no edges remain, relabeling back up on return (RELABELUP). Since
// each decomposition cuts at most a 2*beta fraction of edges in expectation,
// the edge count shrinks geometrically: O(log n) levels and O(m) total work
// in expectation, O(log^3 n) depth w.h.p.
package core

import (
	"fmt"

	"parconn/internal/decomp"
	"parconn/internal/graph"
	"parconn/internal/hashtable"
	"parconn/internal/intsort"
	"parconn/internal/parallel"
)

// DedupMode selects how duplicate edges between contracted components are
// removed before recursing.
type DedupMode int

const (
	// DedupHash removes duplicates with the phase-concurrent hash table
	// (the paper's choice, §4).
	DedupHash DedupMode = iota
	// DedupSort removes duplicates by sorting and compacting.
	DedupSort
	// DedupNone keeps duplicates. The edge count still drops by a constant
	// factor in expectation (the paper notes this ablation explicitly); on
	// most real graphs duplicates are where the bulk of the reduction comes
	// from, so this mode is markedly slower.
	DedupNone
)

// String names the mode for harness output.
func (d DedupMode) String() string {
	switch d {
	case DedupHash:
		return "hash"
	case DedupSort:
		return "sort"
	case DedupNone:
		return "none"
	default:
		return fmt.Sprintf("dedup(%d)", int(d))
	}
}

// Options configures a connectivity run.
type Options struct {
	// Variant selects the decomposition (Min, Arb, ArbHybrid). The zero
	// value is Min; most callers want Arb or ArbHybrid.
	Variant decomp.Variant
	// Beta is the decomposition parameter; zero means 0.2 (within the
	// paper's empirically best 0.05-0.2 band).
	Beta float64
	// Seed drives all randomness; each recursion level derives its own.
	Seed uint64
	// Procs bounds worker parallelism; <= 0 means GOMAXPROCS.
	Procs int
	// DenseFrac is ArbHybrid's dense-round threshold; zero means 20%.
	DenseFrac float64
	// EdgeParallel, when positive, processes edge lists of frontier
	// vertices with at least this degree using nested parallelism (§4's
	// optional high-degree optimization; Arb variant). Zero disables it.
	EdgeParallel int
	// Dedup selects duplicate-edge removal during contraction.
	Dedup DedupMode
	// Phases, if non-nil, accumulates per-phase wall time across all levels
	// (Figures 5-7).
	Phases *decomp.PhaseTimes
	// Levels, if non-nil, receives one entry per recursion level
	// (Figure 4's remaining-edge counts).
	Levels *[]LevelStat
}

// LevelStat describes one recursion level of CC.
type LevelStat struct {
	Level      int
	Vertices   int   // vertices entering this level
	EdgesIn    int64 // directed edges entering this level
	EdgesCut   int64 // directed inter-partition edges after decomposition
	EdgesOut   int64 // directed edges passed to the next level (post dedup)
	Components int   // partitions produced by this level's decomposition
	Rounds     int   // BFS rounds in this level's decomposition
}

// maxLevels is a defensive bound on recursion depth. The expected number of
// levels is O(log m); hitting this bound indicates the edge count stopped
// shrinking, which the geometric-decrease guarantee makes astronomically
// unlikely — treat it as an internal error rather than looping forever.
const maxLevels = 128

// CC computes a connected-components labeling of g. The returned labeling
// assigns every vertex the id of a canonical vertex of its component, so
// labels[v] == labels[u] iff u and v are connected, and labels[labels[v]] ==
// labels[v].
func CC(g *graph.Graph, opt Options) ([]int32, error) {
	opt.Procs = parallel.Procs(opt.Procs)
	if opt.Beta == 0 {
		opt.Beta = 0.2
	}
	if opt.Beta <= 0 || opt.Beta >= 1 {
		return nil, fmt.Errorf("core: beta %v out of (0,1)", opt.Beta)
	}
	w := decomp.NewWGraph(g, opt.Procs)
	return ccLevel(w, opt, 0)
}

// ccLevel runs one level of Algorithm 1 on the working graph w and returns
// labels in w's vertex space (values are canonical w-vertices).
func ccLevel(w *decomp.WGraph, opt Options, level int) ([]int32, error) {
	if level >= maxLevels {
		return nil, fmt.Errorf("core: recursion exceeded %d levels; edge count is not decreasing", maxLevels)
	}
	if w.N == 0 {
		return []int32{}, nil
	}
	procs := opt.Procs
	edgesIn := w.LiveEdges(procs)

	// Step 1: decompose. Each level derives an independent seed so repeated
	// decompositions do not reuse the same permutation.
	dopt := decomp.Options{
		Beta:         opt.Beta,
		Seed:         opt.Seed + uint64(level)*0x9e3779b97f4a7c15,
		Procs:        procs,
		DenseFrac:    opt.DenseFrac,
		EdgeParallel: opt.EdgeParallel,
		Phases:       opt.Phases,
	}
	res, err := decomp.Decompose(w, opt.Variant, dopt)
	if err != nil {
		return nil, err
	}
	labels := res.Labels // labels[v] = center id owning v

	cut := w.LiveEdges(procs)
	stat := LevelStat{
		Level:      level,
		Vertices:   w.N,
		EdgesIn:    edgesIn,
		EdgesCut:   cut,
		Components: res.NumCenters,
		Rounds:     res.Rounds,
	}
	if cut == 0 {
		// Base case (|E'| == 0): every component was swallowed by a single
		// ball; the decomposition labels are the final labels.
		if opt.Levels != nil {
			*opt.Levels = append(*opt.Levels, stat)
		}
		return labels, nil
	}

	// Step 2: contract (timed as the paper's "contractGraph" phase).
	sw := startContract(opt.Phases)
	sub, rep, present, compact, newID, edgesOut := contract(w, labels, res.NumCenters, opt)
	stat.EdgesOut = edgesOut
	if opt.Levels != nil {
		*opt.Levels = append(*opt.Levels, stat)
	}
	sw.stop(opt.Phases)

	// Step 3: recurse on the contracted graph.
	subLabels, err := ccLevel(sub, opt, level+1)
	if err != nil {
		return nil, err
	}

	// Step 4: RELABELUP — map each vertex's component through the recursive
	// labeling and back to a canonical vertex of this level.
	sw = startContract(opt.Phases)
	parallel.For(procs, w.N, func(v int) {
		c := newID[labels[v]]
		if present[c] != 0 {
			labels[v] = rep[subLabels[compact[c]]]
		}
		// Singleton components keep their center label (paper: "singleton
		// vertices are removed, but their labels are kept").
	})
	sw.stop(opt.Phases)
	return labels, nil
}

// contract builds the next-level working graph: components become vertices,
// intra-component edges are already gone, duplicate inter-component edges
// are removed per opt.Dedup, and singleton components (no remaining edges)
// are dropped. It returns the contracted graph, the representative original
// vertex of each contracted vertex (rep), the present/compact component
// mappings, the center renumbering newID, and the directed edge count of the
// contracted graph.
func contract(w *decomp.WGraph, labels []int32, numCenters int, opt Options) (sub *decomp.WGraph, rep []int32, present []int32, compact []int32, newID []int32, edgesOut int64) {
	procs := opt.Procs
	n := w.N

	// Renumber centers to [0, k): newID[center] = rank. Only entries at
	// center positions are meaningful.
	isCenter := make([]int32, n)
	parallel.For(procs, n, func(v int) {
		if labels[v] == int32(v) {
			isCenter[v] = 1
		}
	})
	k := int(parallel.ExScan(procs, isCenter))
	newID = isCenter // after the scan, isCenter[v] is the rank for centers
	// centers[rank] = center vertex id (inverse of newID on centers).
	centers := make([]int32, k)
	parallel.For(procs, n, func(v int) {
		if labels[v] == int32(v) {
			centers[newID[v]] = int32(v)
		}
	})

	// Gather the surviving directed edges as packed (srcComp, tgtComp)
	// pairs in component space. Targets were relabeled to center ids during
	// the decomposition; only the source endpoint needs mapping here (the
	// paper's "we only need to relabel the source endpoint").
	offs := make([]int64, n)
	parallel.For(procs, n, func(v int) { offs[v] = int64(w.Deg[v]) })
	total := parallel.ExScan(procs, offs)
	kbits := uint(intsort.Bits(uint64(max64(1, int64(k)-1))))
	pairs := make([]uint64, total)
	parallel.Blocks(procs, n, frontGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			src := uint64(uint32(newID[labels[v]])) << kbits
			base := w.Offs[v]
			out := offs[v]
			for i := int64(0); i < int64(w.Deg[v]); i++ {
				tgt := uint64(uint32(newID[w.Adj[base+i]]))
				pairs[out+i] = src | tgt
			}
		}
	})

	// Deduplicate and sort. Every path ends with pairs sorted by
	// (src, tgt), which the CSR build below requires.
	switch opt.Dedup {
	case DedupHash:
		// Hash dedup first so the integer sort only handles unique edges.
		set := hashtable.NewSet(procs, len(pairs))
		parallel.Blocks(procs, len(pairs), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				set.Insert(pairs[i])
			}
		})
		pairs = set.Elements(procs)
		intsort.SortUint64(procs, pairs, int(2*kbits))
	case DedupSort:
		intsort.SortUint64(procs, pairs, int(2*kbits))
		pairs = intsort.UniqueSorted(procs, pairs)
	case DedupNone:
		intsort.SortUint64(procs, pairs, int(2*kbits))
	}
	edgesOut = int64(len(pairs))

	// Components that retain at least one edge survive into the recursion;
	// singletons are dropped (their labels are already final). Because the
	// edge set is symmetric, marking sources marks every non-singleton.
	present = make([]int32, k)
	mask := uint64(1)<<kbits - 1
	parallel.For(procs, len(pairs), func(i int) {
		src := int32(pairs[i] >> kbits)
		if i == 0 || int32(pairs[i-1]>>kbits) != src {
			present[src] = 1
		}
	})
	compact = make([]int32, k)
	parallel.Copy(procs, compact, present)
	kPrime := int(parallel.ExScan(procs, compact))

	// rep[j] = the original-vertex center of contracted vertex j.
	rep = make([]int32, kPrime)
	parallel.For(procs, k, func(c int) {
		if present[c] != 0 {
			rep[compact[c]] = centers[c]
		}
	})

	// Build the contracted working graph in compacted vertex space. compact
	// is monotone, so remapped pairs stay sorted.
	subOffs := make([]int64, kPrime+1)
	parallel.Fill(procs, subOffs, -1)
	subOffs[kPrime] = int64(len(pairs))
	subAdj := make([]int32, len(pairs))
	parallel.For(procs, len(pairs), func(i int) {
		src := compact[pairs[i]>>kbits]
		subAdj[i] = compact[int32(pairs[i]&mask)]
		if i == 0 || int32(pairs[i-1]>>kbits) != int32(pairs[i]>>kbits) {
			subOffs[src] = int64(i)
		}
	})
	for v := kPrime - 1; v >= 0; v-- {
		if subOffs[v] < 0 {
			subOffs[v] = subOffs[v+1]
		}
	}
	subDeg := make([]int32, kPrime)
	parallel.For(procs, kPrime, func(v int) {
		subDeg[v] = int32(subOffs[v+1] - subOffs[v])
	})
	sub = &decomp.WGraph{N: kPrime, Offs: subOffs, Adj: subAdj, Deg: subDeg}
	return sub, rep, present, compact, newID, edgesOut
}

// frontGrain matches the decomposition's frontier grain for skewed-degree
// loops.
const frontGrain = 256

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
