// Package core implements the paper's primary contribution: the
// decomposition-based linear-work parallel connectivity algorithm
// (Algorithm 1 of Shun, Dhulipala, Blelloch, SPAA'14).
//
// CC recursively (1) runs a low-diameter decomposition with a constant beta,
// (2) contracts every partition to a single vertex, dropping intra-partition
// and (optionally) duplicate edges, and (3) recurses on the contracted graph
// until no edges remain, relabeling back up on return (RELABELUP). Since
// each decomposition cuts at most a 2*beta fraction of edges in expectation,
// the edge count shrinks geometrically: O(log n) levels and O(m) total work
// in expectation, O(log^3 n) depth w.h.p.
//
// The hot path is engineered to be allocation-free in the steady state:
// scratch buffers come from a workspace.Arena (acquired per level, released
// on the way back up, so level k+1 reuses level k's memory), parallel
// sections run on a persistent worker pool, and every per-level loop body
// is a closure bound once inside a pooled ccMachine (Go's escape analysis
// is path-insensitive, so a closure literal handed to the scheduler would
// otherwise heap-allocate at each of the O(levels) creations).
package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"slices"
	"strconv"
	"sync"
	"time"

	"parconn/internal/decomp"
	"parconn/internal/graph"
	"parconn/internal/hashtable"
	"parconn/internal/intsort"
	"parconn/internal/obs"
	"parconn/internal/parallel"
	"parconn/internal/workspace"
)

// DedupMode selects how duplicate edges between contracted components are
// removed before recursing.
type DedupMode int

const (
	// DedupHash removes duplicates with the phase-concurrent hash table
	// (the paper's choice, §4).
	DedupHash DedupMode = iota
	// DedupSort removes duplicates by sorting and compacting.
	DedupSort
	// DedupNone keeps duplicates. The edge count still drops by a constant
	// factor in expectation (the paper notes this ablation explicitly); on
	// most real graphs duplicates are where the bulk of the reduction comes
	// from, so this mode is markedly slower.
	DedupNone
)

// String names the mode for harness output.
func (d DedupMode) String() string {
	switch d {
	case DedupHash:
		return "hash"
	case DedupSort:
		return "sort"
	case DedupNone:
		return "none"
	default:
		return fmt.Sprintf("dedup(%d)", int(d))
	}
}

// Options configures a connectivity run.
type Options struct {
	// Variant selects the decomposition (Min, Arb, ArbHybrid). The zero
	// value is Min; most callers want Arb or ArbHybrid.
	Variant decomp.Variant
	// Beta is the decomposition parameter; zero means 0.2 (within the
	// paper's empirically best 0.05-0.2 band).
	Beta float64
	// Seed drives all randomness; each recursion level derives its own.
	Seed uint64
	// Procs bounds worker parallelism; <= 0 means GOMAXPROCS.
	Procs int
	// DenseFrac is ArbHybrid's dense-round threshold; zero means 20%.
	DenseFrac float64
	// EdgeParallel, when positive, processes edge lists of frontier
	// vertices with at least this degree using nested parallelism (§4's
	// optional high-degree optimization; Arb variant). Zero picks an
	// adaptive cutoff per level from the live edge count (DESIGN.md §12);
	// set it negative to disable nested parallelism entirely.
	EdgeParallel int
	// Dedup selects duplicate-edge removal during contraction.
	Dedup DedupMode
	// Phases, if non-nil, accumulates per-phase wall time across all levels
	// (Figures 5-7). It is a compatibility view over the Recorder event
	// stream: CC folds it into Recorder via decomp.PhasesRecorder.
	Phases *decomp.PhaseTimes
	// Levels, if non-nil, receives one entry per recursion level
	// (Figure 4's remaining-edge counts). Like Phases, a compatibility view
	// folded into Recorder via LevelsRecorder.
	Levels *[]LevelStat
	// Recorder, if non-nil, receives the structured event stream: level
	// start/end, per-round, per-phase, and end-of-run counter events (see
	// internal/obs). With a Recorder attached, decomposition levels also run
	// under pprof labels (parconn_level / parconn_phase) so CPU profiles
	// attribute samples to the recursion structure. nil costs one pointer
	// test per site.
	Recorder obs.Recorder
	// Pool, if non-nil, supplies the worker pool for the run's parallel
	// sections; nil means the shared parallel.Default pool.
	Pool *parallel.Pool
	// Workspace, if non-nil, supplies the scratch arena for per-level
	// buffers; nil means the shared workspace.Default arena.
	Workspace *workspace.Arena
}

// LevelStat describes one recursion level of CC.
type LevelStat struct {
	Level      int
	Vertices   int   // vertices entering this level
	EdgesIn    int64 // directed edges entering this level
	EdgesCut   int64 // directed inter-partition edges after decomposition
	EdgesOut   int64 // directed edges passed to the next level (post dedup)
	Components int   // partitions produced by this level's decomposition
	Rounds     int   // BFS rounds in this level's decomposition
}

// maxLevels is a defensive bound on recursion depth. The expected number of
// levels is O(log m); hitting this bound indicates the edge count stopped
// shrinking, which the geometric-decrease guarantee makes astronomically
// unlikely — treat it as an internal error rather than looping forever.
const maxLevels = 128

// ccMachine carries one CC invocation's scheduler handle, scratch arena,
// per-level working graphs, and the bound closures for the contraction and
// relabel loops. Machines are pooled (machinePool) so repeated CC calls
// reuse both the closures and the decomposition machines; the per-section
// fields below the fold are written only by the coordinating goroutine
// between parallel sections.
type ccMachine struct {
	pool    *parallel.Pool
	ws      *workspace.Arena
	procs   int
	opt     Options
	scratch decomp.Scratch
	// tuner is the run's adaptive scheduler (DESIGN.md §12); it is threaded
	// into every decomposition via Options.Tuner so the contract loops and
	// the BFS rounds share one cost EWMA, which persists across pooled CC
	// calls (machinePool) like the closures do.
	tuner parallel.Tuner

	// levels[k] is level k's working graph (level 0 copies the input, its
	// Offs shared with the caller's graph; deeper levels are arena-backed).
	levels [maxLevels + 1]decomp.WGraph

	// Current-section state for the bound closures.
	w                     *decomp.WGraph
	labels                []int32
	newID                 []int32
	centers               []int32
	offs                  []int64
	pairs                 []uint64
	kbits                 uint
	mask                  uint64
	present, compact, rep []int32
	subOffs               []int64
	subAdj, subDeg        []int32
	subLabels             []int32
	set                   hashtable.Set

	fnIsCenter, fnCenters, fnOffs, fnPairs   func(lo, hi int)
	fnInsert, fnPresent, fnRep               func(lo, hi int)
	fnSubAdj, fnSubDeg, fnRelabel, fnUnseenQ func(lo, hi int)

	// Bound pprof.Do bodies for the recorder path: per-level closure
	// literals would heap-allocate at each of the O(levels) creations, so
	// the arguments flow through the fields below instead.
	dopt                                 decomp.Options
	stepW, stepSub                       *decomp.WGraph
	stepLabels                           []int32
	decompRes                            decomp.Result
	decompErr                            error
	ctRep, ctPresent, ctCompact, ctNewID []int32
	ctEdgesOut                           int64
	ctTiny                               bool
	fnDecompose, fnContract              func(context.Context)
}

// levelLabels precomputes the pprof label values for every possible
// recursion depth so labeling allocates nothing per level.
var levelLabels = func() [maxLevels + 1]string {
	var a [maxLevels + 1]string
	for i := range a {
		a[i] = strconv.Itoa(i)
	}
	return a
}()

// machinePool recycles ccMachines across CC calls; a machine is exclusively
// owned between Get and Put.
var machinePool = sync.Pool{New: func() any { return newCCMachine() }}

func newCCMachine() *ccMachine {
	m := &ccMachine{}
	// Renumber centers to [0, k): newID[center] = rank (after the scan).
	// newID aliases the isCenter flags, which the coordinator zero-fills
	// before this section (arena buffers come back dirty).
	m.fnIsCenter = func(lo, hi int) {
		labels, newID := m.labels, m.newID
		for v := lo; v < hi; v++ {
			if labels[v] == int32(v) {
				newID[v] = 1
			}
		}
	}
	// centers[rank] = center vertex id (inverse of newID on centers).
	m.fnCenters = func(lo, hi int) {
		labels, newID, centers := m.labels, m.newID, m.centers
		for v := lo; v < hi; v++ {
			if labels[v] == int32(v) {
				centers[newID[v]] = int32(v)
			}
		}
	}
	m.fnOffs = func(lo, hi int) {
		w, offs := m.w, m.offs
		for v := lo; v < hi; v++ {
			offs[v] = int64(w.Deg[v])
		}
	}
	// Gather the surviving directed edges as packed (srcComp, tgtComp)
	// pairs in component space. Targets were relabeled to center ids during
	// the decomposition; only the source endpoint needs mapping here (the
	// paper's "we only need to relabel the source endpoint").
	m.fnPairs = func(lo, hi int) {
		w, labels, newID, offs, pairs := m.w, m.labels, m.newID, m.offs, m.pairs
		kbits := m.kbits
		for v := lo; v < hi; v++ {
			src := uint64(uint32(newID[labels[v]])) << kbits
			base := w.Offs[v]
			out := offs[v]
			for i := int64(0); i < int64(w.Deg[v]); i++ {
				tgt := uint64(uint32(newID[w.Adj[base+i]]))
				pairs[out+i] = src | tgt
			}
		}
	}
	m.fnInsert = func(lo, hi int) {
		set, pairs := &m.set, m.pairs
		for i := lo; i < hi; i++ {
			set.Insert(pairs[i])
		}
	}
	// Components that retain at least one edge survive into the recursion;
	// singletons are dropped (their labels are already final). Because the
	// edge set is symmetric, marking sources marks every non-singleton.
	// present is zero-filled by the coordinator before this section.
	m.fnPresent = func(lo, hi int) {
		pairs, present := m.pairs, m.present
		kbits := m.kbits
		for i := lo; i < hi; i++ {
			src := int32(pairs[i] >> kbits)
			if i == 0 || int32(pairs[i-1]>>kbits) != src {
				present[src] = 1
			}
		}
	}
	// rep[j] = the original-vertex center of contracted vertex j.
	m.fnRep = func(lo, hi int) {
		present, compact, rep, centers := m.present, m.compact, m.rep, m.centers
		for c := lo; c < hi; c++ {
			if present[c] != 0 {
				rep[compact[c]] = centers[c]
			}
		}
	}
	// Build the contracted working graph in compacted vertex space. compact
	// is monotone, so remapped pairs stay sorted.
	m.fnSubAdj = func(lo, hi int) {
		pairs, compact, subAdj, subOffs := m.pairs, m.compact, m.subAdj, m.subOffs
		kbits, mask := m.kbits, m.mask
		for i := lo; i < hi; i++ {
			src := compact[pairs[i]>>kbits]
			subAdj[i] = compact[int32(pairs[i]&mask)]
			if i == 0 || int32(pairs[i-1]>>kbits) != int32(pairs[i]>>kbits) {
				subOffs[src] = int64(i)
			}
		}
	}
	m.fnSubDeg = func(lo, hi int) {
		subOffs, subDeg := m.subOffs, m.subDeg
		for v := lo; v < hi; v++ {
			subDeg[v] = int32(subOffs[v+1] - subOffs[v])
		}
	}
	// RELABELUP — map each vertex's component through the recursive
	// labeling and back to a canonical vertex of this level. Singleton
	// components keep their center label (paper: "singleton vertices are
	// removed, but their labels are kept").
	m.fnRelabel = func(lo, hi int) {
		labels, newID, present, compact, rep, subLabels :=
			m.labels, m.newID, m.present, m.compact, m.rep, m.subLabels
		for v := lo; v < hi; v++ {
			c := newID[labels[v]]
			if present[c] != 0 {
				labels[v] = rep[subLabels[compact[c]]]
			}
		}
	}
	m.fnDecompose = func(context.Context) {
		m.decompRes, m.decompErr = decomp.Decompose(m.stepW, m.opt.Variant, m.dopt)
	}
	m.fnContract = func(context.Context) {
		if m.ctTiny {
			m.ctRep, m.ctPresent, m.ctCompact, m.ctNewID, m.ctEdgesOut =
				m.contractSerial(m.stepW, m.stepSub, m.stepLabels)
		} else {
			m.ctRep, m.ctPresent, m.ctCompact, m.ctNewID, m.ctEdgesOut =
				m.contract(m.stepW, m.stepSub, m.stepLabels)
		}
	}
	return m
}

// reset drops all per-call references so a pooled machine retains nothing
// (slices, option pointers) between CC calls.
func (m *ccMachine) reset() {
	m.pool, m.ws, m.opt = nil, nil, Options{}
	m.w, m.labels, m.newID, m.centers = nil, nil, nil, nil
	m.offs, m.pairs = nil, nil
	m.present, m.compact, m.rep = nil, nil, nil
	m.subOffs, m.subAdj, m.subDeg, m.subLabels = nil, nil, nil, nil
	m.dopt = decomp.Options{}
	m.stepW, m.stepSub, m.stepLabels = nil, nil, nil
	m.decompRes, m.decompErr = decomp.Result{}, nil
	m.ctRep, m.ctPresent, m.ctCompact, m.ctNewID = nil, nil, nil, nil
	m.ctTiny = false
}

// CC computes a connected-components labeling of g. The returned labeling
// assigns every vertex the id of a canonical vertex of its component, so
// labels[v] == labels[u] iff u and v are connected, and labels[labels[v]] ==
// labels[v].
func CC(g *graph.Graph, opt Options) ([]int32, error) {
	opt.Procs = parallel.Procs(opt.Procs)
	if opt.Beta == 0 {
		opt.Beta = 0.2
	}
	// Negated comparison so NaN (which fails every ordered comparison) is
	// rejected rather than waved through into the shift computation.
	if !(opt.Beta > 0 && opt.Beta < 1) {
		return nil, fmt.Errorf("core: beta %v out of (0,1)", opt.Beta)
	}
	// Fold the legacy telemetry sinks into the event stream so the recursion
	// consults a single Recorder. The guard keeps the fully-disabled path
	// allocation-free (Multi builds a slice).
	if opt.Levels != nil || opt.Phases != nil {
		opt.Recorder = obs.Multi(opt.Recorder, LevelsRecorder(opt.Levels), decomp.PhasesRecorder(opt.Phases))
		opt.Levels, opt.Phases = nil, nil
	}
	// The setup stopwatch opens before the machine is acquired so a cold
	// pool miss (closure binding, levels array) is charged to a phase
	// rather than silently widening the wall-vs-phases gap.
	tSetup := now()
	m := machinePool.Get().(*ccMachine)
	m.opt = opt
	// Procs is a bound; the tuner narrows it to the physical CPU count
	// (oversubscribed workers only add preemption; DESIGN.md §12).
	m.procs = m.tuner.Workers(opt.Procs)
	m.pool = opt.Pool
	if m.pool == nil {
		m.pool = parallel.Default()
	}
	m.ws = opt.Workspace
	if m.ws == nil {
		m.ws = workspace.Default()
	}
	rec := opt.Recorder
	var joins0, reused0, alloc0 int64
	if rec != nil {
		joins0 = m.pool.Joins()
		reused0, alloc0 = m.ws.Stats()
	}
	w := &m.levels[0]
	w.InitFrom(m.ws, g, m.procs)
	if rec != nil {
		rec.Phase(obs.Phase{Level: 0, Name: obs.PhaseSetup, Duration: time.Since(tSetup)})
	}
	labels, err := m.ccLevel(w, 0, int64(len(w.Adj)))
	if rec != nil {
		reused1, alloc1 := m.ws.Stats()
		rec.Counter(obs.Counter{Name: obs.CounterArenaReused, Value: reused1 - reused0})
		rec.Counter(obs.Counter{Name: obs.CounterArenaAlloc, Value: alloc1 - alloc0})
		rec.Counter(obs.Counter{Name: obs.CounterPoolJoins, Value: m.pool.Joins() - joins0})
	}
	// The level-0 Offs belong to the caller's graph; only the working
	// copy's Adj/Deg go back to the arena.
	m.ws.PutInt32(w.Adj)
	m.ws.PutInt32(w.Deg)
	*w = decomp.WGraph{}
	m.reset()
	machinePool.Put(m)
	return labels, err
}

// ccLevel runs one level of Algorithm 1 on the working graph w — which
// enters with edges live directed edges (level 0 passes the input size,
// deeper levels the parent contraction's exact output count, so no
// per-level edge reduction is ever needed) — and returns labels in w's
// vertex space (values are canonical w-vertices). The labels slice is
// arena-acquired; ownership passes to the caller (released after the
// parent level's RELABELUP, or handed to the user at level 0).
//
// The directive below roots the hotalloc analysis: everything reachable
// from here is the per-level steady state that must stay allocation-free.
//
//parconn:hotpath
func (m *ccMachine) ccLevel(w *decomp.WGraph, level int, edges int64) ([]int32, error) {
	if level >= maxLevels {
		return nil, fmt.Errorf("core: recursion exceeded %d levels; edge count is not decreasing", maxLevels)
	}
	if w.N == 0 {
		//parconn:allow hotalloc empty-graph base case; a zero-length literal is the zerobase pointer, not a heap block
		return []int32{}, nil
	}
	procs := m.procs
	rec := m.opt.Recorder
	// Tiny-level fast path (DESIGN.md §12): below the tuner's threshold the
	// whole level — decomposition rounds and contraction — runs with one
	// worker; the late levels are a long tail of sub-millisecond graphs
	// whose parallel sections would be pure fork/join overhead.
	tiny := m.tuner.SerialLevel(w.N, edges)
	if tiny {
		procs = 1
	}

	// Step 1: decompose. Each level derives an independent seed so repeated
	// decompositions do not reuse the same permutation. With a recorder
	// attached the level opens with its entering sizes and the
	// decomposition runs under pprof labels.
	dopt := decomp.Options{
		Beta:         m.opt.Beta,
		Seed:         m.opt.Seed + uint64(level)*0x9e3779b97f4a7c15,
		Procs:        procs,
		DenseFrac:    m.opt.DenseFrac,
		EdgeParallel: m.opt.EdgeParallel,
		Recorder:     rec,
		Level:        level,
		Pool:         m.pool,
		Workspace:    m.ws,
		Scratch:      &m.scratch,
		Tuner:        &m.tuner,
	}
	var res decomp.Result
	var err error
	if rec == nil {
		res, err = decomp.Decompose(w, m.opt.Variant, dopt)
	} else {
		rec.LevelStart(obs.LevelStart{Level: level, Vertices: w.N, EdgesIn: edges})
		m.stepW, m.dopt = w, dopt
		pprof.Do(context.Background(),
			pprof.Labels("parconn_level", levelLabels[level], "parconn_phase", "decompose"),
			m.fnDecompose)
		res, err = m.decompRes, m.decompErr
		m.stepW, m.decompRes, m.decompErr = nil, decomp.Result{}, nil
	}
	if err != nil {
		return nil, err
	}
	labels := res.Labels // labels[v] = center id owning v

	// The machines accumulate the surviving inter-component edge count in
	// their final classification passes, so the base-case test costs
	// nothing (the paper's |E'| = 0 check; LiveEdges would be an extra
	// O(n) reduction here).
	cut := res.EdgesOut
	end := obs.LevelEnd{
		Level:      level,
		Vertices:   w.N,
		EdgesIn:    edges,
		EdgesCut:   cut,
		Components: res.NumCenters,
		Rounds:     res.Rounds,
		CASRetries: res.CASRetries,
	}
	if cut == 0 {
		// Base case (|E'| == 0): every component was swallowed by a single
		// ball; the decomposition labels are the final labels.
		if rec != nil {
			rec.LevelEnd(end)
		}
		return labels, nil
	}

	// Step 2: contract (timed as the paper's "contractGraph" phase; under
	// pprof labels on the recorder path, via the bound closure).
	tCt := now()
	sub := &m.levels[level+1]
	var rep, present, compact, newID []int32
	var edgesOut int64
	if rec == nil {
		if tiny {
			rep, present, compact, newID, edgesOut = m.contractSerial(w, sub, labels)
		} else {
			rep, present, compact, newID, edgesOut = m.contract(w, sub, labels)
		}
	} else {
		m.ctTiny = tiny
		m.stepW, m.stepSub, m.stepLabels = w, sub, labels
		pprof.Do(context.Background(),
			pprof.Labels("parconn_level", levelLabels[level], "parconn_phase", "contract"),
			m.fnContract)
		rep, present, compact, newID, edgesOut = m.ctRep, m.ctPresent, m.ctCompact, m.ctNewID, m.ctEdgesOut
		m.stepW, m.stepSub, m.stepLabels = nil, nil, nil
		m.ctRep, m.ctPresent, m.ctCompact, m.ctNewID = nil, nil, nil, nil
		m.ctTiny = false
	}
	ctDur := time.Since(tCt)
	if rec != nil {
		end.EdgesOut = edgesOut
		rec.LevelEnd(end)
	}

	// Step 3: recurse on the contracted graph. edgesOut is exact (post
	// dedup, len(sub.Adj)), so the child never re-measures.
	subLabels, err := m.ccLevel(sub, level+1, edgesOut)
	if err != nil {
		return nil, err
	}
	// The sub-graph is fully consumed (the recursion destroyed its edges
	// and its labels are in hand); all three arrays are arena-backed.
	m.ws.PutInt64(sub.Offs)
	m.ws.PutInt32(sub.Adj)
	m.ws.PutInt32(sub.Deg)
	*sub = decomp.WGraph{}

	// Step 4: RELABELUP through the bound closure; the coordinator re-aims
	// the machine fields at this level's arrays (they sat in locals across
	// the recursive call, which reused the fields for deeper levels).
	// Relabeling is charged to this level's contract phase, so the Phase
	// event lands after the deeper levels' events — sinks accumulate by
	// (level, name), not by arrival order.
	tRl := now()
	m.labels, m.newID, m.present, m.compact, m.rep, m.subLabels =
		labels, newID, present, compact, rep, subLabels
	m.pool.Blocks(procs, w.N, 0, m.fnRelabel)
	if rec != nil {
		rec.Phase(obs.Phase{Level: level, Name: obs.PhaseContract, Duration: ctDur + time.Since(tRl)})
	}

	m.ws.PutInt32(newID)
	m.ws.PutInt32(present)
	m.ws.PutInt32(compact)
	m.ws.PutInt32(rep)
	m.ws.PutInt32(subLabels)
	m.labels, m.newID, m.present, m.compact, m.rep, m.subLabels = nil, nil, nil, nil, nil, nil
	return labels, nil
}

// contract builds the next-level working graph into sub: components become
// vertices, intra-component edges are already gone, duplicate
// inter-component edges are removed per opt.Dedup, and singleton components
// (no remaining edges) are dropped. It returns the representative original
// vertex of each contracted vertex (rep), the present/compact component
// mappings, the center renumbering newID, and the directed edge count of
// the contracted graph — all arena-acquired; the caller releases them after
// RELABELUP. Scratch internal to one step (offs, pairs, hash slots, sort
// buffer, centers) is released before returning, so the recursion below
// immediately reuses it.
//
//parconn:allow scratchlifetime ownership transfers by contract: the machine fields are aliases ccLevel clears after RELABELUP, and sub plus the returned buffers are released by the caller's level epilogue
func (m *ccMachine) contract(w *decomp.WGraph, sub *decomp.WGraph, labels []int32) (rep, present, compact, newID []int32, edgesOut int64) {
	procs, ws, pool := m.procs, m.ws, m.pool
	n := w.N
	m.w, m.labels = w, labels

	isCenter := ws.Int32(n)
	parallel.Fill(procs, isCenter, 0)
	m.newID = isCenter
	pool.Blocks(procs, n, 0, m.fnIsCenter)
	k := int(parallel.ExScan(procs, isCenter))
	newID = isCenter // after the scan, isCenter[v] is the rank for centers
	centers := ws.Int32(k)
	m.centers = centers
	pool.Blocks(procs, n, 0, m.fnCenters)

	offs := ws.Int64(n)
	m.offs = offs
	pool.Blocks(procs, n, 0, m.fnOffs)
	total := parallel.ExScan(procs, offs)
	kbits := uint(intsort.Bits(uint64(max(1, int64(k)-1))))
	m.kbits = kbits
	m.mask = uint64(1)<<kbits - 1
	pairs := ws.Uint64(int(total))
	m.pairs = pairs
	pool.Blocks(procs, n, parallel.FrontierGrain, m.fnPairs)
	ws.PutInt64(offs)
	m.offs = nil

	// Deduplicate and sort. Every path ends with pairs sorted by
	// (src, tgt), which the CSR build below requires.
	switch m.opt.Dedup {
	case DedupHash:
		// Hash dedup first so the integer sort only handles unique edges.
		slots := ws.Uint64(hashtable.SizeFor(len(pairs)))
		m.set.Reset(procs, slots)
		pool.Blocks(procs, len(pairs), 0, m.fnInsert)
		uniq := ws.Uint64(m.set.Len())
		m.set.ElementsInto(procs, uniq)
		m.set.Drop()
		ws.PutUint64(slots)
		ws.PutUint64(pairs)
		pairs = uniq
		m.pairs = pairs
		scratch := ws.Uint64(len(pairs))
		intsort.SortUint64In(procs, pairs, int(2*kbits), scratch)
		ws.PutUint64(scratch)
	case DedupSort:
		scratch := ws.Uint64(len(pairs))
		intsort.SortUint64In(procs, pairs, int(2*kbits), scratch)
		// scratch doubles as the compaction target (the sort is done with
		// it); the duplicate-heavy original goes back to the arena.
		//parconn:allow hotalloc one dedup-predicate closure per sort-path section, inside the steady-state budget
		nuniq := parallel.PackInto(procs, scratch, pairs, func(i int) bool {
			return i == 0 || pairs[i] != pairs[i-1]
		})
		ws.PutUint64(pairs)
		pairs = scratch[:nuniq]
		m.pairs = pairs
	case DedupNone:
		scratch := ws.Uint64(len(pairs))
		intsort.SortUint64In(procs, pairs, int(2*kbits), scratch)
		ws.PutUint64(scratch)
	}
	edgesOut = int64(len(pairs))

	present = ws.Int32(k)
	parallel.Fill(procs, present, 0)
	m.present = present
	pool.Blocks(procs, len(pairs), 0, m.fnPresent)
	compact = ws.Int32(k)
	parallel.Copy(procs, compact, present)
	kPrime := int(parallel.ExScan(procs, compact))
	m.compact = compact

	rep = ws.Int32(kPrime)
	m.rep = rep
	pool.Blocks(procs, k, 0, m.fnRep)
	ws.PutInt32(centers)
	m.centers = nil

	subOffs := ws.Int64(kPrime + 1)
	parallel.Fill(procs, subOffs, -1)
	subOffs[kPrime] = int64(len(pairs))
	subAdj := ws.Int32(len(pairs))
	m.subOffs, m.subAdj = subOffs, subAdj
	pool.Blocks(procs, len(pairs), 0, m.fnSubAdj)
	for v := kPrime - 1; v >= 0; v-- {
		if subOffs[v] < 0 {
			subOffs[v] = subOffs[v+1]
		}
	}
	subDeg := ws.Int32(kPrime)
	m.subDeg = subDeg
	pool.Blocks(procs, kPrime, 0, m.fnSubDeg)
	ws.PutUint64(pairs)
	m.pairs = nil

	*sub = decomp.WGraph{N: kPrime, Offs: subOffs, Adj: subAdj, Deg: subDeg}
	m.w, m.subOffs, m.subAdj, m.subDeg = nil, nil, nil, nil
	return rep, present, compact, newID, edgesOut
}

// contractSerial is contract's tiny-level twin (DESIGN.md §12): the same
// component renumbering, dedup, and CSR build, but single-threaded plain
// loops with no worker-pool sections, no sharded counters, and a
// comparison sort in place of the radix sort — below the tuner's
// SerialLevel threshold the fork/join and scan passes of the parallel
// version cost more than the work itself. Duplicate removal is a
// sort-then-compact for both DedupHash and DedupSort (they agree on the
// output: the sorted unique pair set), so the hash table is never touched.
// Returns and releases exactly what contract does.
//
//parconn:allow scratchlifetime ownership transfers by contract: sub plus the returned buffers are released by the caller's level epilogue
func (m *ccMachine) contractSerial(w *decomp.WGraph, sub *decomp.WGraph, labels []int32) (rep, present, compact, newID []int32, edgesOut int64) {
	ws := m.ws
	n := w.N

	// Renumber centers to [0, k) and record the inverse. newID slots of
	// non-centers are never read (relabel indexes it at labels[v], a
	// center), but arena buffers come back dirty, so zero them anyway.
	newID = ws.Int32(n)
	k := 0
	for v := 0; v < n; v++ {
		if labels[v] == int32(v) {
			k++
		}
	}
	centers := ws.Int32(k)
	id := int32(0)
	for v := 0; v < n; v++ {
		if labels[v] == int32(v) {
			newID[v] = id
			centers[id] = int32(v)
			id++
		} else {
			newID[v] = 0
		}
	}

	// Gather surviving directed edges as packed (srcComp, tgtComp) pairs;
	// targets were already relabeled to center ids by the decomposition.
	var total int64
	for v := 0; v < n; v++ {
		total += int64(w.Deg[v])
	}
	kbits := uint(intsort.Bits(uint64(max(1, int64(k)-1))))
	mask := uint64(1)<<kbits - 1
	pairs := ws.Uint64(int(total))
	out := 0
	for v := 0; v < n; v++ {
		src := uint64(uint32(newID[labels[v]])) << kbits
		base := w.Offs[v]
		for i := int64(0); i < int64(w.Deg[v]); i++ {
			pairs[out] = src | uint64(uint32(newID[w.Adj[base+i]]))
			out++
		}
	}
	slices.Sort(pairs)
	if m.opt.Dedup != DedupNone {
		u := 0
		for i := range pairs {
			if i == 0 || pairs[i] != pairs[i-1] {
				pairs[u] = pairs[i]
				u++
			}
		}
		pairs = pairs[:u]
	}
	edgesOut = int64(len(pairs))

	// Components with a surviving edge stay; singletons are dropped.
	// compact is the exclusive scan of present (matching ExScan in the
	// parallel version).
	present = ws.Int32(k)
	for c := range present {
		present[c] = 0
	}
	for i := range pairs {
		present[int32(pairs[i]>>kbits)] = 1
	}
	compact = ws.Int32(k)
	kPrime := 0
	for c := 0; c < k; c++ {
		compact[c] = int32(kPrime)
		if present[c] != 0 {
			kPrime++
		}
	}
	rep = ws.Int32(kPrime)
	for c := 0; c < k; c++ {
		if present[c] != 0 {
			rep[compact[c]] = centers[c]
		}
	}
	ws.PutInt32(centers)

	// CSR build in compacted vertex space; pairs are sorted by (src, tgt),
	// so first-of-source marks the offset and a backward sweep fills gaps.
	subOffs := ws.Int64(kPrime + 1)
	for v := range subOffs {
		subOffs[v] = -1
	}
	subOffs[kPrime] = int64(len(pairs))
	subAdj := ws.Int32(len(pairs))
	for i := range pairs {
		src := compact[pairs[i]>>kbits]
		subAdj[i] = compact[int32(pairs[i]&mask)]
		if i == 0 || int32(pairs[i-1]>>kbits) != int32(pairs[i]>>kbits) {
			subOffs[src] = int64(i)
		}
	}
	for v := kPrime - 1; v >= 0; v-- {
		if subOffs[v] < 0 {
			subOffs[v] = subOffs[v+1]
		}
	}
	subDeg := ws.Int32(kPrime)
	for v := 0; v < kPrime; v++ {
		subDeg[v] = int32(subOffs[v+1] - subOffs[v])
	}
	ws.PutUint64(pairs)

	*sub = decomp.WGraph{N: kPrime, Offs: subOffs, Adj: subAdj, Deg: subDeg}
	return rep, present, compact, newID, edgesOut
}
