package core

import (
	"testing"

	"parconn/internal/decomp"
	"parconn/internal/graph"
	"parconn/internal/parallel"
	"parconn/internal/workspace"
)

// contract runs one contraction step through a fresh ccMachine, preserving
// the pre-machine free-function shape the tests were written against.
func contract(w *decomp.WGraph, labels []int32, _ int, opt Options) (*decomp.WGraph, []int32, []int32, []int32, []int32, int64) {
	m := machinePool.Get().(*ccMachine)
	m.opt = opt
	m.procs = parallel.Procs(opt.Procs)
	m.pool = parallel.Default()
	m.ws = workspace.Default()
	sub := &decomp.WGraph{}
	rep, present, compact, newID, edgesOut := m.contract(w, sub, labels)
	m.reset()
	machinePool.Put(m)
	return sub, rep, present, compact, newID, edgesOut
}

// buildWGraph constructs a working graph directly from directed adjacency
// lists (already decomposed state: targets are component-center ids).
func buildWGraph(adj [][]int32) *decomp.WGraph {
	n := len(adj)
	w := &decomp.WGraph{N: n, Offs: make([]int64, n+1), Deg: make([]int32, n)}
	for v, list := range adj {
		w.Offs[v+1] = w.Offs[v] + int64(len(list))
		w.Deg[v] = int32(len(list))
		w.Adj = append(w.Adj, list...)
	}
	return w
}

// TestContractManual checks CONTRACT on a hand-built post-decomposition
// state: 6 vertices in 3 components with centers 0, 2, 5. Components 0 and
// 2 exchange (duplicated) edges; component 5 has no surviving edges and
// must be dropped as a singleton with its label preserved.
func TestContractManual(t *testing.T) {
	// Partitions: {0,1} center 0; {2,3} center 2; {4,5} center 5.
	labels := []int32{0, 0, 2, 2, 5, 5}
	// Surviving inter-component directed edges (targets = center ids):
	//  0->2 (x2, duplicate), 1->2; reverse: 2->0 x2, 3->0.
	//  Component 5 has no surviving edges.
	w := buildWGraph([][]int32{
		{2, 2}, // vertex 0 keeps two parallel edges to component 2
		{2},    // vertex 1 keeps one
		{0, 0}, // vertex 2's reverses
		{0},    // vertex 3's reverse
		{},     // vertex 4
		{},     // vertex 5 (center, no edges)
	})
	sub, rep, present, compact, newID, edgesOut := contract(w, labels, 3, Options{Procs: 1, Dedup: DedupHash})
	// Centers 0,2,5 get component ids 0,1,2 in vertex order.
	if newID[0] != 0 || newID[2] != 1 || newID[5] != 2 {
		t.Fatalf("newID=%v", newID)
	}
	// Component 2 (center 5) is a singleton: dropped.
	if present[0] != 1 || present[1] != 1 || present[2] != 0 {
		t.Fatalf("present=%v", present)
	}
	if sub.N != 2 {
		t.Fatalf("contracted n=%d want 2", sub.N)
	}
	// Dedup leaves exactly one edge each way.
	if edgesOut != 2 {
		t.Fatalf("edgesOut=%d want 2", edgesOut)
	}
	if sub.Deg[0] != 1 || sub.Deg[1] != 1 {
		t.Fatalf("sub degrees %v", sub.Deg)
	}
	if sub.Adj[sub.Offs[0]] != 1 || sub.Adj[sub.Offs[1]] != 0 {
		t.Fatal("contracted adjacency wrong")
	}
	// Representatives map back to the centers.
	if rep[compact[0]] != 0 || rep[compact[1]] != 2 {
		t.Fatalf("rep=%v compact=%v", rep, compact)
	}
}

func TestContractDedupModesCount(t *testing.T) {
	labels := []int32{0, 0, 2, 2}
	build := func() *decomp.WGraph {
		return buildWGraph([][]int32{
			{2, 2, 2}, // three parallel edges comp0 -> comp2
			{},
			{0, 0, 0},
			{},
		})
	}
	for _, mode := range []DedupMode{DedupHash, DedupSort} {
		_, _, _, _, _, out := contract(build(), labels, 2, Options{Procs: 1, Dedup: mode})
		if out != 2 {
			t.Fatalf("%v: edgesOut=%d want 2", mode, out)
		}
	}
	_, _, _, _, _, out := contract(build(), labels, 2, Options{Procs: 1, Dedup: DedupNone})
	if out != 6 {
		t.Fatalf("none: edgesOut=%d want 6", out)
	}
}

func TestCCMinDeterministicAcrossProcsFullStack(t *testing.T) {
	// decomp-min-CC is deterministic end to end: identical labels (not
	// just identical partitions) for a fixed seed at any worker count.
	g := graph.RMat(10, graph.RMatOptions{EdgeFactor: 6, Seed: 5})
	var want []int32
	for _, procs := range []int{1, 3, 7} {
		labels, err := CC(g, Options{Variant: decomp.Min, Seed: 13, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = labels
			continue
		}
		for v := range want {
			if labels[v] != want[v] {
				t.Fatalf("procs=%d: labels[%d] differs", procs, v)
			}
		}
	}
}
