package core

import (
	"time"

	"parconn/internal/decomp"
)

// contractWatch accumulates elapsed time into PhaseTimes.Contract; it is a
// no-op when phase collection is off.
type contractWatch struct {
	start time.Time
	on    bool
}

func startContract(p *decomp.PhaseTimes) contractWatch {
	if p == nil {
		return contractWatch{}
	}
	return contractWatch{start: time.Now(), on: true} //parconn:allow norand contract-phase stopwatch only; no algorithmic use of the clock
}

func (c contractWatch) stop(p *decomp.PhaseTimes) {
	if c.on {
		p.Contract += time.Since(c.start)
	}
}
