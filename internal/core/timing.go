package core

import "time"

// now is the single clock read for phase timing in this package. The
// stopwatch is diagnostic instrumentation, not algorithmic state: core
// draws all randomness from the injected seed, so a wall-clock read here
// cannot influence results or reproducibility.
func now() time.Time {
	return time.Now() //parconn:allow norand phase-timing stopwatch only; algorithmic randomness comes from injected seeds
}
