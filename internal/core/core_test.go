package core

import (
	"testing"

	"parconn/internal/decomp"
	"parconn/internal/graph"
)

var variants = []decomp.Variant{decomp.Min, decomp.Arb, decomp.ArbHybrid}
var dedups = []DedupMode{DedupHash, DedupSort, DedupNone}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"random":     graph.Random(3000, 5, 1),
		"rmat":       graph.RMat(11, graph.RMatOptions{EdgeFactor: 5, Seed: 2}),
		"rmat-dup":   graph.RMat(10, graph.RMatOptions{EdgeFactor: 8, Seed: 12, KeepDuplicates: true}),
		"grid3d":     graph.Grid3D(10, 3),
		"line":       graph.Line(4000, 4),
		"star":       graph.Star(700),
		"isolated":   graph.FromEdges(60, nil, graph.BuildOptions{}),
		"empty":      graph.FromEdges(0, nil, graph.BuildOptions{}),
		"single":     graph.FromEdges(1, nil, graph.BuildOptions{}),
		"one-edge":   graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{}),
		"many-comps": graph.Components(graph.Line(200, 5), graph.Grid3D(5, 6), graph.Star(50), graph.FromEdges(10, nil, graph.BuildOptions{})),
		"dense":      graph.RMat(8, graph.RMatOptions{EdgeFactor: 60, Seed: 7}),
	}
}

// checkLabels verifies the CC contract against the sequential oracle:
// identical partitions, and labels that are canonical component ids.
func checkLabels(t *testing.T, g *graph.Graph, labels []int32) {
	t.Helper()
	if len(labels) != g.N {
		t.Fatalf("labels length %d, want %d", len(labels), g.N)
	}
	for v, l := range labels {
		if l < 0 || int(l) >= g.N {
			t.Fatalf("labels[%d]=%d out of range", v, l)
		}
		if labels[l] != l {
			t.Fatalf("labels[%d]=%d is not canonical (labels[%d]=%d)", v, l, l, labels[l])
		}
	}
	ref := graph.RefCC(g)
	if !graph.SamePartition(ref, labels) {
		t.Fatalf("partition differs from BFS reference (got %d comps, want %d)",
			graph.NumComponentsOf(labels), graph.NumComponentsOf(ref))
	}
}

func TestCCAllVariantsAllGraphs(t *testing.T) {
	for name, g := range testGraphs() {
		for _, variant := range variants {
			labels, err := CC(g, Options{Variant: variant, Seed: 42})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, variant, err)
			}
			checkLabels(t, g, labels)
		}
	}
}

func TestCCDedupModes(t *testing.T) {
	g := graph.RMat(10, graph.RMatOptions{EdgeFactor: 10, Seed: 3, KeepDuplicates: true})
	for _, mode := range dedups {
		labels, err := CC(g, Options{Variant: decomp.Arb, Dedup: mode, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		checkLabels(t, g, labels)
	}
}

func TestCCBetaRange(t *testing.T) {
	g := graph.Random(2000, 5, 9)
	for _, beta := range []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.8, 0.95} {
		labels, err := CC(g, Options{Variant: decomp.ArbHybrid, Beta: beta, Seed: 2})
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		checkLabels(t, g, labels)
	}
	if _, err := CC(g, Options{Beta: 1.5}); err == nil {
		t.Fatal("beta=1.5 accepted")
	}
	if _, err := CC(g, Options{Beta: -1}); err == nil {
		t.Fatal("beta=-1 accepted")
	}
}

func TestCCSeedsVary(t *testing.T) {
	// Different seeds must still give correct (identical) partitions.
	g := graph.Components(graph.Random(500, 5, 1), graph.Line(500, 2))
	var first []int32
	for seed := uint64(0); seed < 5; seed++ {
		labels, err := CC(g, Options{Variant: decomp.Arb, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		checkLabels(t, g, labels)
		if first == nil {
			first = labels
		} else if !graph.SamePartition(first, labels) {
			t.Fatal("seeds disagree on the partition")
		}
	}
}

func TestCCProcsAgree(t *testing.T) {
	g := graph.RMat(11, graph.RMatOptions{EdgeFactor: 5, Seed: 4})
	for _, procs := range []int{1, 2, 8} {
		for _, variant := range variants {
			labels, err := CC(g, Options{Variant: variant, Seed: 7, Procs: procs})
			if err != nil {
				t.Fatal(err)
			}
			checkLabels(t, g, labels)
		}
	}
}

func TestCCLevelStats(t *testing.T) {
	g := graph.Random(5000, 5, 11)
	var levels []LevelStat
	labels, err := CC(g, Options{Variant: decomp.ArbHybrid, Beta: 0.2, Seed: 1, Levels: &levels})
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, g, labels)
	if len(levels) == 0 {
		t.Fatal("no level stats")
	}
	if levels[0].EdgesIn != g.NumDirected() {
		t.Fatalf("level 0 EdgesIn=%d, want %d", levels[0].EdgesIn, g.NumDirected())
	}
	for i, ls := range levels {
		if ls.Level != i {
			t.Fatalf("level %d recorded as %d", i, ls.Level)
		}
		if ls.EdgesCut > ls.EdgesIn {
			t.Fatalf("level %d: cut %d > in %d", i, ls.EdgesCut, ls.EdgesIn)
		}
		if ls.EdgesOut > ls.EdgesCut {
			t.Fatalf("level %d: out %d > cut %d (dedup added edges?)", i, ls.EdgesOut, ls.EdgesCut)
		}
		if i > 0 && ls.EdgesIn != levels[i-1].EdgesOut {
			t.Fatalf("level %d EdgesIn=%d, prior EdgesOut=%d", i, ls.EdgesIn, levels[i-1].EdgesOut)
		}
	}
	last := levels[len(levels)-1]
	if last.EdgesOut != 0 && last.EdgesCut != 0 {
		t.Fatalf("last level still has edges: %+v", last)
	}
	// Geometric decrease: by the 2*beta bound, level 1's input should be
	// well under half of level 0's (duplicates removed makes it far less).
	if len(levels) > 1 && float64(levels[1].EdgesIn) > 0.5*float64(levels[0].EdgesIn) {
		t.Fatalf("edges did not shrink: %d -> %d", levels[0].EdgesIn, levels[1].EdgesIn)
	}
}

func TestCCPhaseTimes(t *testing.T) {
	g := graph.Random(4000, 5, 13)
	var pt decomp.PhaseTimes
	if _, err := CC(g, Options{Variant: decomp.Arb, Seed: 1, Phases: &pt}); err != nil {
		t.Fatal(err)
	}
	if pt.BFSMain <= 0 {
		t.Fatal("no BFS time recorded")
	}
	if pt.Contract <= 0 {
		t.Fatal("no contract time recorded")
	}
}

func TestCCDedupNoneStillShrinks(t *testing.T) {
	// The paper: the edge count decreases by a constant factor in
	// expectation even without duplicate removal.
	g := graph.RMat(10, graph.RMatOptions{EdgeFactor: 20, Seed: 5, KeepDuplicates: true})
	var levels []LevelStat
	labels, err := CC(g, Options{Variant: decomp.Arb, Beta: 0.1, Seed: 3, Dedup: DedupNone, Levels: &levels})
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, g, labels)
	for i := 1; i < len(levels); i++ {
		if levels[i].EdgesIn >= levels[i-1].EdgesIn {
			t.Fatalf("level %d: edges grew %d -> %d", i, levels[i-1].EdgesIn, levels[i].EdgesIn)
		}
	}
}

func TestCCHugeBetaManyLevels(t *testing.T) {
	// beta close to 1 cuts most edges each level, forcing deep recursion;
	// the result must still be exact.
	g := graph.Line(2000, 6)
	labels, err := CC(g, Options{Variant: decomp.Arb, Beta: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkLabels(t, g, labels)
}

func TestCCSingletonMix(t *testing.T) {
	// Interleave isolated vertices with small components to exercise the
	// singleton-dropping path at every level.
	edges := []graph.Edge{}
	for i := int32(0); i < 100; i++ {
		base := i * 5
		edges = append(edges, graph.Edge{U: base, V: base + 1}, graph.Edge{U: base + 1, V: base + 2})
		// vertices base+3, base+4 stay isolated
	}
	g := graph.FromEdges(500, edges, graph.BuildOptions{})
	for _, variant := range variants {
		labels, err := CC(g, Options{Variant: variant, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		checkLabels(t, g, labels)
	}
}

func TestDedupModeString(t *testing.T) {
	if DedupHash.String() != "hash" || DedupSort.String() != "sort" || DedupNone.String() != "none" {
		t.Fatal("dedup names changed")
	}
	if DedupMode(9).String() == "" {
		t.Fatal("unknown mode has empty name")
	}
}
