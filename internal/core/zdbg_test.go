package core

import (
	"testing"

	"parconn/internal/decomp"
	"parconn/internal/graph"
)

func TestDebugHighBeta(t *testing.T) {
	g := graph.Line(50, 6)
	var levels []LevelStat
	_, err := CC(g, Options{Variant: decomp.Arb, Beta: 0.9, Seed: 1, Levels: &levels})
	t.Logf("err=%v", err)
	for i, ls := range levels {
		if i > 12 && i < len(levels)-3 {
			continue
		}
		t.Logf("%+v", ls)
	}
}
