package core

import "parconn/internal/obs"

// Compatibility bridge between the legacy LevelStat telemetry and the obs
// event stream; see the matching PhaseTimes bridge in internal/decomp.

// LevelStatFrom converts one LevelEnd event to the legacy per-level shape.
func LevelStatFrom(e obs.LevelEnd) LevelStat {
	return LevelStat{
		Level:      e.Level,
		Vertices:   e.Vertices,
		EdgesIn:    e.EdgesIn,
		EdgesCut:   e.EdgesCut,
		EdgesOut:   e.EdgesOut,
		Components: e.Components,
		Rounds:     e.Rounds,
	}
}

// LevelStatsFrom rebuilds the legacy per-level slice from a trace's
// LevelEnd events.
func LevelStatsFrom(ends []obs.LevelEnd) []LevelStat {
	out := make([]LevelStat, len(ends))
	for i, e := range ends {
		out[i] = LevelStatFrom(e)
	}
	return out
}

// levelsSink appends LevelEnd events to a legacy LevelStat slice.
type levelsSink struct {
	obs.Nop
	ls *[]LevelStat
}

func (s *levelsSink) LevelEnd(e obs.LevelEnd) {
	*s.ls = append(*s.ls, LevelStatFrom(e))
}

// LevelsRecorder returns a Recorder that appends LevelEnd events to ls, or
// nil when ls is nil.
func LevelsRecorder(ls *[]LevelStat) obs.Recorder {
	if ls == nil {
		return nil
	}
	return &levelsSink{ls: ls}
}
