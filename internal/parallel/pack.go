package parallel

// Pack returns the elements xs[i] for which keep(i) is true, preserving
// order. It is the work-efficient "pack" (filter) primitive: a flag pass, an
// exclusive scan over block counts, and a scatter pass.
//
//parconn:allow hotalloc the result slice and per-block counts are the pack primitive's documented per-call cost, budgeted per section
func Pack[T any](procs int, xs []T, keep func(i int) bool) []T {
	n := len(xs)
	procs = Procs(procs)
	if procs == 1 || n < 2*DefaultGrain {
		out := make([]T, 0, n/4+16)
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, xs[i])
			}
		}
		return out
	}
	nblocks := procs * 4
	blockOf := func(b int) (int, int) {
		return n * b / nblocks, n * (b + 1) / nblocks
	}
	counts := make([]int, nblocks)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := scanSerial(counts, counts)
	out := make([]T, total)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		k := counts[b]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[k] = xs[i]
				k++
			}
		}
	})
	return out
}

// PackInto is Pack writing into caller-provided storage: it fills dst
// (which must have capacity for every kept element) and returns the number
// of elements written. dst must not alias xs. It allocates nothing beyond
// the small per-block count array on the parallel path.
//
//parconn:allow hotalloc the small per-block count array is the documented parallel-path cost (see the doc comment)
func PackInto[T any](procs int, dst, xs []T, keep func(i int) bool) int {
	n := len(xs)
	procs = Procs(procs)
	if procs == 1 || n < 2*DefaultGrain {
		k := 0
		for i := 0; i < n; i++ {
			if keep(i) {
				dst[k] = xs[i]
				k++
			}
		}
		return k
	}
	nblocks := procs * 4
	blockOf := func(b int) (int, int) {
		return n * b / nblocks, n * (b + 1) / nblocks
	}
	counts := make([]int, nblocks)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := scanSerial(counts, counts)
	_ = dst[:total] // bounds check once: dst must hold every kept element
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		k := counts[b]
		for i := lo; i < hi; i++ {
			if keep(i) {
				dst[k] = xs[i]
				k++
			}
		}
	})
	return total
}

// PackIndex returns, in order, the indices i in [0,n) for which keep(i) is
// true, as int32 values. It is used to compact bitmap frontiers back to
// sparse form.
func PackIndex(procs, n int, keep func(i int) bool) []int32 {
	procs = Procs(procs)
	if procs == 1 || n < 2*DefaultGrain {
		out := make([]int32, 0, 16)
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	nblocks := procs * 4
	blockOf := func(b int) (int, int) {
		return n * b / nblocks, n * (b + 1) / nblocks
	}
	counts := make([]int, nblocks)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := scanSerial(counts, counts)
	out := make([]int32, total)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		k := counts[b]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[k] = int32(i)
				k++
			}
		}
	})
	return out
}

// ConcatInto concatenates the per-worker buffers bufs into one slice,
// preserving buffer order. It returns the concatenation.
func ConcatInto[T any](procs int, bufs [][]T) []T {
	offsets := make([]int, len(bufs))
	total := 0
	for i, b := range bufs {
		offsets[i] = total
		total += len(b)
	}
	out := make([]T, total)
	For(procs, len(bufs), func(i int) {
		copy(out[offsets[i]:], bufs[i])
	})
	return out
}
