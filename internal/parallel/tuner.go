package parallel

import (
	"runtime"
	"time"
)

// FrontierGrain is the baseline block size for loops whose per-iteration
// work is proportional to a vertex degree (frontier sweeps, pair gathers).
// It is the single source of truth for the value that used to be duplicated
// as core.frontGrain and decomp.frontierGrain; the Tuner refines it per
// round from live statistics and falls back to it when it has none.
const FrontierGrain = 256

// Tuner turns the statistics the machines already track — frontier sizes,
// live edge counts, per-round CAS-retry counters, and measured section wall
// time — into scheduling decisions: the grain size for skewed frontier
// loops, the nested edge-parallel cutoff, and whether a whole recursion
// level is too small to be worth forking at all. Decisions are re-evaluated
// at every level/round boundary by the coordinator; they never change inside
// a parallel section.
//
// Every decision is a pure integer function of its arguments and the
// observation EWMA, so identical stat streams produce identical schedules
// and traces stay reproducible (see TestTunerDeterministic).
type Tuner struct {
	// nsPerItemQ4 is an exponentially weighted moving average of the
	// measured per-item (per-edge) cost of recent parallel sections, in
	// quarter-nanosecond fixed point. Integer arithmetic keeps the decision
	// functions exactly reproducible for a given observation sequence.
	// It is written by Observe and read by FrontierGrain, both only from
	// the coordinating goroutine between parallel sections; the value is
	// advisory, so even a stale read would only mis-size a grain.
	nsPerItemQ4 int64
}

const (
	// defaultNSPerItemQ4 seeds the EWMA before any observation: 4ns per
	// edge, a typical cost for the CAS-per-edge frontier sweeps on the
	// graphs in EXPERIMENTS.md.
	defaultNSPerItemQ4 = 4 * 4
	// maxNSPerItemQ4 clamps observations so one descheduled block (or a
	// timer hiccup) cannot poison the EWMA: 1µs per item.
	maxNSPerItemQ4 = 1000 * 4
	// targetBlockNS is the wall time one claimed block should cost. Large
	// enough to amortize the claim (one atomic add) thousands of times
	// over, small enough that the atomic-counter claim loop still balances
	// skewed blocks across workers.
	targetBlockNS = 400_000
	// minObserveItems drops observations of tiny sections, whose duration
	// is dominated by fork/join overhead and timer granularity rather than
	// per-item cost.
	minObserveItems = 4096
	// minFrontierGrain / maxFrontierGrain bound the adaptive grain. The
	// lower bound keeps the per-block scheduling overhead amortized even
	// when the EWMA reports expensive items; the upper bound keeps enough
	// blocks in flight for the claim loop to balance degree skew.
	minFrontierGrain = 64
	maxFrontierGrain = 1 << 16
	// serialFrontier is the frontier size below which a skewed loop runs
	// as a single block on the coordinator: two baseline grains, i.e. the
	// point where splitting buys at most one extra worker.
	serialFrontier = 2 * FrontierGrain
	// minEdgeParallelCutoff is the smallest live degree the adaptive
	// edge-parallel path will ever fire on; below it the nested fork/join
	// plus pack costs more than the sequential scan it replaces.
	minEdgeParallelCutoff = 1 << 13
	// serialLevelWork is the n+m threshold (vertices plus directed edges)
	// below which a whole recursion level runs with one worker: at this
	// size every parallel section is under a handful of grains, so the
	// forks would only add wake latency and cache traffic.
	serialLevelWork = 1 << 15
	// uniformBlocksPerProc caps how many blocks a uniform (non-skewed)
	// loop is split into, per worker. Uniform loops need no claim-loop
	// balancing beyond a small surplus, so a handful of blocks per worker
	// minimizes scheduling overhead on large n.
	uniformBlocksPerProc = 8
)

// Observe feeds the wall time of one parallel section that processed
// approximately items units of work into the cost EWMA (weight 1/4 on the
// new observation). Sections smaller than minObserveItems are ignored.
func (t *Tuner) Observe(items int64, d time.Duration) {
	if items < minObserveItems || d <= 0 {
		return
	}
	cur := int64(d) * 4 / items
	if cur < 1 {
		cur = 1
	}
	if cur > maxNSPerItemQ4 {
		cur = maxNSPerItemQ4
	}
	if t.nsPerItemQ4 == 0 {
		t.nsPerItemQ4 = cur
		return
	}
	t.nsPerItemQ4 = (3*t.nsPerItemQ4 + cur) / 4
}

// NSPerItem reports the current cost estimate in nanoseconds per item
// (zero until the first observation); exported for tests and tooling.
func (t *Tuner) NSPerItem() float64 {
	return float64(t.nsPerItemQ4) / 4
}

// FrontierGrain picks the block size for a skewed loop over frontier
// vertices that will touch approximately frontierEdges edges in total.
// casRetries is the previous round's lost-CAS count: heavy contention
// shrinks blocks so the claim loop interleaves writers more finely.
// Frontiers at or below serialFrontier run as one block on the caller
// (the returned grain equals the frontier).
func (t *Tuner) FrontierGrain(procs, frontier int, frontierEdges, casRetries int64) int {
	if procs <= 1 || frontier <= serialFrontier {
		return frontier
	}
	avgDeg := frontierEdges / int64(frontier)
	if avgDeg < 1 {
		avgDeg = 1
	}
	ns := t.nsPerItemQ4
	if ns == 0 {
		ns = defaultNSPerItemQ4
	}
	// Edges per block that hit the target block time, then vertices.
	grain := int(targetBlockNS * 4 / ns / avgDeg)
	if casRetries > int64(frontier)/8 {
		// One lost CAS per eight frontier vertices: writers are colliding;
		// halving the grain halves the window in which two blocks chase
		// the same neighborhood.
		grain /= 2
	}
	// Load balance: keep at least four blocks per worker in flight so the
	// claim loop can absorb degree skew.
	if bal := frontier / (4 * procs); grain > bal {
		grain = bal
	}
	if grain < minFrontierGrain {
		grain = minFrontierGrain
	}
	if grain > maxFrontierGrain {
		grain = maxFrontierGrain
	}
	return grain
}

// Workers caps a run's worker count at the host's physical parallelism.
// Options.Procs is documented as a bound, not a mandate, and workers beyond
// runtime.NumCPU() cannot execute simultaneously — they only add preemption
// (on an oversubscribed one-CPU host a quarter of profile samples land in
// runtime.asyncPreempt interrupting the frontier loops) and cache traffic.
// Race builds keep the requested width: there, goroutine interleaving
// coverage matters more than throughput.
func (t *Tuner) Workers(procs int) int {
	if raceEnabled {
		return procs
	}
	if c := runtime.NumCPU(); procs > c {
		return c
	}
	return procs
}

// EdgeParallelCutoff picks the live-degree threshold above which one
// frontier vertex's edge list is processed with a nested parallel loop
// (decomp's EdgeParallel). A list is only worth forking when it is a
// meaningful fraction of the level's remaining work, so the cutoff scales
// with liveEdges per worker; zero means the optimization stays off.
func (t *Tuner) EdgeParallelCutoff(procs int, liveEdges int64) int {
	if procs <= 1 {
		return 0
	}
	cutoff := liveEdges / int64(2*procs)
	if cutoff < minEdgeParallelCutoff {
		cutoff = minEdgeParallelCutoff
	}
	const maxInt32 = 1<<31 - 1
	if cutoff > maxInt32 {
		cutoff = maxInt32
	}
	return int(cutoff)
}

// SerialLevel reports whether a recursion level with n vertices and edges
// directed edges is below the tiny-level threshold and should run with a
// single worker end to end (decomposition and contraction); see DESIGN.md
// §12.
func (t *Tuner) SerialLevel(n int, edges int64) bool {
	return int64(n)+edges < serialLevelWork
}

// UniformGrain is the default grain for uniform (constant work per
// iteration) loops: at most uniformBlocksPerProc blocks per worker, never
// below DefaultGrain. Blocks and ForGrain apply it when the caller passes
// grain <= 0, so large uniform loops are no longer shredded into thousands
// of DefaultGrain-sized blocks.
func UniformGrain(procs, n int) int {
	if procs <= 1 {
		return n
	}
	blocks := uniformBlocksPerProc * procs
	g := (n + blocks - 1) / blocks
	if g < DefaultGrain {
		g = DefaultGrain
	}
	return g
}
