package parallel

// scanSerial computes the exclusive prefix sum of xs into out and returns the
// total. out may alias xs.
func scanSerial[T Number](out, xs []T) T {
	var acc T
	for i, v := range xs {
		out[i] = acc
		acc += v
	}
	return acc
}

// ExScan computes the exclusive prefix sum of xs in place and returns the
// total: afterwards xs[i] holds the sum of the original xs[0..i). This is the
// "plus-scan" used throughout the paper's implementation for computing
// offsets into shared arrays.
func ExScan[T Number](procs int, xs []T) T {
	return ExScanInto(procs, xs, xs)
}

// ExScanInto computes the exclusive prefix sum of src into dst (which may
// alias src) and returns the total.
func ExScanInto[T Number](procs int, dst, src []T) T {
	n := len(src)
	if len(dst) != n {
		panic("parallel: ExScanInto length mismatch")
	}
	procs = Procs(procs)
	if procs == 1 || n < 2*DefaultGrain {
		return scanSerial(dst, src)
	}
	nblocks := procs * 4
	if nblocks > (n+DefaultGrain-1)/DefaultGrain {
		nblocks = (n + DefaultGrain - 1) / DefaultGrain
	}
	blockOf := func(b int) (int, int) {
		return n * b / nblocks, n * (b + 1) / nblocks
	}
	//parconn:allow hotalloc per-scan block-sum array sized by procs; budgeted scan scratch
	sums := make([]T, nblocks)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		var s T
		for _, v := range src[lo:hi] {
			s += v
		}
		sums[b] = s
	})
	total := scanSerial(sums, sums)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		acc := sums[b]
		for i := lo; i < hi; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
	})
	return total
}

// InScan computes the inclusive prefix sum of xs in place: afterwards xs[i]
// holds the sum of the original xs[0..i].
func InScan[T Number](procs int, xs []T) T {
	n := len(xs)
	if n == 0 {
		var zero T
		return zero
	}
	procs = Procs(procs)
	if procs == 1 || n < 2*DefaultGrain {
		var acc T
		for i, v := range xs {
			acc += v
			xs[i] = acc
		}
		return acc
	}
	nblocks := procs * 4
	blockOf := func(b int) (int, int) {
		return n * b / nblocks, n * (b + 1) / nblocks
	}
	sums := make([]T, nblocks)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		var s T
		for _, v := range xs[lo:hi] {
			s += v
		}
		sums[b] = s
	})
	total := scanSerial(sums, sums)
	For(procs, nblocks, func(b int) {
		lo, hi := blockOf(b)
		acc := sums[b]
		for i := lo; i < hi; i++ {
			acc += xs[i]
			xs[i] = acc
		}
	})
	return total
}
