package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// procsCases exercises the serial path, an intermediate width, and the
// oversubscribed path on any host.
var procsCases = []int{1, 2, 8}

func TestProcs(t *testing.T) {
	if Procs(0) < 1 {
		t.Fatal("Procs(0) < 1")
	}
	if Procs(-3) < 1 {
		t.Fatal("Procs(-3) < 1")
	}
	if Procs(5) != 5 {
		t.Fatal("Procs(5) != 5")
	}
}

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, p := range procsCases {
		for _, n := range []int{0, 1, 100, 10000} {
			hits := make([]int32, n)
			For(p, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d hit %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, p := range procsCases {
		for _, grain := range []int{0, 1, 7, 5000} {
			n := 12345
			hits := make([]int32, n)
			Blocks(p, n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad block [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d grain=%d: index %d hit %d times", p, grain, i, h)
				}
			}
		}
	}
}

func TestBlocksEmptyRange(t *testing.T) {
	called := false
	Blocks(4, 0, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Blocks called fn for n=0")
	}
}

func TestWorkerBlocksEachWorkerOnce(t *testing.T) {
	for _, p := range procsCases {
		for _, n := range []int{0, 1, 5, 1000} {
			seen := make([]int32, p)
			hits := make([]int32, n)
			used := WorkerBlocks(p, n, func(w, lo, hi int) {
				atomic.AddInt32(&seen[w], 1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			want := min(p, n)
			if want < 1 {
				want = 1
			}
			if used != want {
				t.Fatalf("p=%d n=%d: used=%d want %d", p, n, used, want)
			}
			// Worker indices are dense in [0,used) and each fires exactly
			// once; indices beyond used are never invoked (the old contract
			// called them with an empty range).
			for w, s := range seen {
				wantCalls := int32(0)
				if w < used {
					wantCalls = 1
				}
				if s != wantCalls {
					t.Fatalf("p=%d n=%d: worker %d called %d times, want %d", p, n, w, s, wantCalls)
				}
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	for _, p := range procsCases {
		var a, b, c atomic.Int32
		Do(p, func() { a.Add(1) }, func() { b.Add(1) }, func() { c.Add(1) })
		if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
			t.Fatalf("p=%d: Do missed a task", p)
		}
	}
}

func TestFillIotaCopy(t *testing.T) {
	for _, p := range procsCases {
		xs := make([]int64, 5000)
		Fill(p, xs, 7)
		for i, v := range xs {
			if v != 7 {
				t.Fatalf("Fill: xs[%d]=%d", i, v)
			}
		}
		Iota(p, xs)
		for i, v := range xs {
			if v != int64(i) {
				t.Fatalf("Iota: xs[%d]=%d", i, v)
			}
		}
		dst := make([]int64, len(xs))
		Copy(p, dst, xs)
		for i := range xs {
			if dst[i] != xs[i] {
				t.Fatalf("Copy: dst[%d]=%d", i, dst[i])
			}
		}
	}
}

func TestCopyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Copy(1, make([]int, 3), make([]int, 4))
}

func TestSumMatchesSerial(t *testing.T) {
	xs := make([]int64, 100001)
	var want int64
	for i := range xs {
		xs[i] = int64(i%97 - 48)
		want += xs[i]
	}
	for _, p := range procsCases {
		if got := Sum(p, xs); got != want {
			t.Fatalf("p=%d: Sum=%d want %d", p, got, want)
		}
	}
}

func TestMaxMatchesSerial(t *testing.T) {
	xs := make([]int32, 54321)
	for i := range xs {
		xs[i] = int32((i * 2654435761) % 1000003)
	}
	want := xs[0]
	for _, v := range xs {
		if v > want {
			want = v
		}
	}
	for _, p := range procsCases {
		if got := Max(p, xs); got != want {
			t.Fatalf("p=%d: Max=%d want %d", p, got, want)
		}
	}
}

func TestMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Max(1, []int{})
}

func TestCount(t *testing.T) {
	for _, p := range procsCases {
		got := Count(p, 100000, func(i int) bool { return i%3 == 0 })
		if got != 33334 {
			t.Fatalf("p=%d: Count=%d want 33334", p, got)
		}
	}
}

func TestExScanMatchesSerial(t *testing.T) {
	for _, p := range procsCases {
		for _, n := range []int{0, 1, 2, 100, 9999, 100000} {
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(i%13 - 6)
			}
			want := make([]int64, n)
			wantTotal := scanSerial(want, xs)
			gotTotal := ExScan(p, xs)
			if gotTotal != wantTotal {
				t.Fatalf("p=%d n=%d: total=%d want %d", p, n, gotTotal, wantTotal)
			}
			for i := range xs {
				if xs[i] != want[i] {
					t.Fatalf("p=%d n=%d: xs[%d]=%d want %d", p, n, i, xs[i], want[i])
				}
			}
		}
	}
}

func TestExScanIntoSeparateDst(t *testing.T) {
	src := []int32{3, 1, 4, 1, 5}
	dst := make([]int32, 5)
	total := ExScanInto(2, dst, src)
	want := []int32{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total=%d", total)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d]=%d want %d", i, dst[i], want[i])
		}
	}
	// src must be untouched.
	for i, v := range []int32{3, 1, 4, 1, 5} {
		if src[i] != v {
			t.Fatalf("src modified at %d", i)
		}
	}
}

func TestInScanMatchesSerial(t *testing.T) {
	for _, p := range procsCases {
		for _, n := range []int{0, 1, 100, 100000} {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = i % 7
			}
			want := make([]int, n)
			acc := 0
			for i := range xs {
				acc += xs[i]
				want[i] = acc
			}
			total := InScan(p, xs)
			if total != acc {
				t.Fatalf("p=%d n=%d: total=%d want %d", p, n, total, acc)
			}
			for i := range xs {
				if xs[i] != want[i] {
					t.Fatalf("p=%d n=%d: xs[%d]=%d want %d", p, n, i, xs[i], want[i])
				}
			}
		}
	}
}

func TestExScanProperty(t *testing.T) {
	// Property: for random inputs, parallel scan equals the sequential one.
	f := func(xs []int64) bool {
		cp := make([]int64, len(xs))
		copy(cp, xs)
		want := make([]int64, len(xs))
		wantTotal := scanSerial(want, xs)
		gotTotal := ExScan(4, cp)
		if gotTotal != wantTotal {
			return false
		}
		for i := range cp {
			if cp[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackMatchesSerial(t *testing.T) {
	for _, p := range procsCases {
		for _, n := range []int{0, 1, 100, 60000} {
			xs := make([]int32, n)
			for i := range xs {
				xs[i] = int32(i)
			}
			keep := func(i int) bool { return i%7 == 2 }
			got := Pack(p, xs, keep)
			want := make([]int32, 0)
			for i := 0; i < n; i++ {
				if keep(i) {
					want = append(want, xs[i])
				}
			}
			if len(got) != len(want) {
				t.Fatalf("p=%d n=%d: len=%d want %d", p, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d n=%d: got[%d]=%d want %d", p, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPackIndexMatchesSerial(t *testing.T) {
	for _, p := range procsCases {
		n := 50000
		keep := func(i int) bool { return i%13 == 0 || i%17 == 3 }
		got := PackIndex(p, n, keep)
		want := make([]int32, 0)
		for i := 0; i < n; i++ {
			if keep(i) {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: len=%d want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: got[%d]=%d want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestPackKeepNothingAndEverything(t *testing.T) {
	xs := []int{1, 2, 3}
	if got := Pack(2, xs, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("keep-nothing returned %v", got)
	}
	got := Pack(2, xs, func(int) bool { return true })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("keep-everything returned %v", got)
	}
}

func TestConcatInto(t *testing.T) {
	for _, p := range procsCases {
		bufs := [][]int32{{1, 2}, nil, {3}, {}, {4, 5, 6}}
		got := ConcatInto(p, bufs)
		want := []int32{1, 2, 3, 4, 5, 6}
		if len(got) != len(want) {
			t.Fatalf("p=%d: len=%d", p, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: got[%d]=%d want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestMapReduceFloat(t *testing.T) {
	got := MapReduce(3, 1000, func(i int) float64 { return 0.5 })
	if got != 500 {
		t.Fatalf("MapReduce float = %v", got)
	}
}

func BenchmarkExScan1M(b *testing.B) {
	xs := make([]int64, 1<<20)
	for i := range xs {
		xs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExScan(0, xs)
		b.StopTimer()
		Fill(0, xs, 1)
		b.StartTimer()
	}
}

func BenchmarkFor1M(b *testing.B) {
	xs := make([]int64, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Blocks(0, len(xs), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				xs[j]++
			}
		})
	}
}

func TestForGrain(t *testing.T) {
	for _, p := range procsCases {
		hits := make([]int32, 3000)
		ForGrain(p, len(hits), 7, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("p=%d: index %d hit %d times", p, i, h)
			}
		}
	}
}
