package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// A Pool is a long-lived fork-join scheduler: a fixed set of worker
// goroutines parked on a channel, woken per parallel section and reused
// across calls. It replaces the spawn-per-call scheduling this package
// started with — a BFS round over a small frontier costs one channel send
// per woken helper instead of one goroutine spawn per worker, and sub-grain
// loops take a serial fast path that never wakes anyone.
//
// Wake protocol. Every parallel section builds one task holding the loop
// body and an atomic block cursor. The caller enqueues up to procs-1
// wake-up references to the task (non-blocking: a full queue just means
// fewer helpers), then runs the claim loop itself, so a section completes
// even if no helper ever arrives — which also makes nested sections (e.g.
// the high-degree edge-parallel path inside a BFS round) deadlock-free by
// construction. Parked workers that dequeue the task join it by
// incrementing the active count in its state word, run the same claim loop,
// and decrement on the way out. When the caller finishes claiming it sets
// the closed bit: late workers that dequeue a closed task drop it without
// running, and the last active helper to leave a closed task signals the
// caller's completion channel. The state word is the only rendezvous: low
// bits count active helpers, one high bit is "closed".
//
// Callers may request more parallelism than the pool holds (tests do, to
// exercise real interleavings on small hosts); the excess is served by
// transient goroutines with the same join protocol, preserving the
// pre-pool semantics that procs is honored exactly.
type Pool struct {
	procs int
	jobs  chan *task
	quit  chan struct{}
	wg    sync.WaitGroup
	joins atomic.Int64 // cumulative helpers that joined a section; see Joins
}

// closedBit marks a task whose caller has finished claiming blocks; the low
// 32 bits of the state word count helpers currently inside the claim loop.
const closedBit = int64(1) << 32

// task is one parallel section. Exactly one of fnBlock/fnIdx/fnWorker/
// fnList is set; next is the shared block (or chunk, or function) cursor.
type task struct {
	fnBlock  func(lo, hi int)
	fnIdx    func(i int)
	fnWorker func(worker, lo, hi int)
	fnList   []func()

	n, grain int
	nblocks  int
	next     atomic.Int64
	state    atomic.Int64
	done     chan struct{}
	joins    *atomic.Int64 // the owning pool's join counter
}

// run claims blocks until none remain. It is executed by the caller and by
// every helper that joined the task.
func (t *task) run() {
	switch {
	case t.fnBlock != nil:
		for {
			b := int(t.next.Add(1)) - 1
			if b >= t.nblocks {
				return
			}
			lo := b * t.grain
			hi := min(lo+t.grain, t.n)
			t.fnBlock(lo, hi)
		}
	case t.fnIdx != nil:
		for {
			b := int(t.next.Add(1)) - 1
			if b >= t.nblocks {
				return
			}
			lo := b * t.grain
			hi := min(lo+t.grain, t.n)
			for i := lo; i < hi; i++ {
				t.fnIdx(i)
			}
		}
	case t.fnWorker != nil:
		// Chunk index doubles as the worker id: indices are dense in
		// [0, nblocks) and each is claimed exactly once, whichever
		// participant ends up running it.
		for {
			w := int(t.next.Add(1)) - 1
			if w >= t.nblocks {
				return
			}
			t.fnWorker(w, t.n*w/t.nblocks, t.n*(w+1)/t.nblocks)
		}
	default:
		for {
			i := int(t.next.Add(1)) - 1
			if i >= len(t.fnList) {
				return
			}
			t.fnList[i]()
		}
	}
}

// help is the worker side of the wake protocol: join unless the task is
// already closed, run the claim loop, and signal the caller when leaving a
// closed task as its last active helper.
func (t *task) help() {
	for {
		s := t.state.Load()
		if s&closedBit != 0 {
			return // stale wake-up: the section already completed
		}
		if t.state.CompareAndSwap(s, s+1) {
			break
		}
	}
	t.joins.Add(1)
	t.run()
	if t.state.Add(-1) == closedBit {
		t.done <- struct{}{}
	}
}

// NewPool returns a pool able to serve procs-wide parallel sections from
// parked workers (procs <= 0 means GOMAXPROCS). It spawns procs-1 workers;
// the goroutine invoking a section is always the procs-th participant.
// Close releases the workers.
//
//parconn:allow hotalloc one-time pool construction; the workers it spawns persist and are reused by every section
func NewPool(procs int) *Pool {
	procs = Procs(procs)
	p := &Pool{
		procs: procs,
		jobs:  make(chan *task, 8*procs),
		quit:  make(chan struct{}),
	}
	p.wg.Add(procs - 1)
	for i := 1; i < procs; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.jobs:
			t.help()
		case <-p.quit:
			return
		}
	}
}

// Procs returns the parallelism the pool was sized for.
func (p *Pool) Procs() int { return p.procs }

// Joins reports the cumulative number of helpers (parked workers and
// transient oversubscription goroutines) that joined a parallel section on
// this pool. Serial fast paths never create a task, so a run's join delta
// of zero means no section ever went parallel. Callers wanting per-run
// numbers difference two snapshots.
func (p *Pool) Joins() int64 { return p.joins.Load() }

// Close stops the pool's parked workers and waits for them to exit. It must
// only be called once, after all sections using the pool have returned.
func (p *Pool) Close() {
	close(p.quit)
	p.wg.Wait()
}

// exec runs t with up to want participants including the caller: helpers
// are woken from the pool first, any remainder beyond the pool's capacity
// is served by transient goroutines (preserving explicit oversubscription),
// and the caller claims blocks alongside them.
//
//parconn:allow hotalloc,blockingcall the per-section join channel, oversubscription helpers, and the final join receive are the scheduler's budgeted section cost; the join parks the submitting goroutine only after its own blocks are done
func (p *Pool) exec(t *task, want int) {
	t.done = make(chan struct{}, 1)
	t.joins = &p.joins
	helpers := want - 1
	pooled := min(helpers, p.procs-1)
	enqueued := 0
	for ; enqueued < pooled; enqueued++ {
		select {
		case p.jobs <- t:
		default:
			// Queue full (pool saturated by other sections): proceed with
			// the helpers enqueued so far; the caller covers the rest.
			pooled = enqueued
		}
	}
	for i := enqueued; i < helpers; i++ {
		go t.help()
	}
	t.run()
	if t.state.Add(closedBit) != closedBit {
		<-t.done // helpers still inside the claim loop; wait for the last
	}
}

// defaultPool is the shared pool behind the package-level entry points,
// created on first use and sized to GOMAXPROCS at that moment.
var defaultPool struct {
	once sync.Once
	p    *Pool
}

// Default returns the shared pool used by the package-level functions. It
// is created on first use, sized to runtime.GOMAXPROCS(0), and never
// closed.
func Default() *Pool {
	//parconn:allow blockingcall one-time lazy init; Do is an uncontended atomic load after the first call
	defaultPool.once.Do(func() {
		defaultPool.p = NewPool(runtime.GOMAXPROCS(0))
	})
	return defaultPool.p
}
