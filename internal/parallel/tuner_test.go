package parallel

import (
	"runtime"
	"testing"
	"time"
)

// profile is a synthetic per-round stat stream: what a decomposition round
// loop would feed the tuner on a given graph family.
type profile struct {
	name     string
	procs    int
	frontier int
	edges    int64 // edges carried by the frontier
	retries  int64
	// observations replayed into the EWMA before the decision.
	obsItems []int64
	obsDur   []time.Duration
}

func (p profile) tuner() *Tuner {
	t := &Tuner{}
	for i, items := range p.obsItems {
		t.Observe(items, p.obsDur[i])
	}
	return t
}

func TestFrontierGrainRanges(t *testing.T) {
	tests := []struct {
		profile
		minGrain, maxGrain int
	}{
		// Uniform random graph: 100k-vertex frontier, average degree 10,
		// no measurements yet — the default cost estimate applies.
		{profile{name: "uniform", procs: 4, frontier: 100_000, edges: 1_000_000},
			minFrontierGrain, maxFrontierGrain},
		// rMat-skewed: big frontier, heavy average degree, measured cost
		// around 8ns/edge. Grain must stay small enough for the claim loop
		// to balance the skew: at least 4 blocks per worker.
		{profile{name: "rmat-skewed", procs: 4, frontier: 250_000, edges: 10_000_000,
			obsItems: []int64{10_000_000}, obsDur: []time.Duration{80 * time.Millisecond}},
			minFrontierGrain, 250_000 / (4 * 4)},
		// Star: one hub dominates; the frontier itself is tiny, so the
		// round must run serially (grain == frontier means one block).
		{profile{name: "star", procs: 4, frontier: 3, edges: 1_000_000}, 3, 3},
		// Path: long frontier of degree-2 vertices with CAS contention at
		// the chain's meeting points.
		{profile{name: "path", procs: 4, frontier: 500_000, edges: 1_000_000, retries: 100_000},
			minFrontierGrain, 500_000 / (4 * 4)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tn := tc.tuner()
			g := tn.FrontierGrain(tc.procs, tc.frontier, tc.edges, tc.retries)
			if g < tc.minGrain || g > tc.maxGrain {
				t.Fatalf("FrontierGrain(%s) = %d, want in [%d, %d]", tc.name, g, tc.minGrain, tc.maxGrain)
			}
			if tc.frontier > serialFrontier {
				// Parallel frontiers must yield at least two blocks per
				// worker or splitting was pointless.
				if blocks := (tc.frontier + g - 1) / g; blocks < 2*tc.procs {
					t.Fatalf("FrontierGrain(%s) = %d gives %d blocks for %d workers", tc.name, g, blocks, tc.procs)
				}
			}
		})
	}
}

func TestFrontierGrainContentionShrinks(t *testing.T) {
	var tn Tuner
	calm := tn.FrontierGrain(4, 100_000, 1_000_000, 0)
	contended := tn.FrontierGrain(4, 100_000, 1_000_000, 50_000)
	if contended > calm {
		t.Fatalf("contended grain %d > calm grain %d", contended, calm)
	}
}

func TestFrontierGrainSerialCases(t *testing.T) {
	var tn Tuner
	if g := tn.FrontierGrain(1, 1_000_000, 10_000_000, 0); g != 1_000_000 {
		t.Fatalf("procs=1 grain = %d, want the whole frontier", g)
	}
	if g := tn.FrontierGrain(4, serialFrontier, 1_000_000, 0); g != serialFrontier {
		t.Fatalf("tiny-frontier grain = %d, want the whole frontier (%d)", g, serialFrontier)
	}
}

func TestObserveUpdatesEstimate(t *testing.T) {
	var tn Tuner
	if tn.NSPerItem() != 0 {
		t.Fatalf("fresh tuner NSPerItem = %v, want 0", tn.NSPerItem())
	}
	tn.Observe(1_000_000, 8*time.Millisecond) // 8ns/item
	if got := tn.NSPerItem(); got < 7 || got > 9 {
		t.Fatalf("NSPerItem after 8ns observation = %v", got)
	}
	// Costlier sections shrink the grain.
	cheap := (&Tuner{}).FrontierGrain(4, 1<<20, 1<<23, 0)
	var slow Tuner
	slow.Observe(1_000_000, 100*time.Millisecond) // 100ns/item
	if g := slow.FrontierGrain(4, 1<<20, 1<<23, 0); g >= cheap {
		t.Fatalf("slow-cost grain %d >= default-cost grain %d", g, cheap)
	}
	// Tiny sections are ignored: fork/join noise, not per-item cost.
	before := slow.NSPerItem()
	slow.Observe(10, time.Second)
	if slow.NSPerItem() != before {
		t.Fatalf("tiny observation changed the estimate: %v -> %v", before, slow.NSPerItem())
	}
}

func TestEdgeParallelCutoff(t *testing.T) {
	var tn Tuner
	if c := tn.EdgeParallelCutoff(1, 10_000_000); c != 0 {
		t.Fatalf("procs=1 cutoff = %d, want 0 (disabled)", c)
	}
	c := tn.EdgeParallelCutoff(4, 10_000_000)
	if c < minEdgeParallelCutoff {
		t.Fatalf("cutoff %d below floor %d", c, minEdgeParallelCutoff)
	}
	if c > 10_000_000/(2*4) {
		t.Fatalf("cutoff %d above liveEdges/(2*procs)", c)
	}
	// A tiny level can never reach the floor, so the path stays cold.
	if c := tn.EdgeParallelCutoff(4, 1000); c != minEdgeParallelCutoff {
		t.Fatalf("tiny-level cutoff = %d, want the floor %d", c, minEdgeParallelCutoff)
	}
}

func TestSerialLevel(t *testing.T) {
	var tn Tuner
	if !tn.SerialLevel(138, 276) {
		t.Fatal("late contraction level (n=138) should run serially")
	}
	if tn.SerialLevel(1<<20, 10_000_000) {
		t.Fatal("level 0 of an rMat-20 run must not be serialized")
	}
}

func TestUniformGrain(t *testing.T) {
	if g := UniformGrain(1, 1_000_000); g != 1_000_000 {
		t.Fatalf("procs=1 uniform grain = %d, want n", g)
	}
	g := UniformGrain(4, 1<<20)
	if g < DefaultGrain {
		t.Fatalf("uniform grain %d below DefaultGrain", g)
	}
	if blocks := (1<<20 + g - 1) / g; blocks > uniformBlocksPerProc*4 {
		t.Fatalf("uniform grain %d gives %d blocks, cap is %d", g, blocks, uniformBlocksPerProc*4)
	}
	// Small loops still get DefaultGrain (one or two blocks).
	if g := UniformGrain(4, 1000); g != DefaultGrain {
		t.Fatalf("small-n uniform grain = %d, want DefaultGrain", g)
	}
}

// TestTunerDeterministic replays the same observation/stat stream into two
// independent tuners and requires identical decisions at every step: traces
// must be reproducible run to run.
func TestTunerDeterministic(t *testing.T) {
	var a, b Tuner
	frontiers := []int{1 << 18, 1 << 16, 1 << 12, 700, 12}
	for step, f := range frontiers {
		edges := int64(f) * 11
		retries := int64(f) / 10
		ga := a.FrontierGrain(4, f, edges, retries)
		gb := b.FrontierGrain(4, f, edges, retries)
		if ga != gb {
			t.Fatalf("step %d: grains diverge (%d vs %d)", step, ga, gb)
		}
		if ca, cb := a.EdgeParallelCutoff(4, edges), b.EdgeParallelCutoff(4, edges); ca != cb {
			t.Fatalf("step %d: cutoffs diverge (%d vs %d)", step, ca, cb)
		}
		d := time.Duration(edges) * 7 // pretend 7ns/edge
		a.Observe(edges, d)
		b.Observe(edges, d)
		if a.nsPerItemQ4 != b.nsPerItemQ4 {
			t.Fatalf("step %d: EWMAs diverge (%d vs %d)", step, a.nsPerItemQ4, b.nsPerItemQ4)
		}
	}
}

func TestWorkersCapsAtNumCPU(t *testing.T) {
	var tn Tuner
	ncpu := runtime.NumCPU()
	for _, p := range []int{1, 2, 4, ncpu, ncpu + 3, 64} {
		got := tn.Workers(p)
		want := p
		if !raceEnabled && want > ncpu {
			want = ncpu
		}
		if got != want {
			t.Fatalf("Workers(%d) = %d, want %d (NumCPU=%d, race=%v)", p, got, want, ncpu, raceEnabled)
		}
		if got > p {
			t.Fatalf("Workers(%d) = %d widened the requested bound", p, got)
		}
	}
}
