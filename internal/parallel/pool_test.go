package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolReuseAcrossCalls drives many parallel sections through one pool and
// checks every iteration is covered exactly once each time — the workers must
// be reusable, not one-shot.
func TestPoolReuseAcrossCalls(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 10_000
	hits := make([]int32, n)
	for round := 0; round < 50; round++ {
		for i := range hits {
			hits[i] = 0
		}
		p.Blocks(4, n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("round %d: index %d covered %d times", round, i, h)
			}
		}
	}
}

// TestPoolConcurrentIndependentLoops runs many goroutines that each issue
// parallel sections against the same pool concurrently. Sections must not
// interfere: each caller's iterations are covered exactly once.
func TestPoolConcurrentIndependentLoops(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const callers = 8
	const n = 5_000
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits := make([]int32, n)
			for round := 0; round < 20; round++ {
				for i := range hits {
					hits[i] = 0
				}
				p.Blocks(4, n, 64, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						select {
						case errs <- "iteration covered wrong number of times":
						default:
						}
						t.Errorf("round %d: index %d covered %d times", round, i, h)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestPoolNestedSections exercises a parallel section launched from inside
// another section's body (the edge-parallel path does this). The pool's
// caller-participates protocol must keep this deadlock-free even when every
// parked worker is busy.
func TestPoolNestedSections(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	p.ForGrain(4, 8, 1, func(i int) {
		p.ForGrain(4, 8, 1, func(j int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested sections ran %d inner iterations, want 64", got)
	}
}

// TestPoolProcsRespected checks that a section never runs more concurrent
// workers than the procs it requested, even on a larger pool.
func TestPoolProcsRespected(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	for _, procs := range []int{1, 2, 3} {
		var cur, peak atomic.Int32
		p.Blocks(procs, 64, 1, func(lo, hi int) {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			cur.Add(-1)
		})
		if got := peak.Load(); got > int32(procs) {
			t.Fatalf("procs=%d: observed %d concurrent workers", procs, got)
		}
	}
}

// TestPoolProcsAccessor checks Procs reports the construction-time size and
// that procs <= 0 resolves to GOMAXPROCS.
func TestPoolProcsAccessor(t *testing.T) {
	p := NewPool(3)
	if p.Procs() != 3 {
		t.Fatalf("Procs() = %d, want 3", p.Procs())
	}
	p.Close()
	q := NewPool(0)
	if q.Procs() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Procs() = %d, want GOMAXPROCS %d", q.Procs(), runtime.GOMAXPROCS(0))
	}
	q.Close()
}

// TestPoolNoGoroutineLeak creates pools, runs work, closes them, and checks
// the goroutine count returns to (near) its starting point.
func TestPoolNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for k := 0; k < 10; k++ {
		p := NewPool(4)
		p.For(4, 10_000, func(i int) { _ = i * i })
		p.Close()
	}
	// Close waits for workers, but give the runtime a beat to retire
	// any transient helpers before counting.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolOversubscription asks one pool section for more parallelism than
// the pool holds; the transient-helper path must still cover every index
// exactly once.
func TestPoolOversubscription(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const n = 4096
	hits := make([]int32, n)
	p.Blocks(16, n, 32, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
}

// BenchmarkPoolBlocks measures the steady-state dispatch cost of a parallel
// section on a warm pool (the quantity the pool exists to shrink).
func BenchmarkPoolBlocks(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	xs := make([]int64, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Blocks(0, len(xs), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				xs[j]++
			}
		})
	}
}

// BenchmarkPoolForSmall measures the serial fast path: a sub-grain loop must
// not wake anyone or allocate.
func BenchmarkPoolForSmall(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	var sink int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForGrain(0, 100, 2048, func(j int) { sink += int64(j) })
	}
	_ = sink
}
