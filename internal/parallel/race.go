//go:build race

package parallel

// raceEnabled reports whether the race detector is compiled in. Scheduling
// decisions that would narrow goroutine interleaving (Tuner.Workers capping
// section width at the physical CPU count) are disabled under it, so race
// tests on small CI hosts still exercise genuinely concurrent sections.
const raceEnabled = true
