// Package parallel provides the fork-join primitives the rest of the library
// is written against: blocked parallel-for, prefix sums (scan), pack/filter,
// and reductions.
//
// The paper's implementation uses Cilk Plus (cilk_for / cilk_spawn); this
// package plays the same role on goroutines. Loops are split into blocks of
// at least a grain-size of work, and blocks are claimed from an atomic
// counter (a simple work-stealing-free scheduler that is effective for the
// flat, regular loops used here). Workers come from a long-lived Pool of
// parked goroutines (see pool.go) rather than being spawned per call, so
// the steady-state cost of a parallel section is a channel wake per helper
// — and zero for sub-grain sections, which run serially on the caller.
// Every entry point takes an explicit worker count so library callers can
// bound parallelism per call rather than globally; procs <= 0 means
// runtime.GOMAXPROCS(0). The package-level functions share one default
// pool; callers that want scheduling isolation construct their own Pool and
// use the equivalent methods.
package parallel

import (
	"runtime"
)

// DefaultGrain is the minimum number of loop iterations a worker claims at a
// time when the caller does not specify a grain. It is chosen so that the
// per-block scheduling overhead (one atomic add + closure call) is amortized
// over enough work for the fine-grained loops in this library.
const DefaultGrain = 2048

// Procs resolves a worker-count option: values <= 0 mean "use all available
// parallelism" (runtime.GOMAXPROCS(0)).
func Procs(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Blocks runs fn over disjoint subranges [lo,hi) covering [0,n) using up to
// procs workers, with at least grain iterations per block (except the last).
// fn must be safe to call concurrently on disjoint ranges. If grain <= 0,
// the loop is treated as uniform work per iteration and UniformGrain is
// used (a few blocks per worker, at least DefaultGrain).
func Blocks(procs, n, grain int, fn func(lo, hi int)) {
	Default().Blocks(procs, n, grain, fn)
}

// Blocks is the pool-scoped equivalent of the package-level Blocks.
func (p *Pool) Blocks(procs, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	procs = Procs(procs)
	if grain <= 0 {
		grain = UniformGrain(procs, n)
	}
	nblocks := (n + grain - 1) / grain
	if procs == 1 || nblocks == 1 {
		fn(0, n)
		return
	}
	if procs > nblocks {
		procs = nblocks
	}
	//parconn:allow hotalloc per-section task descriptor; part of the scheduler's budgeted steady-state allocations
	p.exec(&task{fnBlock: fn, n: n, grain: grain, nblocks: nblocks}, procs)
}

// For runs fn(i) for every i in [0,n) in parallel with the default grain.
func For(procs, n int, fn func(i int)) {
	Default().For(procs, n, fn)
}

// For is the pool-scoped equivalent of the package-level For.
func (p *Pool) For(procs, n int, fn func(i int)) {
	p.ForGrain(procs, n, DefaultGrain, fn)
}

// ForGrain is For with an explicit grain size, for loops whose per-iteration
// work is far from uniform (e.g. one iteration per frontier vertex, where a
// vertex may have a large degree).
func ForGrain(procs, n, grain int, fn func(i int)) {
	Default().ForGrain(procs, n, grain, fn)
}

// ForGrain is the pool-scoped equivalent of the package-level ForGrain.
func (p *Pool) ForGrain(procs, n, grain int, fn func(i int)) {
	if n <= 0 {
		return
	}
	procs = Procs(procs)
	if grain <= 0 {
		grain = UniformGrain(procs, n)
	}
	nblocks := (n + grain - 1) / grain
	if procs == 1 || nblocks == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if procs > nblocks {
		procs = nblocks
	}
	//parconn:allow hotalloc per-section task descriptor; part of the scheduler's budgeted steady-state allocations
	p.exec(&task{fnIdx: fn, n: n, grain: grain, nblocks: nblocks}, procs)
}

// WorkerBlocks partitions [0,n) into used = max(1, min(procs, n)) contiguous
// chunks and runs fn(worker, lo, hi) exactly once for each worker index in
// [0, used), returning used.
//
// Per-worker-buffer contract: worker indices are dense in [0, used), no
// index is ever repeated, and no two concurrent invocations of fn share an
// index — so callers may maintain per-worker buffers sized by procs (or by
// the returned used) and index them by worker without synchronization,
// concatenating afterwards. Chunks are nonempty whenever n >= used. Unlike
// the pre-pool implementation, fn is NOT invoked with an empty [n, n) range
// for worker indices beyond used: entries of a procs-sized buffer past used
// keep their zero value and callers must treat them as absent, not as
// fn-initialized.
func WorkerBlocks(procs, n int, fn func(worker, lo, hi int)) int {
	return Default().WorkerBlocks(procs, n, fn)
}

// WorkerBlocks is the pool-scoped equivalent of the package-level
// WorkerBlocks.
func (p *Pool) WorkerBlocks(procs, n int, fn func(worker, lo, hi int)) int {
	used := min(Procs(procs), n)
	if used <= 1 {
		fn(0, 0, n)
		return 1
	}
	//parconn:allow hotalloc per-section task descriptor; part of the scheduler's budgeted steady-state allocations
	p.exec(&task{fnWorker: fn, n: n, nblocks: used}, used)
	return used
}

// Do runs every function in fns, in parallel when procs > 1. It is the
// cilk_spawn analogue for a small constant number of independent tasks.
func Do(procs int, fns ...func()) {
	Default().Do(procs, fns...)
}

// Do is the pool-scoped equivalent of the package-level Do.
func (p *Pool) Do(procs int, fns ...func()) {
	procs = Procs(procs)
	if procs == 1 || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	if procs > len(fns) {
		procs = len(fns)
	}
	p.exec(&task{fnList: fns}, procs)
}

// Number is the constraint for the arithmetic primitives in this package.
type Number interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64 | ~float64
}

// serial reports whether an n-element loop should run serially on the
// caller: either no extra workers were requested or the loop is under one
// grain of work. Helpers use it to skip closure construction entirely on
// the serial path (the closures would escape into the pool and cost one
// heap allocation per call otherwise).
func serial(procs, n int) bool {
	return n < DefaultGrain || Procs(procs) == 1
}

// Fill sets every element of dst to v in parallel.
func Fill[T any](procs int, dst []T, v T) {
	if serial(procs, len(dst)) {
		for i := range dst {
			dst[i] = v
		}
		return
	}
	Blocks(procs, len(dst), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// Iota fills dst with 0, 1, 2, ... in parallel.
func Iota[T Number](procs int, dst []T) {
	if serial(procs, len(dst)) {
		for i := range dst {
			dst[i] = T(i)
		}
		return
	}
	Blocks(procs, len(dst), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = T(i)
		}
	})
}

// Copy copies src into dst in parallel. The slices must have equal length.
func Copy[T any](procs int, dst, src []T) {
	if len(dst) != len(src) {
		panic("parallel: Copy length mismatch")
	}
	if serial(procs, len(src)) {
		copy(dst, src)
		return
	}
	Blocks(procs, len(src), 0, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Sum returns the sum of xs.
func Sum[T Number](procs int, xs []T) T {
	if serial(procs, len(xs)) {
		var total T
		for _, v := range xs {
			total += v
		}
		return total
	}
	return MapReduce(procs, len(xs), func(i int) T { return xs[i] })
}

// MapReduce sums f(i) over i in [0,n).
func MapReduce[T Number](procs, n int, f func(i int) T) T {
	procs = Procs(procs)
	if procs == 1 || n < DefaultGrain {
		var total T
		for i := 0; i < n; i++ {
			total += f(i)
		}
		return total
	}
	partial := make([]T, procs)
	used := WorkerBlocks(procs, n, func(w, lo, hi int) {
		var s T
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[w] = s
	})
	var total T
	for _, s := range partial[:used] {
		total += s
	}
	return total
}

// Max returns the maximum element of xs. It panics on an empty slice.
func Max[T Number](procs int, xs []T) T {
	if len(xs) == 0 {
		panic("parallel: Max of empty slice")
	}
	procs = Procs(procs)
	if procs == 1 || len(xs) < DefaultGrain {
		m := xs[0]
		for _, v := range xs[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	//parconn:allow hotalloc per-call partial-max array sized by procs; budgeted reduction scratch
	partial := make([]T, procs)
	// len(xs) >= DefaultGrain >= procs here, so every worker chunk is
	// nonempty and partial[:used] is fully initialized.
	used := WorkerBlocks(procs, len(xs), func(w, lo, hi int) {
		m := xs[lo]
		for _, v := range xs[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		partial[w] = m
	})
	m := partial[0]
	for _, v := range partial[1:used] {
		if v > m {
			m = v
		}
	}
	return m
}

// Count returns the number of i in [0,n) for which pred(i) is true.
func Count(procs, n int, pred func(i int) bool) int {
	if Procs(procs) == 1 || n < DefaultGrain {
		c := 0
		for i := 0; i < n; i++ {
			if pred(i) {
				c++
			}
		}
		return c
	}
	return MapReduce(procs, n, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}
