// Package parallel provides the fork-join primitives the rest of the library
// is written against: blocked parallel-for, prefix sums (scan), pack/filter,
// and reductions.
//
// The paper's implementation uses Cilk Plus (cilk_for / cilk_spawn); this
// package plays the same role on goroutines. Loops are split into blocks of
// at least a grain-size of work, blocks are claimed from an atomic counter
// (a simple work-stealing-free scheduler that is effective for the flat,
// regular loops used here), and every entry point takes an explicit worker
// count so library callers can bound parallelism per call rather than
// globally. procs <= 0 means runtime.GOMAXPROCS(0).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of loop iterations a worker claims at a
// time when the caller does not specify a grain. It is chosen so that the
// per-block scheduling overhead (one atomic add + closure call) is amortized
// over enough work for the fine-grained loops in this library.
const DefaultGrain = 2048

// Procs resolves a worker-count option: values <= 0 mean "use all available
// parallelism" (runtime.GOMAXPROCS(0)).
func Procs(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Blocks runs fn over disjoint subranges [lo,hi) covering [0,n) using up to
// procs workers, with at least grain iterations per block (except the last).
// fn must be safe to call concurrently on disjoint ranges. If grain <= 0,
// DefaultGrain is used.
func Blocks(procs, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	procs = Procs(procs)
	if grain <= 0 {
		grain = DefaultGrain
	}
	nblocks := (n + grain - 1) / grain
	if procs == 1 || nblocks == 1 {
		fn(0, n)
		return
	}
	if procs > nblocks {
		procs = nblocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(procs)
	for w := 0; w < procs; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nblocks {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0,n) in parallel with the default grain.
func For(procs, n int, fn func(i int)) {
	Blocks(procs, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForGrain is For with an explicit grain size, for loops whose per-iteration
// work is far from uniform (e.g. one iteration per frontier vertex, where a
// vertex may have a large degree).
func ForGrain(procs, n, grain int, fn func(i int)) {
	Blocks(procs, n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// WorkerBlocks partitions [0,n) into exactly one contiguous chunk per worker
// and runs fn(worker, lo, hi) for each. Unlike Blocks it guarantees that each
// worker index appears exactly once, which callers use to maintain
// per-worker local buffers that are later concatenated deterministically.
// Chunks may be empty when n < workers.
func WorkerBlocks(procs, n int, fn func(worker, lo, hi int)) {
	procs = Procs(procs)
	if procs == 1 || n <= 1 {
		fn(0, 0, n)
		for w := 1; w < procs; w++ {
			fn(w, n, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(procs)
	for w := 0; w < procs; w++ {
		go func(w int) {
			defer wg.Done()
			lo := n * w / procs
			hi := n * (w + 1) / procs
			fn(w, lo, hi)
		}(w)
	}
	wg.Wait()
}

// Do runs every function in fns, in parallel when procs > 1. It is the
// cilk_spawn analogue for a small constant number of independent tasks.
func Do(procs int, fns ...func()) {
	if Procs(procs) == 1 || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// Number is the constraint for the arithmetic primitives in this package.
type Number interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64 | ~float64
}

// Fill sets every element of dst to v in parallel.
func Fill[T any](procs int, dst []T, v T) {
	Blocks(procs, len(dst), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// Iota fills dst with 0, 1, 2, ... in parallel.
func Iota[T Number](procs int, dst []T) {
	Blocks(procs, len(dst), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = T(i)
		}
	})
}

// Copy copies src into dst in parallel. The slices must have equal length.
func Copy[T any](procs int, dst, src []T) {
	if len(dst) != len(src) {
		panic("parallel: Copy length mismatch")
	}
	Blocks(procs, len(src), 0, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Sum returns the sum of xs.
func Sum[T Number](procs int, xs []T) T {
	return MapReduce(procs, len(xs), func(i int) T { return xs[i] })
}

// MapReduce sums f(i) over i in [0,n).
func MapReduce[T Number](procs, n int, f func(i int) T) T {
	procs = Procs(procs)
	if procs == 1 || n < DefaultGrain {
		var total T
		for i := 0; i < n; i++ {
			total += f(i)
		}
		return total
	}
	partial := make([]T, procs)
	WorkerBlocks(procs, n, func(w, lo, hi int) {
		var s T
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[w] = s
	})
	var total T
	for _, s := range partial {
		total += s
	}
	return total
}

// Max returns the maximum element of xs. It panics on an empty slice.
func Max[T Number](procs int, xs []T) T {
	if len(xs) == 0 {
		panic("parallel: Max of empty slice")
	}
	procs = Procs(procs)
	if procs == 1 || len(xs) < DefaultGrain {
		m := xs[0]
		for _, v := range xs[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	partial := make([]T, procs)
	WorkerBlocks(procs, len(xs), func(w, lo, hi int) {
		if lo >= hi {
			partial[w] = xs[0]
			return
		}
		m := xs[lo]
		for _, v := range xs[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		partial[w] = m
	})
	m := partial[0]
	for _, v := range partial[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Count returns the number of i in [0,n) for which pred(i) is true.
func Count(procs, n int, pred func(i int) bool) int {
	return MapReduce(procs, n, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}
