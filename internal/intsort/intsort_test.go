package intsort

import (
	"sort"
	"testing"
	"testing/quick"

	"parconn/internal/prand"
)

var procsCases = []int{1, 4}

func TestBits(t *testing.T) {
	cases := []struct {
		max  uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {1 << 31, 32}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := Bits(c.max); got != c.want {
			t.Fatalf("Bits(%d)=%d want %d", c.max, got, c.want)
		}
	}
}

func sortedCopy(a []uint64) []uint64 {
	cp := append([]uint64(nil), a...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp
}

func TestSortUint64MatchesStdlib(t *testing.T) {
	src := prand.New(1)
	for _, p := range procsCases {
		for _, n := range []int{0, 1, 2, 100, 1 << 14, 50000} {
			a := make([]uint64, n)
			for i := range a {
				a[i] = src.Uint64()
			}
			want := sortedCopy(a)
			SortUint64(p, a, 64)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("p=%d n=%d: a[%d]=%d want %d", p, n, i, a[i], want[i])
				}
			}
		}
	}
}

func TestSortUint64LimitedBits(t *testing.T) {
	src := prand.New(2)
	for _, bits := range []int{1, 7, 8, 9, 16, 20, 32, 40} {
		for _, p := range procsCases {
			n := 30000
			mask := uint64(1)<<uint(bits) - 1
			a := make([]uint64, n)
			for i := range a {
				a[i] = src.Uint64() & mask
			}
			want := sortedCopy(a)
			SortUint64(p, a, bits)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("bits=%d p=%d: mismatch at %d", bits, p, i)
				}
			}
		}
	}
}

func TestSortUint64AlreadySortedAndReverse(t *testing.T) {
	n := 20000
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i)
	}
	SortUint64(2, a, 0)
	for i := range a {
		if a[i] != uint64(i) {
			t.Fatalf("sorted input perturbed at %d", i)
		}
	}
	for i := range a {
		a[i] = uint64(n - i)
	}
	SortUint64(2, a, 0)
	for i := 1; i < n; i++ {
		if a[i] < a[i-1] {
			t.Fatalf("reverse input not sorted at %d", i)
		}
	}
}

func TestSortUint64AllEqual(t *testing.T) {
	a := make([]uint64, 40000)
	for i := range a {
		a[i] = 42
	}
	SortUint64(4, a, 16)
	for i, v := range a {
		if v != 42 {
			t.Fatalf("a[%d]=%d", i, v)
		}
	}
}

func TestSortUint64Property(t *testing.T) {
	f := func(a []uint64) bool {
		want := sortedCopy(a)
		SortUint64(4, a, 64)
		for i := range a {
			if a[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortInt32(t *testing.T) {
	src := prand.New(3)
	for _, p := range procsCases {
		n := 25000
		a := make([]int32, n)
		for i := range a {
			a[i] = src.Int31n(1 << 20)
		}
		want := append([]int32(nil), a...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortInt32(p, a, 1<<20-1)
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("p=%d: a[%d]=%d want %d", p, i, a[i], want[i])
			}
		}
	}
}

func TestUniqueSorted(t *testing.T) {
	for _, p := range procsCases {
		a := []uint64{1, 1, 2, 3, 3, 3, 7, 9, 9}
		got := UniqueSorted(p, a)
		want := []uint64{1, 2, 3, 7, 9}
		if len(got) != len(want) {
			t.Fatalf("p=%d: len=%d want %d (%v)", p, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: got[%d]=%d want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestUniqueSortedEdge(t *testing.T) {
	if got := UniqueSorted(1, nil); len(got) != 0 {
		t.Fatal("nil input")
	}
	if got := UniqueSorted(1, []uint64{5}); len(got) != 1 || got[0] != 5 {
		t.Fatal("single input")
	}
	big := make([]uint64, 30000)
	got := UniqueSorted(4, big)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("all-equal large input: %d", len(got))
	}
}

func TestSortStability(t *testing.T) {
	// Pack (key, original index) so stability is observable: equal keys must
	// retain index order. Radix LSD is stable by construction.
	src := prand.New(4)
	n := 40000
	a := make([]uint64, n)
	for i := range a {
		key := uint64(src.Int31n(64)) // few distinct keys, many ties
		a[i] = key<<32 | uint64(i)
	}
	// Sort by the full word: since the low half is the unique index, order
	// within equal keys must be ascending index — same as stable sort.
	SortUint64(4, a, 64)
	for i := 1; i < n; i++ {
		if a[i-1] >= a[i] {
			t.Fatalf("not strictly increasing at %d", i)
		}
	}
	// Now sort only the key bits via a masked copy and verify equal-key runs
	// keep increasing indices.
	b := make([]uint64, n)
	for i := range b {
		key := uint64(src.Int31n(16))
		b[i] = key<<32 | uint64(i)
	}
	keys := make([]uint64, n)
	copy(keys, b)
	SortUint64(4, keys, 64) // full sort ok for stability check as above
	for i := 1; i < n; i++ {
		if keys[i-1]>>32 == keys[i]>>32 && uint32(keys[i-1]) >= uint32(keys[i]) {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

func BenchmarkSortUint64_1M(b *testing.B) {
	src := prand.New(5)
	orig := make([]uint64, 1<<20)
	for i := range orig {
		orig[i] = src.Uint64() & (1<<40 - 1)
	}
	a := make([]uint64, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(a, orig)
		b.StartTimer()
		SortUint64(0, a, 40)
	}
}
