// Package intsort implements a parallel linear-work integer sort (LSD radix
// sort), the analogue of the PBBS integer sort the paper uses during graph
// contraction to group the remaining inter-component edges by component.
//
// The sort is stable, runs one counting pass per 8-bit digit, and only sorts
// the digits that can be non-zero given the caller-supplied key width, so
// sorting m packed edges whose endpoints fit in b bits costs O(m * ceil(2b/8))
// work — linear for the fixed word sizes used here.
package intsort

import (
	"parconn/internal/parallel"
)

const (
	digitBits = 8
	radix     = 1 << digitBits
	digitMask = radix - 1
)

// Bits returns the number of significant bits needed to represent max
// (at least 1).
func Bits(max uint64) int {
	b := 1
	for max >= 2 {
		max >>= 1
		b++
	}
	return b
}

// SortUint64 sorts a in ascending order, treating only the low `bits` bits
// as significant (keys must not exceed 2^bits - 1; bits <= 0 or > 64 means
// 64). The sort is stable and parallel.
func SortUint64(procs int, a []uint64, bits int) {
	SortUint64In(procs, a, bits, nil)
}

// SortUint64In is SortUint64 with caller-provided ping-pong storage: scratch
// must be nil or have length >= len(a). Passing a recycled scratch buffer
// makes the sort allocation-free apart from the small per-block count array
// on the parallel path.
func SortUint64In(procs int, a []uint64, bits int, scratch []uint64) {
	if bits <= 0 || bits > 64 {
		bits = 64
	}
	n := len(a)
	if n <= 1 {
		return
	}
	procs = parallel.Procs(procs)
	passes := (bits + digitBits - 1) / digitBits
	if procs == 1 || n < 1<<14 {
		if len(scratch) >= n {
			sortSerialIn(a, scratch[:n], passes)
		} else {
			sortSerial(a, passes)
		}
		return
	}
	buf := scratch
	if len(buf) < n {
		//parconn:allow hotalloc fallback when the caller's scratch is short; contract always passes full-length arena scratch
		buf = make([]uint64, n)
	} else {
		buf = buf[:n]
	}
	src, dst := a, buf
	nblocks := procs * 4
	if nblocks > n/1024+1 {
		nblocks = n/1024 + 1
	}
	blockOf := func(b int) (int, int) {
		return n * b / nblocks, n * (b + 1) / nblocks
	}
	// counts is digit-major: counts[d*nblocks + b] so one exclusive scan of
	// the whole array yields, for every (digit, block), the first output
	// position for that block's elements with that digit — the standard
	// parallel stable counting-sort offset computation.
	//parconn:allow hotalloc digit-count matrix is the sort's per-call cost, sized by procs and radix rather than input length
	counts := make([]int64, radix*nblocks)
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * digitBits)
		parallel.Fill(procs, counts, 0)
		parallel.For(procs, nblocks, func(b int) {
			lo, hi := blockOf(b)
			for _, v := range src[lo:hi] {
				d := (v >> shift) & digitMask
				counts[int(d)*nblocks+b]++
			}
		})
		parallel.ExScan(procs, counts)
		parallel.For(procs, nblocks, func(b int) {
			lo, hi := blockOf(b)
			// Local cursor copy per digit to avoid re-reading counts.
			var cur [radix]int64
			for d := 0; d < radix; d++ {
				cur[d] = counts[d*nblocks+b]
			}
			for _, v := range src[lo:hi] {
				d := (v >> shift) & digitMask
				dst[cur[d]] = v
				cur[d]++
			}
		})
		src, dst = dst, src
	}
	if passes%2 == 1 {
		parallel.Copy(procs, a, buf)
	}
}

// sortSerial is the sequential LSD radix sort used for small inputs and the
// procs==1 path.
//
//parconn:allow hotalloc serial convenience path allocates its ping-pong buffer; hot callers use SortUint64In with arena scratch
func sortSerial(a []uint64, passes int) {
	sortSerialIn(a, make([]uint64, len(a)), passes)
}

// sortSerialIn is sortSerial over caller-provided ping-pong storage
// (len(buf) == len(a)).
func sortSerialIn(a, buf []uint64, passes int) {
	src, dst := a, buf
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * digitBits)
		var counts [radix]int64
		for _, v := range src {
			counts[(v>>shift)&digitMask]++
		}
		var acc int64
		for d := 0; d < radix; d++ {
			c := counts[d]
			counts[d] = acc
			acc += c
		}
		for _, v := range src {
			d := (v >> shift) & digitMask
			dst[counts[d]] = v
			counts[d]++
		}
		src, dst = dst, src
	}
	if passes%2 == 1 {
		copy(a, buf)
	}
}

// SortInt32 sorts non-negative int32 values ascending using the radix sort.
// maxVal bounds the values (pass a negative maxVal to use the full 31 bits).
func SortInt32(procs int, a []int32, maxVal int32) {
	n := len(a)
	if n <= 1 {
		return
	}
	bits := 31
	if maxVal >= 0 {
		bits = Bits(uint64(maxVal))
	}
	keys := make([]uint64, n)
	parallel.For(procs, n, func(i int) { keys[i] = uint64(uint32(a[i])) })
	SortUint64(procs, keys, bits)
	parallel.For(procs, n, func(i int) { a[i] = int32(keys[i]) })
}

// UniqueSorted compacts consecutive duplicates in the sorted slice a,
// returning the deduplicated prefix (it reuses a's storage).
func UniqueSorted(procs int, a []uint64) []uint64 {
	n := len(a)
	if n <= 1 {
		return a
	}
	out := parallel.Pack(procs, a, func(i int) bool {
		return i == 0 || a[i] != a[i-1]
	})
	return out
}
