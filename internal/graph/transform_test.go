package graph

import "testing"

func TestInducedSubgraph(t *testing.T) {
	// 0-1-2-3-4 path; keep {1,2,3} -> path of 3.
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, BuildOptions{})
	keep := []bool{false, true, true, true, false}
	sub, orig := InducedSubgraph(g, keep, 0)
	if sub.N != 3 || sub.NumUndirected() != 2 {
		t.Fatalf("n=%d m=%d", sub.N, sub.NumUndirected())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2, 3}
	for i, v := range want {
		if orig[i] != v {
			t.Fatalf("orig=%v", orig)
		}
	}
	if sub.Degree(1) != 2 || sub.Degree(0) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestInducedSubgraphKeepAllNone(t *testing.T) {
	g := Grid3D(4, 1)
	all := make([]bool, g.N)
	for i := range all {
		all[i] = true
	}
	sub, orig := InducedSubgraph(g, all, 0)
	if sub.N != g.N || sub.NumDirected() != g.NumDirected() {
		t.Fatal("keep-all changed shape")
	}
	if len(orig) != g.N {
		t.Fatal("orig length")
	}
	none := make([]bool, g.N)
	sub2, orig2 := InducedSubgraph(g, none, 0)
	if sub2.N != 0 || len(orig2) != 0 {
		t.Fatal("keep-none not empty")
	}
}

func TestInducedSubgraphLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	InducedSubgraph(Line(5, 1), []bool{true}, 0)
}

func TestLargestComponent(t *testing.T) {
	g := Components(Line(10, 1), Line(30, 2), Line(5, 3))
	labels := RefCC(g)
	sub, orig := LargestComponent(g, labels, 0)
	if sub.N != 30 {
		t.Fatalf("largest has %d vertices, want 30", sub.N)
	}
	if sub.NumUndirected() != 29 {
		t.Fatalf("m=%d", sub.NumUndirected())
	}
	if NumComponentsOf(RefCC(sub)) != 1 {
		t.Fatal("largest component not connected")
	}
	// Every original vertex must come from the middle part [10, 40).
	for _, v := range orig {
		if v < 10 || v >= 40 {
			t.Fatalf("orig vertex %d outside largest component", v)
		}
	}
}

func TestDegrees(t *testing.T) {
	g := Star(5)
	d := Degrees(g)
	if d[0] != 4 || d[1] != 1 {
		t.Fatalf("degrees=%v", d)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(6, 1)
	if g.N != 36 || g.NumUndirected() != 72 {
		t.Fatalf("n=%d m=%d", g.N, g.NumUndirected())
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(int32(v)) != 4 {
			t.Fatalf("degree(%d)=%d", v, g.Degree(int32(v)))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if NumComponentsOf(RefCC(g)) != 1 {
		t.Fatal("2-torus not connected")
	}
	for _, side := range []int{0, 1, 2} {
		if err := Grid2D(side, 1).Validate(); err != nil {
			t.Fatalf("side=%d: %v", side, err)
		}
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(31, 2)
	if g.NumUndirected() != 30 {
		t.Fatalf("m=%d", g.NumUndirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if NumComponentsOf(RefCC(g)) != 1 {
		t.Fatal("tree not connected")
	}
	if CompleteBinaryTree(0, 1).N != 0 {
		t.Fatal("empty tree")
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(4, 5, 3)
	if g.N != 20 {
		t.Fatalf("n=%d", g.N)
	}
	// 4 cliques of C(5,2)=10 edges plus 3 bridges.
	if g.NumUndirected() != 4*10+3 {
		t.Fatalf("m=%d", g.NumUndirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if NumComponentsOf(RefCC(g)) != 1 {
		t.Fatal("chain not connected")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(2000, 3, 4)
	if g.N != 2000 {
		t.Fatalf("n=%d", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if NumComponentsOf(RefCC(g)) != 1 {
		t.Fatal("PA graph not connected")
	}
	avg := float64(g.NumDirected()) / float64(g.N)
	if float64(g.MaxDegree()) < 3*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), avg)
	}
}
