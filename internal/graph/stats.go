package graph

import (
	"fmt"
	"sort"

	"parconn/internal/prand"
)

// Stats summarizes a graph's structure; see Summarize.
type Stats struct {
	Vertices        int
	UndirectedEdges int64
	MinDegree       int32
	MaxDegree       int32
	AvgDegree       float64
	MedianDegree    int32
	Isolated        int   // vertices with degree 0
	Components      int   // connected components
	LargestComp     int   // size of the largest component
	ApproxDiameter  int32 // lower bound from double-sweep BFS on the largest component
}

// Summarize computes structural statistics. Component structure comes from
// the sequential reference (this is a reporting utility, not a hot path);
// the diameter estimate is the classic double-sweep lower bound: BFS from a
// random vertex, then BFS again from the farthest vertex found.
func Summarize(g *Graph, seed uint64) Stats {
	s := Stats{Vertices: g.N, UndirectedEdges: g.NumUndirected()}
	if g.N == 0 {
		return s
	}
	degs := Degrees(g)
	sorted := append([]int32(nil), degs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.MinDegree = sorted[0]
	s.MaxDegree = sorted[len(sorted)-1]
	s.MedianDegree = sorted[len(sorted)/2]
	s.AvgDegree = float64(g.NumDirected()) / float64(g.N)
	for _, d := range degs {
		if d == 0 {
			s.Isolated++
		}
	}
	labels := RefCC(g)
	sizes := ComponentSizesOf(labels)
	s.Components = len(sizes)
	bestLabel := int32(-1)
	for l, sz := range sizes {
		if sz > s.LargestComp || (sz == s.LargestComp && (bestLabel < 0 || l < bestLabel)) {
			s.LargestComp = sz
			bestLabel = l
		}
	}
	// Double sweep inside the largest component.
	start := bestLabel
	if s.LargestComp > 1 {
		// Random member of the largest component as the first sweep source.
		src := prand.New(seed)
		for tries := 0; tries < 64; tries++ {
			v := int32(src.Intn(g.N)) //parconn:allow conversioncheck Intn(g.N) < g.N, and vertex counts fit int32 by construction
			if labels[v] == bestLabel {
				start = v
				break
			}
		}
		d1 := BFSDistances(g, start)
		far, fd := start, int32(0)
		for v, d := range d1 {
			if d > fd {
				far, fd = int32(v), d
			}
		}
		d2 := BFSDistances(g, far)
		for _, d := range d2 {
			if d > s.ApproxDiameter {
				s.ApproxDiameter = d
			}
		}
	}
	return s
}

// String renders the stats as a small report.
func (s Stats) String() string {
	return fmt.Sprintf(
		"vertices=%d edges=%d degree[min/med/avg/max]=%d/%d/%.2f/%d isolated=%d components=%d largest=%d diameter>=%d",
		s.Vertices, s.UndirectedEdges, s.MinDegree, s.MedianDegree, s.AvgDegree, s.MaxDegree,
		s.Isolated, s.Components, s.LargestComp, s.ApproxDiameter)
}

// ComponentSize is one component of a labeling: its label and vertex count.
type ComponentSize struct {
	Label int32 `json:"label"`
	Size  int   `json:"size"`
}

// ComponentSummary scans a labeling once and returns the number of distinct
// components and the k largest (size descending, ties by ascending label,
// so the answer is deterministic). k <= 0 returns every component, sorted.
// This is the shared read side of a published labeling: cmd/connect's
// report and cmd/connserve's /v1/stats both render it.
func ComponentSummary(labels []int32, k int) (count int, top []ComponentSize) {
	sizes := ComponentSizesOf(labels)
	count = len(sizes)
	top = make([]ComponentSize, 0, count)
	for l, s := range sizes {
		top = append(top, ComponentSize{Label: l, Size: s})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Size != top[j].Size {
			return top[i].Size > top[j].Size
		}
		return top[i].Label < top[j].Label
	})
	if k > 0 && len(top) > k {
		top = top[:k]
	}
	return count, top
}
