package graph

import (
	"parconn/internal/parallel"
	"parconn/internal/prand"
)

// Additional generator families used by tests and ablations; the six
// paper inputs live in gen.go.

// Grid2D returns a 2-dimensional torus with side^2 vertices (4 neighbors
// each), labels permuted.
func Grid2D(side int, seed uint64) *Graph {
	if side <= 0 {
		return &Graph{N: 0, Offs: []int64{0}}
	}
	if side == 1 {
		return &Graph{N: 1, Offs: []int64{0, 0}}
	}
	n := side * side
	perm := prand.Permutation(n, seed)
	idx := func(x, y int) int32 { return perm[x*side+y] }
	edges := make([]Edge, 2*n)
	parallel.Blocks(0, n, 0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			x, y := v/side, v%side
			edges[2*v+0] = Edge{idx(x, y), idx((x+1)%side, y)}
			edges[2*v+1] = Edge{idx(x, y), idx(x, (y+1)%side)}
		}
	})
	return FromEdges(n, edges, BuildOptions{RemoveDuplicates: side == 2})
}

// CompleteBinaryTree returns a complete binary tree on n vertices (vertex i
// has children 2i+1, 2i+2), labels permuted. Trees stress the contraction
// path: every edge of every level is a cut or a claim, never a duplicate.
func CompleteBinaryTree(n int, seed uint64) *Graph {
	if n <= 0 {
		return &Graph{N: 0, Offs: []int64{0}}
	}
	perm := prand.Permutation(n, seed)
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{perm[(i-1)/2], perm[i]})
	}
	return FromEdges(n, edges, BuildOptions{})
}

// CliqueChain returns numCliques cliques of size cliqueSize, consecutive
// cliques joined by a single bridge edge — a worst case for duplicate-edge
// explosion under contraction (every clique contracts to one vertex with
// many parallel bridge copies... exactly one per bridge, but the intra
// edges all vanish at level 0, exercising the dedup paths).
func CliqueChain(numCliques, cliqueSize int, seed uint64) *Graph {
	if numCliques <= 0 || cliqueSize <= 0 {
		return &Graph{N: 0, Offs: []int64{0}}
	}
	n := numCliques * cliqueSize
	perm := prand.Permutation(n, seed)
	var edges []Edge
	for c := 0; c < numCliques; c++ {
		base := c * cliqueSize
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				edges = append(edges, Edge{perm[base+i], perm[base+j]})
			}
		}
		if c > 0 {
			edges = append(edges, Edge{perm[base-1], perm[base]})
		}
	}
	return FromEdges(n, edges, BuildOptions{})
}

// PreferentialAttachment returns a Barabási–Albert-style graph: vertices
// arrive one at a time and attach k edges to endpoints sampled from the
// current edge list (i.e. proportionally to degree). Heavy-tailed like
// rMat, but with guaranteed connectivity — useful for distinguishing
// many-component effects from degree-skew effects in tests.
func PreferentialAttachment(n, k int, seed uint64) *Graph {
	if n <= 0 {
		return &Graph{N: 0, Offs: []int64{0}}
	}
	if k < 1 {
		k = 1
	}
	src := prand.New(seed)
	// targets doubles as the degree-proportional sampling pool: every
	// endpoint of every edge appears once.
	pool := make([]int32, 0, 2*n*k)
	edges := make([]Edge, 0, n*k)
	for v := 1; v < n; v++ {
		for e := 0; e < k; e++ {
			var w int32
			if len(pool) == 0 {
				w = int32(src.Intn(v))
			} else if src.Intn(2) == 0 {
				// Half uniform, half preferential keeps early graphs from
				// degenerating into a single hub.
				w = int32(src.Intn(v))
			} else {
				w = pool[src.Intn(len(pool))]
			}
			if w == int32(v) {
				continue
			}
			edges = append(edges, Edge{int32(v), w})
			pool = append(pool, int32(v), w)
		}
	}
	return FromEdges(n, edges, BuildOptions{RemoveDuplicates: true})
}
