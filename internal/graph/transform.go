package graph

import (
	"parconn/internal/parallel"
)

// InducedSubgraph returns the subgraph induced by the vertices with
// keep[v] == true, plus the mapping from new vertex ids to original ids.
// Edges with either endpoint dropped are removed.
func InducedSubgraph(g *Graph, keep []bool, procs int) (*Graph, []int32) {
	if len(keep) != g.N {
		panic("graph: InducedSubgraph keep length mismatch")
	}
	procs = parallel.Procs(procs)
	newID := make([]int32, g.N)
	parallel.For(procs, g.N, func(v int) {
		if keep[v] {
			newID[v] = 1
		} else {
			newID[v] = 0
		}
	})
	k := int(parallel.ExScan(procs, newID))
	orig := make([]int32, k)
	parallel.For(procs, g.N, func(v int) {
		if keep[v] {
			orig[newID[v]] = int32(v)
		}
	})
	// Gather surviving directed pairs in new-id space; they remain sorted
	// by construction order (old vertex order = new vertex order).
	var pairs []uint64
	for v := 0; v < g.N; v++ {
		if !keep[v] {
			continue
		}
		src := uint64(uint32(newID[v])) << 32
		for _, w := range g.Neighbors(int32(v)) {
			if keep[w] {
				pairs = append(pairs, src|uint64(uint32(newID[w])))
			}
		}
	}
	return fromDirectedPairs(k, pairs, false, procs), orig
}

// LargestComponent returns the subgraph induced by the largest connected
// component under labels, plus the new-to-original vertex mapping. Ties are
// broken by the smaller label.
func LargestComponent(g *Graph, labels []int32, procs int) (*Graph, []int32) {
	sizes := ComponentSizesOf(labels)
	best := int32(-1)
	bestSize := -1
	for l, s := range sizes {
		if s > bestSize || (s == bestSize && l < best) {
			best, bestSize = l, s
		}
	}
	keep := make([]bool, g.N)
	for v := range keep {
		keep[v] = g.N > 0 && labels[v] == best
	}
	return InducedSubgraph(g, keep, procs)
}

// Degrees returns the degree sequence of g.
func Degrees(g *Graph) []int32 {
	out := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = g.Degree(int32(v))
	}
	return out
}
