package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# FromNodeId	ToNodeId
1 2
2 3
% another comment style

1000000 1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 {
		t.Fatalf("n=%d want 4 (compacted ids)", g.N)
	}
	if g.NumUndirected() != 3 {
		t.Fatalf("m=%d want 3", g.NumUndirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if NumComponentsOf(RefCC(g)) != 1 {
		t.Fatal("should be one component")
	}
}

func TestReadEdgeListDedupAndSelfLoops(t *testing.T) {
	in := "1 2\n2 1\n1 2\n3 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumUndirected() != 1 {
		t.Fatalf("n=%d m=%d", g.N, g.NumUndirected())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"one field":   "5\n",
		"non-numeric": "a b\n",
		"negative":    "-1 2\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	g, err := ReadEdgeList(strings.NewReader(""))
	if err != nil || g.N != 0 {
		t.Fatal("empty input should give empty graph")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	orig := RMat(8, RMatOptions{EdgeFactor: 4, Seed: 3})
	var buf bytes.Buffer
	if err := orig.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Ids are compacted in first-appearance order, so compare structure:
	// vertex/edge counts and the partition refinement must match.
	// Count only non-isolated vertices of orig (isolated ones never appear
	// in an edge list).
	nonIso := 0
	for v := 0; v < orig.N; v++ {
		if orig.Degree(int32(v)) > 0 {
			nonIso++
		}
	}
	if got.N != nonIso {
		t.Fatalf("n=%d want %d", got.N, nonIso)
	}
	if got.NumUndirected() != orig.NumUndirected() {
		t.Fatalf("m=%d want %d", got.NumUndirected(), orig.NumUndirected())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}
