// Package graph provides the adjacency-array (CSR) graph representation the
// paper's implementation is built on (§4), edge-list builders, synthetic
// graph generators matching the paper's inputs (§5, Table 1), a
// PBBS-compatible text format, and sequential reference algorithms used as
// test oracles.
//
// A Graph stores an undirected graph with every edge appearing in both
// directions: Offs[v]..Offs[v+1] delimit vertex v's targets in Adj. Vertex
// ids are int32 (the paper's inputs fit comfortably; the sign bit of Adj
// entries is reserved by the connectivity algorithm's in-place relabeling
// trick).
package graph

import (
	"fmt"

	"parconn/internal/parallel"
)

// Graph is an undirected graph in adjacency-array (CSR) form. Each
// undirected edge {u,v} is stored twice: v in u's list and u in v's list.
type Graph struct {
	N    int     // number of vertices
	Offs []int64 // length N+1; Offs[N] == len(Adj)
	Adj  []int32 // concatenated adjacency lists
}

// NumDirected returns the number of directed edges stored (2x the undirected
// edge count).
func (g *Graph) NumDirected() int64 { return int64(len(g.Adj)) }

// NumUndirected returns the number of undirected edges.
func (g *Graph) NumUndirected() int64 { return int64(len(g.Adj)) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int32 { return int32(g.Offs[v+1] - g.Offs[v]) }

// Neighbors returns vertex v's adjacency list (a view into Adj; do not
// modify).
func (g *Graph) Neighbors(v int32) []int32 { return g.Adj[g.Offs[v]:g.Offs[v+1]] }

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int32 {
	var m int32
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > m {
			m = d
		}
	}
	return m
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		N:    g.N,
		Offs: append([]int64(nil), g.Offs...),
		Adj:  append([]int32(nil), g.Adj...),
	}
	return cp
}

// Validate checks structural invariants: offset monotonicity, target range,
// and symmetry of the directed edge multiset. It returns the first violation
// found. Symmetry checking costs O(m log m) and is intended for tests and
// input validation, not hot paths.
func (g *Graph) Validate() error {
	if len(g.Offs) != g.N+1 {
		return fmt.Errorf("graph: len(Offs)=%d, want N+1=%d", len(g.Offs), g.N+1)
	}
	if g.N > 0 && g.Offs[0] != 0 {
		return fmt.Errorf("graph: Offs[0]=%d, want 0", g.Offs[0])
	}
	for v := 0; v < g.N; v++ {
		if g.Offs[v] > g.Offs[v+1] {
			return fmt.Errorf("graph: Offs not monotone at %d", v)
		}
	}
	if g.N >= 0 && len(g.Offs) > 0 && g.Offs[g.N] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: Offs[N]=%d, want len(Adj)=%d", g.Offs[g.N], len(g.Adj))
	}
	for _, w := range g.Adj {
		if w < 0 || int(w) >= g.N {
			return fmt.Errorf("graph: target %d out of range [0,%d)", w, g.N)
		}
	}
	// Symmetry: the multiset of (u,v) must equal the multiset of (v,u).
	counts := make(map[uint64]int64, len(g.Adj))
	for u := 0; u < g.N; u++ {
		for _, w := range g.Neighbors(int32(u)) {
			counts[pack(int32(u), w)]++
			counts[pack(w, int32(u))]--
		}
	}
	for k, c := range counts {
		if c != 0 {
			return fmt.Errorf("graph: asymmetric edge (%d,%d) imbalance %d", int32(k>>32), int32(uint32(k)), c)
		}
	}
	return nil
}

func pack(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// Edge is an undirected edge between U and V.
type Edge struct{ U, V int32 }

// BuildOptions controls FromEdges.
type BuildOptions struct {
	// RemoveDuplicates deduplicates parallel edges. Self-loops are always
	// dropped (they are irrelevant for connectivity and would break the
	// intra-edge deletion logic's invariants).
	RemoveDuplicates bool
	// Procs bounds the parallelism of graph construction; <= 0 means all.
	Procs int
}

// FromEdges builds a symmetric CSR graph on n vertices from an undirected
// edge list. Each input edge {u,v} with u != v produces the directed pair
// (u,v) and (v,u). Out-of-range endpoints cause a panic (generator bugs
// should fail loudly, not produce a corrupt graph).
func FromEdges(n int, edges []Edge, opt BuildOptions) *Graph {
	procs := parallel.Procs(opt.Procs)
	// Expand to directed pairs, dropping self-loops.
	pairs := make([]uint64, 0, 2*len(edges))
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n))
		}
		if e.U == e.V {
			continue
		}
		pairs = append(pairs, pack(e.U, e.V), pack(e.V, e.U))
	}
	return fromDirectedPairs(n, pairs, opt.RemoveDuplicates, procs)
}

// FromDirectedPairs builds a CSR graph from packed directed (u,v) pairs
// (u in the high 32 bits). The pairs must already be symmetric. It is the
// shared back-end for FromEdges and for graph contraction.
func FromDirectedPairs(n int, pairs []uint64, removeDuplicates bool, procs int) *Graph {
	return fromDirectedPairs(n, pairs, removeDuplicates, parallel.Procs(procs))
}

func fromDirectedPairs(n int, pairs []uint64, removeDuplicates bool, procs int) *Graph {
	// Sort by (u,v); grouping by source falls out, and deduplication is a
	// pack over adjacent duplicates.
	sortPairs(procs, pairs, n)
	if removeDuplicates {
		pairs = uniqueSorted(procs, pairs)
	}
	g := &Graph{N: n, Offs: make([]int64, n+1), Adj: make([]int32, len(pairs))}
	m := len(pairs)
	parallel.For(procs, m, func(i int) {
		g.Adj[i] = int32(uint32(pairs[i]))
	})
	// Offs[u] = first index with source u: for each i where the source
	// changes, record the boundary; then fill gaps (vertices with degree 0).
	parallel.Fill(procs, g.Offs, -1)
	g.Offs[n] = int64(m)
	parallel.For(procs, m, func(i int) {
		u := int32(pairs[i] >> 32)
		if i == 0 || int32(pairs[i-1]>>32) != u {
			g.Offs[u] = int64(i)
		}
	})
	// Backward fill: Offs[v] == -1 means degree 0; take the next vertex's
	// offset. Sequential O(n) pass (cheap relative to the sort).
	for v := n - 1; v >= 0; v-- {
		if g.Offs[v] < 0 {
			g.Offs[v] = g.Offs[v+1]
		}
	}
	return g
}
