package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: a compact little-endian serialization for large graphs
// (the text AdjacencyGraph format parses at ~10s per 10^8 edges; this is
// I/O-bound instead).
//
//	magic   [8]byte  "PCONNGR1"
//	n       uint64
//	m       uint64   (directed edge count == len(Adj))
//	offs    [n+1]uint64
//	adj     [m]uint32

var binMagic = [8]byte{'P', 'C', 'O', 'N', 'N', 'G', 'R', '1'}

// WriteBinary serializes g in the binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := put(uint64(g.N)); err != nil {
		return err
	}
	if err := put(uint64(len(g.Adj))); err != nil {
		return err
	}
	for _, o := range g.Offs {
		if err := put(uint64(o)); err != nil {
			return err
		}
	}
	var s4 [4]byte
	for _, e := range g.Adj {
		binary.LittleEndian.PutUint32(s4[:], uint32(e))
		if _, err := bw.Write(s4[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph in the binary format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var scratch [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	n64, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: reading n: %w", err)
	}
	m64, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: reading m: %w", err)
	}
	if n64 > 1<<31-2 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)
	g := &Graph{N: n, Offs: make([]int64, n+1), Adj: make([]int32, m)}
	for i := 0; i <= n; i++ {
		o, err := get()
		if err != nil {
			return nil, fmt.Errorf("graph: reading offset %d: %w", i, err)
		}
		if o > m64 {
			return nil, fmt.Errorf("graph: offset %d out of range", i)
		}
		g.Offs[i] = int64(o)
		if i > 0 && g.Offs[i] < g.Offs[i-1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	if g.Offs[n] != int64(m) {
		return nil, fmt.Errorf("graph: final offset %d != m %d", g.Offs[n], m)
	}
	var s4 [4]byte
	for i := 0; i < m; i++ {
		if _, err := io.ReadFull(br, s4[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		e := binary.LittleEndian.Uint32(s4[:])
		if e >= uint32(n) {
			return nil, fmt.Errorf("graph: edge target %d out of range", e)
		}
		g.Adj[i] = int32(e)
	}
	return g, nil
}
