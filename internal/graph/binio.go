package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: a compact little-endian serialization for large graphs
// (the text AdjacencyGraph format parses at ~10s per 10^8 edges; this is
// I/O-bound instead).
//
//	magic   [8]byte  "PCONNGR1"
//	n       uint64
//	m       uint64   (directed edge count == len(Adj))
//	offs    [n+1]uint64
//	adj     [m]uint32

var binMagic = [8]byte{'P', 'C', 'O', 'N', 'N', 'G', 'R', '1'}

// WriteBinary serializes g in the binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := put(uint64(g.N)); err != nil {
		return err
	}
	if err := put(uint64(len(g.Adj))); err != nil {
		return err
	}
	for _, o := range g.Offs {
		if err := put(uint64(o)); err != nil {
			return err
		}
	}
	var s4 [4]byte
	for _, e := range g.Adj {
		binary.LittleEndian.PutUint32(s4[:], uint32(e))
		if _, err := bw.Write(s4[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph in the binary format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var scratch [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	n64, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: reading n: %w", err)
	}
	m64, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: reading m: %w", err)
	}
	if n64 > 1<<31-2 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)

	// Grow the offset and adjacency arrays in bounded chunks as payload
	// bytes actually arrive: a corrupt header claiming a huge n or m then
	// fails with a truncation error after at most one chunk instead of
	// attempting a multi-terabyte allocation up front.
	const chunk = 1 << 16
	buf := make([]byte, 8*chunk)
	offs := make([]int64, 0, min(n+1, chunk))
	for len(offs) < n+1 {
		k := min(n+1-len(offs), chunk)
		if _, err := io.ReadFull(br, buf[:8*k]); err != nil {
			return nil, fmt.Errorf("graph: reading offset %d: %w", len(offs), err)
		}
		for i := 0; i < k; i++ {
			o := binary.LittleEndian.Uint64(buf[8*i:])
			if o > m64 {
				return nil, fmt.Errorf("graph: offset %d out of range", len(offs))
			}
			if len(offs) > 0 && int64(o) < offs[len(offs)-1] {
				return nil, fmt.Errorf("graph: offsets not monotone at %d", len(offs))
			}
			offs = append(offs, int64(o))
		}
	}
	if offs[0] != 0 {
		return nil, fmt.Errorf("graph: first offset %d != 0", offs[0])
	}
	if offs[n] != int64(m) {
		return nil, fmt.Errorf("graph: final offset %d != m %d", offs[n], m)
	}
	adj := make([]int32, 0, min(m, 2*chunk))
	for len(adj) < m {
		k := min(m-len(adj), 2*chunk)
		if _, err := io.ReadFull(br, buf[:4*k]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", len(adj), err)
		}
		for i := 0; i < k; i++ {
			e := binary.LittleEndian.Uint32(buf[4*i:])
			//parconn:allow conversioncheck n was bounds-checked against 2^31-2 at the header read above
			if e >= uint32(n) {
				return nil, fmt.Errorf("graph: edge target %d out of range", e)
			}
			adj = append(adj, int32(e))
		}
	}
	return &Graph{N: n, Offs: offs, Adj: adj}, nil
}
