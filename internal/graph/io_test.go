package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	for name, g := range map[string]*Graph{
		"line":     Line(50, 1),
		"rmat":     RMat(7, RMatOptions{EdgeFactor: 4, Seed: 2}),
		"empty":    FromEdges(0, nil, BuildOptions{}),
		"isolated": FromEdges(5, nil, BuildOptions{}),
		"single":   FromEdges(2, []Edge{{0, 1}}, BuildOptions{}),
	} {
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.N != g.N || got.NumDirected() != g.NumDirected() {
			t.Fatalf("%s: shape mismatch", name)
		}
		for v := 0; v <= g.N; v++ {
			if got.Offs[v] != g.Offs[v] {
				t.Fatalf("%s: offset %d mismatch", name, v)
			}
		}
		for i := range g.Adj {
			if got.Adj[i] != g.Adj[i] {
				t.Fatalf("%s: adj %d mismatch", name, i)
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad header":      "WrongHeader\n2\n2\n0\n1\n1\n0\n",
		"truncated":       "AdjacencyGraph\n2\n2\n0\n1\n1\n",
		"negative n":      "AdjacencyGraph\n-1\n0\n",
		"edge range":      "AdjacencyGraph\n2\n2\n0\n1\n5\n0\n",
		"offset range":    "AdjacencyGraph\n2\n2\n0\n9\n1\n0\n",
		"non-numeric":     "AdjacencyGraph\nx\n0\n",
		"empty input":     "",
		"offsets reorder": "AdjacencyGraph\n3\n2\n0\n2\n1\n0\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadFrom(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

func TestReadFromMinimal(t *testing.T) {
	g, err := ReadFrom(strings.NewReader("AdjacencyGraph\n0\n0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 0 {
		t.Fatal("n != 0")
	}
}
