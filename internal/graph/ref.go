package graph

// This file holds sequential reference algorithms used as test oracles and
// for graph statistics. They are deliberately simple; none of them are used
// on the library's hot paths.

// RefCC returns a connected-components labeling by sequential BFS: every
// vertex gets the smallest vertex id in its component as its label.
func RefCC(g *Graph) []int32 {
	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, 1024)
	for s := 0; s < g.N; s++ {
		if labels[s] != -1 {
			continue
		}
		root := int32(s)
		labels[s] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = root
					queue = append(queue, w)
				}
			}
		}
	}
	return labels
}

// NumComponentsOf returns the number of distinct labels in a labeling.
func NumComponentsOf(labels []int32) int {
	seen := make(map[int32]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// SamePartition reports whether two labelings induce the same partition of
// the vertex set (labels may differ; the equivalence classes must match).
func SamePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int32]int32)
	bwd := make(map[int32]int32)
	for i := range a {
		if m, ok := fwd[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if m, ok := bwd[b[i]]; ok {
			if m != a[i] {
				return false
			}
		} else {
			bwd[b[i]] = a[i]
		}
	}
	return true
}

// BFSDistances returns the unweighted shortest-path distance from src to
// every vertex (-1 if unreachable). Used by decomposition-diameter tests.
func BFSDistances(g *Graph, src int32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{src}
	for d := int32(1); len(frontier) > 0; d++ {
		var next []int32
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if dist[w] == -1 {
					dist[w] = d
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// ComponentSizesOf returns a map from label to component size.
func ComponentSizesOf(labels []int32) map[int32]int {
	sizes := make(map[int32]int)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}

// InducedSubgraphCheck verifies that the partition given by labels only cuts
// edges between differently-labeled endpoints; it returns the number of cut
// (inter-partition) directed edges.
func InducedSubgraphCheck(g *Graph, labels []int32) int64 {
	var cut int64
	for u := 0; u < g.N; u++ {
		for _, w := range g.Neighbors(int32(u)) {
			if labels[u] != labels[w] {
				cut++
			}
		}
	}
	return cut
}
