package graph

import (
	"testing"
)

func TestRandomGraphShape(t *testing.T) {
	g := Random(1000, 5, 1)
	if g.N != 1000 {
		t.Fatalf("n=%d", g.N)
	}
	// m = 5n minus dropped self-loops (rare): within 1%.
	if g.NumUndirected() < 4950 || g.NumUndirected() > 5000 {
		t.Fatalf("m=%d want ~5000", g.NumUndirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := Random(500, 5, 7)
	b := Random(500, 5, 7)
	if a.NumDirected() != b.NumDirected() {
		t.Fatal("sizes differ")
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatalf("adj differs at %d", i)
		}
	}
	c := Random(500, 5, 8)
	same := a.NumDirected() == c.NumDirected()
	if same {
		diff := false
		for i := range a.Adj {
			if a.Adj[i] != c.Adj[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

func TestRandomGraphMostlyConnected(t *testing.T) {
	// A random graph with 5 edges/vertex is connected w.h.p.; allow a couple
	// of tiny extra components but expect a giant one.
	g := Random(2000, 5, 3)
	labels := RefCC(g)
	sizes := ComponentSizesOf(labels)
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	if max < g.N*95/100 {
		t.Fatalf("giant component only %d/%d", max, g.N)
	}
}

func TestRMatShape(t *testing.T) {
	g := RMat(10, RMatOptions{EdgeFactor: 5, Seed: 1})
	if g.N != 1024 {
		t.Fatalf("n=%d", g.N)
	}
	if g.NumUndirected() == 0 || g.NumUndirected() > 5*1024 {
		t.Fatalf("m=%d", g.NumUndirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMatPowerLaw(t *testing.T) {
	// The max degree of an rMat graph should far exceed the average.
	g := RMat(12, RMatOptions{EdgeFactor: 8, Seed: 2})
	avg := float64(g.NumDirected()) / float64(g.N)
	if float64(g.MaxDegree()) < 4*avg {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", g.MaxDegree(), avg)
	}
}

func TestRMatKeepDuplicates(t *testing.T) {
	dedup := RMat(8, RMatOptions{EdgeFactor: 16, Seed: 3})
	kept := RMat(8, RMatOptions{EdgeFactor: 16, Seed: 3, KeepDuplicates: true})
	if kept.NumUndirected() < dedup.NumUndirected() {
		t.Fatalf("kept %d < dedup %d", kept.NumUndirected(), dedup.NumUndirected())
	}
	if err := kept.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrid3DShape(t *testing.T) {
	g := Grid3D(5, 1)
	if g.N != 125 {
		t.Fatalf("n=%d", g.N)
	}
	if g.NumUndirected() != 3*125 {
		t.Fatalf("m=%d want %d", g.NumUndirected(), 3*125)
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(int32(v)) != 6 {
			t.Fatalf("degree(%d)=%d want 6", v, g.Degree(int32(v)))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	labels := RefCC(g)
	if NumComponentsOf(labels) != 1 {
		t.Fatal("torus not connected")
	}
}

func TestGrid3DDegenerate(t *testing.T) {
	for _, side := range []int{0, 1, 2} {
		g := Grid3D(side, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("side=%d: %v", side, err)
		}
	}
	g2 := Grid3D(2, 1)
	if NumComponentsOf(RefCC(g2)) != 1 {
		t.Fatal("2-torus not connected")
	}
}

func TestLineShape(t *testing.T) {
	g := Line(100, 4)
	if g.N != 100 || g.NumUndirected() != 99 {
		t.Fatalf("n=%d m=%d", g.N, g.NumUndirected())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	deg1 := 0
	for v := 0; v < g.N; v++ {
		switch g.Degree(int32(v)) {
		case 1:
			deg1++
		case 2:
		default:
			t.Fatalf("degree(%d)=%d", v, g.Degree(int32(v)))
		}
	}
	if deg1 != 2 {
		t.Fatalf("%d endpoints, want 2", deg1)
	}
	if NumComponentsOf(RefCC(g)) != 1 {
		t.Fatal("line not connected")
	}
}

func TestLineTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g := Line(n, 1)
		if g.N != n {
			t.Fatalf("n=%d: got %d", n, g.N)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSocialShape(t *testing.T) {
	g := Social(10, 5)
	if g.N != 1024 {
		t.Fatalf("n=%d", g.N)
	}
	ratio := float64(g.NumUndirected()) / float64(g.N)
	// Orkut's ratio is ~38; dedup on a small scale loses some, accept >15.
	if ratio < 15 {
		t.Fatalf("edge/vertex ratio %.1f too low for a social-graph stand-in", ratio)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.Degree(0) != 5 {
		t.Fatalf("center degree %d", g.Degree(0))
	}
	if NumComponentsOf(RefCC(g)) != 1 {
		t.Fatal("star not connected")
	}
}

func TestComponentsUnion(t *testing.T) {
	g := Components(Line(3, 1), Star(4), Line(2, 2))
	if g.N != 9 {
		t.Fatalf("n=%d", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := NumComponentsOf(RefCC(g)); got != 3 {
		t.Fatalf("components=%d want 3", got)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	type genFn func() *Graph
	gens := map[string]genFn{
		"rmat":   func() *Graph { return RMat(8, RMatOptions{EdgeFactor: 4, Seed: 11}) },
		"grid3d": func() *Graph { return Grid3D(4, 11) },
		"line":   func() *Graph { return Line(64, 11) },
	}
	for name, fn := range gens {
		a, b := fn(), fn()
		if a.NumDirected() != b.NumDirected() {
			t.Fatalf("%s: sizes differ", name)
		}
		for i := range a.Adj {
			if a.Adj[i] != b.Adj[i] {
				t.Fatalf("%s: adj differs at %d", name, i)
			}
		}
	}
}
