package graph

import (
	"fmt"
	"sync"

	"parconn/internal/parallel"
)

// VerifyLabeling checks that labels is a correct connected-components
// labeling of g in O(n + m) work:
//
//  1. length matches and every label is in range,
//  2. labels are canonical: labels[labels[v]] == labels[v],
//  3. consistency: both endpoints of every edge share a label (so labels
//     are constant on components), and
//  4. separation: every label class is connected (a BFS seeded at each
//     canonical vertex, restricted to its class, reaches the whole class —
//     together with (3) this implies distinct components get distinct
//     labels).
//
// It returns nil for a correct labeling and a descriptive error otherwise.
func VerifyLabeling(g *Graph, labels []int32) error {
	if len(labels) != g.N {
		return fmt.Errorf("graph: labeling has %d entries for %d vertices", len(labels), g.N)
	}
	for v, l := range labels {
		if l < 0 || int(l) >= g.N {
			return fmt.Errorf("graph: labels[%d]=%d out of range", v, l)
		}
		if labels[l] != l {
			return fmt.Errorf("graph: labels[%d]=%d is not canonical (labels[%d]=%d)", v, l, l, labels[l])
		}
	}
	var mu sync.Mutex
	var bad error
	parallel.Blocks(0, g.N, 1024, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			for _, w := range g.Neighbors(int32(v)) {
				if labels[v] != labels[w] {
					//parconn:allow blockingcall first-error capture; contended only when verification is already failing
					mu.Lock()
					if bad == nil {
						//parconn:allow sharedwrite bad is written under mu; first error wins
						bad = fmt.Errorf("graph: edge (%d,%d) crosses labels %d and %d", v, w, labels[v], labels[w])
					}
					mu.Unlock()
					return
				}
			}
		}
	})
	if bad != nil {
		return bad
	}
	// Separation: one multi-source BFS, seeded at every canonical vertex;
	// if every vertex is reached through same-label edges, each class is
	// connected, and since classes never touch (checked above) the
	// labeling exactly matches the components.
	visited := make([]bool, g.N)
	queue := make([]int32, 0, 1024)
	reached := 0
	for v := 0; v < g.N; v++ {
		if labels[v] != int32(v) {
			continue
		}
		visited[v] = true
		reached++
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.Neighbors(u) {
				if !visited[w] {
					visited[w] = true
					reached++
					queue = append(queue, w)
				}
			}
		}
	}
	if reached != g.N {
		for v := 0; v < g.N; v++ {
			if !visited[v] {
				return fmt.Errorf("graph: vertex %d is not connected to its canonical vertex %d", v, labels[v])
			}
		}
	}
	return nil
}
