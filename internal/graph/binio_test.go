package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// binHeader builds a binary-format prefix: magic, n, m, then any extra
// uint64 words (offsets) the caller supplies.
func binHeader(n, m uint64, words ...uint64) []byte {
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	var s [8]byte
	for _, v := range append([]uint64{n, m}, words...) {
		binary.LittleEndian.PutUint64(s[:], v)
		buf.Write(s[:])
	}
	return buf.Bytes()
}

func TestReadBinaryHugeHeaderTruncated(t *testing.T) {
	// A 24-byte file whose header claims the maximum plausible sizes must
	// fail with a read error, not attempt a multi-terabyte allocation.
	in := binHeader(1<<31-2, 1<<40)
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
		t.Fatal("huge truncated header accepted")
	} else if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReadBinaryImplausibleSizes(t *testing.T) {
	for _, tc := range []struct{ n, m uint64 }{
		{1 << 31, 0},
		{1, 1 << 41},
		{^uint64(0), ^uint64(0)},
	} {
		in := binHeader(tc.n, tc.m)
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Fatalf("n=%d m=%d accepted", tc.n, tc.m)
		}
	}
}

func TestReadBinaryOffsetInvariants(t *testing.T) {
	cases := map[string][]byte{
		// First offset must be zero.
		"nonzero-first": binHeader(2, 2, 1, 1, 2, 0, 0),
		// Offsets must be monotone.
		"non-monotone": binHeader(2, 2, 0, 2, 1),
		// No offset may exceed m.
		"beyond-m": binHeader(2, 2, 0, 3, 2),
		// Final offset must equal m.
		"final-mismatch": binHeader(2, 2, 0, 1, 1, 0, 0),
	}
	for name, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadBinaryTruncatedPayload(t *testing.T) {
	g := RMat(6, RMatOptions{EdgeFactor: 4, Seed: 7})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadBinaryLargeRoundTrip(t *testing.T) {
	// Exceed one read chunk (1<<16 entries) in both arrays so the chunked
	// loops exercise their continuation paths.
	g := RMat(17, RMatOptions{EdgeFactor: 2, Seed: 3})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || len(got.Adj) != len(g.Adj) {
		t.Fatalf("shape mismatch: n=%d/%d m=%d/%d", got.N, g.N, len(got.Adj), len(g.Adj))
	}
	for i := range g.Offs {
		if got.Offs[i] != g.Offs[i] {
			t.Fatalf("offset %d mismatch", i)
		}
	}
	for i := range g.Adj {
		if got.Adj[i] != g.Adj[i] {
			t.Fatalf("adj %d mismatch", i)
		}
	}
}
