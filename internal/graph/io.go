package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// The text format is the PBBS / Ligra "AdjacencyGraph" format the paper's
// artifact uses:
//
//	AdjacencyGraph
//	<n>
//	<m>
//	<offset 0>
//	...
//	<offset n-1>
//	<edge 0>
//	...
//	<edge m-1>
//
// where m counts directed edges (each undirected edge appears twice).

const adjHeader = "AdjacencyGraph"

// Write writes g in AdjacencyGraph format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%s\n%d\n%d\n", adjHeader, g.N, len(g.Adj)); err != nil {
		return err
	}
	buf := make([]byte, 0, 20)
	for v := 0; v < g.N; v++ {
		buf = strconv.AppendInt(buf[:0], g.Offs[v], 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, e := range g.Adj {
		buf = strconv.AppendInt(buf[:0], int64(e), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom parses an AdjacencyGraph-format graph.
func ReadFrom(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() (string, error) {
		for sc.Scan() {
			tok := sc.Text()
			if tok != "" {
				return tok, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	sc.Split(bufio.ScanWords)
	head, err := next()
	if err != nil {
		return nil, err
	}
	if head != adjHeader {
		return nil, fmt.Errorf("graph: bad header %q, want %q", head, adjHeader)
	}
	readInt := func() (int64, error) {
		tok, err := next()
		if err != nil {
			return 0, err
		}
		return strconv.ParseInt(tok, 10, 64)
	}
	n64, err := readInt()
	if err != nil {
		return nil, fmt.Errorf("graph: reading n: %w", err)
	}
	m64, err := readInt()
	if err != nil {
		return nil, fmt.Errorf("graph: reading m: %w", err)
	}
	if n64 < 0 || m64 < 0 || n64 > 1<<31-2 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)
	g := &Graph{N: n, Offs: make([]int64, n+1), Adj: make([]int32, m)}
	for v := 0; v < n; v++ {
		o, err := readInt()
		if err != nil {
			return nil, fmt.Errorf("graph: reading offset %d: %w", v, err)
		}
		if o < 0 || o > m64 {
			return nil, fmt.Errorf("graph: offset %d out of range: %d", v, o)
		}
		g.Offs[v] = o
	}
	g.Offs[n] = m64
	for i := 0; i < m; i++ {
		e, err := readInt()
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if e < 0 || e >= n64 {
			return nil, fmt.Errorf("graph: edge target %d out of range", e)
		}
		g.Adj[i] = int32(e)
	}
	for v := 0; v < n; v++ {
		if g.Offs[v] > g.Offs[v+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", v)
		}
	}
	return g, nil
}
